// Fig. 13 — Inter-protocol fairness: each CCA under test vs one CUBIC flow on
// a 48 Mbps / 100 ms / 1 BDP bottleneck. Paper shape: Libra near the 0.5
// optimal split (Jain > 98%); Aurora/Proteus either starve CUBIC or are
// starved.
//
// All (cca x seed) runs go through run_many as one batch: factories are
// resolved (and brains trained) up front on the main thread, then the
// independent 60 s simulations fan across the pool. Same numbers as the old
// serial loop — run_many's summaries are bitwise-identical to run_single's.
#include "bench/common.h"

#include "stats/fairness.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 13", "inter-protocol fairness vs CUBIC");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(60);

  const std::vector<std::string> ccas = {"cubic", "bbr",  "copa",    "aurora",
                                         "proteus", "orca", "c-libra", "b-libra"};
  constexpr int kRuns = 2;

  CcaFactory cubic = zoo().factory("cubic");
  std::vector<RunRequest> reqs;
  for (const std::string& name : ccas) {
    CcaFactory test = zoo().factory(name);
    for (int r = 0; r < kRuns; ++r) {
      RunRequest req;
      req.scenario = s;
      req.flows = {{test}, {cubic}};
      req.seed = 200 + static_cast<std::uint64_t>(r);
      req.warmup = sec(20);  // shares measured over (20 s, 60 s]
      reqs.push_back(std::move(req));
    }
  }
  std::vector<RunSummary> runs = run_many(reqs, default_pool());

  Table t({"cca under test", "test share", "cubic share", "jain"});
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    double test_share = 0, cubic_share = 0, jain = 0;
    for (int r = 0; r < kRuns; ++r) {
      const RunSummary& sum = runs[ci * kRuns + static_cast<std::size_t>(r)];
      double a = sum.flows[0].throughput_bps;
      double b = sum.flows[1].throughput_bps;
      test_share += a / std::max(1.0, a + b);
      cubic_share += b / std::max(1.0, a + b);
      jain += jain_index({a, b});
    }
    t.add_row({ccas[ci], fmt(test_share / kRuns, 3), fmt(cubic_share / kRuns, 3),
               fmt(jain / kRuns, 3)});
  }
  section("Normalized shares (optimal 0.5/0.5; paper: libra jain > 0.98)");
  t.print();
  return 0;
}
