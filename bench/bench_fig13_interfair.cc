// Fig. 13 — Inter-protocol fairness: each CCA under test vs one CUBIC flow on
// a 48 Mbps / 100 ms / 1 BDP bottleneck. Paper shape: Libra near the 0.5
// optimal split (Jain > 98%); Aurora/Proteus either starve CUBIC or are
// starved.
#include "bench/common.h"

#include "stats/fairness.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 13", "inter-protocol fairness vs CUBIC");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(60);

  const std::vector<std::string> ccas = {"cubic", "bbr",  "copa",    "aurora",
                                         "proteus", "orca", "c-libra", "b-libra"};
  Table t({"cca under test", "test share", "cubic share", "jain"});
  for (const std::string& name : ccas) {
    double test_share = 0, cubic_share = 0, jain = 0;
    constexpr int kRuns = 2;
    for (int r = 0; r < kRuns; ++r) {
      auto net = run_scenario(
          s, {{zoo().factory(name)}, {zoo().factory("cubic")}},
          200 + static_cast<std::uint64_t>(r));
      double a = net->flow(0).throughput_in(sec(20), sec(60));
      double b = net->flow(1).throughput_in(sec(20), sec(60));
      test_share += a / std::max(1.0, a + b);
      cubic_share += b / std::max(1.0, a + b);
      jain += jain_index({a, b});
    }
    t.add_row({name, fmt(test_share / kRuns, 3), fmt(cubic_share / kRuns, 3),
               fmt(jain / kRuns, 3)});
  }
  section("Normalized shares (optimal 0.5/0.5; paper: libra jain > 0.98)");
  t.print();
  return 0;
}
