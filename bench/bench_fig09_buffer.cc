// Fig. 9 — Impact of bottleneck buffer size (10 KB to 1 MB) on link
// utilization and delay, 60 Mbps / 100 ms. Paper shape: CUBIC's utilization
// and delay both climb with buffer depth (bufferbloat); Libra reaches >80%
// utilization with only ~30 KB and stays delay-flat as the buffer deepens.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace libra;
  using namespace libra::benchx;
  parse_args(argc, argv);
  header("Fig. 9", "buffer-size sweep: utilization vs delay");

  const std::vector<std::int64_t> buffers = {10'000,  30'000,  100'000,
                                             300'000, 600'000, 1'000'000};
  const std::vector<std::string> ccas = {"proteus", "bbr", "copa", "cubic",
                                         "orca", "c-libra", "b-libra"};
  const int runs = 2;

  // The whole (cca x buffer x seed) grid goes through run_many as one batch,
  // so every point runs concurrently instead of fanning out per point. Seeds
  // match the old per-point average_runs call (base 1000), so the printed
  // numbers are unchanged.
  std::vector<RunRequest> batch;
  for (const std::string& name : ccas) {
    CcaFactory factory = zoo().factory(name);
    for (std::int64_t buf : buffers) {
      Scenario s = wired_scenario(60, msec(100), buf);
      s.duration = sec(30);
      for (int r = 0; r < runs; ++r) {
        batch.push_back(RunRequest::single(
            s, factory, 1000 + static_cast<std::uint64_t>(r)));
      }
    }
  }
  RunManyOptions opts;
  opts.on_progress = [](const RunProgress& p) {
    if (p.done % 10 == 0 || p.done == p.total)
      std::cerr << "fig09: " << p.done << "/" << p.total << " runs ("
                << static_cast<int>(p.completed_flow_seconds) << "/"
                << static_cast<int>(p.total_flow_seconds) << " flow-s)\n";
  };
  std::vector<RunSummary> results = run_many(batch, default_pool(), opts);

  std::size_t idx = 0;
  for (const std::string& name : ccas) {
    Table t({"buffer", "link util", "avg delay (ms)"});
    for (std::int64_t buf : buffers) {
      double util = 0, delay = 0;
      for (int r = 0; r < runs; ++r, ++idx) {
        util += results[idx].link_utilization;
        delay += results[idx].avg_delay_ms;
      }
      t.add_row({std::to_string(buf / 1000) + "KB", fmt(util / runs, 3),
                 fmt(delay / runs, 1)});
    }
    section(name);
    t.print();
  }
  return 0;
}
