// Fig. 9 — Impact of bottleneck buffer size (10 KB to 1 MB) on link
// utilization and delay, 60 Mbps / 100 ms. Paper shape: CUBIC's utilization
// and delay both climb with buffer depth (bufferbloat); Libra reaches >80%
// utilization with only ~30 KB and stays delay-flat as the buffer deepens.
#include "bench/common.h"

int main() {
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 9", "buffer-size sweep: utilization vs delay");

  const std::vector<std::int64_t> buffers = {10'000,  30'000,  100'000,
                                             300'000, 600'000, 1'000'000};
  const std::vector<std::string> ccas = {"proteus", "bbr", "copa", "cubic",
                                         "orca", "c-libra", "b-libra"};

  for (const std::string& name : ccas) {
    Table t({"buffer", "link util", "avg delay (ms)"});
    CcaFactory factory = zoo().factory(name);
    for (std::int64_t buf : buffers) {
      Scenario s = wired_scenario(60, msec(100), buf);
      s.duration = sec(30);
      Averaged a = average_runs(s, factory, /*runs=*/2);
      t.add_row({std::to_string(buf / 1000) + "KB", fmt(a.link_utilization, 3),
                 fmt(a.avg_delay_ms, 1)});
    }
    section(name);
    t.print();
  }
  return 0;
}
