// Fig. 1 — Adaptability under wired / cellular networks.
// Link utilization and average delay for CUBIC, BBR, Orca, Proteus and
// C-Libra across Wired#1-3 (24/48/96 Mbps) and LTE#1-3 (stationary / walking
// / driving), 30 ms min RTT, 150 KB buffer.
#include "bench/common.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 1", "adaptability: link utilization + avg delay per scenario");

  const std::vector<std::string> ccas = {"cubic", "bbr", "orca", "proteus",
                                         "c-libra"};
  Table util({"scenario", "cubic", "bbr", "orca", "proteus", "c-libra"});
  Table delay({"scenario", "cubic", "bbr", "orca", "proteus", "c-libra"});

  for (const Scenario& base : fig1_scenarios()) {
    Scenario s = base;
    s.duration = sec(40);
    std::vector<std::string> urow{s.name}, drow{s.name};
    for (const std::string& name : ccas) {
      Averaged a = average_runs(s, zoo().factory(name));
      urow.push_back(fmt(a.link_utilization, 3));
      drow.push_back(fmt(a.avg_delay_ms, 1));
    }
    util.add_row(urow);
    delay.add_row(drow);
  }

  section("Link utilization (paper: Libra highest or tied in every column)");
  util.print();
  section("Avg delay, ms (paper: Libra far below CUBIC, near delay-based)");
  delay.print();
  return 0;
}
