// Fig. 11 — Flexibility: utility-weight variants Default / Th-1 / Th-2
// (2x/3x alpha) / La-1 / La-2 (2x/3x beta) for C-Libra and B-Libra.
// (a,b) single flow on the wired and cellular sets: Th-variants trade delay
// for utilization, La-variants the reverse. (c,d) one Libra flow competing
// with one CUBIC flow: the Th-variants claim a larger bandwidth share.
#include "bench/common.h"

#include "core/factory.h"

namespace {
using namespace libra;
using namespace libra::benchx;

CcaFactory libra_with(UtilityParams up, bool bbr_variant) {
  auto brain = zoo().brain("libra-rl");
  return [up, bbr_variant, brain]() -> std::unique_ptr<CongestionControl> {
    LibraParams p = bbr_variant ? b_libra_params() : c_libra_params();
    p.utility = up;
    return bbr_variant ? make_b_libra(brain, false, p)
                       : make_c_libra(brain, false, p);
  };
}

struct Variant {
  std::string label;
  UtilityParams utility;
};

std::vector<Variant> variants() {
  return {{"default", UtilityParams{}},
          {"th-1", throughput_oriented(1)},
          {"th-2", throughput_oriented(2)},
          {"la-1", latency_oriented(1)},
          {"la-2", latency_oriented(2)}};
}

void single_flow(const std::vector<Scenario>& set, const std::string& label) {
  Table t({"variant", "c-libra util", "c-libra delay", "b-libra util",
           "b-libra delay"});
  for (const Variant& v : variants()) {
    double cu = 0, cd = 0, bu = 0, bd = 0;
    for (const Scenario& base : set) {
      Scenario s = base;
      s.duration = sec(30);
      Averaged c = average_runs(s, libra_with(v.utility, false), 2);
      Averaged b = average_runs(s, libra_with(v.utility, true), 2);
      cu += c.link_utilization;
      cd += c.avg_delay_ms;
      bu += b.link_utilization;
      bd += b.avg_delay_ms;
    }
    auto n = static_cast<double>(set.size());
    t.add_row({v.label, fmt(cu / n, 3), fmt(cd / n, 1), fmt(bu / n, 3),
               fmt(bd / n, 1)});
  }
  section(label + " — single flow (paper: th raises util, la cuts delay)");
  t.print();
}

void versus_cubic(const std::vector<Scenario>& set, const std::string& label) {
  Table t({"variant", "c-libra share", "b-libra share"});
  for (const Variant& v : variants()) {
    double cs = 0, bs = 0;
    for (const Scenario& base : set) {
      Scenario s = base;
      s.duration = sec(40);
      for (bool bbr_variant : {false, true}) {
        auto net = run_scenario(
            s, {{libra_with(v.utility, bbr_variant)},
                {zoo().factory("cubic")}}, 11);
        double libra_thr = net->flow(0).throughput_in(sec(10), sec(40));
        double cubic_thr = net->flow(1).throughput_in(sec(10), sec(40));
        double share = libra_thr / std::max(1.0, libra_thr + cubic_thr);
        (bbr_variant ? bs : cs) += share;
      }
    }
    auto n = static_cast<double>(set.size());
    t.add_row({v.label, fmt(cs / n, 3), fmt(bs / n, 3)});
  }
  section(label + " — bandwidth share vs one CUBIC flow (0.5 = fair; paper: "
                  "th-variants more aggressive)");
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  header("Fig. 11", "flexibility across utility-weight variants");
  single_flow(wired_set(), "Wired set");
  single_flow(cellular_set(), "Cellular set");
  versus_cubic(wired_set(), "Wired set");
  versus_cubic(cellular_set(), "Cellular set");
  return 0;
}
