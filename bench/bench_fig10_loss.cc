// Fig. 10 — Impact of stochastic packet loss (0-10%) on link utilization.
// Paper shape: CUBIC collapses as loss grows; B-Libra keeps >80% utilization
// at 10% loss; C-Libra recovers CUBIC's spurious reductions via x_rl/x_prev
// and beats both CUBIC and Orca.
#include "bench/common.h"

int main() {
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 10", "stochastic-loss sweep: link utilization");

  const std::vector<double> losses = {0.0, 0.02, 0.04, 0.06, 0.08, 0.10};
  const std::vector<std::string> ccas = {"proteus", "bbr", "copa", "cubic",
                                         "orca", "c-libra", "b-libra"};

  Table t({"loss", "proteus", "bbr", "copa", "cubic", "orca", "c-libra",
           "b-libra"});
  for (double loss : losses) {
    std::vector<std::string> row{fmt_pct(loss, 0)};
    for (const std::string& name : ccas) {
      Scenario s = wired_scenario(48, msec(30));
      s.stochastic_loss = loss;
      s.duration = sec(30);
      Averaged a = average_runs(s, zoo().factory(name), /*runs=*/2);
      row.push_back(fmt(a.link_utilization, 3));
    }
    t.add_row(row);
  }
  section("Utilization vs stochastic loss "
          "(paper: cubic collapses, b-libra ~0.82 at 10%)");
  t.print();
  return 0;
}
