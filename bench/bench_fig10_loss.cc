// Fig. 10 — Impact of stochastic packet loss (0-10%) on link utilization.
// Paper shape: CUBIC collapses as loss grows; B-Libra keeps >80% utilization
// at 10% loss; C-Libra recovers CUBIC's spurious reductions via x_rl/x_prev
// and beats both CUBIC and Orca.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace libra;
  using namespace libra::benchx;
  parse_args(argc, argv);
  header("Fig. 10", "stochastic-loss sweep: link utilization");

  const std::vector<double> losses = {0.0, 0.02, 0.04, 0.06, 0.08, 0.10};
  const std::vector<std::string> ccas = {"proteus", "bbr", "copa", "cubic",
                                         "orca", "c-libra", "b-libra"};
  const int runs = 2;

  // One flat (loss x cca x seed) batch through run_many — same seeds as the
  // old per-point average_runs loop (base 1000), identical printed numbers.
  std::vector<RunRequest> batch;
  for (double loss : losses) {
    for (const std::string& name : ccas) {
      Scenario s = wired_scenario(48, msec(30));
      s.stochastic_loss = loss;
      s.duration = sec(30);
      for (int r = 0; r < runs; ++r) {
        batch.push_back(RunRequest::single(
            s, zoo().factory(name), 1000 + static_cast<std::uint64_t>(r)));
      }
    }
  }
  RunManyOptions opts;
  opts.on_progress = [](const RunProgress& p) {
    if (p.done % 10 == 0 || p.done == p.total)
      std::cerr << "fig10: " << p.done << "/" << p.total << " runs ("
                << static_cast<int>(p.completed_flow_seconds) << "/"
                << static_cast<int>(p.total_flow_seconds) << " flow-s)\n";
  };
  std::vector<RunSummary> results = run_many(batch, default_pool(), opts);

  Table t({"loss", "proteus", "bbr", "copa", "cubic", "orca", "c-libra",
           "b-libra"});
  std::size_t idx = 0;
  for (double loss : losses) {
    std::vector<std::string> row{fmt_pct(loss, 0)};
    for (std::size_t c = 0; c < ccas.size(); ++c) {
      double util = 0;
      for (int r = 0; r < runs; ++r, ++idx) util += results[idx].link_utilization;
      row.push_back(fmt(util / runs, 3));
    }
    t.add_row(row);
  }
  section("Utilization vs stochastic loss "
          "(paper: cubic collapses, b-libra ~0.82 at 10%)");
  t.print();
  return 0;
}
