// Fig. 2(a) — Throughput over the step-scenario (capacity changes every 10 s,
// 80 ms min RTT, 1 BDP buffer) for Proteus, Clean-slate Libra, Libra and Orca.
// The paper's point: Orca cannot fill the 5 Mbps level (outside its training
// span) and Proteus re-converges slowly; Libra tracks every level.
#include "bench/common.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 2a", "throughput timeline over the step scenario");

  Scenario s = step_scenario();
  const std::vector<std::string> ccas = {"proteus", "cl-libra", "c-libra", "orca"};

  Table t({"t(s)", "capacity", "proteus", "cl-libra", "c-libra", "orca"});
  std::vector<std::vector<double>> series;
  auto trace = s.make_trace(1);
  for (const std::string& name : ccas) {
    auto net = run_scenario(s, {{zoo().factory(name)}}, 1);
    series.push_back(net->flow(0).acked_bytes_series().to_rate_bins(sec(1), s.duration));
  }
  for (int sec_i = 0; sec_i < 50; ++sec_i) {
    std::vector<std::string> row{std::to_string(sec_i),
                                 fmt(to_mbps(trace->rate_at(sec(sec_i))), 0)};
    for (auto& ser : series)
      row.push_back(fmt(ser[static_cast<std::size_t>(sec_i)] / 1e6, 1));
    t.add_row(row);
  }
  section("Throughput (Mbit/s) per second; capacity column = ground truth");
  t.print();

  // Quantify convergence to the 5 Mbps level (10-20 s).
  section("Mean throughput on the 5 Mbps level, 13-20 s (paper: Libra ~5, Orca below)");
  Table q({"cca", "mean Mbps"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    double sum = 0;
    for (int k = 13; k < 20; ++k) sum += series[i][static_cast<std::size_t>(k)];
    q.add_row({ccas[i], fmt(sum / 7 / 1e6, 2)});
  }
  q.print();
  return 0;
}
