// Fig. 8 — Following a time-varying LTE (driving / user-movement) capacity.
// Prints per-second capacity and achieved throughput for C-Libra, B-Libra,
// Proteus, CUBIC, BBR and Orca plus a tracking-error summary. Paper shape:
// Libra follows the capacity; CUBIC overshoots after dips, Proteus lags.
#include "bench/common.h"

int main() {
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 8", "tracking a varying LTE capacity (driving profile)");

  Scenario s = lte_scenario(LteProfile::kDriving, "lte-driving");
  s.duration = sec(35);
  auto trace = s.make_trace(9);

  const std::vector<std::string> ccas = {"c-libra", "b-libra", "proteus",
                                         "cubic", "bbr", "orca"};
  std::vector<std::vector<double>> series;
  for (const std::string& name : ccas) {
    auto net = run_scenario(s, {{zoo().factory(name)}}, 9);
    series.push_back(net->flow(0).acked_bytes_series().to_rate_bins(sec(1), s.duration));
  }

  Table t({"t(s)", "capacity", "c-libra", "b-libra", "proteus", "cubic", "bbr",
           "orca"});
  for (int k = 0; k < 35; ++k) {
    std::vector<std::string> row{std::to_string(k),
                                 fmt(trace->average_rate(sec(k), sec(k + 1)) / 1e6, 1)};
    for (auto& ser : series) row.push_back(fmt(ser[static_cast<std::size_t>(k)] / 1e6, 1));
    t.add_row(row);
  }
  t.print();

  // RMS tracking error relative to capacity, over the steady window.
  Table err({"cca", "rms error (Mbps)", "mean util"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    double sq = 0, util = 0;
    int n = 0;
    for (int k = 5; k < 35; ++k) {
      double cap = trace->average_rate(sec(k), sec(k + 1)) / 1e6;
      double thr = series[i][static_cast<std::size_t>(k)] / 1e6;
      sq += (cap - thr) * (cap - thr);
      util += cap > 0 ? std::min(1.0, thr / cap) : 0;
      ++n;
    }
    err.add_row({ccas[i], fmt(std::sqrt(sq / n), 2), fmt(util / n, 3)});
  }
  section("Tracking summary (paper: Libra lowest error at high utilization)");
  err.print();
  return 0;
}
