// Fig. 8 — Following a time-varying LTE (driving / user-movement) capacity.
// Prints per-second capacity and achieved throughput for C-Libra, B-Libra,
// Proteus, CUBIC, BBR and Orca plus a tracking-error summary. Paper shape:
// Libra follows the capacity; CUBIC overshoots after dips, Proteus lags.
//
// Flags: --duration=SECS lengthens the run; --record=PREFIX streams each
// CCA's flight-recorder trace to PREFIX<cca>.jsonl (tools/trace_summarize
// reproduces the run-summary table below from those traces); --json[=PATH]
// emits the tables as JSON.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace libra;
  using namespace libra::benchx;
  BenchArgs args = parse_args(argc, argv);
  header("Fig. 8", "tracking a varying LTE capacity (driving profile)");

  Scenario s = lte_scenario(LteProfile::kDriving, "lte-driving");
  s.duration = args.duration_s > 0 ? seconds(args.duration_s) : sec(35);
  auto trace = s.make_trace(9);
  const int secs = static_cast<int>(s.duration / sec(1));
  const SimDuration warmup = sec(2);

  const std::vector<std::string> ccas = {"c-libra", "b-libra", "proteus",
                                         "cubic", "bbr", "orca"};
  std::vector<std::vector<double>> series;
  std::vector<RunSummary> summaries;
  for (const std::string& name : ccas) {
    ObsOptions obs;
    if (!args.record_prefix.empty()) {
      obs.record = true;
      obs.trace_path = args.record_prefix + name + ".jsonl";
    }
    auto net = run_scenario(s, {{zoo().factory(name)}}, 9, obs);
    series.push_back(net->flow(0).acked_bytes_series().to_rate_bins(sec(1), s.duration));
    summaries.push_back(summarize(*net, warmup, s.duration));
  }

  Table t({"t(s)", "capacity", "c-libra", "b-libra", "proteus", "cubic", "bbr",
           "orca"});
  for (int k = 0; k < secs; ++k) {
    std::vector<std::string> row{std::to_string(k),
                                 fmt(trace->average_rate(sec(k), sec(k + 1)) / 1e6, 1)};
    for (auto& ser : series) row.push_back(fmt(ser[static_cast<std::size_t>(k)] / 1e6, 1));
    t.add_row(row);
  }
  t.print();

  // RMS tracking error relative to capacity, over the steady window.
  Table err({"cca", "rms error (Mbps)", "mean util"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    double sq = 0, util = 0;
    int n = 0;
    for (int k = 5; k < secs; ++k) {
      double cap = trace->average_rate(sec(k), sec(k + 1)) / 1e6;
      double thr = series[i][static_cast<std::size_t>(k)] / 1e6;
      sq += (cap - thr) * (cap - thr);
      util += cap > 0 ? std::min(1.0, thr / cap) : 0;
      ++n;
    }
    err.add_row({ccas[i], fmt(std::sqrt(sq / n), 2), fmt(util / n, 3)});
  }
  section("Tracking summary (paper: Libra lowest error at high utilization)");
  err.print();

  // Per-run summary over [warmup, duration) — the same window and ACK stream
  // a recorded trace holds, so `trace_summarize --warmup=2` on a --record
  // file reproduces these numbers to within rounding.
  Table sum({"cca", "throughput (Mbps)", "avg delay (ms)", "loss"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    sum.add_row({ccas[i], fmt(summaries[i].total_throughput_bps / 1e6, 2),
                 fmt(summaries[i].avg_delay_ms, 1),
                 fmt_pct(summaries[i].flows[0].loss_rate, 2)});
  }
  section("Run summary over [2s, end)");
  sum.print();
  return 0;
}
