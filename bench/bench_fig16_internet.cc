// Fig. 16 — "Live Internet" performance, reproduced over synthetic WAN path
// profiles standing in for the EC2 measurements (DESIGN.md substitutions):
// inter-continental (180 ms, 1.2% stochastic loss, capacity jitter) and
// intra-continental (40 ms, 0.2% loss). Throughput and delay are normalized
// as in the paper. Paper shape: CUBIC and Orca lose substantial throughput
// inter-continentally; Libra's Th/La variants trace a preference frontier.
#include "bench/common.h"

#include "core/factory.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 16", "synthetic-WAN (live-Internet stand-in) performance");

  auto libra_variant = [&](bool bbr_variant, UtilityParams up) -> CcaFactory {
    auto brain = zoo().brain("libra-rl");
    return [=]() -> std::unique_ptr<CongestionControl> {
      LibraParams p = bbr_variant ? b_libra_params() : c_libra_params();
      p.utility = up;
      return bbr_variant ? make_b_libra(brain, false, p)
                         : make_c_libra(brain, false, p);
    };
  };

  struct Entry {
    std::string name;
    CcaFactory factory;
  };
  std::vector<Entry> entries;
  for (const std::string& n : {"proteus", "bbr", "cubic", "orca"})
    entries.push_back({n, zoo().factory(n)});
  entries.push_back({"c-libra(th)", libra_variant(false, throughput_oriented(1))});
  entries.push_back({"c-libra(la)", libra_variant(false, latency_oriented(1))});
  entries.push_back({"b-libra", libra_variant(true, UtilityParams{})});

  for (Scenario s : {wan_inter_continental(), wan_intra_continental()}) {
    s.duration = sec(40);
    std::vector<Averaged> results;
    double max_thr = 0, min_delay = 1e18;
    for (auto& e : entries) {
      Averaged a = average_runs(s, e.factory, /*runs=*/2);
      max_thr = std::max(max_thr, a.throughput_bps);
      min_delay = std::min(min_delay, a.avg_delay_ms);
      results.push_back(a);
    }
    Table t({"cca", "norm. throughput", "norm. delay", "loss"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
      t.add_row({entries[i].name, fmt(results[i].throughput_bps / max_thr, 3),
                 fmt(results[i].avg_delay_ms / min_delay, 3),
                 fmt_pct(results[i].loss_rate, 1)});
    }
    section(s.name + " (paper: cubic/orca drop throughput inter-continental; "
                     "libra variants span the frontier)");
    t.print();
  }
  return 0;
}
