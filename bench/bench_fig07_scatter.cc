// Fig. 7 — Average throughput vs average delay across 4 wired and 4 cellular
// traces for the full CCA field. Paper shape: C-Libra / B-Libra sit in the
// Pareto (top-right: high normalized throughput, low delay) region; pure
// learned CCAs are scattered; Clean-Slate and Modified RL trail the real
// Libras.
#include "bench/common.h"

namespace {

void run_set(const std::vector<libra::Scenario>& set, const std::string& label) {
  using namespace libra;
  using namespace libra::benchx;

  const std::vector<std::string> ccas = {
      "proteus", "vivace",  "aurora",  "bbr",     "copa",        "cubic",
      "sprout",  "remy",    "indigo",  "orca",    "modified-rl", "cl-libra",
      "c-libra", "b-libra"};

  // Normalize throughput by per-scenario capacity, as the paper does.
  Table t({"cca", "norm. throughput", "avg delay (ms)"});
  for (const std::string& name : ccas) {
    double util_sum = 0, delay_sum = 0;
    for (const Scenario& base : set) {
      Scenario s = base;
      s.duration = sec(40);
      Averaged a = average_runs(s, zoo().factory(name), /*runs=*/2);
      util_sum += a.link_utilization;
      delay_sum += a.avg_delay_ms;
    }
    t.add_row({name, fmt(util_sum / set.size(), 3), fmt(delay_sum / set.size(), 1)});
  }
  section(label + " (paper: c-libra/b-libra Pareto-dominant region)");
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 7", "throughput/delay scatter over wired and cellular sets");
  run_set(wired_set(), "Four wired traces (12/24/48/96 Mbps)");
  run_set(cellular_set(), "Four cellular traces");
  return 0;
}
