// Tab. 4 — Absolute reward r vs difference reward delta-r. Paper: delta-r
// keeps throughput while sharply cutting latency and loss; fairness improves
// but stays limited for a pure RL CCA (which motivates the combination).
#include "bench/common.h"

#include "harness/trainer.h"
#include "learned/rl_cca.h"
#include "stats/fairness.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Tab. 4", "absolute reward r vs difference reward delta-r");

  TrainEnvRanges env;
  env.capacity_lo_mbps = env.capacity_hi_mbps = 100;
  env.rtt_lo = env.rtt_hi = msec(100);
  env.buffer_lo = env.buffer_hi = 100e6 / 8 * 0.1;
  env.loss_lo = env.loss_hi = 0;
  env.episode_length = sec(5);
  constexpr int kEpisodes = 260;
  constexpr int kTail = 40;

  Table t({"setting", "throughput", "latency", "loss rate", "fairness"});
  for (RewardMode mode : {RewardMode::kAbsolute, RewardMode::kDelta}) {
    RlCcaConfig cfg;
    cfg.reward_mode = mode;
    auto brain = std::make_shared<RlBrain>(
        make_ppo_config(cfg, mode == RewardMode::kDelta ? 71 : 72),
        feature_frame_size(cfg.features));
    Trainer trainer(env, 47);
    auto stats = trainer.train(
        [&] {
          RlCcaConfig c = cfg;
          c.training = true;
          return std::make_unique<RlCca>(c, brain);
        },
        kEpisodes);
    double thr = 0, lat = 0, loss = 0;
    for (int k = kEpisodes - kTail; k < kEpisodes; ++k) {
      thr += stats[static_cast<std::size_t>(k)].throughput_bps;
      lat += stats[static_cast<std::size_t>(k)].avg_rtt_ms;
      loss += stats[static_cast<std::size_t>(k)].loss_rate;
    }

    // Fairness: two trained flows share a 100 Mbps bottleneck.
    Scenario share = wired_scenario(100, msec(50), 100e6 / 8 * 0.05);
    share.duration = sec(30);
    auto factory = [&]() -> std::unique_ptr<CongestionControl> {
      RlCcaConfig c = cfg;
      c.training = false;
      return std::make_unique<RlCca>(c, brain);
    };
    auto net = run_scenario(share, {{factory}, {factory}}, 3);
    double a = net->flow(0).throughput_in(sec(10), sec(30));
    double b = net->flow(1).throughput_in(sec(10), sec(30));

    t.add_row({mode == RewardMode::kDelta ? "delta-r" : "r",
               fmt(thr / kTail / 1e6, 1) + " Mbps", fmt(lat / kTail, 0) + " ms",
               fmt_pct(loss / kTail, 2), fmt(jain_index({a, b}), 3)});
  }
  section("Paper: delta-r ~same throughput, much lower latency/loss, "
          "fairness better but still limited");
  t.print();
  return 0;
}
