// Fig. 2(c) — Normalized CPU and memory overhead per CCA while driving a
// 60-second cellular transfer. CPU = wall-clock time spent inside the CCA's
// decision callbacks per simulated second (the analogue of the paper's iperf
// CPU-utilization measurement); memory = the algorithm's resident state.
#include "bench/common.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 2c", "normalized CPU / memory overhead per CCA");

  Scenario s = lte_scenario(LteProfile::kStationary, "lte-stationary");
  s.duration = sec(60);

  const std::vector<std::string> ccas = {"cubic", "bbr",  "c-libra", "orca",
                                         "indigo", "copa", "proteus"};
  std::vector<double> cpu(ccas.size()), mem(ccas.size());
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    auto meter = std::make_shared<OverheadMeter>();
    CcaFactory inner = wide_zoo().factory(ccas[i]);
    std::int64_t mem_bytes = 0;
    auto net = run_scenario(
        s,
        {{[&] {
          auto cca = inner();
          mem_bytes = cca->memory_bytes();
          return std::make_unique<MeteredCca>(std::move(cca), meter);
        }}},
        1);
    cpu[i] = meter->cpu_per_sim_second(s.duration);
    mem[i] = static_cast<double>(mem_bytes);
  }

  double cpu_max = *std::max_element(cpu.begin(), cpu.end());
  double mem_max = *std::max_element(mem.begin(), mem.end());
  Table t({"cca", "cpu (norm)", "mem (norm)", "cpu s/sim-s", "mem bytes"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    t.add_row({ccas[i], fmt(cpu[i] / cpu_max, 3), fmt(mem[i] / mem_max, 3),
               fmt(cpu[i], 6), fmt(mem[i], 0)});
  }
  section("Paper shape: learning-based CCAs dominate; Libra near its classic");
  t.print();
  return 0;
}
