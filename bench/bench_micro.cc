// Microbenchmarks (google-benchmark): raw costs of the pieces the simulator
// and controllers lean on — event-loop throughput, per-ACK costs of each CCA
// family, PPO inference and update, utility evaluation, LTE trace synthesis.
#include <benchmark/benchmark.h>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "core/factory.h"
#include "harness/parallel.h"
#include "harness/scenario.h"
#include "learned/libra_rl.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "stats/utility_fn.h"
#include "trace/lte_model.h"
#include "util/thread_pool.h"

namespace libra {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) q.schedule_at(i, [&sink] { ++sink; });
    q.run_until(2000);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueLargeCapture(benchmark::State& state) {
  // A Packet-sized capture: the closure the ACK path schedules per delivered
  // packet. With std::function this was one heap allocation per event.
  struct FakeAckContext {
    Packet pkt;
    void* owner;
    std::size_t idx;
  };
  for (auto _ : state) {
    EventQueue q;
    long sink = 0;
    for (int i = 0; i < 1000; ++i) {
      FakeAckContext ctx{{}, &sink, static_cast<std::size_t>(i)};
      ctx.pkt.seq = static_cast<std::uint64_t>(i);
      q.schedule_at(i, [ctx, &sink] { sink += static_cast<long>(ctx.pkt.seq); });
    }
    q.run_until(2000);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueLargeCapture);

void BM_SimulatedSecondCubic(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    LinkConfig cfg;
    cfg.capacity = std::make_shared<ConstantTrace>(mbps(static_cast<double>(state.range(0))));
    cfg.buffer_bytes = 150'000;
    cfg.propagation_delay = msec(15);
    Network net(std::move(cfg));
    net.add_flow(std::make_unique<Cubic>());
    net.run_until(sec(1));
    events += net.events().processed();
    benchmark::DoNotOptimize(net.flow(0).metrics().packets_acked);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedSecondCubic)->Arg(10)->Arg(100);

void BM_SimulatedSecondCubicRecorded(benchmark::State& state) {
  // Same run with the flight recorder on (black-box ring, no sink): the delta
  // vs BM_SimulatedSecondCubic is the cost of recording; the disabled path's
  // zero-cost claim is asserted separately by obs_test.
  std::uint64_t events = 0;
  for (auto _ : state) {
    LinkConfig cfg;
    cfg.capacity = std::make_shared<ConstantTrace>(mbps(static_cast<double>(state.range(0))));
    cfg.buffer_bytes = 150'000;
    cfg.propagation_delay = msec(15);
    Network net(std::move(cfg));
    net.recorder().enable();
    net.add_flow(std::make_unique<Cubic>());
    net.run_until(sec(1));
    events += net.events().processed();
    benchmark::DoNotOptimize(net.recorder().recorded());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedSecondCubicRecorded)->Arg(10)->Arg(100);

// --- Parallel experiment engine: 12-run seed sweep, serial vs run_many ------

Scenario sweep_scenario() {
  Scenario s = wired_scenario(24);
  s.duration = sec(4);
  return s;
}

constexpr int kSweepRuns = 12;

void BM_SeedSweepSerial(benchmark::State& state) {
  Scenario s = sweep_scenario();
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };
  for (auto _ : state) {
    double acc = 0;
    for (int r = 0; r < kSweepRuns; ++r) {
      acc += run_single(s, factory, 1000 + static_cast<std::uint64_t>(r))
                 .link_utilization;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kSweepRuns);
}
BENCHMARK(BM_SeedSweepSerial)->Unit(benchmark::kMillisecond);

void BM_SeedSweepRunMany(benchmark::State& state) {
  Scenario s = sweep_scenario();
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<RunRequest> reqs;
  for (int r = 0; r < kSweepRuns; ++r) {
    reqs.push_back(RunRequest::single(s, factory, 1000 + static_cast<std::uint64_t>(r)));
  }
  for (auto _ : state) {
    std::vector<RunSummary> out = run_many(reqs, pool);
    benchmark::DoNotOptimize(out.front().link_utilization);
  }
  state.SetItemsProcessed(state.iterations() * kSweepRuns);
  // runs/sec-per-core = items_per_second / threads, for cross-machine compare.
  state.counters["threads"] = static_cast<double>(pool.thread_count());
}
BENCHMARK(BM_SeedSweepRunMany)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CubicOnAck(benchmark::State& state) {
  Cubic cc;
  AckEvent ev{msec(100), 1, msec(50), msec(50), 1500, 0, mbps(10), msec(50)};
  for (auto _ : state) {
    cc.on_ack(ev);
    benchmark::DoNotOptimize(cc.cwnd_bytes());
  }
}
BENCHMARK(BM_CubicOnAck);

void BM_BbrOnAck(benchmark::State& state) {
  Bbr cc;
  AckEvent ev{msec(100), 1, msec(50), msec(50), 1500, 15000, mbps(10), msec(50)};
  for (auto _ : state) {
    cc.on_ack(ev);
    benchmark::DoNotOptimize(cc.pacing_rate());
  }
}
BENCHMARK(BM_BbrOnAck);

void BM_PpoInference(benchmark::State& state) {
  RlCcaConfig cfg = libra_rl_config();
  auto hidden = static_cast<std::size_t>(state.range(0));
  auto brain = std::make_shared<RlBrain>(
      make_ppo_config(cfg, 3, {hidden, hidden}),
      feature_frame_size(cfg.features));
  Vector s(brain->agent.config().state_dim, 0.1);
  for (auto _ : state) benchmark::DoNotOptimize(brain->agent.act_greedy(s));
}
BENCHMARK(BM_PpoInference)->Arg(64)->Arg(128)->Arg(512);

void BM_PpoUpdate(benchmark::State& state) {
  RlCcaConfig cfg = libra_rl_config();
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 3, {64, 64}),
                                         feature_frame_size(cfg.features));
  Vector s(brain->agent.config().state_dim, 0.1);
  for (auto _ : state) {
    // Fill one horizon and trigger the update on the next act().
    for (std::size_t i = 0; i <= brain->agent.config().horizon; ++i) {
      brain->agent.act(s);
      brain->agent.give_reward(0.1);
    }
    benchmark::DoNotOptimize(brain->agent.update_count());
  }
}
BENCHMARK(BM_PpoUpdate);

void BM_PpoUpdateOnly(benchmark::State& state) {
  // Isolates Ppo::update (the batched training path): the rollout buffer is
  // refilled with the timer paused, so only the update itself is measured.
  RlCcaConfig cfg = libra_rl_config();
  PpoConfig ppo = make_ppo_config(cfg, 3, {64, 64});
  ppo.collect_only = true;
  PpoAgent agent(ppo);
  Rng rng(5);
  Vector s(ppo.state_dim);
  for (auto _ : state) {
    state.PauseTiming();
    while (agent.buffered_transitions() < ppo.horizon) {
      for (double& v : s) v = rng.uniform(-1.0, 1.0);
      agent.give_reward(-std::abs(agent.act(s) - s[0]));
    }
    state.ResumeTiming();
    agent.flush_update(0.0);
  }
  // Minibatches per update: epochs * ceil(horizon / minibatch).
  state.SetItemsProcessed(
      state.iterations() * ppo.epochs *
      static_cast<std::int64_t>((ppo.horizon + ppo.minibatch - 1) / ppo.minibatch));
}
BENCHMARK(BM_PpoUpdateOnly);

void BM_UtilityEval(benchmark::State& state) {
  UtilityParams p;
  double x = 48.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility(p, x, 0.01, 0.001));
    x += 1e-9;
  }
}
BENCHMARK(BM_UtilityEval);

void BM_LteTraceSynthesis(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto t = make_lte_trace(LteProfile::kDriving, sec(60), seed++);
    benchmark::DoNotOptimize(t->rate_at(sec(30)));
  }
}
BENCHMARK(BM_LteTraceSynthesis);

}  // namespace
}  // namespace libra

BENCHMARK_MAIN();
