// Fig. 19 + Tab. 7 — Parameter sensitivity of C-Libra: stage-duration
// combinations [exploration, EI, exploitation] in RTTs, and the switching
// threshold th1 (0.1x-0.4x base rate), on the wired and cellular sets.
// Paper shape: longer stages cost ~4% utilization on cellular but are fine
// on wired; EI 0.5->1 RTT hurts; utilization/delay vary little with th1.
#include "bench/common.h"

#include "core/factory.h"

namespace {
using namespace libra;
using namespace libra::benchx;

CcaFactory c_libra_with(LibraParams p) {
  auto brain = zoo().brain("libra-rl");
  return [p, brain] { return make_c_libra(brain, false, p); };
}

struct Avg {
  double util = 0, delay = 0;
};

Avg over_set(const std::vector<Scenario>& set, const CcaFactory& factory) {
  Avg avg;
  for (const Scenario& base : set) {
    Scenario s = base;
    s.duration = sec(30);
    Averaged a = average_runs(s, factory, /*runs=*/2);
    avg.util += a.link_utilization;
    avg.delay += a.avg_delay_ms;
  }
  avg.util /= set.size();
  avg.delay /= set.size();
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  header("Fig. 19 + Tab. 7", "parameter sensitivity of C-Libra");

  // Fig. 19: stage-duration combinations [k_explore, EI, k_exploit] in RTTs.
  struct Durations {
    double explore, ei, exploit;
  };
  const std::vector<Durations> combos = {{1, 0.5, 1}, {1, 1, 1},   {2, 0.5, 2},
                                         {2, 1, 2},   {3, 0.5, 3}, {3, 1, 3}};
  Table fig({"durations [k,EI,k]", "wired util", "wired delay", "cell util",
             "cell delay"});
  for (const Durations& d : combos) {
    LibraParams p = c_libra_params();
    p.exploration_rtts = d.explore;
    p.ei_rtts = d.ei;
    p.exploitation_rtts = d.exploit;
    Avg wired = over_set(wired_set(), c_libra_with(p));
    Avg cell = over_set(cellular_set(), c_libra_with(p));
    fig.add_row({"[" + fmt(d.explore, 0) + "," + fmt(d.ei, 1) + "," +
                     fmt(d.exploit, 0) + "]",
                 fmt(wired.util, 3), fmt(wired.delay, 1), fmt(cell.util, 3),
                 fmt(cell.delay, 1)});
  }
  section("Fig. 19 — stage durations (paper: longer stages cost ~4% cellular "
          "utilization; wired tolerant)");
  fig.print();

  // Tab. 7: switching threshold th1.
  Table tab({"config", "link util", "avg delay (ms)"});
  for (double th : {0.1, 0.2, 0.3, 0.4}) {
    LibraParams p = c_libra_params();
    p.switch_threshold = th;
    Avg wired = over_set(wired_set(), c_libra_with(p));
    tab.add_row({"wired-" + fmt(th, 1) + "x", fmt(wired.util, 3),
                 fmt(wired.delay, 1)});
  }
  for (double th : {0.1, 0.2, 0.3, 0.4}) {
    LibraParams p = c_libra_params();
    p.switch_threshold = th;
    Avg cell = over_set(cellular_set(), c_libra_with(p));
    tab.add_row({"cellular-" + fmt(th, 1) + "x", fmt(cell.util, 3),
                 fmt(cell.delay, 1)});
  }
  section("Tab. 7 — switching threshold (paper: low sensitivity)");
  tab.print();
  return 0;
}
