// Tab. 2 — Performance when adding/removing Tab. 1 states relative to the
// baseline combination {(iv),(vi),(vii),(viii),(ix)}. The paper's headline:
// removing (vi) (raw RTT pair) is the best single edit — it is Libra's final
// state space.
#include "bench/common.h"

#include "harness/trainer.h"
#include "learned/rl_cca.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Tab. 2", "state-space add/remove deltas vs the baseline");

  using SF = StateFeature;
  struct Variant {
    std::string label;
    std::vector<SF> features;
  };
  const std::vector<SF> baseline = baseline_state_space();
  const std::vector<Variant> variants = {
      {"baseline", baseline},
      {"-(vi)", libra_state_space()},
      {"+(i)(ii)", {SF::kAckGapEwma, SF::kSendGapEwma, SF::kSendRate,
                    SF::kRttAndMinRtt, SF::kLossRate, SF::kRttGradient,
                    SF::kDeliveryRate}},
      {"+(i)(ii)(iii)", {SF::kAckGapEwma, SF::kSendGapEwma, SF::kRttRatio,
                         SF::kSendRate, SF::kRttAndMinRtt, SF::kLossRate,
                         SF::kRttGradient, SF::kDeliveryRate}},
      {"+(ii)(iii)(v)-(iv)", {SF::kSendGapEwma, SF::kRttRatio, SF::kSentAckedRatio,
                              SF::kRttAndMinRtt, SF::kLossRate, SF::kRttGradient,
                              SF::kDeliveryRate}},
      {"+(iii)", {SF::kRttRatio, SF::kSendRate, SF::kRttAndMinRtt, SF::kLossRate,
                  SF::kRttGradient, SF::kDeliveryRate}},
      {"-(ix)", {SF::kSendRate, SF::kRttAndMinRtt, SF::kLossRate, SF::kRttGradient}},
  };

  TrainEnvRanges env;
  env.capacity_lo_mbps = env.capacity_hi_mbps = 100;
  env.rtt_lo = env.rtt_hi = msec(100);
  env.buffer_lo = env.buffer_hi = 100e6 / 8 * 0.1;
  env.loss_lo = env.loss_hi = 0;
  env.episode_length = sec(5);
  constexpr int kEpisodes = 200;
  constexpr int kTail = 40;  // evaluate on the final N episodes

  struct Result {
    double reward, thr, lat, loss;
  };
  std::vector<Result> results;
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    RlCcaConfig cfg;
    cfg.features = variants[vi].features;
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 91 + vi),
                                           feature_frame_size(cfg.features));
    Trainer trainer(env, 13);
    auto stats = trainer.train(
        [&] {
          RlCcaConfig c = cfg;
          c.training = true;
          return std::make_unique<RlCca>(c, brain);
        },
        kEpisodes);
    Result r{0, 0, 0, 0};
    for (int k = kEpisodes - kTail; k < kEpisodes; ++k) {
      const auto& e = stats[static_cast<std::size_t>(k)];
      r.reward += e.reward;
      r.thr += e.throughput_bps;
      r.lat += e.avg_rtt_ms;
      r.loss += e.loss_rate;
    }
    r.reward /= kTail;
    r.thr /= kTail;
    r.lat /= kTail;
    r.loss /= kTail;
    results.push_back(r);
  }

  const Result& base = results[0];
  auto pct = [](double v, double b) {
    if (std::abs(b) < 1e-12) return std::string("n/a");
    return fmt((v - b) / std::abs(b) * 100.0, 1) + "%";
  };
  Table t({"state", "reward", "throughput", "latency", "loss"});
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Result& r = results[vi];
    if (vi == 0) {
      t.add_row({"baseline", "0%", "0%", "0%", "0%"});
    } else {
      t.add_row({variants[vi].label, pct(r.reward, base.reward),
                 pct(r.thr, base.thr), pct(r.lat, base.lat), pct(r.loss, base.loss)});
    }
  }
  section("Deltas vs baseline over the final training window "
          "(paper: -(vi) best reward; -(ix) worst)");
  t.print();
  return 0;
}
