// Fig. 14 — Intra-protocol fairness: two flows of the same CCA share the
// bottleneck. Paper shape: Libra ~99% Jain; pure learned CCAs visibly unfair.
#include "bench/common.h"

#include "stats/fairness.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 14", "intra-protocol fairness (two same-CCA flows)");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(60);

  const std::vector<std::string> ccas = {"cubic",   "bbr",  "copa",
                                         "aurora",  "proteus", "modified-rl",
                                         "orca",    "c-libra", "b-libra"};
  Table t({"cca", "flow1 share", "flow2 share", "jain"});
  for (const std::string& name : ccas) {
    double s1 = 0, s2 = 0, jain = 0;
    constexpr int kRuns = 2;
    for (int r = 0; r < kRuns; ++r) {
      CcaFactory factory = zoo().factory(name);
      auto net = run_scenario(s, {{factory}, {factory}},
                              300 + static_cast<std::uint64_t>(r));
      double a = net->flow(0).throughput_in(sec(20), sec(60));
      double b = net->flow(1).throughput_in(sec(20), sec(60));
      s1 += a / std::max(1.0, a + b);
      s2 += b / std::max(1.0, a + b);
      jain += jain_index({a, b});
    }
    t.add_row({name, fmt(s1 / kRuns, 3), fmt(s2 / kRuns, 3), fmt(jain / kRuns, 3)});
  }
  section("Paper: libra ~0.99 jain; pure learned CCAs poor");
  t.print();
  return 0;
}
