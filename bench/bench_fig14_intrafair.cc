// Fig. 14 — Intra-protocol fairness: two flows of the same CCA share the
// bottleneck. Paper shape: Libra ~99% Jain; pure learned CCAs visibly unfair.
//
// One run_many batch over (cca x seed); see bench_fig13_interfair.cc for the
// batching rationale.
#include "bench/common.h"

#include "stats/fairness.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 14", "intra-protocol fairness (two same-CCA flows)");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(60);

  const std::vector<std::string> ccas = {"cubic",   "bbr",  "copa",
                                         "aurora",  "proteus", "modified-rl",
                                         "orca",    "c-libra", "b-libra"};
  constexpr int kRuns = 2;

  std::vector<RunRequest> reqs;
  for (const std::string& name : ccas) {
    CcaFactory factory = zoo().factory(name);
    for (int r = 0; r < kRuns; ++r) {
      RunRequest req;
      req.scenario = s;
      req.flows = {{factory}, {factory}};
      req.seed = 300 + static_cast<std::uint64_t>(r);
      req.warmup = sec(20);
      reqs.push_back(std::move(req));
    }
  }
  std::vector<RunSummary> runs = run_many(reqs, default_pool());

  Table t({"cca", "flow1 share", "flow2 share", "jain"});
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    double s1 = 0, s2 = 0, jain = 0;
    for (int r = 0; r < kRuns; ++r) {
      const RunSummary& sum = runs[ci * kRuns + static_cast<std::size_t>(r)];
      double a = sum.flows[0].throughput_bps;
      double b = sum.flows[1].throughput_bps;
      s1 += a / std::max(1.0, a + b);
      s2 += b / std::max(1.0, a + b);
      jain += jain_index({a, b});
    }
    t.add_row({ccas[ci], fmt(s1 / kRuns, 3), fmt(s2 / kRuns, 3), fmt(jain / kRuns, 3)});
  }
  section("Paper: libra ~0.99 jain; pure learned CCAs poor");
  t.print();
  return 0;
}
