// Fig. 5 — Reward training curves for the state-space choices of prior
// learned CCAs (Tab. 1) vs Libra's optimized combination, trained in the
// paper's default RL environment (100 Mbps, 100 ms RTT, 1 BDP buffer).
// Paper shape: DRL-CC and PCC state spaces lead the baselines; Libra's
// searched combination ends highest.
#include "bench/common.h"

#include "harness/trainer.h"
#include "learned/rl_cca.h"

namespace {
using namespace libra;

RlCcaConfig with_features(std::vector<StateFeature> f, const std::string& name) {
  RlCcaConfig cfg;
  cfg.features = std::move(f);
  cfg.name = name;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 5", "reward curves per state-space choice (paper Tab. 1 rows)");

  // State spaces as published (Tab. 1 citations per row).
  struct Candidate {
    std::string name;
    std::vector<StateFeature> features;
  };
  const std::vector<Candidate> candidates = {
      {"aurora", {StateFeature::kRttGradient, StateFeature::kRttRatio,
                  StateFeature::kSentAckedRatio}},
      {"rl-tcp", {StateFeature::kAckGapEwma, StateFeature::kSendGapEwma,
                  StateFeature::kRttRatio, StateFeature::kSendRate}},
      {"pcc", {StateFeature::kSendRate, StateFeature::kLossRate,
               StateFeature::kRttGradient}},
      {"remy", {StateFeature::kAckGapEwma, StateFeature::kSendGapEwma,
                StateFeature::kRttRatio}},
      {"drl-cc", {StateFeature::kSendGapEwma, StateFeature::kSendRate,
                  StateFeature::kRttAndMinRtt, StateFeature::kDeliveryRate}},
      {"libra", libra_state_space()},
      {"orca", {StateFeature::kSendGapEwma, StateFeature::kSendRate,
                StateFeature::kRttAndMinRtt, StateFeature::kLossRate,
                StateFeature::kDeliveryRate}},
  };

  // Paper's default RL experiment environment (Sec. 4.2).
  TrainEnvRanges env;
  env.capacity_lo_mbps = env.capacity_hi_mbps = 100;
  env.rtt_lo = env.rtt_hi = msec(100);
  env.buffer_lo = env.buffer_hi = 100e6 / 8 * 0.1;  // 1 BDP
  env.loss_lo = env.loss_hi = 0;
  env.episode_length = sec(5);

  constexpr int kEpisodes = 240;
  constexpr int kBucket = 30;

  Table t({"episodes", "aurora", "rl-tcp", "pcc", "remy", "drl-cc", "libra", "orca"});
  std::vector<std::vector<double>> curves;
  std::vector<double> final_avg(candidates.size());
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    RlCcaConfig cfg = with_features(candidates[ci].features, candidates[ci].name);
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 31 + ci),
                                           feature_frame_size(cfg.features));
    Trainer trainer(env, 77);
    auto stats = trainer.train(
        [&] {
          RlCcaConfig c = cfg;
          c.training = true;
          return std::make_unique<RlCca>(c, brain);
        },
        kEpisodes);
    // Internal training rewards are not comparable across reward designs, so
    // the curves report a uniform episode quality score in the spirit of the
    // paper's reward axis: utilization minus excess-delay and loss penalties
    // (env min RTT is the fixed 100 ms).
    std::vector<double> curve;
    for (int b = 0; b < kEpisodes / kBucket; ++b) {
      double sum = 0;
      for (int k = 0; k < kBucket; ++k) {
        const EpisodeStats& e = stats[static_cast<std::size_t>(b * kBucket + k)];
        sum += e.link_utilization -
               0.5 * std::max(0.0, e.avg_rtt_ms / 100.0 - 1.0) -
               10.0 * e.loss_rate;
      }
      curve.push_back(sum / kBucket);
    }
    final_avg[ci] = curve.back();
    curves.push_back(std::move(curve));
  }
  for (std::size_t b = 0; b < curves[0].size(); ++b) {
    std::vector<std::string> row{std::to_string((b + 1) * kBucket)};
    for (auto& c : curves) row.push_back(fmt(c[b], 2));
    t.add_row(row);
  }
  section("Bucketed episode quality score "
          "(paper: libra's combination ends highest)");
  t.print();
  return 0;
}
