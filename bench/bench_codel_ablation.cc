// Ablation (Sec. 2 claim) — "it is not feasible to maintain a low queuing
// delay for CUBIC without the involvement of AQM schemes (e.g., CoDel) which
// requires changes in the network devices". Compares:
//   * CUBIC on a deep droptail buffer         (bufferbloat)
//   * CUBIC behind an in-network CoDel queue  (low delay, needs device support)
//   * C-Libra on the same deep droptail buffer (low delay, endpoint-only)
#include "bench/common.h"

#include "classic/cubic.h"
#include "sim/codel_network.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("CoDel ablation", "endpoint (Libra) vs in-network (CoDel) delay control");

  constexpr double kRate = 48;
  constexpr SimDuration kHorizon = sec(30);

  Table t({"configuration", "throughput", "avg delay", "needs AQM device"});

  // CUBIC on a deep droptail buffer.
  {
    Scenario s = wired_scenario(kRate, msec(30), 600'000);
    s.duration = kHorizon;
    RunSummary sum = run_single(s, zoo().factory("cubic"), 1);
    t.add_row({"cubic + droptail(600KB)", fmt(sum.total_throughput_bps / 1e6, 1) + " Mbps",
               fmt(sum.avg_delay_ms, 1) + " ms", "no"});
  }

  // CUBIC behind CoDel.
  {
    CodelConfig cfg;
    cfg.capacity = std::make_shared<ConstantTrace>(mbps(kRate));
    cfg.buffer_bytes = 600'000;
    cfg.propagation_delay = msec(15);
    CodelNetwork net(cfg);
    net.add_flow(std::make_unique<Cubic>());
    net.run_until(kHorizon);
    double thr = net.flow(0).throughput_in(sec(2), kHorizon);
    double delay = net.flow(0).mean_rtt_in(sec(2), kHorizon);
    t.add_row({"cubic + codel", fmt(thr / 1e6, 1) + " Mbps",
               fmt(delay, 1) + " ms", "YES"});
  }

  // C-Libra on the same deep droptail buffer.
  {
    Scenario s = wired_scenario(kRate, msec(30), 600'000);
    s.duration = kHorizon;
    RunSummary sum = run_single(s, zoo().factory("c-libra"), 1);
    t.add_row({"c-libra + droptail(600KB)", fmt(sum.total_throughput_bps / 1e6, 1) + " Mbps",
               fmt(sum.avg_delay_ms, 1) + " ms", "no"});
  }

  section("Libra's pitch: CoDel-class delay without touching the network");
  t.print();
  return 0;
}
