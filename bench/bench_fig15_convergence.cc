// Fig. 15 + Tab. 5 — Convergence: three same-CCA flows start 5 s apart on a
// 48 Mbps / 100 ms / 1 BDP link. Prints each flow's throughput timeline and
// the Tab. 5 metrics for the third flow (convergence time to a stable
// +/-25% band held 5 s, stddev after convergence, mean after convergence).
//
// Needs more than a RunSummary (full per-flow time series), so each
// RunRequest extracts its figures through the `inspect` hook — run on the
// worker thread against the completed Network, into a slot only that request
// touches — letting the per-CCA runs still fan across the pool.
#include "bench/common.h"

#include "stats/convergence.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 15 + Tab. 5", "three staggered flows: convergence");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(50);

  const std::vector<std::string> ccas = {"bbr",     "cubic",  "modified-rl",
                                         "indigo",  "proteus", "orca",
                                         "c-libra", "b-libra"};

  struct ConvFigures {
    std::vector<std::vector<double>> bins;  // 2 s timeline per flow
    ConvergenceResult third;                // Tab. 5 metrics, flow 3
  };
  std::vector<ConvFigures> figures(ccas.size());

  std::vector<RunRequest> reqs;
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    CcaFactory factory = zoo().factory(ccas[ci]);
    RunRequest req;
    req.scenario = s;
    req.flows = {{factory, 0}, {factory, sec(5)}, {factory, sec(10)}};
    req.seed = 17;
    ConvFigures* out = &figures[ci];
    req.inspect = [out, &s](const Network& net) {
      for (int f = 0; f < 3; ++f) {
        out->bins.push_back(
            net.flow(f).acked_bytes_series().to_rate_bins(sec(2), s.duration));
      }
      // Tab. 5 metrics on the third flow, from its entry at 10 s.
      TimeSeries shifted;
      for (auto& pt : net.flow(2).acked_bytes_series().points())
        shifted.add(pt.time - sec(10), pt.value);
      auto fine = shifted.to_rate_bins(msec(500), sec(40));
      out->third = analyze_convergence(fine, msec(500));
    };
    reqs.push_back(std::move(req));
  }
  run_many(reqs, default_pool());

  Table summary({"cca", "conv. time", "thr stddev (Mbps)", "avg thr (Mbps)"});
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    const ConvFigures& fig = figures[ci];

    Table t({"t(s)", "flow1", "flow2", "flow3"});
    for (int k = 0; k < 25; ++k) {
      t.add_row({std::to_string(2 * k), fmt(fig.bins[0][static_cast<std::size_t>(k)] / 1e6, 1),
                 fmt(fig.bins[1][static_cast<std::size_t>(k)] / 1e6, 1),
                 fmt(fig.bins[2][static_cast<std::size_t>(k)] / 1e6, 1)});
    }
    section(ccas[ci]);
    t.print();

    const ConvergenceResult& res = fig.third;
    summary.add_row({ccas[ci],
                     res.converged ? fmt(to_seconds(res.convergence_time), 1) + "s" : "-",
                     res.converged ? fmt(res.stddev_after / 1e6, 2) : "-",
                     res.converged ? fmt(res.mean_after / 1e6, 1) : "-"});
  }

  section("Tab. 5 — third flow convergence metrics "
          "(paper: libra fastest, mod-rl never converges)");
  summary.print();
  return 0;
}
