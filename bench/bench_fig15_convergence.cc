// Fig. 15 + Tab. 5 — Convergence: three same-CCA flows start 5 s apart on a
// 48 Mbps / 100 ms / 1 BDP link. Prints each flow's throughput timeline and
// the Tab. 5 metrics for the third flow (convergence time to a stable
// +/-25% band held 5 s, stddev after convergence, mean after convergence).
#include "bench/common.h"

#include "stats/convergence.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 15 + Tab. 5", "three staggered flows: convergence");

  Scenario s = wired_scenario(48, msec(100), 48e6 / 8 * 0.1);
  s.duration = sec(50);

  const std::vector<std::string> ccas = {"bbr",     "cubic",  "modified-rl",
                                         "indigo",  "proteus", "orca",
                                         "c-libra", "b-libra"};
  Table summary({"cca", "conv. time", "thr stddev (Mbps)", "avg thr (Mbps)"});

  for (const std::string& name : ccas) {
    CcaFactory factory = zoo().factory(name);
    auto net = run_scenario(
        s, {{factory, 0}, {factory, sec(5)}, {factory, sec(10)}}, 17);

    // Timeline (2 s bins) for the figure.
    Table t({"t(s)", "flow1", "flow2", "flow3"});
    std::vector<std::vector<double>> bins;
    for (int f = 0; f < 3; ++f)
      bins.push_back(net->flow(f).acked_bytes_series().to_rate_bins(sec(2), s.duration));
    for (int k = 0; k < 25; ++k) {
      t.add_row({std::to_string(2 * k), fmt(bins[0][static_cast<std::size_t>(k)] / 1e6, 1),
                 fmt(bins[1][static_cast<std::size_t>(k)] / 1e6, 1),
                 fmt(bins[2][static_cast<std::size_t>(k)] / 1e6, 1)});
    }
    section(name);
    t.print();

    // Tab. 5 metrics on the third flow, from its entry at 10 s.
    TimeSeries shifted;
    for (auto& pt : net->flow(2).acked_bytes_series().points())
      shifted.add(pt.time - sec(10), pt.value);
    auto fine = shifted.to_rate_bins(msec(500), sec(40));
    auto res = analyze_convergence(fine, msec(500));
    summary.add_row({name,
                     res.converged ? fmt(to_seconds(res.convergence_time), 1) + "s" : "-",
                     res.converged ? fmt(res.stddev_after / 1e6, 2) : "-",
                     res.converged ? fmt(res.mean_after / 1e6, 1) : "-"});
  }

  section("Tab. 5 — third flow convergence metrics "
          "(paper: libra fastest, mod-rl never converges)");
  summary.print();
  return 0;
}
