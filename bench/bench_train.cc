// Training-path performance: latency of the batched Ppo::update (per
// minibatch and per update) and end-to-end training throughput (episodes/s)
// of serial vs parallel rollout collection. EXPERIMENTS.md records the
// before/after numbers for the vectorized training path.
#include "bench/common.h"

#include <chrono>
#include <cmath>

#include "harness/trainer.h"
#include "learned/libra_rl.h"
#include "rl/ppo.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("bench_train", "PPO training path: update latency + rollout throughput");

  // --- Ppo::update latency (the vectorized batch path in isolation) --------
  RlCcaConfig cfg = libra_rl_config();
  PpoConfig ppo = make_ppo_config(cfg, 3, {64, 64});
  ppo.collect_only = true;  // refills never auto-trigger an update
  PpoAgent agent(ppo);
  Rng rng(5);
  Vector s(ppo.state_dim);
  auto refill = [&] {
    while (agent.buffered_transitions() < ppo.horizon) {
      for (double& v : s) v = rng.uniform(-1.0, 1.0);
      agent.give_reward(-std::abs(agent.act(s) - s[0]));
    }
  };
  const double minibatches_per_update = static_cast<double>(
      ppo.epochs * ((ppo.horizon + ppo.minibatch - 1) / ppo.minibatch));

  refill();
  agent.flush_update(0.0);  // warm-up: workspaces touched, caches hot

  const int kUpdates = 10;
  double update_s = 0;
  for (int i = 0; i < kUpdates; ++i) {
    refill();
    update_s += wall_seconds([&] { agent.flush_update(0.0); });
  }
  const double ms_per_update = 1e3 * update_s / kUpdates;
  const double us_per_minibatch =
      1e6 * update_s / kUpdates / minibatches_per_update;

  section("Ppo::update (state_dim=" + std::to_string(ppo.state_dim) +
          ", hidden 64x64, horizon 512, minibatch 64, 6 epochs)");
  Table ut({"metric", "value"});
  ut.add_row({"ms / update", fmt(ms_per_update, 2)});
  ut.add_row({"us / minibatch", fmt(us_per_minibatch, 1)});
  ut.add_row({"minibatches / update", fmt(minibatches_per_update, 0)});
  ut.print();

  // --- Rollout collection throughput (episodes/s) ---------------------------
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 100;
  ranges.episode_length = sec(30);
  const int kEpisodes = 16, kRound = 4;
  BrainBoundFactory factory = [](const std::shared_ptr<RlBrain>& b) {
    return make_libra_rl(b, /*training=*/true);
  };
  auto train = [&](ThreadPool& pool) {
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 5, {32, 32}),
                                           feature_frame_size(cfg.features));
    Trainer trainer(ranges, 77);
    trainer.train_parallel(factory, brain, kEpisodes, pool, kRound);
  };

  ThreadPool serial_pool(1);
  double serial_s = wall_seconds([&] { train(serial_pool); });
  double parallel_s = wall_seconds([&] { train(default_pool()); });

  section("train_parallel rollout collection (" + std::to_string(kEpisodes) +
          " episodes, round " + std::to_string(kRound) + ")");
  Table tt({"mode", "threads", "wall s", "episodes/s"});
  tt.add_row({"serial", "1", fmt(serial_s, 2), fmt(kEpisodes / serial_s, 2)});
  tt.add_row({"parallel", std::to_string(default_pool().thread_count()),
              fmt(parallel_s, 2), fmt(kEpisodes / parallel_s, 2)});
  tt.print();
  return 0;
}
