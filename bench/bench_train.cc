// Training-path performance: latency of the batched Ppo::update (per
// minibatch and per update) and end-to-end training throughput (episodes/s)
// of serial vs parallel rollout collection. EXPERIMENTS.md records the
// before/after numbers for the vectorized training path.
#include "bench/common.h"

#include <chrono>
#include <cmath>

#include "harness/trainer.h"
#include "learned/libra_rl.h"
#include "rl/ppo.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("bench_train", "PPO training path: update latency + rollout throughput");

  // --- Ppo::update latency (the vectorized batch path in isolation) --------
  RlCcaConfig cfg = libra_rl_config();
  PpoConfig ppo = make_ppo_config(cfg, 3, {64, 64});
  ppo.collect_only = true;  // refills never auto-trigger an update
  PpoAgent agent(ppo);
  Rng rng(5);
  Vector s(ppo.state_dim);
  auto refill = [&] {
    while (agent.buffered_transitions() < ppo.horizon) {
      for (double& v : s) v = rng.uniform(-1.0, 1.0);
      agent.give_reward(-std::abs(agent.act(s) - s[0]));
    }
  };
  const double minibatches_per_update = static_cast<double>(
      ppo.epochs * ((ppo.horizon + ppo.minibatch - 1) / ppo.minibatch));

  refill();
  agent.flush_update(0.0);  // warm-up: workspaces touched, caches hot

  const int kUpdates = 10;
  double update_s = 0;
  for (int i = 0; i < kUpdates; ++i) {
    refill();
    update_s += wall_seconds([&] { agent.flush_update(0.0); });
  }
  const double ms_per_update = 1e3 * update_s / kUpdates;
  const double us_per_minibatch =
      1e6 * update_s / kUpdates / minibatches_per_update;

  section("Ppo::update (state_dim=" + std::to_string(ppo.state_dim) +
          ", hidden 64x64, horizon 512, minibatch 64, 6 epochs)");
  Table ut({"metric", "value"});
  ut.add_row({"ms / update", fmt(ms_per_update, 2)});
  ut.add_row({"us / minibatch", fmt(us_per_minibatch, 1)});
  ut.add_row({"minibatches / update", fmt(minibatches_per_update, 0)});
  ut.print();

  // --- Rollout collection throughput (episodes/s) ---------------------------
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 100;
  ranges.episode_length = sec(30);
  const int kEpisodes = 16, kRound = 4;
  BrainBoundFactory factory = [](const std::shared_ptr<RlBrain>& b) {
    return make_libra_rl(b, /*training=*/true);
  };
  auto train = [&](ThreadPool& pool) {
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 5, {32, 32}),
                                           feature_frame_size(cfg.features));
    Trainer trainer(ranges, 77);
    trainer.train_parallel(factory, brain, kEpisodes, pool, kRound);
  };

  ThreadPool serial_pool(1);
  double serial_s = wall_seconds([&] { train(serial_pool); });
  double parallel_s = wall_seconds([&] { train(default_pool()); });

  section("train_parallel rollout collection (" + std::to_string(kEpisodes) +
          " episodes, round " + std::to_string(kRound) + ")");
  Table tt({"mode", "threads", "wall s", "episodes/s"});
  tt.add_row({"serial", "1", fmt(serial_s, 2), fmt(kEpisodes / serial_s, 2)});
  tt.add_row({"parallel", std::to_string(default_pool().thread_count()),
              fmt(parallel_s, 2), fmt(kEpisodes / parallel_s, 2)});
  tt.print();

  // --- Batched inference on a paper-scale (2x512) policy --------------------
  // Per-state act_greedy streams every weight matrix (2 MB per hidden layer)
  // from memory for each decision; BatchedPolicyEval amortizes each traversal
  // over a whole batch. Results are bitwise identical, so the speedup is free.
  {
    PpoConfig wide = make_ppo_config(cfg, 9, {512, 512});
    auto brain = std::make_shared<RlBrain>(wide, feature_frame_size(cfg.features));
    Rng srng(31);
    for (int i = 0; i < 100; ++i) {
      Vector frame(brain->normalizer.dim());
      for (double& v : frame) v = srng.uniform(-2.0, 2.0);
      brain->normalizer.update(frame);
    }
    const std::size_t kStates = 4096;
    std::vector<Vector> raw(kStates, Vector(wide.state_dim));
    for (Vector& st : raw)
      for (double& v : st) v = srng.uniform(-3.0, 3.0);

    // Per-state baseline: normalize per frame, then act_greedy (sunk cost of
    // the batched path included for a like-for-like comparison).
    const std::size_t frame = brain->normalizer.dim();
    Vector state(wide.state_dim), f(frame);
    double sink = 0;
    auto per_state = [&] {
      for (const Vector& st : raw) {
        for (std::size_t off = 0; off < st.size(); off += frame) {
          f.assign(st.begin() + static_cast<std::ptrdiff_t>(off),
                   st.begin() + static_cast<std::ptrdiff_t>(off + frame));
          brain->normalizer.normalize_into(f, state.data() + off);
        }
        sink += brain->agent.act_greedy(state);
      }
    };
    per_state();  // warm-up
    double base_s = wall_seconds(per_state);

    section("Batched greedy inference (state_dim=" +
            std::to_string(wide.state_dim) + ", hidden 512x512, " +
            std::to_string(kStates) + " states)");
    Table bt({"path", "batch", "us/state", "speedup"});
    const double base_us = 1e6 * base_s / static_cast<double>(kStates);
    bt.add_row({"act_greedy", "1", fmt(base_us, 2), "1.00x"});
    for (std::size_t batch : {16u, 64u, 256u}) {
      BatchedPolicyEval eval(brain, batch);
      Vector out;
      eval.evaluate(raw, out);  // warm-up
      double batch_s = wall_seconds([&] { eval.evaluate(raw, out); });
      sink += out.front();
      const double us = 1e6 * batch_s / static_cast<double>(kStates);
      bt.add_row({"BatchedPolicyEval", std::to_string(batch), fmt(us, 2),
                  fmt(base_us / us, 2) + "x"});
    }
    bt.print();
    if (sink == 42.0) return 1;  // defeat dead-code elimination
  }
  return 0;
}
