// Fig. 18 — Libra vs the offline "ideal" combination. C-Ideal is built by
// running CUBIC and Clean-Slate Libra separately on the same cellular trace
// and, for every time bin, taking the behaviour with the higher Eq. 1
// utility (B-Ideal likewise from BBR). Paper shape: Libra's online utility
// approaches — and in stretches exceeds — the offline ideal, because the two
// underlying CCAs interact (one resets the other's rate through evaluation).
#include "bench/common.h"

#include "core/factory.h"

namespace {
using namespace libra;

// Per-bin utility of an already-run flow.
std::vector<double> utility_series(const Flow& flow, SimDuration bin,
                                   SimDuration horizon) {
  UtilityParams up;
  std::vector<double> out;
  for (SimTime t = 0; t + bin <= horizon; t += bin) {
    double thr_mbps = flow.throughput_in(t, t + bin) / 1e6;
    // Bin-to-bin RTT trend as the gradient proxy.
    double rtt_now = flow.mean_rtt_in(t, t + bin);
    double rtt_prev = flow.mean_rtt_in(std::max<SimTime>(0, t - bin), t);
    double grad = (rtt_prev > 0 && rtt_now > 0)
                      ? (rtt_now - rtt_prev) / 1e3 / to_seconds(bin)
                      : 0.0;
    if (std::abs(grad) < 0.02) grad = 0.0;
    double lost = flow.loss_series().sum_in(t, t + bin) / kDefaultPacketBytes;
    double acked = flow.acked_bytes_series().sum_in(t, t + bin) / kDefaultPacketBytes;
    double loss_rate = (lost + acked) > 0 ? lost / (lost + acked) : 0.0;
    out.push_back(utility(up, thr_mbps, grad, loss_rate));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 18", "utility vs the offline ideal combination (cellular)");

  Scenario s = lte_scenario(LteProfile::kWalking, "lte-walking");
  s.duration = sec(50);
  const SimDuration bin = sec(1);

  auto series_for = [&](const std::string& name) {
    auto net = run_scenario(s, {{zoo().factory(name)}}, 23);
    return utility_series(net->flow(0), bin, s.duration);
  };

  auto cubic_u = series_for("cubic");
  auto bbr_u = series_for("bbr");
  auto cl_u = series_for("cl-libra");
  auto c_libra_u = series_for("c-libra");
  auto b_libra_u = series_for("b-libra");

  // Offline ideals: per-bin max of the solo runs.
  std::vector<double> c_ideal(cubic_u.size()), b_ideal(cubic_u.size());
  for (std::size_t i = 0; i < cubic_u.size(); ++i) {
    c_ideal[i] = std::max(cubic_u[i], cl_u[i]);
    b_ideal[i] = std::max(bbr_u[i], cl_u[i]);
  }

  // Normalize all series jointly to [0, 1] as the paper does.
  double lo = 1e18, hi = -1e18;
  for (auto* v : {&c_libra_u, &c_ideal, &b_libra_u, &b_ideal}) {
    for (double x : *v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  auto norm = [&](double x) { return hi > lo ? (x - lo) / (hi - lo) : 0.0; };

  Table t({"t(s)", "c-libra", "c-ideal", "b-libra", "b-ideal"});
  double sums[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < c_libra_u.size(); ++i) {
    t.add_row({std::to_string(i), fmt(norm(c_libra_u[i]), 2), fmt(norm(c_ideal[i]), 2),
               fmt(norm(b_libra_u[i]), 2), fmt(norm(b_ideal[i]), 2)});
    sums[0] += norm(c_libra_u[i]);
    sums[1] += norm(c_ideal[i]);
    sums[2] += norm(b_libra_u[i]);
    sums[3] += norm(b_ideal[i]);
  }
  t.print();

  auto n = static_cast<double>(c_libra_u.size());
  section("Mean normalized utility (paper: online Libra ~ideal, sometimes above)");
  Table m({"series", "mean"});
  m.add_row({"c-libra", fmt(sums[0] / n, 3)});
  m.add_row({"c-ideal", fmt(sums[1] / n, 3)});
  m.add_row({"b-libra", fmt(sums[2] / n, 3)});
  m.add_row({"b-ideal", fmt(sums[3] / n, 3)});
  m.print();
  return 0;
}
