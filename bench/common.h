// Shared plumbing for the per-figure/table bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation:
// it prints the same rows/series the paper reports, produced by this repo's
// simulator + CCA implementations. Absolute numbers differ from the authors'
// testbed; the *shape* (who wins, by what factor, where crossovers fall) is
// the reproduction target. EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "harness/metered.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

namespace libra::benchx {

/// Process-wide zoo: trains (or loads from ./brains) each RL policy once.
inline CcaZoo& zoo() {
  static CcaZoo instance{ZooConfig{}};
  return instance;
}

/// Zoo with paper-scale (2x512) actor/critic networks — used by the overhead
/// benches, where the model width is the quantity under measurement. Lightly
/// trained: decision *cost* is architecture-determined, not policy-determined.
inline CcaZoo& wide_zoo() {
  static CcaZoo instance{ZooConfig{.brain_dir = "brains-w512",
                                   .train_episodes = 30,
                                   .hidden_width = 512}};
  return instance;
}

/// Mean of per-seed run summaries (the paper averages 5 runs; we default 3).
/// Seeds are 1000..1000+runs-1; the fan-out over the process-wide pool is
/// deterministic (see harness/parallel.h), so bench output is reproducible
/// at any thread count, including LIBRA_THREADS=1.
using Averaged = AveragedSummary;

inline Averaged average_runs(const Scenario& scenario, const CcaFactory& factory,
                             int runs = 3, SimDuration warmup = sec(2)) {
  return average_runs_parallel(scenario, factory, runs, warmup, default_pool(),
                               /*base_seed=*/1000);
}

inline void header(const std::string& id, const std::string& what) {
  std::cout << "\n########################################################\n"
            << "# " << id << " — " << what << "\n"
            << "########################################################\n";
}

}  // namespace libra::benchx
