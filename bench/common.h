// Shared plumbing for the per-figure/table bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation:
// it prints the same rows/series the paper reports, produced by this repo's
// simulator + CCA implementations. Absolute numbers differ from the authors'
// testbed; the *shape* (who wins, by what factor, where crossovers fall) is
// the reproduction target. EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/metered.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"
#include "obs/profiler.h"
#include "rl/simd.h"

namespace libra::benchx {

/// Options common to the bench binaries. Parsed by parse_args; unknown flags
/// warn and are ignored so figure scripts stay forward-compatible.
struct BenchArgs {
  bool json = false;          // --json[=PATH] or LIBRA_JSON_OUT=PATH
  std::string json_path;      // empty: JSON document goes to stdout at exit
  std::string record_prefix;  // --record=PREFIX → stream per-run JSONL traces
  double duration_s = 0;      // --duration=SECS run-length override (0: default)
  bool profile = false;       // --profile → in-process profiler report at exit
};

/// Enables the JsonReport capture hooks in harness/report.h plus a one-time
/// atexit finalizer, so every section/table the bench prints is also emitted
/// as one JSON document (to `path`, or stdout when empty).
inline void enable_json(const std::string& path) {
  JsonReport::instance().enable(path);
  // Kernel ISA the numbers were produced with (dispatch decision + what the
  // host supports) — cross-host bench comparisons need it to be interpretable.
  JsonReport::instance().add_json(
      "simd", std::string("{\"active\":\"") + simd::isa_name(simd::active()) +
                  "\",\"avx2_fma_supported\":" +
                  (simd::avx2_supported() ? "true" : "false") + "}");
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { JsonReport::instance().finalize(); });
  }
}

/// Honors LIBRA_JSON_OUT=PATH. Called from header(), so every bench binary
/// supports env-var-driven JSON capture even before flag parsing.
inline void apply_json_env() {
  if (const char* env = std::getenv("LIBRA_JSON_OUT"); env && *env) enable_json(env);
}

/// Parses bench CLI flags (and the LIBRA_JSON_OUT environment variable).
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--json") {
      args.json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = std::string(a.substr(7));
    } else if (a.rfind("--record=", 0) == 0) {
      args.record_prefix = std::string(a.substr(9));
    } else if (a.rfind("--duration=", 0) == 0) {
      args.duration_s = std::atof(std::string(a.substr(11)).c_str());
    } else if (a == "--profile") {
      args.profile = true;
    } else {
      std::cerr << "warning: unknown flag " << a << " (ignored)\n";
    }
  }
  if (const char* env = std::getenv("LIBRA_JSON_OUT"); env && *env) {
    args.json = true;
    args.json_path = env;
  }
  if (args.json) enable_json(args.json_path);
  if (args.profile) {
    // Profile the whole bench; at exit the call tree goes to stderr and (when
    // JSON capture is on) into the document under "profile". Runs before the
    // JsonReport finalizer because atexit handlers fire in reverse order of
    // registration and enable_json has already registered its own.
    Profiler::instance().enable();
    std::atexit([] {
      Profiler::instance().disable();
      JsonReport::instance().add_json("profile", Profiler::instance().to_json());
      std::cerr << "\n" << Profiler::instance().text_report();
    });
  }
  return args;
}

/// Process-wide zoo: trains (or loads from ./brains) each RL policy once.
inline CcaZoo& zoo() {
  static CcaZoo instance{ZooConfig{}};
  return instance;
}

/// Zoo with paper-scale (2x512) actor/critic networks — used by the overhead
/// benches, where the model width is the quantity under measurement. Lightly
/// trained: decision *cost* is architecture-determined, not policy-determined.
inline CcaZoo& wide_zoo() {
  static CcaZoo instance = [] {
    ZooConfig cfg;
    cfg.brain_dir = "brains-w512";
    cfg.train_episodes = 30;
    cfg.hidden_width = 512;
    return CcaZoo(cfg);
  }();
  return instance;
}

/// Mean of per-seed run summaries (the paper averages 5 runs; we default 3).
/// Seeds are 1000..1000+runs-1; the fan-out over the process-wide pool is
/// deterministic (see harness/parallel.h), so bench output is reproducible
/// at any thread count, including LIBRA_THREADS=1.
using Averaged = AveragedSummary;

inline Averaged average_runs(const Scenario& scenario, const CcaFactory& factory,
                             int runs = 3, SimDuration warmup = sec(2)) {
  return average_runs_parallel(scenario, factory, runs, warmup, default_pool(),
                               /*base_seed=*/1000);
}

inline void header(const std::string& id, const std::string& what) {
  apply_json_env();
  JsonReport::instance().set_bench(id, what);
  std::cout << "\n########################################################\n"
            << "# " << id << " — " << what << "\n"
            << "########################################################\n";
}

}  // namespace libra::benchx
