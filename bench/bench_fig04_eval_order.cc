// Fig. 4 ablation — the "lower rate first" evaluation-order rule. Runs
// C-Libra with lower-first vs higher-first EI ordering on the cellular set.
// Paper argument: trying the higher candidate first self-inflicts queueing
// onto the lower candidate's measurement, producing wrong decisions; the
// lower-first rule avoids the side effect.
#include "bench/common.h"

#include "core/factory.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 4 (ablation)", "evaluation order: lower rate first vs reversed");

  auto brain = zoo().brain("libra-rl");
  Table t({"order", "wired util", "wired delay", "cell util", "cell delay"});
  for (bool lower_first : {true, false}) {
    LibraParams p = c_libra_params();
    p.lower_rate_first = lower_first;
    CcaFactory factory = [p, brain] { return make_c_libra(brain, false, p); };

    double wu = 0, wd = 0, cu = 0, cd = 0;
    for (const Scenario& base : wired_set()) {
      Scenario s = base;
      s.duration = sec(30);
      Averaged a = average_runs(s, factory, 2);
      wu += a.link_utilization;
      wd += a.avg_delay_ms;
    }
    for (const Scenario& base : cellular_set()) {
      Scenario s = base;
      s.duration = sec(30);
      Averaged a = average_runs(s, factory, 2);
      cu += a.link_utilization;
      cd += a.avg_delay_ms;
    }
    t.add_row({lower_first ? "lower-first (paper rule)" : "higher-first",
               fmt(wu / 4, 3), fmt(wd / 4, 1), fmt(cu / 4, 3), fmt(cd / 4, 1)});
  }
  section("Paper expectation: the lower-first rule equal-or-better on both sets");
  t.print();
  return 0;
}
