// Fig. 6 — Reward curves for AIAD vs MIMD action spaces with scale factors
// 1 / 5 / 10. Paper shape: MIMD learns faster and converges higher; AIAD
// with scale=1 lags badly.
#include "bench/common.h"

#include "harness/trainer.h"
#include "learned/rl_cca.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 6", "reward curves for AIAD vs MIMD action spaces");

  struct Variant {
    std::string label;
    ActionMode mode;
    double scale;
  };
  const std::vector<Variant> variants = {
      {"aiad-1", ActionMode::kAiad, 1},   {"aiad-5", ActionMode::kAiad, 5},
      {"aiad-10", ActionMode::kAiad, 10}, {"mimd-1", ActionMode::kMimdOrca, 1},
      {"mimd-2", ActionMode::kMimdOrca, 2},
  };

  TrainEnvRanges env;
  env.capacity_lo_mbps = env.capacity_hi_mbps = 100;
  env.rtt_lo = env.rtt_hi = msec(100);
  env.buffer_lo = env.buffer_hi = 100e6 / 8 * 0.1;
  env.loss_lo = env.loss_hi = 0;
  env.episode_length = sec(5);
  constexpr int kEpisodes = 240;
  constexpr int kBucket = 30;

  std::vector<std::vector<double>> curves;
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    RlCcaConfig cfg;  // libra state space
    cfg.action_mode = variants[vi].mode;
    cfg.action_scale = variants[vi].scale;
    cfg.aiad_step = mbps(1);
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 51 + vi),
                                           feature_frame_size(cfg.features));
    Trainer trainer(env, 29);
    auto stats = trainer.train(
        [&] {
          RlCcaConfig c = cfg;
          c.training = true;
          return std::make_unique<RlCca>(c, brain);
        },
        kEpisodes);
    // Same uniform quality score as the Fig. 5 bench (training rewards are
    // design-internal and not comparable across action maps).
    std::vector<double> curve;
    for (int b = 0; b < kEpisodes / kBucket; ++b) {
      double sum = 0;
      for (int k = 0; k < kBucket; ++k) {
        const EpisodeStats& e = stats[static_cast<std::size_t>(b * kBucket + k)];
        sum += e.link_utilization -
               0.5 * std::max(0.0, e.avg_rtt_ms / 100.0 - 1.0) -
               10.0 * e.loss_rate;
      }
      curve.push_back(sum / kBucket);
    }
    curves.push_back(std::move(curve));
  }

  Table t({"episodes", "aiad-1", "aiad-5", "aiad-10", "mimd-1", "mimd-2"});
  for (std::size_t b = 0; b < curves[0].size(); ++b) {
    std::vector<std::string> row{std::to_string((b + 1) * kBucket)};
    for (auto& c : curves) row.push_back(fmt(c[b], 2));
    t.add_row(row);
  }
  section("Bucketed episode quality score "
          "(paper: MIMD ramps faster; small-scale AIAD slowest)");
  t.print();

  // Mean achieved utilization over the final bucket, the practical effect.
  Table u({"variant", "final-bucket score"});
  for (std::size_t vi = 0; vi < variants.size(); ++vi)
    u.add_row({variants[vi].label, fmt(curves[vi].back(), 2)});
  u.print();
  return 0;
}
