// Tab. 3 — RL reward with vs without the loss-rate term, evaluated in the
// paper's default environment (100 Mbps / 100 ms / 1 BDP). Paper: without
// the loss term throughput is marginally higher but latency and loss blow up
// (the utility saturates once the queue is full).
#include "bench/common.h"

#include "harness/trainer.h"
#include "learned/rl_cca.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Tab. 3", "reward with vs without the loss term");

  TrainEnvRanges env;
  env.capacity_lo_mbps = env.capacity_hi_mbps = 100;
  env.rtt_lo = env.rtt_hi = msec(100);
  env.buffer_lo = env.buffer_hi = 100e6 / 8 * 0.1;
  env.loss_lo = env.loss_hi = 0;
  env.episode_length = sec(5);
  constexpr int kEpisodes = 260;
  constexpr int kTail = 40;

  Table t({"setting", "throughput", "latency", "loss rate"});
  for (bool with_loss : {true, false}) {
    RlCcaConfig cfg;
    cfg.reward_includes_loss = with_loss;
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, with_loss ? 61 : 62),
                                           feature_frame_size(cfg.features));
    Trainer trainer(env, 43);
    auto stats = trainer.train(
        [&] {
          RlCcaConfig c = cfg;
          c.training = true;
          return std::make_unique<RlCca>(c, brain);
        },
        kEpisodes);
    double thr = 0, lat = 0, loss = 0;
    for (int k = kEpisodes - kTail; k < kEpisodes; ++k) {
      thr += stats[static_cast<std::size_t>(k)].throughput_bps;
      lat += stats[static_cast<std::size_t>(k)].avg_rtt_ms;
      loss += stats[static_cast<std::size_t>(k)].loss_rate;
    }
    t.add_row({with_loss ? "with loss rate" : "w/o loss rate",
               fmt(thr / kTail / 1e6, 1) + " Mbps", fmt(lat / kTail, 0) + " ms",
               fmt_pct(loss / kTail, 2)});
  }
  section("Final-window averages (paper: w/o loss -> ~2x latency, 37% loss)");
  t.print();
  return 0;
}
