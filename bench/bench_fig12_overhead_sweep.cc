// Fig. 12 — CPU overhead vs link capacity (10-200 Mbps). Paper shape:
// Libra's overhead tracks its underlying classic CCAs and is a large
// reduction over Orca / Indigo / Copa / Proteus (up to 92%).
#include "bench/common.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 12", "CPU overhead vs link capacity");

  const std::vector<double> capacities = {10, 20, 30, 50, 100, 200};
  const std::vector<std::string> ccas = {"cubic",  "bbr",  "c-libra", "b-libra",
                                         "orca",   "indigo", "copa",  "proteus"};

  std::vector<std::vector<double>> cpu(ccas.size(),
                                       std::vector<double>(capacities.size()));
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    CcaFactory inner = wide_zoo().factory(ccas[ci]);
    for (std::size_t ki = 0; ki < capacities.size(); ++ki) {
      Scenario s = wired_scenario(capacities[ki], msec(30),
                                  static_cast<std::int64_t>(capacities[ki] * 1e6 / 8 * 0.03));
      s.duration = sec(20);
      auto meter = std::make_shared<OverheadMeter>();
      run_scenario(s,
                   {{[&] { return std::make_unique<MeteredCca>(inner(), meter); }}},
                   1);
      cpu[ci][ki] = meter->cpu_per_sim_second(s.duration);
    }
  }

  double max_cpu = 0;
  for (auto& row : cpu)
    for (double v : row) max_cpu = std::max(max_cpu, v);

  Table t({"cca", "10M", "20M", "30M", "50M", "100M", "200M", "avg (norm)"});
  std::vector<double> avgs(ccas.size());
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    std::vector<std::string> row{ccas[ci]};
    double sum = 0;
    for (std::size_t ki = 0; ki < capacities.size(); ++ki) {
      row.push_back(fmt(cpu[ci][ki] / max_cpu, 3));
      sum += cpu[ci][ki];
    }
    avgs[ci] = sum / capacities.size();
    row.push_back(fmt(avgs[ci] / max_cpu, 3));
    t.add_row(row);
  }
  section("Normalized decision-CPU per capacity "
          "(paper: libra ~classic-level, big cuts vs learned)");
  t.print();

  // Reduction of C-Libra vs each learned competitor (the paper's "47-92%").
  auto idx = [&](const std::string& n) {
    return static_cast<std::size_t>(
        std::find(ccas.begin(), ccas.end(), n) - ccas.begin());
  };
  Table red({"vs", "c-libra reduction"});
  for (const std::string& other : {"orca", "indigo", "copa", "proteus"}) {
    double r = 1.0 - avgs[idx("c-libra")] / std::max(1e-12, avgs[idx(other)]);
    red.add_row({other, fmt_pct(r, 0)});
  }
  red.print();
  return 0;
}
