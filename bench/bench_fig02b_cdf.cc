// Fig. 2(b) — CDF of link utilization over repeated experiments on an LTE
// cellular network (paper: 100 runs on T-Mobile LTE; here 40 seeded draws of
// the synthetic stationary-LTE trace). The paper's point: Orca and Proteus
// have long low-utilization tails (no safety assurance); Libra's CDF is
// tight and to the right.
#include "bench/common.h"

#include "stats/cdf.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 2b", "CDF of link utilization over repeated cellular runs");

  constexpr int kRuns = 40;
  Scenario s = lte_scenario(LteProfile::kStationary, "lte-stationary");
  s.duration = sec(30);

  const std::vector<std::string> ccas = {"proteus", "cubic", "bbr", "c-libra",
                                         "orca"};
  // One batch of |ccas| x kRuns independent runs through the parallel
  // engine; summaries come back in submission order, so the CDFs are
  // identical to the former serial per-CCA loops.
  std::vector<RunRequest> batch;
  batch.reserve(ccas.size() * kRuns);
  for (const std::string& name : ccas) {
    CcaFactory factory = zoo().factory(name);
    for (int r = 0; r < kRuns; ++r) {
      batch.push_back(RunRequest::single(s, factory,
                                         5000 + static_cast<std::uint64_t>(r)));
    }
  }
  std::vector<RunSummary> results = run_many(batch);

  std::vector<Cdf> cdfs(ccas.size());
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    for (int r = 0; r < kRuns; ++r) {
      cdfs[i].add(results[i * kRuns + static_cast<std::size_t>(r)].link_utilization);
    }
  }

  Table t({"quantile", "proteus", "cubic", "bbr", "c-libra", "orca"});
  for (double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95}) {
    std::vector<std::string> row{fmt(q, 2)};
    for (auto& c : cdfs) row.push_back(fmt(c.quantile(q), 3));
    t.add_row(row);
  }
  section("Utilization quantiles (paper: Libra's 5th pct close to its median)");
  t.print();

  Table spread({"cca", "median", "p5", "spread(p95-p5)"});
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    spread.add_row({ccas[i], fmt(cdfs[i].quantile(0.5), 3), fmt(cdfs[i].quantile(0.05), 3),
                    fmt(cdfs[i].quantile(0.95) - cdfs[i].quantile(0.05), 3)});
  }
  section("Spread summary");
  spread.print();
  return 0;
}
