// Fig. 17 — Fraction of control cycles whose winning decision was x_prev,
// x_rl or x_cl, for C-Libra and B-Libra over the step / cellular / wired
// scenarios. Paper shape: every decision kind matters; x_cl dominates but
// less so in wired (CUBIC's fill-drain cycles get vetoed) and x_rl helps
// most in cellular.
#include "bench/common.h"

#include "core/factory.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Fig. 17", "fraction of applied times for x_prev / x_rl / x_cl");

  auto brain = zoo().brain("libra-rl");
  struct Case {
    std::string label;
    Scenario scenario;
  };
  std::vector<Case> cases = {
      {"step", step_scenario()},
      {"cellular", lte_scenario(LteProfile::kWalking, "lte-walking")},
      {"wired", wired_scenario(48)},
  };

  for (bool bbr_variant : {false, true}) {
    Table t({"scenario", "x_prev", "x_rl", "x_cl", "cycles"});
    for (auto& c : cases) {
      Scenario s = c.scenario;
      s.duration = sec(40);
      DecisionCounts total;
      constexpr int kRuns = 3;
      for (int r = 0; r < kRuns; ++r) {
        auto cca = bbr_variant ? make_b_libra(brain, false)
                               : make_c_libra(brain, false);
        Libra* ptr = cca.get();
        Network net(s.link_config(400 + static_cast<std::uint64_t>(r)));
        net.add_flow(std::move(cca));
        net.run_until(s.duration);
        total.prev += ptr->decision_counts().prev;
        total.classic += ptr->decision_counts().classic;
        total.rl += ptr->decision_counts().rl;
      }
      auto tot = static_cast<double>(std::max<std::int64_t>(1, total.total()));
      t.add_row({c.label, fmt(total.prev / tot, 3), fmt(total.rl / tot, 3),
                 fmt(total.classic / tot, 3), std::to_string(total.total())});
    }
    section(bbr_variant ? "B-Libra" : "C-Libra");
    t.print();
  }
  return 0;
}
