// Tab. 6 — Safety assurance: mean / range / stddev of link utilization over
// 20 repeated trials on Wired#1 (24 Mbps), Wired#2 (48 Mbps), LTE#1
// (stationary) and LTE#2 (moving). Paper shape: Orca's range is 13-29% while
// Libra's stays within 3-12%, with 2-6x lower stddev.
#include "bench/common.h"

#include "stats/summary.h"

int main(int argc, char** argv) {
  libra::benchx::parse_args(argc, argv);
  using namespace libra;
  using namespace libra::benchx;
  header("Tab. 6", "link-utilization statistics over 20 trials");

  std::vector<Scenario> scenarios = {
      wired_scenario(24), wired_scenario(48),
      lte_scenario(LteProfile::kStationary, "lte-stationary"),
      lte_scenario(LteProfile::kWalking, "lte-moving")};
  const std::vector<std::string> ccas = {"orca", "c-libra", "b-libra"};

  Table t({"metric", "wired#1(24M)", "wired#2(48M)", "lte#1(stat.)",
           "lte#2(moving)"});
  std::vector<std::vector<RunningStats>> stats(
      ccas.size(), std::vector<RunningStats>(scenarios.size()));

  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    CcaFactory factory = zoo().factory(ccas[ci]);
    for (std::size_t si = 0; si < scenarios.size(); ++si) {
      Scenario s = scenarios[si];
      s.duration = sec(25);
      for (int trial = 0; trial < 20; ++trial) {
        RunSummary sum = run_single(s, factory,
                                    9000 + static_cast<std::uint64_t>(trial));
        stats[ci][si].add(sum.link_utilization);
      }
    }
  }

  const char* tag[] = {"#O", "#C", "#B"};
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    std::vector<std::string> row{std::string("mean") + tag[ci]};
    for (auto& st : stats[ci]) row.push_back(fmt(st.mean(), 3));
    t.add_row(row);
  }
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    std::vector<std::string> row{std::string("range") + tag[ci]};
    for (auto& st : stats[ci]) row.push_back(fmt(st.range(), 3));
    t.add_row(row);
  }
  for (std::size_t ci = 0; ci < ccas.size(); ++ci) {
    std::vector<std::string> row{std::string("stddev") + tag[ci]};
    for (auto& st : stats[ci]) row.push_back(fmt(st.stddev(), 3));
    t.add_row(row);
  }
  section("Paper: Libra's range/stddev a small fraction of Orca's");
  t.print();
  return 0;
}
