// Continuous benchmark-regression driver.
//
// Runs a fixed set of hand-timed workloads (mirroring bench_micro's shapes,
// but without the google-benchmark dependency so the output schema is ours),
// reports median/stddev over N repeats, and either records a baseline JSON
// or compares against a committed one:
//
//   bench_baseline --record=BENCH_seed.json --label=seed --git-sha=$(git rev-parse HEAD)
//   bench_baseline --compare=BENCH_seed.json            # exit 1 on regression
//
// Each metric carries its own tolerance *in the baseline file*, so the
// pass/fail contract is versioned with the numbers it applies to;
// --tolerance=X overrides all of them (useful to prove the harness fails:
// --tolerance=-0.99 makes any fresh run a regression).
//
// Schema ("libra-bench-v1"):
//   {"schema":"libra-bench-v1","label":...,"git_sha":...,
//    "host":{"sysname":...,"release":...,"machine":...,"cores":N},
//    "repeats":N,"metrics":{"<name>":{"median":M,"stddev":S,"unit":U,
//                                     "tolerance":T}}}
#include <sys/utsname.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "classic/dctcp.h"
#include "harness/fleet_scenario.h"
#include "harness/parallel.h"
#include "harness/scenario.h"
#include "learned/libra_rl.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/profiler.h"
#include "rl/simd.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "trace/lte_model.h"
#include "util/rng.h"

namespace libra {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Workloads --------------------------------------------------------------
// Each returns one sample of its metric in the metric's unit. Workload shapes
// match bench_micro so the two tools corroborate each other; sizes are tuned
// so a repeat stays well under a second.

double wl_event_queue_ns() {
  constexpr int kCycles = 200, kEvents = 1000;
  int sink = 0;
  double t0 = now_s();
  for (int c = 0; c < kCycles; ++c) {
    EventQueue q;
    for (int i = 0; i < kEvents; ++i) q.schedule_at(i, [&sink] { ++sink; });
    q.run_until(2 * kEvents);
  }
  double elapsed = now_s() - t0;
  if (sink != kCycles * kEvents) std::abort();  // the sink is also the check
  return elapsed * 1e9 / (kCycles * kEvents);
}

double wl_event_queue_large_capture_ns() {
  // Packet-sized closure: the shape the ACK path schedules per delivery.
  struct FakeAckContext {
    Packet pkt;
    void* owner = nullptr;
    std::size_t idx = 0;
  };
  constexpr int kCycles = 200, kEvents = 1000;
  long sink = 0;
  double t0 = now_s();
  for (int c = 0; c < kCycles; ++c) {
    EventQueue q;
    for (int i = 0; i < kEvents; ++i) {
      FakeAckContext ctx;
      ctx.pkt.seq = static_cast<std::uint64_t>(i);
      ctx.owner = &sink;
      ctx.idx = static_cast<std::size_t>(i);
      q.schedule_at(i, [ctx, &sink] { sink += static_cast<long>(ctx.pkt.seq); });
    }
    q.run_until(2 * kEvents);
  }
  double elapsed = now_s() - t0;
  if (sink == 0) std::abort();
  return elapsed * 1e9 / (kCycles * kEvents);
}

double simulated_second_cubic_ns_per_event(double cap_mbps) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(cap_mbps));
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Cubic>());
  double t0 = now_s();
  net.run_until(sec(1));
  double elapsed = now_s() - t0;
  return elapsed * 1e9 / static_cast<double>(net.events().processed());
}

double wl_sim_second_cubic_10_ns() { return simulated_second_cubic_ns_per_event(10); }
double wl_sim_second_cubic_100_ns() { return simulated_second_cubic_ns_per_event(100); }

double wl_seed_sweep_ms() {
  // The parallel experiment engine end to end: 12 seeds of a 4-simulated-
  // second wired run fanned over the process-wide pool.
  Scenario s = wired_scenario(24);
  s.duration = sec(4);
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };
  std::vector<RunRequest> reqs;
  for (int r = 0; r < 12; ++r)
    reqs.push_back(RunRequest::single(s, factory, 1000 + static_cast<std::uint64_t>(r)));
  double t0 = now_s();
  std::vector<RunSummary> out = run_many(reqs, default_pool());
  double elapsed = now_s() - t0;
  if (out.size() != reqs.size()) std::abort();
  return elapsed * 1e3;
}

double wl_ppo_inference_ns() {
  RlCcaConfig cfg = libra_rl_config();
  RlBrain brain(make_ppo_config(cfg, 3, {64, 64}), feature_frame_size(cfg.features));
  Vector s(brain.agent.config().state_dim, 0.1);
  constexpr int kIters = 2000;
  double acc = 0;
  double t0 = now_s();
  for (int i = 0; i < kIters; ++i) acc += brain.agent.act_greedy(s);
  double elapsed = now_s() - t0;
  if (std::isnan(acc)) std::abort();
  return elapsed * 1e9 / kIters;
}

double wl_ppo_update_ms() {
  // Isolates Ppo::update: the rollout buffer is refilled off the clock.
  RlCcaConfig cfg = libra_rl_config();
  PpoConfig ppo = make_ppo_config(cfg, 3, {64, 64});
  ppo.collect_only = true;
  PpoAgent agent(ppo);
  Rng rng(5);
  Vector s(ppo.state_dim);
  constexpr int kUpdates = 3;
  double elapsed = 0;
  for (int u = 0; u < kUpdates; ++u) {
    while (agent.buffered_transitions() < ppo.horizon) {
      for (double& v : s) v = rng.uniform(-1.0, 1.0);
      agent.give_reward(-std::abs(agent.act(s) - s[0]));
    }
    double t0 = now_s();
    agent.flush_update(0.0);
    elapsed += now_s() - t0;
  }
  return elapsed * 1e3 / kUpdates;
}

double wl_wide_batched_greedy_us() {
  // Paper-scale serving shape: one 2x512 policy evaluated for a fleet of 64
  // flows per decision tick, through the full BatchedPolicyEval path
  // (per-frame normalization + chunked forward_batch). Untrained weights —
  // decision cost is architecture-determined, not policy-determined.
  RlCcaConfig cfg = libra_rl_config();
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 3, {512, 512}),
                                         feature_frame_size(cfg.features));
  constexpr std::size_t kStates = 64;
  constexpr int kIters = 4;
  std::vector<Vector> states(kStates, Vector(brain->agent.config().state_dim));
  Rng rng(11);
  for (Vector& s : states)
    for (double& v : s) v = rng.uniform(-1.0, 1.0);
  BatchedPolicyEval eval(brain);
  Vector out;
  double acc = 0;
  double t0 = now_s();
  for (int i = 0; i < kIters; ++i) {
    eval.evaluate(states, out);
    acc += out[0];
  }
  double elapsed = now_s() - t0;
  if (std::isnan(acc)) std::abort();
  return elapsed * 1e6 / (kIters * kStates);
}

double wl_wide_forward_batch_us() {
  // The raw actor forward_batch on the same 2x512 net with no normalizer or
  // chunking overhead: isolates the GEMM + tanh loops the matrix kernels
  // carry.
  RlCcaConfig cfg = libra_rl_config();
  PpoAgent agent(make_ppo_config(cfg, 3, {512, 512}));
  constexpr std::size_t kBatch = 64;
  constexpr int kIters = 4;
  MlpWorkspace ws;
  agent.configure_policy_workspace(ws, kBatch);
  ws.set_batch(kBatch);
  Rng rng(11);
  for (double& v : ws.input().data()) v = rng.uniform(-1.0, 1.0);
  Vector out;
  double acc = 0;
  double t0 = now_s();
  for (int i = 0; i < kIters; ++i) {
    agent.act_greedy_batch(ws, out);
    acc += out[0];
  }
  double elapsed = now_s() - t0;
  if (std::isnan(acc)) std::abort();
  return elapsed * 1e6 / (kIters * kBatch);
}

double wl_telemetry_sample_1ms_ms() {
  // Telemetry overhead shape from ISSUE/EXPERIMENTS: a multi-flow wired run
  // with the 1 ms sampler on, timed end to end. Compare against the cubic
  // sim-second workloads to see the sampler's share; the acceptance bar is
  // single-digit percent.
  constexpr int kFlows = 20;
  Scenario s = wired_scenario(48);
  s.duration = sec(1);
  std::vector<FlowSpec> flows;
  for (int i = 0; i < kFlows; ++i)
    flows.push_back({[] { return std::make_unique<Cubic>(); }});
  ObsOptions obs;
  obs.telemetry.enabled = true;
  obs.telemetry.config.sample_interval = msec(1);
  double t0 = now_s();
  auto net = run_scenario(s, flows, 7, obs);
  double elapsed = now_s() - t0;
  if (net->telemetry().samples() == 0) std::abort();
  return elapsed * 1e3;
}

double wl_lte_trace_ms() {
  std::uint64_t seed = 1;
  constexpr int kTraces = 3;
  double acc = 0;
  double t0 = now_s();
  for (int i = 0; i < kTraces; ++i) {
    auto t = make_lte_trace(LteProfile::kDriving, sec(60), seed++);
    acc += t->rate_at(sec(30));
  }
  double elapsed = now_s() - t0;
  if (acc <= 0) std::abort();
  return elapsed * 1e3 / kTraces;
}

// --- bench_fleet: the many-flow engine -------------------------------------
// Incast fan-ins at 100 and 1000 flows, serial mode. ns/event is the per-
// event cost of the SoA engine (events/s in reports is its reciprocal) on a
// packet-dominated 960 Mbps fan-in. The soa/naive pair instead runs a 96 Mbps
// 1000-flow fan-in — per-flow throughput is tiny, so the naive engine's
// per-sender tick timers dominate its event count (~2/3 of all events) and
// the pair measures the SoA scan's speedup in wall ms per simulated second.

FleetSummary run_fleet_incast(int flows, bool soa_scan, double sim_seconds,
                              double rate_mbps = 960.0, bool health = false) {
  FleetSpec spec = incast_fleet(flows, rate_mbps, msec(1));
  spec.duration = static_cast<SimDuration>(sim_seconds * 1e6);
  spec.warmup = msec(250);
  std::vector<FleetFlowPlan> plans = plan_fleet_flows(spec, 11);
  FleetOptions opts = fleet_options(spec, 11, {});
  opts.soa_scan = soa_scan;
  FleetNetwork net(fleet_links(spec), opts);
  if (health) net.enable_health();
  for (const FleetFlowPlan& p : plans) {
    FleetFlowDef def;
    def.cca = std::make_unique<Cubic>();
    def.start = p.start;
    def.enter_hop = p.enter_hop;
    def.exit_hop = p.exit_hop;
    net.add_flow(std::move(def));
  }
  net.run();
  FleetSummary s = net.summarize();
  if (s.total_throughput_bps <= 0 || s.events_processed == 0) std::abort();
  return s;
}

double wl_fleet_incast_100_ns() {
  FleetSummary s = run_fleet_incast(100, /*soa_scan=*/true, 1.0);
  return s.wall_time_s * 1e9 / static_cast<double>(s.events_processed);
}

double wl_fleet_health_100_ns() {
  // fleet_incast_100 with the windowed health accumulators on: the pair
  // bounds the streaming-health hot-path overhead (acceptance: <= 5%).
  FleetSummary s =
      run_fleet_incast(100, /*soa_scan=*/true, 1.0, 960.0, /*health=*/true);
  return s.wall_time_s * 1e9 / static_cast<double>(s.events_processed);
}

double wl_fleet_incast_1000_ns() {
  FleetSummary s = run_fleet_incast(1000, /*soa_scan=*/true, 0.5);
  return s.wall_time_s * 1e9 / static_cast<double>(s.events_processed);
}

double wl_fleet_incast_1000_soa_ms() {
  FleetSummary s = run_fleet_incast(1000, /*soa_scan=*/true, 5.0, 96.0);
  return s.wall_time_s * 1e3 / s.sim_time_s;
}

double wl_fleet_incast_1000_naive_ms() {
  FleetSummary s = run_fleet_incast(1000, /*soa_scan=*/false, 5.0, 96.0);
  return s.wall_time_s * 1e3 / s.sim_time_s;
}

double wl_dctcp_incast_100_ns() {
  // The datacenter shape: DCTCP on an ECN-marking incast fan-in. Relative to
  // fleet_incast_100 this prices the marking check plus DCTCP's per-ACK CE
  // accounting; the workload also keeps the ECN hot path exercised nightly.
  FleetSpec spec = incast_fleet(100, 960.0, msec(1));
  spec.duration = sec(1);
  spec.warmup = msec(250);
  spec.ecn_threshold_bytes = 45 * 1000;
  std::vector<FleetFlowPlan> plans = plan_fleet_flows(spec, 11);
  FleetNetwork net(fleet_links(spec), fleet_options(spec, 11, {}));
  for (const FleetFlowPlan& p : plans) {
    FleetFlowDef def;
    def.cca = std::make_unique<Dctcp>();
    def.start = p.start;
    def.enter_hop = p.enter_hop;
    def.exit_hop = p.exit_hop;
    net.add_flow(std::move(def));
  }
  net.run();
  FleetSummary s = net.summarize();
  if (s.total_throughput_bps <= 0 || s.events_processed == 0) std::abort();
  return s.wall_time_s * 1e9 / static_cast<double>(s.events_processed);
}

double wl_policed_bbr_ns() {
  // BBR through a token-bucket policer: the adversarial-path shape. Exercises
  // the policer admission check on every packet plus BBR's long-term
  // bandwidth sampling (engaged, since the policer drops well over 20%).
  Scenario s = policed_wan_scenario(40.0, 10.0);
  LinkConfig cfg = s.link_config(11);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Bbr>());
  double t0 = now_s();
  net.run_until(sec(2));
  double elapsed = now_s() - t0;
  return elapsed * 1e9 / static_cast<double>(net.events().processed());
}

struct MetricDef {
  const char* name;
  const char* unit;
  double tolerance;  // default relative headroom recorded into the baseline
  double (*run)();
};

// Tolerances are generous because container CI shares cores; real
// regressions here are multiples, not percentages (the PR-1 hot-path work
// moved these 3-10x). Short workloads get the widest headroom — a scheduler
// hiccup on a 1-core box can double a 20 ms sample — while the long, stable
// ones (ppo_update ~45 ms/sample, stddev < 1%) stay tight.
constexpr MetricDef kMetrics[] = {
    {"event_queue_schedule_run", "ns/item", 0.50, wl_event_queue_ns},
    {"event_queue_large_capture", "ns/item", 0.50, wl_event_queue_large_capture_ns},
    {"sim_second_cubic_10mbps", "ns/event", 0.75, wl_sim_second_cubic_10_ns},
    {"sim_second_cubic_100mbps", "ns/event", 0.75, wl_sim_second_cubic_100_ns},
    {"seed_sweep_12x4s", "ms", 0.50, wl_seed_sweep_ms},
    {"ppo_inference_h64", "ns/call", 0.75, wl_ppo_inference_ns},
    {"ppo_update_h64", "ms/update", 0.35, wl_ppo_update_ms},
    {"wide_batched_greedy_2x512", "us/state", 0.75, wl_wide_batched_greedy_us},
    {"wide_forward_batch_2x512", "us/state", 0.75, wl_wide_forward_batch_us},
    {"telemetry_sample_1ms", "ms/run", 0.75, wl_telemetry_sample_1ms_ms},
    {"lte_trace_synthesis_60s", "ms/trace", 0.50, wl_lte_trace_ms},
    {"fleet_incast_100", "ns/event", 0.75, wl_fleet_incast_100_ns},
    {"fleet_health_100", "ns/event", 0.75, wl_fleet_health_100_ns},
    {"fleet_incast_1000", "ns/event", 0.75, wl_fleet_incast_1000_ns},
    {"fleet_incast_1000_soa", "ms/simsec", 0.75, wl_fleet_incast_1000_soa_ms},
    {"fleet_incast_1000_naive", "ms/simsec", 0.75, wl_fleet_incast_1000_naive_ms},
    {"dctcp_incast_100", "ns/event", 0.75, wl_dctcp_incast_100_ns},
    {"policed_bbr_40mbps", "ns/event", 0.75, wl_policed_bbr_ns},
};

struct MetricResult {
  double median = 0;
  double stddev = 0;
};

MetricResult summarize_samples(std::vector<double> samples) {
  MetricResult r;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  r.median = n % 2 ? samples[n / 2]
                   : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double mean = 0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(n);
  double var = 0;
  for (double s : samples) var += (s - mean) * (s - mean);
  r.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return r;
}

struct Options {
  std::string record_path;
  std::string compare_path;
  std::string label = "local";
  std::string git_sha;
  int repeats = 5;
  double tolerance_override = 0;  // 0: use per-metric tolerance from baseline
  bool profile = false;
  bool deterministic = false;  // --deterministic: force the scalar kernels
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--record=PATH | --compare=PATH) [--label=NAME]\n"
               "       [--git-sha=SHA] [--repeats=N] [--tolerance=FRAC]\n"
               "       [--profile] [--deterministic]\n\n"
               "  --record    run the suite and write a libra-bench-v1 baseline\n"
               "  --compare   run the suite and diff against a recorded baseline;\n"
               "              exits 1 if any metric regresses past its tolerance\n"
               "  --tolerance override every per-metric tolerance (e.g. 0.1;\n"
               "              negative values force failure, for harness tests)\n"
               "  --repeats   samples per metric (median reported; default 5)\n"
               "  --profile   enable the in-process profiler and print its\n"
               "              report after the suite\n"
               "  --deterministic\n"
               "              force the scalar kernel path (same as\n"
               "              LIBRA_SIMD=off) regardless of host ISA support\n";
  return 2;
}

std::string host_field(const char* v) { return v ? std::string(v) : std::string(); }

void write_baseline(const Options& opt,
                    const std::vector<MetricResult>& results,
                    const std::string& path) {
  utsname un{};
  uname(&un);
  std::string doc;
  JsonWriter w(doc);
  w.begin_object();
  w.key("schema").value("libra-bench-v1");
  w.key("label").value(opt.label);
  w.key("git_sha").value(opt.git_sha);
  w.key("host");
  w.begin_object();
  w.key("sysname").value(host_field(un.sysname));
  w.key("release").value(host_field(un.release));
  w.key("machine").value(host_field(un.machine));
  w.key("cores").value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  // Kernel ISA the suite actually ran with — the dispatch decision, not just
  // hardware capability — so cross-host comparisons stay interpretable.
  w.key("simd").value(simd::isa_name(simd::active()));
  w.end_object();
  w.key("repeats").value(static_cast<std::int64_t>(opt.repeats));
  w.key("metrics");
  w.begin_object();
  for (std::size_t i = 0; i < std::size(kMetrics); ++i) {
    w.key(kMetrics[i].name);
    w.begin_object();
    w.key("median").value(results[i].median);
    w.key("stddev").value(results[i].stddev);
    w.key("unit").value(kMetrics[i].unit);
    w.key("tolerance").value(kMetrics[i].tolerance);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_baseline: cannot write " << path << "\n";
    std::exit(1);
  }
  out << doc << "\n";
  std::cout << "\nrecorded baseline -> " << path << "\n";
}

int compare_baseline(const Options& opt,
                     const std::vector<MetricResult>& results,
                     const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_baseline: cannot read baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue base;
  try {
    base = json_parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "bench_baseline: malformed baseline: " << e.what() << "\n";
    return 1;
  }
  if (base.find("schema") == nullptr ||
      base.find("schema")->string_or("") != "libra-bench-v1") {
    std::cerr << "bench_baseline: " << path << " is not a libra-bench-v1 file\n";
    return 1;
  }
  const JsonValue* metrics = base.find("metrics");
  if (!metrics || !metrics->is_object()) {
    std::cerr << "bench_baseline: baseline has no metrics object\n";
    return 1;
  }
  // ISA mismatch is a warning, not a failure: comparing an AVX2 run against a
  // scalar-era baseline is exactly how a kernel speedup shows up, but the
  // reader should know the ratio mixes ISA and code changes.
  if (const JsonValue* host = base.find("host"); host && host->is_object()) {
    if (const JsonValue* isa = host->find("simd")) {
      const std::string base_isa = isa->string_or("");
      if (!base_isa.empty() && base_isa != simd::isa_name(simd::active()))
        std::printf(
            "\nwarning: kernel ISA differs from baseline (baseline=%s, this "
            "run=%s); timings are cross-ISA\n",
            base_isa.c_str(), simd::isa_name(simd::active()));
    }
  }

  std::printf("\n%-28s %12s %12s %7s %6s  %s\n", "metric", "baseline", "fresh",
              "ratio", "tol", "status");
  int regressions = 0, missing = 0;
  for (std::size_t i = 0; i < std::size(kMetrics); ++i) {
    const MetricDef& def = kMetrics[i];
    const JsonValue* m = metrics->find(def.name);
    if (!m || !m->is_object() || !m->find("median")) {
      std::printf("%-28s %12s %12.2f %7s %6s  %s\n", def.name, "-",
                  results[i].median, "-", "-", "MISSING (not in baseline)");
      ++missing;
      continue;
    }
    const double baseline = m->find("median")->number_or(0);
    double tol = opt.tolerance_override != 0
                     ? opt.tolerance_override
                     : (m->find("tolerance") ? m->find("tolerance")->number_or(def.tolerance)
                                             : def.tolerance);
    const double ratio = baseline > 0 ? results[i].median / baseline : 0;
    const bool regressed = baseline > 0 && results[i].median > baseline * (1.0 + tol);
    const bool improved = baseline > 0 && results[i].median < baseline * (1.0 - tol);
    const char* status = regressed ? "REGRESSED" : improved ? "ok (improved)" : "ok";
    if (regressed) ++regressions;
    std::printf("%-28s %12.2f %12.2f %7.3f %6.2f  %s\n", def.name, baseline,
                results[i].median, ratio, tol, status);
  }
  std::printf("\nbaseline: %s (label=%s sha=%s)\n", path.c_str(),
              base.find("label") ? base.find("label")->string_or("?").c_str() : "?",
              base.find("git_sha") ? base.find("git_sha")->string_or("?").c_str() : "?");
  if (missing > 0)
    std::printf("note: %d metric(s) absent from the baseline — re-record it\n", missing);
  if (regressions > 0) {
    std::printf("FAIL: %d metric(s) regressed past tolerance\n", regressions);
    return 1;
  }
  std::printf("PASS: all %zu metrics within tolerance\n", std::size(kMetrics));
  return 0;
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--record=", 0) == 0) opt.record_path = std::string(a.substr(9));
    else if (a.rfind("--compare=", 0) == 0) opt.compare_path = std::string(a.substr(10));
    else if (a.rfind("--label=", 0) == 0) opt.label = std::string(a.substr(8));
    else if (a.rfind("--git-sha=", 0) == 0) opt.git_sha = std::string(a.substr(10));
    else if (a.rfind("--repeats=", 0) == 0) opt.repeats = std::atoi(std::string(a.substr(10)).c_str());
    else if (a.rfind("--tolerance=", 0) == 0) opt.tolerance_override = std::atof(std::string(a.substr(12)).c_str());
    else if (a == "--profile") opt.profile = true;
    else if (a == "--deterministic") opt.deterministic = true;
    else return usage(argv[0]);
  }
  if (opt.record_path.empty() == opt.compare_path.empty()) return usage(argv[0]);
  if (opt.repeats < 1) opt.repeats = 1;

  if (opt.deterministic) simd::force(simd::Isa::kScalar);
  if (opt.profile) Profiler::instance().enable();

  std::printf("libra bench suite: %zu metrics x %d repeats (simd=%s)\n",
              std::size(kMetrics), opt.repeats, simd::isa_name(simd::active()));
  std::vector<MetricResult> results;
  results.reserve(std::size(kMetrics));
  for (const MetricDef& def : kMetrics) {
    def.run();  // one warmup sample (caches, pool spin-up) discarded
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(opt.repeats));
    for (int r = 0; r < opt.repeats; ++r) samples.push_back(def.run());
    results.push_back(summarize_samples(samples));
    std::printf("  %-28s %12.2f %s (stddev %.2f)\n", def.name,
                results.back().median, def.unit, results.back().stddev);
    std::fflush(stdout);
  }

  int rc = 0;
  if (!opt.record_path.empty()) write_baseline(opt, results, opt.record_path);
  else rc = compare_baseline(opt, results, opt.compare_path);

  if (opt.profile) {
    Profiler::instance().disable();
    std::cout << "\n" << Profiler::instance().text_report();
  }
  return rc;
}

}  // namespace
}  // namespace libra

int main(int argc, char** argv) { return libra::run(argc, argv); }
