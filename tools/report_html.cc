// report_html: renders telemetry JSONL dumps (obs/telemetry.h write_jsonl)
// as one self-contained HTML file — inline SVG, inline CSS, no external
// assets, so the file works from a mail attachment or CI artifact store.
//
//   report_html [--out=report.html] [--title=TEXT] RUN.jsonl [RUN2.jsonl...]
//
// Each input file is one run (e.g. one request of a run_many batch) and gets
// four lanes: per-flow throughput (from the acked_bytes counter's per-bucket
// deltas), smoothed RTT, cwnd, and bottleneck queue depth. Lines show each
// bucket's closing value; the shaded band is the M4 min/max envelope, so
// spikes survive decimation. Libra stage transitions (exact-time telemetry
// events) appear as dashed markers on the throughput lane.
//
// Inputs that carry a "health" object (the `fleet_run --health` summary)
// render as a fleet-health page instead: per-window fleet goodput, Jain
// index, and RTT lanes from the health timeline, followed by the
// severity-ranked incident table (obs/health.h detectors).
//
// Design rules (kept deliberately boring): one y-axis per lane, a fixed
// categorical palette assigned by flow id (never re-assigned when flows come
// and go), at most 8 plotted flows (the rest fold into a note), values
// readable without color via the per-flow table under the lanes.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.h"

namespace {

using libra::JsonValue;
using libra::json_parse;

constexpr const char* kUsage =
    "usage: report_html [--out=report.html] [--title=TEXT] [--top=N] "
    "RUN.jsonl...\n"
    "\n"
    "  --top=N  fleet runs: individual table rows for the N highest-\n"
    "           throughput flows when the per-flow table collapses to\n"
    "           percentile rows (default 8)\n";

/// Per-flow tables wider than this collapse to p50/p95/worst rows plus the
/// --top highest-throughput flows (fleet runs would otherwise render a
/// thousand-row table).
constexpr std::size_t kAggregateThreshold = 32;

// Fixed categorical palette (light / dark picks of the same hues). Flow id n
// always wears color n % 8: identity is stable across filters and runs.
constexpr int kPaletteSize = 8;
constexpr const char* kLight[kPaletteSize] = {
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948"};
constexpr const char* kDark[kPaletteSize] = {
    "#71a7f1", "#ff9a6b", "#4ed0a0", "#ffc04d",
    "#ff9fc2", "#39b839", "#8f7fe8", "#ff7a76"};
constexpr int kMaxPlottedFlows = 8;

// cwnd values at or above this are the "effectively unlimited" sentinel some
// CCAs report before their first measurement; they would flatten the y-scale.
constexpr double kCwndClamp = 1e12;

const char* stage_name(int stage) {
  switch (stage) {
    case 0: return "exploration";
    case 1: return "eval_first";
    case 2: return "eval_second";
    case 3: return "exploitation";
    default: return "stage?";
  }
}

struct Column {
  double bucket_us = 0;
  std::vector<double> first, last, min, max;
  std::vector<std::int64_t> count;
};

struct StageEvent {
  double t_us = 0;
  int flow = 0;
  int stage = 0;
};

struct RunData {
  std::string path;
  double interval_us = 0;
  std::map<int, std::map<std::string, Column>> flows;   // id -> col name -> data
  std::map<int, std::map<std::string, Column>> queues;
  std::vector<StageEvent> stages;
};

/// Parsed `fleet_run --health` document (one JSON object with a "health"
/// key; the surrounding summary fields are picked up when present).
struct HealthDoc {
  std::string path, scenario, cca;
  double window_s = 0, duration_s = 0, floor_ms = 0;
  int flows = 0;
  struct Win {
    double t_s = 0, goodput_bps = 0, jain = 0, avg_rtt_ms = 0, p95_rtt_ms = 0;
    double sent = 0, lost = 0, active = 0, progressing = 0;
  };
  std::vector<Win> wins;
  struct Inc {
    std::string kind, detail;
    int flow = -1, window = 0, span = 1;
    double severity = 0, value = 0, threshold = 0;
  };
  std::vector<Inc> incidents;
};

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  if (std::abs(v) >= 1000 || (std::abs(v) < 0.01 && v != 0)) {
    os.precision(3);
    os << v;
  } else {
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
  }
  return os.str();
}

bool load_run(const std::string& path, RunData& run) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return false;
  }
  run.path = path;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = json_parse(line);
    } catch (const std::exception& e) {
      std::cerr << "error: " << path << ":" << lineno << ": " << e.what() << "\n";
      return false;
    }
    if (const JsonValue* hdr = v.find("telemetry")) {
      (void)hdr;
      if (const JsonValue* iv = v.find("interval_us"))
        run.interval_us = iv->number_or(0);
      continue;
    }
    if (const JsonValue* ev = v.find("ev")) {
      if (ev->string_or("") == "stage") {
        StageEvent se;
        if (const JsonValue* t = v.find("t_us")) se.t_us = t->number_or(0);
        if (const JsonValue* f = v.find("flow"))
          se.flow = static_cast<int>(f->number_or(0));
        if (const JsonValue* s = v.find("stage"))
          se.stage = static_cast<int>(s->number_or(0));
        run.stages.push_back(se);
      }
      continue;
    }
    const JsonValue* kind = v.find("series");
    const JsonValue* id = v.find("id");
    const JsonValue* col_name = v.find("col");
    if (!kind || !id || !col_name) continue;
    Column col;
    if (const JsonValue* b = v.find("bucket_us")) col.bucket_us = b->number_or(0);
    auto fill = [&v](const char* key, std::vector<double>& out) {
      if (const JsonValue* arr = v.find(key); arr && arr->is_array())
        for (const JsonValue& x : arr->array) out.push_back(x.number_or(0));
    };
    fill("first", col.first);
    fill("last", col.last);
    fill("min", col.min);
    fill("max", col.max);
    if (const JsonValue* arr = v.find("count"); arr && arr->is_array())
      for (const JsonValue& x : arr->array)
        col.count.push_back(static_cast<std::int64_t>(x.number_or(0)));
    auto& group = kind->string_or("") == "queue" ? run.queues : run.flows;
    group[static_cast<int>(id->number_or(0))][col_name->string_or("")] =
        std::move(col);
  }
  if (run.flows.empty() && run.queues.empty()) {
    std::cerr << "error: " << path << ": no telemetry series found\n";
    return false;
  }
  return true;
}

/// True when the file's first non-empty line is a JSON object carrying a
/// "health" key (the fleet_run --health summary format).
bool sniff_health(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      JsonValue v = json_parse(line);
      return v.find("health") != nullptr;
    } catch (const std::exception&) {
      return false;
    }
  }
  return false;
}

bool load_health(const std::string& path, HealthDoc& hd) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return false;
  }
  hd.path = path;
  std::string line;
  while (std::getline(in, line) && line.empty()) {
  }
  JsonValue doc;
  try {
    doc = json_parse(line);
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << "\n";
    return false;
  }
  if (const JsonValue* s = doc.find("scenario")) hd.scenario = s->string_or("");
  if (const JsonValue* s = doc.find("cca")) hd.cca = s->string_or("");
  const JsonValue* h = doc.find("health");
  if (!h) {
    std::cerr << "error: " << path << ": no \"health\" object\n";
    return false;
  }
  if (const JsonValue* v = h->find("window_us"))
    hd.window_s = v->number_or(0) / 1e6;
  if (const JsonValue* v = h->find("duration_s")) hd.duration_s = v->number_or(0);
  if (const JsonValue* v = h->find("path_floor_rtt_ms"))
    hd.floor_ms = v->number_or(0);
  if (const JsonValue* v = h->find("flows"))
    hd.flows = static_cast<int>(v->number_or(0));
  auto num = [](const JsonValue& obj, const char* key) {
    const JsonValue* v = obj.find(key);
    return v ? v->number_or(0) : 0.0;
  };
  if (const JsonValue* arr = h->find("fleet"); arr && arr->is_array()) {
    for (const JsonValue& w : arr->array) {
      HealthDoc::Win win;
      win.t_s = num(w, "t_s");
      win.goodput_bps = num(w, "goodput_bps");
      win.jain = num(w, "jain");
      win.avg_rtt_ms = num(w, "avg_rtt_ms");
      win.p95_rtt_ms = num(w, "max_p95_rtt_ms");
      win.sent = num(w, "sent");
      win.lost = num(w, "lost");
      win.active = num(w, "active");
      win.progressing = num(w, "progressing");
      hd.wins.push_back(win);
    }
  }
  if (const JsonValue* arr = h->find("incidents"); arr && arr->is_array()) {
    for (const JsonValue& i : arr->array) {
      HealthDoc::Inc inc;
      if (const JsonValue* v = i.find("kind")) inc.kind = v->string_or("");
      if (const JsonValue* v = i.find("detail")) inc.detail = v->string_or("");
      inc.flow = static_cast<int>(num(i, "flow"));
      inc.window = static_cast<int>(num(i, "window"));
      inc.span = static_cast<int>(num(i, "span"));
      inc.severity = num(i, "severity");
      inc.value = num(i, "value");
      inc.threshold = num(i, "threshold");
      hd.incidents.push_back(inc);
    }
  }
  return true;
}

/// One plottable series: per-bucket (center time s, line value, band lo/hi).
struct Series {
  std::string label;
  int color = 0;  // palette index
  std::vector<double> t_s, line, lo, hi;
};

Series envelope_series(const Column& col, const std::string& label, int color,
                       double scale) {
  Series s;
  s.label = label;
  s.color = color;
  double bucket_s = col.bucket_us / 1e6;
  for (std::size_t i = 0; i < col.last.size(); ++i) {
    s.t_s.push_back((static_cast<double>(i) + 0.5) * bucket_s);
    s.line.push_back(col.last[i] * scale);
    s.lo.push_back(col.min[i] * scale);
    s.hi.push_back(col.max[i] * scale);
  }
  return s;
}

/// Per-bucket rate from a cumulative byte counter: delta(last) * 8 / width.
Series throughput_series(const Column& col, const std::string& label, int color) {
  Series s;
  s.label = label;
  s.color = color;
  double bucket_s = col.bucket_us / 1e6;
  if (bucket_s <= 0) return s;
  double prev = 0;
  for (std::size_t i = 0; i < col.last.size(); ++i) {
    double mbps = (col.last[i] - prev) * 8.0 / bucket_s / 1e6;
    prev = col.last[i];
    s.t_s.push_back((static_cast<double>(i) + 0.5) * bucket_s);
    s.line.push_back(std::max(0.0, mbps));
    s.lo.push_back(std::max(0.0, mbps));
    s.hi.push_back(std::max(0.0, mbps));
  }
  return s;
}

struct Lane {
  std::string title, unit;
  std::vector<Series> series;
  std::vector<StageEvent> annotations;
  bool band = true;
};

void render_lane(std::ostream& out, const Lane& lane) {
  constexpr double kW = 920, kH = 190;
  constexpr double kL = 64, kR = 12, kT = 26, kB = 24;  // margins
  const double plot_w = kW - kL - kR, plot_h = kH - kT - kB;

  double t_max = 0, v_max = 0;
  bool any = false;
  for (const Series& s : lane.series) {
    for (std::size_t i = 0; i < s.t_s.size(); ++i) {
      t_max = std::max(t_max, s.t_s[i]);
      double v = lane.band ? s.hi[i] : s.line[i];
      if (v < kCwndClamp) {  // ignore the unlimited-cwnd sentinel for scaling
        v_max = std::max(v_max, v);
        any = true;
      }
    }
  }
  if (!any || t_max <= 0) {
    out << "<p class=\"note\">(" << html_escape(lane.title)
        << ": no samples)</p>\n";
    return;
  }
  if (v_max <= 0) v_max = 1;
  v_max *= 1.05;

  auto X = [&](double t) { return kL + t / t_max * plot_w; };
  auto Y = [&](double v) {
    double c = std::min(v, v_max);
    return kT + plot_h - c / v_max * plot_h;
  };

  out << "<figure><figcaption>" << html_escape(lane.title)
      << " <span class=\"unit\">(" << html_escape(lane.unit)
      << ")</span></figcaption>\n";
  out << "<svg viewBox=\"0 0 " << kW << " " << kH
      << "\" role=\"img\" aria-label=\"" << html_escape(lane.title) << "\">\n";

  // Recessive grid: three horizontal rules + labeled y ticks, x ticks in s.
  for (int g = 0; g <= 2; ++g) {
    double v = v_max * g / 2.0;
    double y = Y(v);
    out << "<line class=\"grid\" x1=\"" << kL << "\" y1=\"" << y << "\" x2=\""
        << kW - kR << "\" y2=\"" << y << "\"/>";
    out << "<text class=\"tick\" x=\"" << kL - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\">" << fmt(v, v_max < 10 ? 2 : 0)
        << "</text>\n";
  }
  for (int g = 0; g <= 4; ++g) {
    double t = t_max * g / 4.0;
    out << "<text class=\"tick\" x=\"" << X(t) << "\" y=\"" << kH - 8
        << "\" text-anchor=\"middle\">" << fmt(t, 1) << "s</text>\n";
  }

  // Stage annotations: dashed verticals, colored by flow, under the data.
  for (const StageEvent& ev : lane.annotations) {
    double x = X(ev.t_us / 1e6);
    out << "<line class=\"stage\" x1=\"" << x << "\" y1=\"" << kT << "\" x2=\""
        << x << "\" y2=\"" << kT + plot_h << "\" stroke=\"var(--s"
        << ev.flow % kPaletteSize << ")\"><title>" << stage_name(ev.stage)
        << " flow " << ev.flow << " @ " << fmt(ev.t_us / 1e6, 3)
        << "s</title></line>\n";
  }

  for (const Series& s : lane.series) {
    if (s.t_s.empty()) continue;
    if (lane.band) {
      std::ostringstream pts;
      for (std::size_t i = 0; i < s.t_s.size(); ++i)
        pts << X(s.t_s[i]) << "," << Y(s.hi[i]) << " ";
      for (std::size_t i = s.t_s.size(); i-- > 0;)
        pts << X(s.t_s[i]) << "," << Y(s.lo[i]) << " ";
      out << "<polygon class=\"band\" fill=\"var(--s" << s.color
          << ")\" points=\"" << pts.str() << "\"><title>" << html_escape(s.label)
          << " min-max envelope</title></polygon>\n";
    }
    std::ostringstream pts;
    for (std::size_t i = 0; i < s.t_s.size(); ++i)
      pts << X(s.t_s[i]) << "," << Y(s.line[i]) << " ";
    out << "<polyline class=\"line\" stroke=\"var(--s" << s.color
        << ")\" points=\"" << pts.str() << "\"><title>" << html_escape(s.label)
        << "</title></polyline>\n";
  }
  out << "</svg></figure>\n";
}

void render_legend(std::ostream& out, const std::vector<Series>& series) {
  if (series.size() < 2) return;  // a single series is named by the title
  out << "<div class=\"legend\">";
  for (const Series& s : series) {
    out << "<span><i style=\"background:var(--s" << s.color << ")\"></i>"
        << html_escape(s.label) << "</span>";
  }
  out << "</div>\n";
}

void render_run(std::ostream& out, const RunData& run, std::size_t top_flows) {
  out << "<section>\n<h2>" << html_escape(run.path) << "</h2>\n";
  out << "<p class=\"note\">sample interval " << fmt(run.interval_us / 1e3, 2)
      << " ms, " << run.flows.size() << " flow(s), " << run.queues.size()
      << " queue(s)";
  if (!run.stages.empty()) out << ", " << run.stages.size() << " stage events";
  out << "</p>\n";

  int plotted = 0, folded = 0;
  std::vector<int> flow_ids;
  for (const auto& [id, cols] : run.flows) {
    if (plotted < kMaxPlottedFlows) {
      flow_ids.push_back(id);
      ++plotted;
    } else {
      ++folded;
    }
  }
  if (folded > 0) {
    out << "<p class=\"note\">plotting the first " << kMaxPlottedFlows
        << " flows; " << folded
        << " more appear in the table only</p>\n";
  }

  auto flow_lane = [&](const char* col, const char* title, const char* unit,
                       double scale) {
    Lane lane;
    lane.title = title;
    lane.unit = unit;
    for (int id : flow_ids) {
      auto it = run.flows.at(id).find(col);
      if (it == run.flows.at(id).end()) continue;
      lane.series.push_back(envelope_series(
          it->second, "flow " + std::to_string(id), id % kPaletteSize, scale));
    }
    return lane;
  };

  // Lane 1: throughput, with the Libra stage transitions overlaid (they
  // explain the rate plateaus — exploration/evaluation/exploitation).
  {
    Lane lane;
    lane.title = "Throughput";
    lane.unit = "Mbps";
    lane.band = false;
    for (int id : flow_ids) {
      auto it = run.flows.at(id).find("acked_bytes");
      if (it == run.flows.at(id).end()) continue;
      lane.series.push_back(throughput_series(
          it->second, "flow " + std::to_string(id), id % kPaletteSize));
    }
    // Cap annotation clutter: fold to at most ~120 markers, evenly thinned.
    std::size_t stride = run.stages.size() / 120 + 1;
    for (std::size_t i = 0; i < run.stages.size(); i += stride)
      lane.annotations.push_back(run.stages[i]);
    if (stride > 1) {
      out << "<p class=\"note\">stage markers thinned 1:" << stride << " ("
          << run.stages.size() << " total)</p>\n";
    }
    render_legend(out, lane.series);
    render_lane(out, lane);
  }

  {
    Lane lane = flow_lane("srtt_ms", "Smoothed RTT", "ms", 1.0);
    render_lane(out, lane);
  }
  {
    Lane lane = flow_lane("cwnd_bytes", "Congestion window", "KiB", 1.0 / 1024);
    render_lane(out, lane);
  }
  {
    Lane lane;
    lane.title = "Bottleneck queue depth";
    lane.unit = "KiB";
    for (const auto& [id, cols] : run.queues) {
      auto it = cols.find("depth_bytes");
      if (it == cols.end()) continue;
      lane.series.push_back(envelope_series(it->second,
                                            "queue " + std::to_string(id),
                                            id % kPaletteSize, 1.0 / 1024));
    }
    render_lane(out, lane);
  }

  // Table view: every flow (including folded ones), no color required. Fleet
  // runs (> kAggregateThreshold flows) collapse to the top flows by
  // throughput plus cross-flow percentile rows — p50, p95 and the worst tail
  // per column (min throughput, max delay/loss).
  struct TableRow {
    int id = 0;
    double thr = 0, srtt_last = 0, srtt_max = 0, cwnd_max = 0, losses = 0;
  };
  std::vector<TableRow> rows;
  for (const auto& [id, cols] : run.flows) {
    TableRow r;
    r.id = id;
    if (auto it = cols.find("acked_bytes"); it != cols.end() &&
                                            !it->second.last.empty()) {
      double dur_s = it->second.bucket_us / 1e6 *
                     static_cast<double>(it->second.last.size());
      if (dur_s > 0) r.thr = it->second.last.back() * 8.0 / dur_s / 1e6;
    }
    if (auto it = cols.find("srtt_ms"); it != cols.end() &&
                                        !it->second.last.empty()) {
      r.srtt_last = it->second.last.back();
      for (double v : it->second.max) r.srtt_max = std::max(r.srtt_max, v);
    }
    if (auto it = cols.find("cwnd_bytes"); it != cols.end()) {
      for (double v : it->second.max)
        if (v < kCwndClamp) r.cwnd_max = std::max(r.cwnd_max, v);
    }
    if (auto it = cols.find("lost_packets"); it != cols.end() &&
                                             !it->second.last.empty()) {
      r.losses = it->second.last.back();
    }
    rows.push_back(r);
  }

  out << "<table><thead><tr><th>flow</th><th>mean throughput (Mbps)</th>"
         "<th>srtt last (ms)</th><th>srtt max (ms)</th>"
         "<th>cwnd max (KiB)</th><th>losses</th></tr></thead><tbody>\n";
  auto emit = [&out](const std::string& label, const TableRow& r, bool chip) {
    out << "<tr><td>";
    if (chip) {
      out << "<i class=\"chip\" style=\"background:var(--s"
          << r.id % kPaletteSize << ")\"></i>";
    }
    out << html_escape(label) << "</td><td>" << fmt(r.thr) << "</td><td>"
        << fmt(r.srtt_last, 1) << "</td><td>" << fmt(r.srtt_max, 1)
        << "</td><td>" << fmt(r.cwnd_max / 1024, 1) << "</td><td>"
        << fmt(r.losses, 0) << "</td></tr>\n";
  };
  if (rows.size() <= kAggregateThreshold) {
    for (const TableRow& r : rows) emit(std::to_string(r.id), r, true);
  } else {
    std::vector<TableRow> by_thr = rows;
    std::sort(by_thr.begin(), by_thr.end(),
              [](const TableRow& a, const TableRow& b) { return a.thr > b.thr; });
    const std::size_t top = std::min<std::size_t>(top_flows, by_thr.size());
    for (std::size_t i = 0; i < top; ++i)
      emit("#" + std::to_string(by_thr[i].id), by_thr[i], true);
    auto column = [&rows](double TableRow::*member) {
      std::vector<double> v;
      v.reserve(rows.size());
      for (const TableRow& r : rows) v.push_back(r.*member);
      std::sort(v.begin(), v.end());
      return v;
    };
    auto pct = [](const std::vector<double>& v, double p) {
      if (v.empty()) return 0.0;
      double idx = p / 100.0 * static_cast<double>(v.size() - 1);
      auto lo = static_cast<std::size_t>(idx);
      std::size_t hi = std::min(lo + 1, v.size() - 1);
      return v[lo] + (idx - static_cast<double>(lo)) * (v[hi] - v[lo]);
    };
    auto aggregate = [&](const std::string& label, double lo_p, double hi_p) {
      TableRow r;
      r.thr = pct(column(&TableRow::thr), lo_p);          // favorable: high
      r.srtt_last = pct(column(&TableRow::srtt_last), hi_p);  // damage: low
      r.srtt_max = pct(column(&TableRow::srtt_max), hi_p);
      r.cwnd_max = pct(column(&TableRow::cwnd_max), lo_p);
      r.losses = pct(column(&TableRow::losses), hi_p);
      emit(label, r, false);
    };
    const std::string n = std::to_string(rows.size());
    aggregate("p50 of " + n, 50, 50);
    aggregate("p95 of " + n, 5, 95);
    aggregate("worst of " + n, 0, 100);
    out << "</tbody></table>\n"
        << "<p class=\"note\">" << n << " flows: top " << top
        << " by throughput, then cross-flow percentiles (worst = "
           "unfavorable tail per column)</p>\n</section>\n";
    return;
  }
  out << "</tbody></table>\n</section>\n";
}

void render_health(std::ostream& out, const HealthDoc& hd) {
  out << "<section>\n<h2>" << html_escape(hd.path) << "</h2>\n";
  out << "<p class=\"note\">fleet health";
  if (!hd.scenario.empty()) out << " — " << html_escape(hd.scenario);
  if (!hd.cca.empty()) out << " / " << html_escape(hd.cca);
  out << ": " << hd.flows << " flows, " << fmt(hd.window_s * 1e3, 0)
      << " ms windows over " << fmt(hd.duration_s, 1)
      << " s, path floor RTT " << fmt(hd.floor_ms, 2) << " ms, "
      << hd.incidents.size() << " incident(s)</p>\n";

  auto lane_of = [&](const char* title, const char* unit, int color,
                     double (*line)(const HealthDoc::Win&),
                     double (*hi)(const HealthDoc::Win&)) {
    Lane lane;
    lane.title = title;
    lane.unit = unit;
    lane.band = hi != nullptr;
    Series s;
    s.label = title;
    s.color = color;
    for (const HealthDoc::Win& w : hd.wins) {
      const double v = line(w);
      s.t_s.push_back(w.t_s + hd.window_s / 2);
      s.line.push_back(v);
      s.lo.push_back(v);
      s.hi.push_back(hi ? hi(w) : v);
    }
    lane.series.push_back(std::move(s));
    return lane;
  };

  render_lane(out, lane_of(
                       "Fleet goodput", "Mbps", 0,
                       [](const HealthDoc::Win& w) { return w.goodput_bps / 1e6; },
                       nullptr));
  render_lane(out, lane_of(
                       "Jain fairness (active flows)", "index", 2,
                       [](const HealthDoc::Win& w) { return w.jain; }, nullptr));
  // RTT lane: line = fleet mean, band up to the worst per-flow p95.
  render_lane(out, lane_of(
                       "RTT (mean, band to worst flow p95)", "ms", 1,
                       [](const HealthDoc::Win& w) { return w.avg_rtt_ms; },
                       [](const HealthDoc::Win& w) { return w.p95_rtt_ms; }));
  render_lane(out, lane_of(
                       "Losses per window", "packets", 7,
                       [](const HealthDoc::Win& w) { return w.lost; }, nullptr));

  if (hd.incidents.empty()) {
    out << "<p class=\"note\">no incidents detected</p>\n</section>\n";
    return;
  }
  constexpr std::size_t kMaxIncidentRows = 40;
  out << "<table><thead><tr><th>kind</th><th>flow</th><th>from (s)</th>"
         "<th>span (s)</th><th>severity</th><th>value</th><th>threshold</th>"
         "<th>detail</th></tr></thead><tbody>\n";
  const std::size_t n = std::min(kMaxIncidentRows, hd.incidents.size());
  for (std::size_t i = 0; i < n; ++i) {
    const HealthDoc::Inc& inc = hd.incidents[i];
    out << "<tr><td>" << html_escape(inc.kind) << "</td><td>"
        << (inc.flow < 0 ? std::string("fleet") : std::to_string(inc.flow))
        << "</td><td>" << fmt(static_cast<double>(inc.window) * hd.window_s, 1)
        << "</td><td>" << fmt(static_cast<double>(inc.span) * hd.window_s, 1)
        << "</td><td>" << fmt(inc.severity) << "</td><td>" << fmt(inc.value)
        << "</td><td>" << fmt(inc.threshold) << "</td><td class=\"detail\">"
        << html_escape(inc.detail) << "</td></tr>\n";
  }
  out << "</tbody></table>\n";
  if (hd.incidents.size() > kMaxIncidentRows) {
    out << "<p class=\"note\">showing the " << kMaxIncidentRows
        << " most severe of " << hd.incidents.size() << " incidents</p>\n";
  }
  out << "</section>\n";
}

void render_document(std::ostream& out, const std::string& title,
                     const std::vector<RunData>& runs,
                     const std::vector<HealthDoc>& healths,
                     std::size_t top_flows) {
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n"
         "<meta name=\"viewport\" content=\"width=device-width\">\n"
         "<title>"
      << html_escape(title) << "</title>\n<style>\n";
  out << ":root{--bg:#fcfcfb;--ink:#1a1a19;--muted:#6b6b68;--grid:#e4e4e0;";
  for (int i = 0; i < kPaletteSize; ++i)
    out << "--s" << i << ":" << kLight[i] << ";";
  out << "}\n@media (prefers-color-scheme: dark){:root{--bg:#1a1a19;"
         "--ink:#fcfcfb;--muted:#9b9b96;--grid:#3a3a37;";
  for (int i = 0; i < kPaletteSize; ++i)
    out << "--s" << i << ":" << kDark[i] << ";";
  out << "}}\n";
  out << "body{background:var(--bg);color:var(--ink);font:15px/1.5 "
         "system-ui,sans-serif;max-width:980px;margin:2rem auto;padding:0 "
         "1rem}\n"
         "h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2.2rem}\n"
         ".note{color:var(--muted);font-size:.85rem}\n"
         ".unit{color:var(--muted);font-weight:normal}\n"
         "figure{margin:0 0 1.2rem}figcaption{font-weight:600;font-size:.95rem;"
         "margin-bottom:.2rem}\n"
         "svg{width:100%;height:auto;display:block}\n"
         ".grid{stroke:var(--grid);stroke-width:1}\n"
         ".tick{fill:var(--muted);font-size:11px}\n"
         ".line{fill:none;stroke-width:2;stroke-linejoin:round}\n"
         ".band{opacity:.16;stroke:none}\n"
         ".stage{stroke-width:1;stroke-dasharray:3 3;opacity:.55}\n"
         ".legend{display:flex;flex-wrap:wrap;gap:.4rem 1rem;font-size:.85rem;"
         "margin:.3rem 0}\n"
         ".legend i,.chip{display:inline-block;width:10px;height:10px;"
         "border-radius:2px;margin-right:.35rem}\n"
         "table{border-collapse:collapse;font-size:.85rem;margin:.6rem 0}\n"
         "td,th{border:1px solid var(--grid);padding:.25rem .6rem;"
         "text-align:right}th:first-child,td:first-child{text-align:left}\n"
         "td.detail{text-align:left;color:var(--muted)}\n";
  out << "</style>\n</head>\n<body>\n<h1>" << html_escape(title) << "</h1>\n";
  for (const RunData& run : runs) render_run(out, run, top_flows);
  for (const HealthDoc& hd : healths) render_health(out, hd);
  out << "</body>\n</html>\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "report.html";
  std::string title = "Telemetry report";
  std::size_t top_flows = 8;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = std::string(a.substr(6));
    } else if (a.rfind("--title=", 0) == 0) {
      title = std::string(a.substr(8));
    } else if (a.rfind("--top=", 0) == 0) {
      int n = std::atoi(std::string(a.substr(6)).c_str());
      top_flows = n > 0 ? static_cast<std::size_t>(n) : 0;
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << kUsage;
      return 2;
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<RunData> runs;
  std::vector<HealthDoc> healths;
  for (const std::string& path : paths) {
    if (sniff_health(path)) {
      HealthDoc hd;
      if (!load_health(path, hd)) return 1;
      healths.push_back(std::move(hd));
      continue;
    }
    RunData run;
    if (!load_run(path, run)) return 1;
    runs.push_back(std::move(run));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << "\n";
    return 1;
  }
  render_document(out, title, runs, healths, top_flows);
  out.close();
  std::cerr << "wrote " << out_path << " (" << runs.size() << " run(s), "
            << healths.size() << " health doc(s))\n";
  return 0;
}
