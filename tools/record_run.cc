// record_run: records a short simulator run with the flight recorder
// streaming JSONL to a file, then prints the run summary as JSON. Uses only
// classic CCAs (no RL training), so it runs in well under a second — the CI
// trace round-trip smoke test (scripts/check.sh) pipes its output through
// trace_summarize.
//
//   record_run [--out=trace.jsonl] [--cca=cubic|bbr] [--rate=MBPS]
//              [--duration=SECS] [--seed=N] [--meta] [--profile]
//
// --meta appends the end-of-run "run" metadata event (wall/sim time) to the
// trace; off by default so default traces stay byte-identical per seed.
// --profile enables the in-process profiler and prints its call-tree report
// to stderr after the run.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/profiler.h"

int main(int argc, char** argv) {
  using namespace libra;
  std::string out_path = "trace.jsonl";
  std::string cca = "cubic";
  double rate_mbps = 48;
  double duration_s = 5;
  std::uint64_t seed = 1;
  bool meta = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = std::string(a.substr(6));
    } else if (a.rfind("--cca=", 0) == 0) {
      cca = std::string(a.substr(6));
    } else if (a.rfind("--rate=", 0) == 0) {
      rate_mbps = std::atof(std::string(a.substr(7)).c_str());
    } else if (a.rfind("--duration=", 0) == 0) {
      duration_s = std::atof(std::string(a.substr(11)).c_str());
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::atoll(std::string(a.substr(7)).c_str()));
    } else if (a == "--meta") {
      meta = true;
    } else if (a == "--profile") {
      profile = true;
    } else {
      std::cerr << "usage: record_run [--out=trace.jsonl] [--cca=cubic|bbr] "
                   "[--rate=MBPS] [--duration=SECS] [--seed=N] [--meta] "
                   "[--profile]\n";
      return 2;
    }
  }

  CcaFactory factory;
  if (cca == "cubic") {
    factory = [] { return std::make_unique<Cubic>(); };
  } else if (cca == "bbr") {
    factory = [] { return std::make_unique<Bbr>(); };
  } else {
    std::cerr << "error: unknown --cca=" << cca << " (cubic|bbr)\n";
    return 2;
  }

  Scenario s = wired_scenario(rate_mbps);
  s.duration = seconds(duration_s);

  ObsOptions obs;
  obs.record = true;
  obs.trace_path = out_path;
  obs.trace_meta = meta;

  if (profile) Profiler::instance().enable();
  auto net = run_scenario(s, {{factory}}, seed, obs);
  RunSummary summary = summarize(*net, sec(1), s.duration);

  std::cerr << "recorded " << net->recorder().recorded() << " events to "
            << out_path << "\n";
  std::cout << to_json(summary) << "\n";
  if (profile) {
    Profiler::instance().disable();
    std::cerr << "\n" << Profiler::instance().text_report();
  }
  return 0;
}
