// record_run: records a short simulator run with the flight recorder
// streaming JSONL to a file, then prints the run summary as JSON. Uses
// inference-mode CCAs only (no RL training), so it runs in well under a
// second — the CI trace round-trip smoke test (scripts/check.sh) pipes its
// output through trace_summarize, and the telemetry smoke leg feeds its
// telemetry dumps to report_html.
//
//   record_run [--out=trace.jsonl] [--cca=cubic|bbr|libra] [--rate=MBPS]
//              [--duration=SECS] [--seed=N] [--flows=N] [--meta] [--profile]
//              [--no-trace] [--telemetry=FILE.jsonl] [--telemetry-bin=FILE.bin]
//              [--sample-ms=MS]
//
// --meta appends the end-of-run "run" metadata event (wall/sim time) to the
// trace; off by default so default traces stay byte-identical per seed.
// --profile enables the in-process profiler and prints its call-tree report
// to stderr after the run.
// --no-trace disables the flight recorder entirely (telemetry-only runs and
// clean overhead measurements). --telemetry/--telemetry-bin enable the
// columnar sampler and dump it post-run; --sample-ms sets its interval.
// stderr always reports events processed and events/s, so overhead of the
// sampler is measurable by diffing two invocations.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "core/factory.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/profiler.h"

namespace {

constexpr const char* kUsage =
    "usage: record_run [--out=trace.jsonl] [--cca=cubic|bbr|libra] "
    "[--rate=MBPS] [--duration=SECS] [--seed=N] [--flows=N] [--meta] "
    "[--profile] [--no-trace] [--telemetry=FILE.jsonl] "
    "[--telemetry-bin=FILE.bin] [--sample-ms=MS]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace libra;
  std::string out_path = "trace.jsonl";
  std::string telemetry_path;
  std::string telemetry_bin_path;
  std::string cca = "cubic";
  double rate_mbps = 48;
  double duration_s = 5;
  double sample_ms = 1.0;
  std::uint64_t seed = 1;
  int n_flows = 1;
  bool meta = false;
  bool profile = false;
  bool trace = true;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = std::string(a.substr(6));
    } else if (a.rfind("--cca=", 0) == 0) {
      cca = std::string(a.substr(6));
    } else if (a.rfind("--rate=", 0) == 0) {
      rate_mbps = std::atof(std::string(a.substr(7)).c_str());
    } else if (a.rfind("--duration=", 0) == 0) {
      duration_s = std::atof(std::string(a.substr(11)).c_str());
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::atoll(std::string(a.substr(7)).c_str()));
    } else if (a.rfind("--flows=", 0) == 0) {
      n_flows = std::atoi(std::string(a.substr(8)).c_str());
    } else if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_path = std::string(a.substr(12));
    } else if (a.rfind("--telemetry-bin=", 0) == 0) {
      telemetry_bin_path = std::string(a.substr(16));
    } else if (a.rfind("--sample-ms=", 0) == 0) {
      sample_ms = std::atof(std::string(a.substr(12)).c_str());
    } else if (a == "--meta") {
      meta = true;
    } else if (a == "--no-trace") {
      trace = false;
    } else if (a == "--profile") {
      profile = true;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (n_flows < 1) {
    std::cerr << "error: --flows must be >= 1\n";
    return 2;
  }

  CcaFactory factory;
  if (cca == "cubic") {
    factory = [] { return std::make_unique<Cubic>(); };
  } else if (cca == "bbr") {
    factory = [] { return std::make_unique<Bbr>(); };
  } else if (cca == "libra") {
    // Inference-mode C-Libra over an untrained brain: the control cycle (and
    // its telemetry stage events) runs fine; decisions are just naive.
    auto brain = make_libra_rl_brain(seed);
    factory = [brain] { return make_c_libra(brain, /*training=*/false); };
  } else {
    std::cerr << "error: unknown --cca=" << cca << " (cubic|bbr|libra)\n";
    return 2;
  }

  Scenario s = wired_scenario(rate_mbps);
  s.duration = seconds(duration_s);

  ObsOptions obs;
  obs.record = trace;
  if (trace) obs.trace_path = out_path;
  obs.trace_meta = meta;
  if (!telemetry_path.empty() || !telemetry_bin_path.empty()) {
    obs.telemetry.enabled = true;
    obs.telemetry.config.sample_interval =
        std::max<SimDuration>(1, static_cast<SimDuration>(sample_ms * 1000.0));
    obs.telemetry.jsonl_path = telemetry_path;
    obs.telemetry.binary_path = telemetry_bin_path;
  }

  std::vector<FlowSpec> flows;
  for (int i = 0; i < n_flows; ++i) flows.push_back({factory});

  if (profile) Profiler::instance().enable();
  auto net = run_scenario(s, flows, seed, obs);
  RunSummary summary = summarize(*net, sec(1), s.duration);

  if (trace) {
    std::cerr << "recorded " << net->recorder().recorded() << " events to "
              << out_path << "\n";
  }
  if (obs.telemetry.enabled) {
    std::cerr << "telemetry: " << net->telemetry().samples() << " samples, "
              << net->telemetry().stage_events().size() << " stage events, "
              << "bucket width " << to_msec(net->telemetry().bucket_width())
              << " ms\n";
  }
  const double wall = net->wall_time_s();
  const auto events = net->events().processed();
  std::cerr << "events " << events << " wall_s " << wall << " events_per_s "
            << (wall > 0 ? static_cast<double>(events) / wall : 0.0) << "\n";
  std::cout << to_json(summary) << "\n";
  if (profile) {
    Profiler::instance().disable();
    std::cerr << "\n" << Profiler::instance().text_report();
  }
  return 0;
}
