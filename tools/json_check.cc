// Validates that each argument file parses as one well-formed JSON document
// (or, with --jsonl, as one document per line). Exit 0 when everything
// parses, 1 otherwise — check.sh uses this to smoke-test the JSON the bench
// and profiling paths emit.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.h"

namespace {

bool check_document(const std::string& path, const std::string& text) {
  try {
    libra::json_parse(text);
    return true;
  } catch (const std::exception& e) {
    std::cerr << path << ": " << e.what() << "\n";
    return false;
  }
}

bool check_jsonl(const std::string& path, const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0, docs = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      libra::json_parse(line);
      ++docs;
    } catch (const std::exception& e) {
      std::cerr << path << ":" << lineno << ": " << e.what() << "\n";
      ok = false;
    }
  }
  if (docs == 0) {
    std::cerr << path << ": no JSON documents found\n";
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--jsonl") jsonl = true;
    else paths.emplace_back(a);
  }
  if (paths.empty()) {
    std::cerr << "usage: json_check [--jsonl] FILE...\n";
    return 2;
  }

  bool ok = true;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ok = false;
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ok &= jsonl ? check_jsonl(path, buf.str()) : check_document(path, buf.str());
  }
  if (ok) std::cout << paths.size() << " file(s) ok\n";
  return ok ? 0 : 1;
}
