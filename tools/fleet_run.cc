// Fleet-scale scenario runner CLI.
//
// Runs one fleet topology (incast or parking lot) under the serial or the
// sharded engine and prints a deterministic JSON summary: every field is an
// exact function of the simulated run (wall time is reported separately on
// stderr), so `fleet_run --mode=serial ...` and `fleet_run --mode=sharded
// --threads=N ...` must emit byte-identical documents — check.sh diffs them.
//
//   fleet_run --topo=incast --flows=100 --cca=cubic --mode=sharded --threads=4
//   fleet_run --topo=parking_lot --hops=4 --flows=64 --duration=5 --churn
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/fleet_scenario.h"
#include "harness/zoo.h"
#include "obs/json.h"

namespace libra {
namespace {

struct Options {
  std::string topo = "incast";
  std::string cca = "cubic";
  int flows = 100;
  int hops = 4;
  int long_flows = 4;
  double rate_mbps = 0;  // 0: topology default
  double duration_s = 10;
  double warmup_s = 1;
  std::string mode = "serial";
  std::size_t threads = 0;
  int sender_shards = 0;
  bool churn = false;
  std::uint64_t seed = 1;
  bool events_only = false;
  bool soa = true;
  double stagger_ms = -1;  // <0: topology default
  std::int64_t buffer_bytes = 0;  // 0: topology default
  bool health = false;
  std::size_t record = 0;  // >0: black-box ring capacity (events)
  std::int64_t ecn_bytes = 0;      // >0: ECN marking threshold (+ ECT senders)
  double policer_rate_mbps = 0;    // >0: token-bucket policer on every hop
  std::int64_t policer_burst = 30 * 1000;
  bool policer_mark = false;       // policer CE-marks instead of dropping
  double policer_start_s = 0;
  double policer_stop_s = -1;      // <0: policer active to end of run
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--topo=incast|parking_lot] [--flows=N] [--hops=H]\n"
         "       [--long-flows=N] [--cca=NAME] [--rate=MBPS] [--duration=S]\n"
         "       [--warmup=S] [--mode=serial|sharded] [--threads=N]\n"
         "       [--sender-shards=N] [--churn] [--seed=N] [--events-only]\n"
         "       [--soa=0|1] [--stagger=MS] [--buffer=BYTES] [--health]\n"
         "       [--record=EVENTS] [--ecn=BYTES] [--policer-rate=MBPS]\n"
         "       [--policer-burst=BYTES] [--policer-mark]\n"
         "       [--policer-start=S] [--policer-stop=S]\n\n"
         "Prints a deterministic JSON summary of the run on stdout (identical\n"
         "for serial and sharded modes at any thread count) and the\n"
         "host-dependent wall-clock stats on stderr.\n\n"
         "--health adds a \"health\" object: the windowed fleet timeline plus\n"
         "severity-ranked anomaly incidents (also mode-invariant).\n"
         "--record=N keeps a black-box ring of the last N trace events\n"
         "(bounded memory; serial mode only); ring stats go to stderr.\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--topo=")) {
      o.topo = v;
    } else if (const char* v = value("--cca=")) {
      o.cca = v;
    } else if (const char* v = value("--flows=")) {
      o.flows = std::atoi(v);
    } else if (const char* v = value("--hops=")) {
      o.hops = std::atoi(v);
    } else if (const char* v = value("--long-flows=")) {
      o.long_flows = std::atoi(v);
    } else if (const char* v = value("--rate=")) {
      o.rate_mbps = std::atof(v);
    } else if (const char* v = value("--duration=")) {
      o.duration_s = std::atof(v);
    } else if (const char* v = value("--warmup=")) {
      o.warmup_s = std::atof(v);
    } else if (const char* v = value("--mode=")) {
      o.mode = v;
    } else if (const char* v = value("--threads=")) {
      o.threads = static_cast<std::size_t>(std::atoi(v));
    } else if (const char* v = value("--sender-shards=")) {
      o.sender_shards = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--soa=")) {
      o.soa = std::atoi(v) != 0;
    } else if (const char* v = value("--stagger=")) {
      o.stagger_ms = std::atof(v);
    } else if (const char* v = value("--buffer=")) {
      o.buffer_bytes = std::atoll(v);
    } else if (const char* v = value("--record=")) {
      o.record = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--ecn=")) {
      o.ecn_bytes = std::atoll(v);
    } else if (const char* v = value("--policer-rate=")) {
      o.policer_rate_mbps = std::atof(v);
    } else if (const char* v = value("--policer-burst=")) {
      o.policer_burst = std::atoll(v);
    } else if (const char* v = value("--policer-start=")) {
      o.policer_start_s = std::atof(v);
    } else if (const char* v = value("--policer-stop=")) {
      o.policer_stop_s = std::atof(v);
    } else if (arg == "--policer-mark") {
      o.policer_mark = true;
    } else if (arg == "--health") {
      o.health = true;
    } else if (arg == "--churn") {
      o.churn = true;
    } else if (arg == "--events-only") {
      o.events_only = true;
    } else {
      return false;
    }
  }
  return true;
}

int run(const Options& o) {
  FleetSpec spec;
  if (o.topo == "incast") {
    spec = incast_fleet(o.flows, o.rate_mbps > 0 ? o.rate_mbps : 960.0);
  } else if (o.topo == "parking_lot") {
    const int cross = std::max(1, o.flows / std::max(1, o.hops));
    spec = parking_lot_fleet(o.hops, cross, o.long_flows,
                             o.rate_mbps > 0 ? o.rate_mbps : 96.0);
  } else {
    std::cerr << "unknown --topo=" << o.topo << "\n";
    return 2;
  }
  spec.duration = static_cast<SimDuration>(o.duration_s * 1e6);
  spec.warmup = static_cast<SimDuration>(o.warmup_s * 1e6);
  if (o.stagger_ms >= 0)
    spec.stagger = static_cast<SimDuration>(o.stagger_ms * 1e3);
  spec.sender_shards = o.sender_shards;
  spec.churn.enabled = o.churn;
  if (o.buffer_bytes > 0) spec.buffer_bytes = o.buffer_bytes;
  spec.ecn_threshold_bytes = o.ecn_bytes;
  spec.policer_rate_mbps = o.policer_rate_mbps;
  spec.policer_burst_bytes = o.policer_burst;
  spec.policer_marks = o.policer_mark;
  spec.policer_start = static_cast<SimTime>(o.policer_start_s * 1e6);
  spec.policer_stop = o.policer_stop_s < 0
                          ? kSimTimeMax
                          : static_cast<SimTime>(o.policer_stop_s * 1e6);

  FleetRunOptions run_opts;
  if (o.mode == "sharded") {
    run_opts.mode = FleetMode::kSharded;
  } else if (o.mode != "serial") {
    std::cerr << "unknown --mode=" << o.mode << "\n";
    return 2;
  }
  run_opts.threads = o.threads;
  run_opts.soa_scan = o.soa;
  run_opts.health = o.health;
  run_opts.record_capacity = o.record;

  CcaZoo zoo;
  FleetObsResult obs;
  const FleetSummary s =
      run_fleet(spec, zoo.factory(o.cca), o.seed, run_opts, &obs);

  if (o.events_only) {
    std::printf("%llu\n", static_cast<unsigned long long>(s.events_processed));
  } else {
    std::string out;
    JsonWriter w(out);
    w.begin_object();
    w.key("scenario").value(spec.name);
    w.key("cca").value(o.cca);
    w.key("seed").value(o.seed);
    w.key("flows").value(static_cast<std::uint64_t>(s.flows.size()));
    w.key("sim_time_s").value(s.sim_time_s);
    w.key("window_s").value(s.window_s);
    w.key("events").value(s.events_processed);
    w.key("total_throughput_bps").value(s.total_throughput_bps);
    w.key("avg_delay_ms").value(s.avg_delay_ms);
    w.key("jain_fairness").value(s.jain_fairness);
    w.key("hop_utilization");
    w.begin_array();
    for (double u : s.hop_utilization) w.value(u);
    w.end_array();
    w.key("per_flow");
    w.begin_array();
    for (const FleetFlowSummary& f : s.flows) {
      w.begin_object();
      w.key("throughput_bps").value(f.throughput_bps);
      w.key("avg_rtt_ms").value(f.avg_rtt_ms);
      w.key("loss_rate").value(f.loss_rate);
      w.key("completion_s").value(f.completion_s);
      w.end_object();
    }
    w.end_array();
    if (o.health) {
      w.key("health");
      write_health_json(w, obs.health);
    }
    w.end_object();
    std::printf("%s\n", out.c_str());
  }
  std::fprintf(stderr, "wall_s=%.3f events_per_wall_s=%.0f mode=%s threads=%zu\n",
               s.wall_time_s, s.events_per_wall_s(), o.mode.c_str(), o.threads);
  // Per-shard event counts + imbalance (max/mean): the data sharded-speedup
  // investigations need to tell skew from overhead. Deterministic, but kept
  // on stderr with the wall stats so stdout stays the byte-diffed summary.
  if (!obs.shard_events.empty()) {
    std::uint64_t total = 0, max_ev = 0;
    std::string list;
    for (std::size_t i = 0; i < obs.shard_events.size(); ++i) {
      const std::uint64_t n = obs.shard_events[i];
      total += n;
      if (n > max_ev) max_ev = n;
      if (i) list += ',';
      list += std::to_string(n);
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(obs.shard_events.size());
    std::fprintf(stderr, "shards=%zu shard_events=%s imbalance=%.3f\n",
                 obs.shard_events.size(), list.c_str(),
                 mean > 0 ? static_cast<double>(max_ev) / mean : 0.0);
  }
  if (o.record > 0) {
    std::fprintf(stderr,
                 "trace recorded=%llu overwritten=%llu buffered=%llu cap=%zu\n",
                 static_cast<unsigned long long>(obs.trace_recorded),
                 static_cast<unsigned long long>(obs.trace_overwritten),
                 static_cast<unsigned long long>(obs.trace_buffered), o.record);
  }
  return 0;
}

}  // namespace
}  // namespace libra

int main(int argc, char** argv) {
  libra::Options opts;
  if (!libra::parse_args(argc, argv, opts)) return libra::usage(argv[0]);
  return libra::run(opts);
}
