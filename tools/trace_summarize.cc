// trace_summarize: reads flight-recorder JSONL traces (see EXPERIMENTS.md for
// the schema) and prints per-flow throughput/RTT/loss summaries with
// percentile tables — the offline counterpart of harness/runner.h's
// summarize(). Run a bench with --record=PREFIX (or tools/record_run), then:
//
//   trace_summarize [--warmup=SECS] [--horizon=SECS] [--flow=N]
//                   [--since=SECS] [--until=SECS] [--event=KIND]
//                   TRACE.jsonl...
//
// Summary mode (default): throughput and delay over [warmup, horizon)
// reproduce the bench's printed run summary, because both derive from the
// same per-ACK event stream. Traces that carry enqueue/deliver pairs also get
// a per-flow queueing-delay breakdown (bottleneck sojourn percentiles,
// matched on (flow, seq)). When the trace was recorded with trace_meta on,
// the end-of-run "run" event's wall/sim times are reported as a simulation
// speed ratio.
//
// Query mode (--event=KIND): prints the matching raw JSONL lines to stdout
// (a grep that understands the schema) and the match count to stderr.
//
// Filters compose in both modes: --flow restricts to one flow id and
// --since/--until clip to a sim-time window (seconds).
//
// Exits non-zero if any input yields no events (truncated/empty trace) or
// contains unparseable lines (corrupt/truncated mid-write). Unknown flags
// exit 2 with the usage text.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/report.h"

namespace {

constexpr const char* kUsage =
    "usage: trace_summarize [--warmup=SECS] [--horizon=SECS] [--flow=N]\n"
    "                       [--since=SECS] [--until=SECS] [--event=KIND]\n"
    "                       [--top=N] TRACE.jsonl...\n"
    "\n"
    "  --warmup/--horizon  summary window (stats over [warmup, horizon))\n"
    "  --flow=N            restrict to one flow id (both modes)\n"
    "  --since/--until     clip events to a sim-time window (both modes)\n"
    "  --top=N             fleet traces: individual rows for the N highest-\n"
    "                      throughput flows when the per-flow table collapses\n"
    "                      to percentile rows (default 8)\n"
    "  --event=KIND        query mode: print raw matching lines + count\n"
    "                      (KIND: send ack loss enq deliver drop rate stage\n"
    "                       cycle cca run)\n";

/// Per-flow tables wider than this collapse into cross-flow percentile rows
/// (plus --top individually listed flows) — a 1000-flow fleet trace otherwise
/// prints a thousand rows nobody reads.
constexpr std::size_t kAggregateThreshold = 32;

struct Options {
  double warmup_s = 0, horizon_s = 0;
  double since_s = -1, until_s = -1;  // <0 => unbounded
  int flow = -1;                      // <0 => all flows
  int top = 8;                        // individual rows in aggregated tables
  std::string event;                  // non-empty => query mode
};

// The recorder writes flat one-line objects with no whitespace, so a keyed
// scan is sufficient — no general JSON parser needed.
bool find_raw(std::string_view line, std::string_view key, std::string_view& out) {
  std::string needle = "\"" + std::string(key) + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  pos += needle.size();
  std::size_t end = pos;
  if (end < line.size() && line[end] == '"') {  // string value
    ++pos;
    end = line.find('"', pos);
    if (end == std::string_view::npos) return false;
    out = line.substr(pos, end - pos);
    return true;
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  out = line.substr(pos, end - pos);
  return true;
}

bool find_number(std::string_view line, std::string_view key, double& out) {
  std::string_view raw;
  if (!find_raw(line, key, raw)) return false;
  try {
    out = std::stod(std::string(raw));
  } catch (...) {
    return false;
  }
  return true;
}

double percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  double idx = p / 100.0 * static_cast<double>(sorted_values.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo]);
}

struct FlowStats {
  std::int64_t acks = 0, losses = 0, sends = 0;
  double acked_bytes = 0;
  std::vector<double> rtts_ms;
  std::vector<double> sojourns_ms;  // enqueue -> deliver, matched on seq
};

/// True when the event passes the --flow / --since / --until filters.
bool passes(const Options& opt, double t, int flow) {
  if (opt.flow >= 0 && flow != opt.flow) return false;
  if (opt.since_s >= 0 && t < opt.since_s) return false;
  if (opt.until_s >= 0 && t >= opt.until_s) return false;
  return true;
}

int query_file(const std::string& path, const Options& opt) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }
  std::int64_t matched = 0, total = 0, parse_errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double t = 0;
    std::string_view ev;
    if (!find_number(line, "t", t) || !find_raw(line, "ev", ev)) {
      ++parse_errors;
      continue;
    }
    ++total;
    if (ev != opt.event) continue;
    double flow_d = -1;
    find_number(line, "flow", flow_d);
    if (!passes(opt, t, static_cast<int>(flow_d))) continue;
    std::cout << line << "\n";
    ++matched;
  }
  if (total == 0) {
    std::cerr << "error: " << path << ": no trace events parsed\n";
    return 1;
  }
  std::cerr << path << ": " << matched << " " << opt.event << " events matched\n";
  if (parse_errors > 0) {
    std::cerr << "error: " << parse_errors
              << " unparseable lines (corrupt or truncated trace)\n";
    return 1;
  }
  return 0;
}

int summarize_file(const std::string& path, const Options& opt) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }

  std::map<std::string, std::int64_t> kind_counts;
  std::map<std::string, std::int64_t> drop_reasons;
  std::map<int, FlowStats> flows;
  // Outstanding enqueue times by (flow, seq): bottleneck sojourn is the gap
  // to the matching deliver event. Drops erase the entry (never delivered).
  std::map<std::pair<int, std::int64_t>, double> enqueued;
  double max_t = 0;
  std::int64_t total_events = 0, parse_errors = 0;
  double run_wall_s = 0, run_sim_s = 0;  // from the optional "run" meta event

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double t = 0;
    std::string_view ev;
    if (!find_number(line, "t", t) || !find_raw(line, "ev", ev)) {
      ++parse_errors;
      continue;
    }
    ++total_events;
    max_t = std::max(max_t, t);

    double flow_d = -1;
    find_number(line, "flow", flow_d);
    int flow = static_cast<int>(flow_d);

    if (ev == "run") {  // end-of-run metadata, not a flow event
      ++kind_counts[std::string(ev)];
      find_number(line, "wall_s", run_wall_s);
      find_number(line, "sim_s", run_sim_s);
      continue;
    }
    if (!passes(opt, t, flow)) continue;
    ++kind_counts[std::string(ev)];

    if (ev == "drop") {
      std::string_view reason;
      if (find_raw(line, "reason", reason)) ++drop_reasons[std::string(reason)];
      double seq = -1;
      if (find_number(line, "seq", seq))
        enqueued.erase({flow, static_cast<std::int64_t>(seq)});
      continue;
    }
    if (ev == "enq") {
      double seq = -1;
      if (find_number(line, "seq", seq))
        enqueued[{flow, static_cast<std::int64_t>(seq)}] = t;
      continue;
    }
    if (ev == "deliver") {
      double seq = -1;
      if (find_number(line, "seq", seq)) {
        auto it = enqueued.find({flow, static_cast<std::int64_t>(seq)});
        if (it != enqueued.end()) {
          flows[flow].sojourns_ms.push_back((t - it->second) * 1e3);
          enqueued.erase(it);
        }
      }
      continue;
    }
    if (t < opt.warmup_s || (opt.horizon_s > 0 && t >= opt.horizon_s)) continue;
    if (ev == "ack") {
      FlowStats& f = flows[flow];
      ++f.acks;
      double v = 0;
      if (find_number(line, "bytes", v)) f.acked_bytes += v;
      if (find_number(line, "rtt_ms", v)) f.rtts_ms.push_back(v);
    } else if (ev == "loss") {
      ++flows[flow].losses;
    } else if (ev == "send") {
      ++flows[flow].sends;
    }
  }

  if (total_events == 0) {
    std::cerr << "error: " << path << ": no trace events parsed\n";
    return 1;
  }

  double horizon = opt.horizon_s > 0 ? opt.horizon_s : max_t;
  double window = horizon - opt.warmup_s;

  libra::section(path + "  (" + std::to_string(total_events) + " events, window [" +
                 libra::fmt(opt.warmup_s, 1) + "s, " + libra::fmt(horizon, 1) + "s))");

  libra::Table kinds({"event", "count"});
  for (const auto& [kind, count] : kind_counts)
    kinds.add_row({kind, std::to_string(count)});
  kinds.print();

  if (!drop_reasons.empty()) {
    libra::Table drops({"drop reason", "count"});
    for (const auto& [reason, count] : drop_reasons)
      drops.add_row({reason, std::to_string(count)});
    std::cout << "\n";
    drops.print();
  }

  struct FlowRow {
    int flow = 0;
    double sends = 0, acks = 0, losses = 0, thr = 0;
    double rtt_p50 = 0, rtt_p90 = 0, rtt_p99 = 0, rtt_mean = 0, loss_rate = 0;
  };
  std::vector<FlowRow> rows;
  double total_thr = 0, rtt_weighted = 0;
  std::int64_t rtt_samples = 0;
  bool any_sojourn = false;
  for (auto& [flow, f] : flows) {
    std::sort(f.rtts_ms.begin(), f.rtts_ms.end());
    FlowRow r;
    r.flow = flow;
    r.sends = static_cast<double>(f.sends);
    r.acks = static_cast<double>(f.acks);
    r.losses = static_cast<double>(f.losses);
    r.thr = window > 0 ? f.acked_bytes * 8.0 / window / 1e6 : 0;
    total_thr += r.thr;
    for (double v : f.rtts_ms) r.rtt_mean += v;
    if (!f.rtts_ms.empty()) r.rtt_mean /= static_cast<double>(f.rtts_ms.size());
    r.rtt_p50 = percentile(f.rtts_ms, 50);
    r.rtt_p90 = percentile(f.rtts_ms, 90);
    r.rtt_p99 = percentile(f.rtts_ms, 99);
    double denom = static_cast<double>(f.acks + f.losses);
    r.loss_rate = denom > 0 ? static_cast<double>(f.losses) / denom : 0;
    rtt_weighted += r.rtt_mean * static_cast<double>(f.acks);
    rtt_samples += f.acks;
    any_sojourn |= !f.sojourns_ms.empty();
    rows.push_back(r);
  }

  libra::Table per_flow({"flow", "sends", "acks", "losses", "throughput (Mbps)",
                         "rtt p50 (ms)", "rtt p90 (ms)", "rtt p99 (ms)",
                         "rtt mean (ms)", "loss rate"});
  auto add_flow_row = [&per_flow](const std::string& label, const FlowRow& r) {
    per_flow.add_row({label, libra::fmt(r.sends, 0), libra::fmt(r.acks, 0),
                      libra::fmt(r.losses, 0), libra::fmt(r.thr, 2),
                      libra::fmt(r.rtt_p50, 1), libra::fmt(r.rtt_p90, 1),
                      libra::fmt(r.rtt_p99, 1), libra::fmt(r.rtt_mean, 1),
                      libra::fmt_pct(r.loss_rate, 2)});
  };
  if (rows.size() <= kAggregateThreshold) {
    for (const FlowRow& r : rows) add_flow_row(std::to_string(r.flow), r);
  } else {
    // Fleet-scale trace: list the --top flows by throughput, then collapse
    // the full population into cross-flow percentile rows. "worst" is the
    // unfavorable tail per column: min for throughput-like columns, max for
    // delay/loss — one glance shows whether the tail is healthy.
    std::vector<FlowRow> by_thr = rows;
    std::sort(by_thr.begin(), by_thr.end(),
              [](const FlowRow& a, const FlowRow& b) { return a.thr > b.thr; });
    const std::size_t top = std::min<std::size_t>(
        opt.top > 0 ? static_cast<std::size_t>(opt.top) : 0, by_thr.size());
    for (std::size_t i = 0; i < top; ++i)
      add_flow_row("#" + std::to_string(by_thr[i].flow), by_thr[i]);

    auto column = [&rows](double FlowRow::*member) {
      std::vector<double> v;
      v.reserve(rows.size());
      for (const FlowRow& r : rows) v.push_back(r.*member);
      std::sort(v.begin(), v.end());
      return v;
    };
    auto aggregate = [&](const std::string& label, auto pick_lo, auto pick_hi) {
      FlowRow r;
      // Favorable direction is "high" for volume columns...
      r.sends = pick_hi(column(&FlowRow::sends));
      r.acks = pick_hi(column(&FlowRow::acks));
      r.thr = pick_hi(column(&FlowRow::thr));
      // ...and "low" for damage columns, so one row reads coherently.
      r.losses = pick_lo(column(&FlowRow::losses));
      r.rtt_p50 = pick_lo(column(&FlowRow::rtt_p50));
      r.rtt_p90 = pick_lo(column(&FlowRow::rtt_p90));
      r.rtt_p99 = pick_lo(column(&FlowRow::rtt_p99));
      r.rtt_mean = pick_lo(column(&FlowRow::rtt_mean));
      r.loss_rate = pick_lo(column(&FlowRow::loss_rate));
      add_flow_row(label, r);
    };
    const std::string n = std::to_string(rows.size());
    aggregate("p50 of " + n,
              [](std::vector<double> v) { return percentile(v, 50); },
              [](std::vector<double> v) { return percentile(v, 50); });
    aggregate("p95 of " + n,
              [](std::vector<double> v) { return percentile(v, 95); },
              [](std::vector<double> v) { return percentile(v, 5); });
    aggregate("worst of " + n,
              [](std::vector<double> v) { return v.back(); },
              [](std::vector<double> v) { return v.front(); });
  }
  std::cout << "\n";
  per_flow.print();
  if (rows.size() > kAggregateThreshold) {
    std::cout << "(" << rows.size() << " flows: top "
              << std::min<std::size_t>(
                     opt.top > 0 ? static_cast<std::size_t>(opt.top) : 0,
                     rows.size())
              << " by throughput, then cross-flow percentiles; worst = "
                 "unfavorable tail per column)\n";
  }

  if (any_sojourn) {
    // Queueing-delay breakdown: time each packet spent in the bottleneck
    // queue, from its enq event to the matching deliver (dropped packets
    // excluded). This separates standing-queue delay from propagation delay,
    // which the RTT columns above mix together. Fleet traces aggregate the
    // same way as the per-flow table.
    std::vector<std::pair<int, const FlowStats*>> with_sojourn;
    for (auto& [flow, f] : flows) {
      if (f.sojourns_ms.empty()) continue;
      std::sort(f.sojourns_ms.begin(), f.sojourns_ms.end());
      with_sojourn.emplace_back(flow, &f);
    }
    libra::Table qd({"flow", "delivered", "queue p50 (ms)", "queue p90 (ms)",
                     "queue p99 (ms)", "queue max (ms)"});
    if (with_sojourn.size() <= kAggregateThreshold) {
      for (auto& [flow, f] : with_sojourn) {
        qd.add_row({std::to_string(flow), std::to_string(f->sojourns_ms.size()),
                    libra::fmt(percentile(f->sojourns_ms, 50), 2),
                    libra::fmt(percentile(f->sojourns_ms, 90), 2),
                    libra::fmt(percentile(f->sojourns_ms, 99), 2),
                    libra::fmt(f->sojourns_ms.back(), 2)});
      }
    } else {
      std::vector<double> p50s, p90s, p99s, maxes;
      std::size_t delivered = 0;
      for (auto& [flow, f] : with_sojourn) {
        p50s.push_back(percentile(f->sojourns_ms, 50));
        p90s.push_back(percentile(f->sojourns_ms, 90));
        p99s.push_back(percentile(f->sojourns_ms, 99));
        maxes.push_back(f->sojourns_ms.back());
        delivered += f->sojourns_ms.size();
      }
      std::sort(p50s.begin(), p50s.end());
      std::sort(p90s.begin(), p90s.end());
      std::sort(p99s.begin(), p99s.end());
      std::sort(maxes.begin(), maxes.end());
      const std::string n = std::to_string(with_sojourn.size());
      qd.add_row({"p50 of " + n, std::to_string(delivered),
                  libra::fmt(percentile(p50s, 50), 2),
                  libra::fmt(percentile(p90s, 50), 2),
                  libra::fmt(percentile(p99s, 50), 2),
                  libra::fmt(percentile(maxes, 50), 2)});
      qd.add_row({"p95 of " + n, "",
                  libra::fmt(percentile(p50s, 95), 2),
                  libra::fmt(percentile(p90s, 95), 2),
                  libra::fmt(percentile(p99s, 95), 2),
                  libra::fmt(percentile(maxes, 95), 2)});
      qd.add_row({"worst of " + n, "", libra::fmt(p50s.back(), 2),
                  libra::fmt(p90s.back(), 2), libra::fmt(p99s.back(), 2),
                  libra::fmt(maxes.back(), 2)});
    }
    std::cout << "\n";
    qd.print();
  }

  double avg_delay =
      rtt_samples > 0 ? rtt_weighted / static_cast<double>(rtt_samples) : 0;
  std::cout << "\ntotal: throughput " << libra::fmt(total_thr, 2) << " Mbps, avg delay "
            << libra::fmt(avg_delay, 1) << " ms\n";
  if (run_wall_s > 0) {
    std::cout << "speed: " << libra::fmt(run_sim_s, 1) << " sim s in "
              << libra::fmt(run_wall_s, 3) << " wall s ("
              << libra::fmt(run_sim_s / run_wall_s, 1) << "x real time)\n";
  }
  if (parse_errors > 0) {
    std::cerr << "error: " << parse_errors
              << " unparseable lines (corrupt or truncated trace)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--warmup=", 0) == 0) {
      opt.warmup_s = std::atof(std::string(a.substr(9)).c_str());
    } else if (a.rfind("--horizon=", 0) == 0) {
      opt.horizon_s = std::atof(std::string(a.substr(10)).c_str());
    } else if (a.rfind("--flow=", 0) == 0) {
      opt.flow = std::atoi(std::string(a.substr(7)).c_str());
    } else if (a.rfind("--since=", 0) == 0) {
      opt.since_s = std::atof(std::string(a.substr(8)).c_str());
    } else if (a.rfind("--until=", 0) == 0) {
      opt.until_s = std::atof(std::string(a.substr(8)).c_str());
    } else if (a.rfind("--event=", 0) == 0) {
      opt.event = std::string(a.substr(8));
    } else if (a.rfind("--top=", 0) == 0) {
      opt.top = std::atoi(std::string(a.substr(6)).c_str());
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << kUsage;
      return 2;
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  int rc = 0;
  for (const std::string& path : paths) {
    rc |= opt.event.empty() ? summarize_file(path, opt) : query_file(path, opt);
  }
  return rc;
}
