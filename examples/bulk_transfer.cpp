// Bulk replication over a lossy inter-continental path.
//
// Cloud-storage replication is throughput-oriented and crosses WAN paths with
// non-congestive (stochastic) loss — exactly where loss-based CCAs collapse
// (Fig. 10 / Fig. 16). Runs CUBIC, BBR and throughput-oriented C-Libra over
// the synthetic inter-continental profile and reports effective transfer
// time for a 100 MB object.
#include <iostream>

#include "core/factory.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

int main() {
  using namespace libra;

  std::cout << "bulk-transfer example: 100 MB replication over a lossy WAN\n";
  CcaZoo zoo;
  auto brain = zoo.brain("libra-rl");

  Scenario wan = wan_inter_continental();
  wan.duration = sec(60);

  auto libra_factory = [&]() -> std::unique_ptr<CongestionControl> {
    LibraParams p = c_libra_params();
    p.utility = throughput_oriented(1);
    return make_c_libra(brain, /*training=*/false, p);
  };

  struct Entry {
    std::string label;
    CcaFactory factory;
  };
  const std::vector<Entry> entries = {
      {"cubic", zoo.factory("cubic")},
      {"bbr", zoo.factory("bbr")},
      {"c-libra (Th-1)", libra_factory},
  };

  constexpr double kObjectBytes = 100e6;
  Table t({"cca", "goodput", "est. transfer time", "loss"});
  for (const Entry& e : entries) {
    RunSummary run = run_single(wan, e.factory, /*seed=*/11);
    double goodput = run.total_throughput_bps;
    double seconds = goodput > 0 ? kObjectBytes * 8 / goodput : 0;
    t.add_row({e.label, fmt(goodput / 1e6, 1) + " Mbps", fmt(seconds, 0) + " s",
               fmt_pct(run.flows[0].loss_rate, 1)});
  }
  t.print();

  std::cout << "\nExpected shape: CUBIC is loss-limited (every stochastic drop\n"
               "halves it); Libra's candidate evaluation cancels spurious\n"
               "reductions and finishes the transfer first.\n";
  return 0;
}
