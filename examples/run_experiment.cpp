// Command-line experiment runner: any scenario x any set of CCAs.
//
//   run_experiment [scenario] [seconds] [seed] [cca ...]
//
//   scenario: wired24|wired48|wired96|lte-stationary|lte-walking|lte-driving|
//             step|wan-inter|wan-intra|satellite|5g          (default wired48)
//   default CCAs: cubic bbr c-libra
//
// Example:
//   ./run_experiment lte-driving 30 7 cubic bbr orca c-libra
#include <iostream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

namespace {

libra::Scenario scenario_by_name(const std::string& name) {
  using namespace libra;
  if (name == "wired24") return wired_scenario(24);
  if (name == "wired48") return wired_scenario(48);
  if (name == "wired96") return wired_scenario(96);
  if (name == "lte-stationary")
    return lte_scenario(LteProfile::kStationary, "lte-stationary");
  if (name == "lte-walking") return lte_scenario(LteProfile::kWalking, "lte-walking");
  if (name == "lte-driving") return lte_scenario(LteProfile::kDriving, "lte-driving");
  if (name == "step") return step_scenario();
  if (name == "wan-inter") return wan_inter_continental();
  if (name == "wan-intra") return wan_intra_continental();
  if (name == "satellite") return satellite_scenario();
  if (name == "5g") return fiveg_scenario();
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace libra;
  try {
    std::string scenario_name = argc > 1 ? argv[1] : "wired48";
    if (scenario_name == "-h" || scenario_name == "--help") {
      std::cout << "usage: run_experiment [scenario] [seconds] [seed] [cca ...]\n"
                   "known CCAs:";
      for (const auto& n : CcaZoo::all_names()) std::cout << ' ' << n;
      std::cout << "\n";
      return 0;
    }
    Scenario s = scenario_by_name(scenario_name);
    if (argc > 2) s.duration = seconds(std::stod(argv[2]));
    std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 1;
    std::vector<std::string> ccas;
    for (int i = 4; i < argc; ++i) ccas.emplace_back(argv[i]);
    if (ccas.empty()) ccas = {"cubic", "bbr", "c-libra"};

    CcaZoo zoo;
    std::cout << "scenario=" << s.name << " duration=" << to_seconds(s.duration)
              << "s seed=" << seed << "\n";
    Table t({"cca", "throughput", "link util", "avg delay", "loss"});
    for (const std::string& name : ccas) {
      RunSummary run = run_single(s, zoo.factory(name), seed);
      t.add_row({name, fmt(run.total_throughput_bps / 1e6, 2) + " Mbps",
                 fmt_pct(run.link_utilization), fmt(run.avg_delay_ms, 1) + " ms",
                 fmt_pct(run.flows[0].loss_rate, 2)});
    }
    t.print();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(try --help)\n";
    return 1;
  }
}
