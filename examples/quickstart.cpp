// Quickstart: run C-Libra (Libra over CUBIC) on an emulated 48 Mbps / 30 ms
// bottleneck next to plain CUBIC and compare throughput, delay and loss.
//
//   ./quickstart            # uses a freshly trained (small) RL policy
//
// Demonstrates the three public layers of the library:
//   * harness::CcaZoo   — build any congestion controller by name,
//   * harness::Scenario — describe a bottleneck,
//   * harness::run_single / summarize — run and measure.
#include <iostream>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

int main() {
  using namespace libra;

  std::cout << "libra quickstart: CUBIC vs C-Libra on a 48 Mbps / 30 ms link\n"
            << "(training the RL component on first run; cached in ./brains)\n";

  CcaZoo zoo;  // trains or loads the shared RL policy on demand

  Scenario link = wired_scenario(/*rate_mbps=*/48, /*min_rtt=*/msec(30));
  link.duration = sec(30);

  Table table({"cca", "throughput", "link util", "avg delay", "loss"});
  for (const std::string& name : {"cubic", "c-libra"}) {
    RunSummary run = run_single(link, zoo.factory(name), /*seed=*/1);
    table.add_row({name, fmt(run.total_throughput_bps / 1e6) + " Mbps",
                   fmt_pct(run.link_utilization),
                   fmt(run.avg_delay_ms) + " ms",
                   fmt_pct(run.flows[0].loss_rate)});
  }
  table.print();

  std::cout << "\nExpected shape: similar throughput, noticeably lower delay\n"
               "for c-libra (the RL candidate wins cycles where CUBIC would\n"
               "fill the buffer).\n";
  return 0;
}
