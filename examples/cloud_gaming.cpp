// Cloud gaming / VR: a delay-sensitive application on a cellular link.
//
// Shows Libra's flexibility interface (Sec. 5.2): the application passes a
// latency-oriented utility (La-2 = 3x beta) and gets lower delay, trading a
// little utilization — without touching the algorithm. Compare against the
// default profile and a throughput-oriented one on the same walking-LTE
// trace.
#include <iostream>

#include "core/factory.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

int main() {
  using namespace libra;

  std::cout << "cloud-gaming example: tuning Libra's preference mid-stack\n";
  CcaZoo zoo;
  auto brain = zoo.brain("libra-rl");

  // Deep-buffered cellular bottleneck: the regime where the preference knob
  // matters (a shallow buffer caps delay for everyone).
  Scenario lte = lte_scenario(LteProfile::kWalking, "lte-walking", msec(40),
                              /*buffer_bytes=*/500 * 1000);
  lte.duration = sec(40);

  struct Profile {
    std::string label;
    UtilityParams utility;
  };
  const Profile profiles[] = {
      {"throughput-oriented (Th-2)", throughput_oriented(2)},
      {"default", UtilityParams{}},
      {"latency-oriented (La-2)", latency_oriented(2)},
  };

  Table t({"preference", "link util", "avg delay", "p-style verdict"});
  for (const Profile& p : profiles) {
    LibraParams params = c_libra_params();
    params.utility = p.utility;
    RunSummary run = run_single(
        lte, [&] { return make_c_libra(brain, /*training=*/false, params); },
        /*seed=*/3);
    std::string verdict = run.avg_delay_ms < 90 ? "playable" : "laggy";
    t.add_row({p.label, fmt_pct(run.link_utilization), fmt(run.avg_delay_ms, 1) + " ms",
               verdict});
  }
  t.print();

  std::cout << "\nThe same controller serves bulk transfer and cloud gaming:\n"
               "only the utility weights change (Fig. 11's knob).\n";
  return 0;
}
