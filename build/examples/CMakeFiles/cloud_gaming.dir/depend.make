# Empty dependencies file for cloud_gaming.
# This may be replaced when dependencies are built.
