file(REMOVE_RECURSE
  "CMakeFiles/cloud_gaming.dir/cloud_gaming.cpp.o"
  "CMakeFiles/cloud_gaming.dir/cloud_gaming.cpp.o.d"
  "cloud_gaming"
  "cloud_gaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_gaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
