
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/run_experiment.cpp" "examples/CMakeFiles/run_experiment.dir/run_experiment.cpp.o" "gcc" "examples/CMakeFiles/run_experiment.dir/run_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/libra_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/libra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/learned/CMakeFiles/libra_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/libra_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/classic/CMakeFiles/libra_classic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/libra_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
