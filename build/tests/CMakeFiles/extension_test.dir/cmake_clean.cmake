file(REMOVE_RECURSE
  "CMakeFiles/extension_test.dir/extension_test.cc.o"
  "CMakeFiles/extension_test.dir/extension_test.cc.o.d"
  "extension_test"
  "extension_test.pdb"
  "extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
