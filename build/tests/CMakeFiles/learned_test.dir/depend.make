# Empty dependencies file for learned_test.
# This may be replaced when dependencies are built.
