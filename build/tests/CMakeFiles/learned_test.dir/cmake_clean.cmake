file(REMOVE_RECURSE
  "CMakeFiles/learned_test.dir/learned_test.cc.o"
  "CMakeFiles/learned_test.dir/learned_test.cc.o.d"
  "learned_test"
  "learned_test.pdb"
  "learned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
