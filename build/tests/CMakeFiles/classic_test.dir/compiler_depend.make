# Empty compiler generated dependencies file for classic_test.
# This may be replaced when dependencies are built.
