# Empty compiler generated dependencies file for aqm_test.
# This may be replaced when dependencies are built.
