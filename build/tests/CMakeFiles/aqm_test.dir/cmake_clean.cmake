file(REMOVE_RECURSE
  "CMakeFiles/aqm_test.dir/aqm_test.cc.o"
  "CMakeFiles/aqm_test.dir/aqm_test.cc.o.d"
  "aqm_test"
  "aqm_test.pdb"
  "aqm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
