file(REMOVE_RECURSE
  "CMakeFiles/rl_test.dir/rl_test.cc.o"
  "CMakeFiles/rl_test.dir/rl_test.cc.o.d"
  "rl_test"
  "rl_test.pdb"
  "rl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
