# Empty compiler generated dependencies file for libra_test.
# This may be replaced when dependencies are built.
