file(REMOVE_RECURSE
  "CMakeFiles/libra_test.dir/libra_test.cc.o"
  "CMakeFiles/libra_test.dir/libra_test.cc.o.d"
  "libra_test"
  "libra_test.pdb"
  "libra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
