file(REMOVE_RECURSE
  "CMakeFiles/harness_test.dir/harness_test.cc.o"
  "CMakeFiles/harness_test.dir/harness_test.cc.o.d"
  "harness_test"
  "harness_test.pdb"
  "harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
