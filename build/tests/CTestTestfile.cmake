# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/classic_test[1]_include.cmake")
include("/root/repo/build/tests/learned_test[1]_include.cmake")
include("/root/repo/build/tests/libra_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/aqm_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
