file(REMOVE_RECURSE
  "CMakeFiles/libra_learned.dir/orca.cc.o"
  "CMakeFiles/libra_learned.dir/orca.cc.o.d"
  "CMakeFiles/libra_learned.dir/rl_cca.cc.o"
  "CMakeFiles/libra_learned.dir/rl_cca.cc.o.d"
  "CMakeFiles/libra_learned.dir/vivace.cc.o"
  "CMakeFiles/libra_learned.dir/vivace.cc.o.d"
  "liblibra_learned.a"
  "liblibra_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
