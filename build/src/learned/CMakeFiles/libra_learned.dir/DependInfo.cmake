
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learned/orca.cc" "src/learned/CMakeFiles/libra_learned.dir/orca.cc.o" "gcc" "src/learned/CMakeFiles/libra_learned.dir/orca.cc.o.d"
  "/root/repo/src/learned/rl_cca.cc" "src/learned/CMakeFiles/libra_learned.dir/rl_cca.cc.o" "gcc" "src/learned/CMakeFiles/libra_learned.dir/rl_cca.cc.o.d"
  "/root/repo/src/learned/vivace.cc" "src/learned/CMakeFiles/libra_learned.dir/vivace.cc.o" "gcc" "src/learned/CMakeFiles/libra_learned.dir/vivace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/libra_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/classic/CMakeFiles/libra_classic.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/libra_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
