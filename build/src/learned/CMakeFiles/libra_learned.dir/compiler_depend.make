# Empty compiler generated dependencies file for libra_learned.
# This may be replaced when dependencies are built.
