file(REMOVE_RECURSE
  "liblibra_learned.a"
)
