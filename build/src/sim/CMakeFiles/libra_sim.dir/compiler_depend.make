# Empty compiler generated dependencies file for libra_sim.
# This may be replaced when dependencies are built.
