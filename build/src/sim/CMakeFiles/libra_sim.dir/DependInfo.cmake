
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/libra_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/libra_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/libra_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/libra_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/sender.cc" "src/sim/CMakeFiles/libra_sim.dir/sender.cc.o" "gcc" "src/sim/CMakeFiles/libra_sim.dir/sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/libra_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
