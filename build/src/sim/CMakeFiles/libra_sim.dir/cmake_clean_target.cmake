file(REMOVE_RECURSE
  "liblibra_sim.a"
)
