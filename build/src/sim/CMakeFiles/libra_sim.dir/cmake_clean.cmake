file(REMOVE_RECURSE
  "CMakeFiles/libra_sim.dir/link.cc.o"
  "CMakeFiles/libra_sim.dir/link.cc.o.d"
  "CMakeFiles/libra_sim.dir/network.cc.o"
  "CMakeFiles/libra_sim.dir/network.cc.o.d"
  "CMakeFiles/libra_sim.dir/sender.cc.o"
  "CMakeFiles/libra_sim.dir/sender.cc.o.d"
  "liblibra_sim.a"
  "liblibra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
