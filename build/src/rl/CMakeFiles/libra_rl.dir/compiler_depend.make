# Empty compiler generated dependencies file for libra_rl.
# This may be replaced when dependencies are built.
