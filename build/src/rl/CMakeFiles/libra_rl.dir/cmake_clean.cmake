file(REMOVE_RECURSE
  "CMakeFiles/libra_rl.dir/mlp.cc.o"
  "CMakeFiles/libra_rl.dir/mlp.cc.o.d"
  "CMakeFiles/libra_rl.dir/ppo.cc.o"
  "CMakeFiles/libra_rl.dir/ppo.cc.o.d"
  "liblibra_rl.a"
  "liblibra_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
