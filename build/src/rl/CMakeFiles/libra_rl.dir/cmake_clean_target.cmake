file(REMOVE_RECURSE
  "liblibra_rl.a"
)
