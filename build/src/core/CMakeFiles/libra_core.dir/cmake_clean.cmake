file(REMOVE_RECURSE
  "CMakeFiles/libra_core.dir/libra.cc.o"
  "CMakeFiles/libra_core.dir/libra.cc.o.d"
  "liblibra_core.a"
  "liblibra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
