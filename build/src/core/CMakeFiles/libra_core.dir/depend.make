# Empty dependencies file for libra_core.
# This may be replaced when dependencies are built.
