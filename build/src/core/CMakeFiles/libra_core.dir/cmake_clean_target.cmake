file(REMOVE_RECURSE
  "liblibra_core.a"
)
