file(REMOVE_RECURSE
  "liblibra_classic.a"
)
