# Empty compiler generated dependencies file for libra_classic.
# This may be replaced when dependencies are built.
