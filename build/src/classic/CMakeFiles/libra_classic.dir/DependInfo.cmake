
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classic/bbr.cc" "src/classic/CMakeFiles/libra_classic.dir/bbr.cc.o" "gcc" "src/classic/CMakeFiles/libra_classic.dir/bbr.cc.o.d"
  "/root/repo/src/classic/cubic.cc" "src/classic/CMakeFiles/libra_classic.dir/cubic.cc.o" "gcc" "src/classic/CMakeFiles/libra_classic.dir/cubic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/libra_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
