file(REMOVE_RECURSE
  "CMakeFiles/libra_classic.dir/bbr.cc.o"
  "CMakeFiles/libra_classic.dir/bbr.cc.o.d"
  "CMakeFiles/libra_classic.dir/cubic.cc.o"
  "CMakeFiles/libra_classic.dir/cubic.cc.o.d"
  "liblibra_classic.a"
  "liblibra_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
