# Empty compiler generated dependencies file for libra_harness.
# This may be replaced when dependencies are built.
