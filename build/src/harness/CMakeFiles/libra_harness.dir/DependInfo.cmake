
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/runner.cc" "src/harness/CMakeFiles/libra_harness.dir/runner.cc.o" "gcc" "src/harness/CMakeFiles/libra_harness.dir/runner.cc.o.d"
  "/root/repo/src/harness/scenario.cc" "src/harness/CMakeFiles/libra_harness.dir/scenario.cc.o" "gcc" "src/harness/CMakeFiles/libra_harness.dir/scenario.cc.o.d"
  "/root/repo/src/harness/trainer.cc" "src/harness/CMakeFiles/libra_harness.dir/trainer.cc.o" "gcc" "src/harness/CMakeFiles/libra_harness.dir/trainer.cc.o.d"
  "/root/repo/src/harness/zoo.cc" "src/harness/CMakeFiles/libra_harness.dir/zoo.cc.o" "gcc" "src/harness/CMakeFiles/libra_harness.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/libra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/learned/CMakeFiles/libra_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/classic/CMakeFiles/libra_classic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/libra_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/libra_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
