file(REMOVE_RECURSE
  "liblibra_harness.a"
)
