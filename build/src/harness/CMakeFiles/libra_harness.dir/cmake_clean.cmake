file(REMOVE_RECURSE
  "CMakeFiles/libra_harness.dir/runner.cc.o"
  "CMakeFiles/libra_harness.dir/runner.cc.o.d"
  "CMakeFiles/libra_harness.dir/scenario.cc.o"
  "CMakeFiles/libra_harness.dir/scenario.cc.o.d"
  "CMakeFiles/libra_harness.dir/trainer.cc.o"
  "CMakeFiles/libra_harness.dir/trainer.cc.o.d"
  "CMakeFiles/libra_harness.dir/zoo.cc.o"
  "CMakeFiles/libra_harness.dir/zoo.cc.o.d"
  "liblibra_harness.a"
  "liblibra_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
