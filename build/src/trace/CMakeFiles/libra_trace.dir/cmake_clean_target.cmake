file(REMOVE_RECURSE
  "liblibra_trace.a"
)
