
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/lte_model.cc" "src/trace/CMakeFiles/libra_trace.dir/lte_model.cc.o" "gcc" "src/trace/CMakeFiles/libra_trace.dir/lte_model.cc.o.d"
  "/root/repo/src/trace/rate_trace.cc" "src/trace/CMakeFiles/libra_trace.dir/rate_trace.cc.o" "gcc" "src/trace/CMakeFiles/libra_trace.dir/rate_trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/libra_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/libra_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
