# Empty dependencies file for libra_trace.
# This may be replaced when dependencies are built.
