file(REMOVE_RECURSE
  "CMakeFiles/libra_trace.dir/lte_model.cc.o"
  "CMakeFiles/libra_trace.dir/lte_model.cc.o.d"
  "CMakeFiles/libra_trace.dir/rate_trace.cc.o"
  "CMakeFiles/libra_trace.dir/rate_trace.cc.o.d"
  "CMakeFiles/libra_trace.dir/trace_io.cc.o"
  "CMakeFiles/libra_trace.dir/trace_io.cc.o.d"
  "liblibra_trace.a"
  "liblibra_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
