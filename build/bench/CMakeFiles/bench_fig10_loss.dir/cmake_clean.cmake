file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_loss.dir/bench_fig10_loss.cc.o"
  "CMakeFiles/bench_fig10_loss.dir/bench_fig10_loss.cc.o.d"
  "bench_fig10_loss"
  "bench_fig10_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
