file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tracking.dir/bench_fig08_tracking.cc.o"
  "CMakeFiles/bench_fig08_tracking.dir/bench_fig08_tracking.cc.o.d"
  "bench_fig08_tracking"
  "bench_fig08_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
