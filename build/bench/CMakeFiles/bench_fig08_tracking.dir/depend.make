# Empty dependencies file for bench_fig08_tracking.
# This may be replaced when dependencies are built.
