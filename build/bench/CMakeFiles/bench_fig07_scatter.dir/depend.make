# Empty dependencies file for bench_fig07_scatter.
# This may be replaced when dependencies are built.
