file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_scatter.dir/bench_fig07_scatter.cc.o"
  "CMakeFiles/bench_fig07_scatter.dir/bench_fig07_scatter.cc.o.d"
  "bench_fig07_scatter"
  "bench_fig07_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
