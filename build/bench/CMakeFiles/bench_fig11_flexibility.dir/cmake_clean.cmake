file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_flexibility.dir/bench_fig11_flexibility.cc.o"
  "CMakeFiles/bench_fig11_flexibility.dir/bench_fig11_flexibility.cc.o.d"
  "bench_fig11_flexibility"
  "bench_fig11_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
