file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_statesearch.dir/bench_tab02_statesearch.cc.o"
  "CMakeFiles/bench_tab02_statesearch.dir/bench_tab02_statesearch.cc.o.d"
  "bench_tab02_statesearch"
  "bench_tab02_statesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_statesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
