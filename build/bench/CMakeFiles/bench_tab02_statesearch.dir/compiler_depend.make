# Empty compiler generated dependencies file for bench_tab02_statesearch.
# This may be replaced when dependencies are built.
