# Empty dependencies file for bench_fig06_actionspace.
# This may be replaced when dependencies are built.
