file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_actionspace.dir/bench_fig06_actionspace.cc.o"
  "CMakeFiles/bench_fig06_actionspace.dir/bench_fig06_actionspace.cc.o.d"
  "bench_fig06_actionspace"
  "bench_fig06_actionspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_actionspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
