# Empty compiler generated dependencies file for bench_fig02c_overhead.
# This may be replaced when dependencies are built.
