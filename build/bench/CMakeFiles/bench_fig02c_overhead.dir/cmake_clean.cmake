file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02c_overhead.dir/bench_fig02c_overhead.cc.o"
  "CMakeFiles/bench_fig02c_overhead.dir/bench_fig02c_overhead.cc.o.d"
  "bench_fig02c_overhead"
  "bench_fig02c_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02c_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
