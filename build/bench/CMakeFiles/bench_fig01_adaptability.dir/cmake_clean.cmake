file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_adaptability.dir/bench_fig01_adaptability.cc.o"
  "CMakeFiles/bench_fig01_adaptability.dir/bench_fig01_adaptability.cc.o.d"
  "bench_fig01_adaptability"
  "bench_fig01_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
