# Empty compiler generated dependencies file for bench_fig01_adaptability.
# This may be replaced when dependencies are built.
