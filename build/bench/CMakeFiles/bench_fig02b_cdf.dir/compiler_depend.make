# Empty compiler generated dependencies file for bench_fig02b_cdf.
# This may be replaced when dependencies are built.
