file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02b_cdf.dir/bench_fig02b_cdf.cc.o"
  "CMakeFiles/bench_fig02b_cdf.dir/bench_fig02b_cdf.cc.o.d"
  "bench_fig02b_cdf"
  "bench_fig02b_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02b_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
