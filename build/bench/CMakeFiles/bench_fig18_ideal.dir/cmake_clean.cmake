file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_ideal.dir/bench_fig18_ideal.cc.o"
  "CMakeFiles/bench_fig18_ideal.dir/bench_fig18_ideal.cc.o.d"
  "bench_fig18_ideal"
  "bench_fig18_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
