# Empty dependencies file for bench_fig02a_step.
# This may be replaced when dependencies are built.
