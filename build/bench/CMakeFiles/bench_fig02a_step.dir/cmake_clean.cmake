file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02a_step.dir/bench_fig02a_step.cc.o"
  "CMakeFiles/bench_fig02a_step.dir/bench_fig02a_step.cc.o.d"
  "bench_fig02a_step"
  "bench_fig02a_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02a_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
