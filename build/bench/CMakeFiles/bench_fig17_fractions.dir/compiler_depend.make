# Empty compiler generated dependencies file for bench_fig17_fractions.
# This may be replaced when dependencies are built.
