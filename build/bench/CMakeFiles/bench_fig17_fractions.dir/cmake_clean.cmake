file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_fractions.dir/bench_fig17_fractions.cc.o"
  "CMakeFiles/bench_fig17_fractions.dir/bench_fig17_fractions.cc.o.d"
  "bench_fig17_fractions"
  "bench_fig17_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
