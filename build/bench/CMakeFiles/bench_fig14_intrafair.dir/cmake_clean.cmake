file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_intrafair.dir/bench_fig14_intrafair.cc.o"
  "CMakeFiles/bench_fig14_intrafair.dir/bench_fig14_intrafair.cc.o.d"
  "bench_fig14_intrafair"
  "bench_fig14_intrafair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_intrafair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
