file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overhead_sweep.dir/bench_fig12_overhead_sweep.cc.o"
  "CMakeFiles/bench_fig12_overhead_sweep.dir/bench_fig12_overhead_sweep.cc.o.d"
  "bench_fig12_overhead_sweep"
  "bench_fig12_overhead_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overhead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
