# Empty compiler generated dependencies file for bench_fig12_overhead_sweep.
# This may be replaced when dependencies are built.
