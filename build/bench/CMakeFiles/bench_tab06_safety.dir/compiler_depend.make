# Empty compiler generated dependencies file for bench_tab06_safety.
# This may be replaced when dependencies are built.
