file(REMOVE_RECURSE
  "CMakeFiles/bench_tab06_safety.dir/bench_tab06_safety.cc.o"
  "CMakeFiles/bench_tab06_safety.dir/bench_tab06_safety.cc.o.d"
  "bench_tab06_safety"
  "bench_tab06_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
