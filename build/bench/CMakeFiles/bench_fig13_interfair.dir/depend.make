# Empty dependencies file for bench_fig13_interfair.
# This may be replaced when dependencies are built.
