file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_interfair.dir/bench_fig13_interfair.cc.o"
  "CMakeFiles/bench_fig13_interfair.dir/bench_fig13_interfair.cc.o.d"
  "bench_fig13_interfair"
  "bench_fig13_interfair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_interfair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
