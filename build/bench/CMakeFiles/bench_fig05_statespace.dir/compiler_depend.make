# Empty compiler generated dependencies file for bench_fig05_statespace.
# This may be replaced when dependencies are built.
