file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_statespace.dir/bench_fig05_statespace.cc.o"
  "CMakeFiles/bench_fig05_statespace.dir/bench_fig05_statespace.cc.o.d"
  "bench_fig05_statespace"
  "bench_fig05_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
