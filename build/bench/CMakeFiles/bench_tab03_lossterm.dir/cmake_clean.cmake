file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_lossterm.dir/bench_tab03_lossterm.cc.o"
  "CMakeFiles/bench_tab03_lossterm.dir/bench_tab03_lossterm.cc.o.d"
  "bench_tab03_lossterm"
  "bench_tab03_lossterm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_lossterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
