# Empty dependencies file for bench_tab03_lossterm.
# This may be replaced when dependencies are built.
