file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_internet.dir/bench_fig16_internet.cc.o"
  "CMakeFiles/bench_fig16_internet.dir/bench_fig16_internet.cc.o.d"
  "bench_fig16_internet"
  "bench_fig16_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
