# Empty compiler generated dependencies file for bench_fig16_internet.
# This may be replaced when dependencies are built.
