# Empty compiler generated dependencies file for bench_fig04_eval_order.
# This may be replaced when dependencies are built.
