file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_buffer.dir/bench_fig09_buffer.cc.o"
  "CMakeFiles/bench_fig09_buffer.dir/bench_fig09_buffer.cc.o.d"
  "bench_fig09_buffer"
  "bench_fig09_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
