# Empty dependencies file for bench_fig09_buffer.
# This may be replaced when dependencies are built.
