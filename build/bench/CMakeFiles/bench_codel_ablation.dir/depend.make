# Empty dependencies file for bench_codel_ablation.
# This may be replaced when dependencies are built.
