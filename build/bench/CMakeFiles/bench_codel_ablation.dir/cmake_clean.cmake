file(REMOVE_RECURSE
  "CMakeFiles/bench_codel_ablation.dir/bench_codel_ablation.cc.o"
  "CMakeFiles/bench_codel_ablation.dir/bench_codel_ablation.cc.o.d"
  "bench_codel_ablation"
  "bench_codel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
