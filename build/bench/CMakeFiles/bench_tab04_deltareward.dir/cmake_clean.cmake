file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_deltareward.dir/bench_tab04_deltareward.cc.o"
  "CMakeFiles/bench_tab04_deltareward.dir/bench_tab04_deltareward.cc.o.d"
  "bench_tab04_deltareward"
  "bench_tab04_deltareward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_deltareward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
