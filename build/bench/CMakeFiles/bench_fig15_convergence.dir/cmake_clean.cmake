file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_convergence.dir/bench_fig15_convergence.cc.o"
  "CMakeFiles/bench_fig15_convergence.dir/bench_fig15_convergence.cc.o.d"
  "bench_fig15_convergence"
  "bench_fig15_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
