#!/usr/bin/env bash
# Continuous benchmark regression: build the suite, then either record a
# baseline snapshot or compare the current tree against a committed one.
#
#   scripts/bench_regress.sh record [LABEL]     # writes BENCH_<LABEL>.json
#   scripts/bench_regress.sh compare [BASELINE] # exit 1 on regression
#
# Defaults: LABEL=seed, BASELINE=BENCH_seed.json. Knobs (env):
#   REPEATS=N        samples per metric (default 5; medians are reported)
#   TOLERANCE=FRAC   override every per-metric tolerance (e.g. 0.10, or a
#                    negative value to force failure when testing the harness)
#   PROFILE=1        also print the in-process profiler report for the suite
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-compare}"
ARG="${2:-}"
REPEATS="${REPEATS:-5}"

case "$MODE" in
  record|compare) ;;
  *) echo "usage: $0 [record [LABEL] | compare [BASELINE]]" >&2; exit 2 ;;
esac

echo "== build bench_baseline =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_baseline json_check

FLAGS=("--repeats=$REPEATS")
[[ -n "${TOLERANCE:-}" ]] && FLAGS+=("--tolerance=$TOLERANCE")
[[ "${PROFILE:-0}" == 1 ]] && FLAGS+=("--profile")

if [[ "$MODE" == record ]]; then
  LABEL="${ARG:-seed}"
  SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
  OUT="BENCH_${LABEL}.json"
  echo "== record baseline $OUT (sha $SHA) =="
  ./build/tools/bench_baseline --record="$OUT" --label="$LABEL" \
    --git-sha="$SHA" "${FLAGS[@]}"
  ./build/tools/json_check "$OUT"
else
  BASELINE="${ARG:-BENCH_seed.json}"
  [[ -f "$BASELINE" ]] || {
    echo "no baseline at $BASELINE — run: $0 record" >&2; exit 2; }
  echo "== compare against $BASELINE =="
  ./build/tools/bench_baseline --compare="$BASELINE" "${FLAGS[@]}"
fi
