#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the parallel experiment
# engine. Usage: scripts/check.sh [--tsan-only | --no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TIER1=1
RUN_TSAN=1
case "${1:-}" in
  --tsan-only) RUN_TIER1=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --no-tsan]" >&2; exit 2 ;;
esac

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== TSan: parallel engine must be race-free =="
  cmake -B build-tsan -S . -DLIBRA_SANITIZE=thread >/dev/null
  # The determinism/engine tests are the ones that exercise cross-thread
  # sharing (frozen brains, the pool, run_many); building the whole tree
  # under TSan is unnecessary for the guarantee and triples the cycle time.
  cmake --build build-tsan -j "$JOBS" --target parallel_test sim_test util_test
  (cd build-tsan && ./tests/parallel_test && ./tests/sim_test && ./tests/util_test)
fi

echo "check.sh: all green"
