#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the parallel experiment
# engine and a flight-recorder trace round-trip smoke test.
# Usage: scripts/check.sh [--tsan-only | --no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TIER1=1
RUN_TSAN=1
case "${1:-}" in
  --tsan-only) RUN_TIER1=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --no-tsan]" >&2; exit 2 ;;
esac

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "== trace round-trip: record a run, summarize it offline =="
  # The recorded per-ACK stream must reproduce the run's own summary; a
  # truncated or empty trace makes trace_summarize exit non-zero.
  TRACE_DIR="$(mktemp -d)"
  trap 'rm -rf "$TRACE_DIR"' EXIT
  ./build/tools/record_run --out="$TRACE_DIR/smoke.jsonl" --duration=2 \
    > "$TRACE_DIR/summary.json"
  SUMMARY="$(./build/tools/trace_summarize --warmup=1 "$TRACE_DIR/smoke.jsonl")"
  echo "$SUMMARY" | grep -q "rtt p99" || {
    echo "trace round-trip: missing percentile table" >&2; exit 1; }
  echo "$SUMMARY" | grep -q "total: throughput" || {
    echo "trace round-trip: missing totals line" >&2; exit 1; }
  grep -q '"link_utilization"' "$TRACE_DIR/summary.json" || {
    echo "trace round-trip: record_run emitted no JSON summary" >&2; exit 1; }
  echo "trace round-trip: ok"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== TSan: parallel engine + metrics aggregation must be race-free =="
  cmake -B build-tsan -S . -DLIBRA_SANITIZE=thread >/dev/null
  # The determinism/engine tests are the ones that exercise cross-thread
  # sharing (frozen brains, the pool, run_many, concurrent metrics merges and
  # logger sinks); building the whole tree under TSan is unnecessary for the
  # guarantee and triples the cycle time.
  cmake --build build-tsan -j "$JOBS" --target parallel_test sim_test util_test obs_test
  (cd build-tsan && ./tests/parallel_test && ./tests/sim_test && ./tests/util_test && ./tests/obs_test)
fi

echo "check.sh: all green"
