#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes: ThreadSanitizer over the parallel
# experiment engine + parallel rollout collection + profiler, AddressSanitizer
# over the batched RL kernels, a flight-recorder trace round-trip smoke test,
# a profiler-enabled smoke run, and a telemetry smoke leg (sampled run ->
# trace_summarize queries -> report_html). `--bench` adds the opt-in benchmark
# regression leg (scripts/bench_regress.sh against BENCH_seed.json).
# Usage: scripts/check.sh [--tsan-only | --asan-only | --no-sanitizers | --bench]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TIER1=1
RUN_TSAN=1
RUN_ASAN=1
RUN_BENCH=0
case "${1:-}" in
  --tsan-only) RUN_TIER1=0; RUN_ASAN=0 ;;
  --asan-only) RUN_TIER1=0; RUN_TSAN=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  --no-sanitizers) RUN_TSAN=0; RUN_ASAN=0 ;;
  --bench) RUN_BENCH=1 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --asan-only | --no-tsan | --no-sanitizers | --bench]" >&2; exit 2 ;;
esac

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "== tier-1 (scalar kernels): full suite with LIBRA_SIMD=off =="
  # Pins kernel dispatch to the scalar fallback so the pre-SIMD code paths
  # (and their bitwise-reproducibility promises) stay exercised everywhere.
  (cd build && LIBRA_SIMD=off ctest --output-on-failure -j "$JOBS")

  echo "== trace round-trip: record a run, summarize it offline =="
  # The recorded per-ACK stream must reproduce the run's own summary; a
  # truncated or empty trace makes trace_summarize exit non-zero.
  TRACE_DIR="$(mktemp -d)"
  trap 'rm -rf "$TRACE_DIR"' EXIT
  ./build/tools/record_run --out="$TRACE_DIR/smoke.jsonl" --duration=2 \
    > "$TRACE_DIR/summary.json"
  SUMMARY="$(./build/tools/trace_summarize --warmup=1 "$TRACE_DIR/smoke.jsonl")"
  echo "$SUMMARY" | grep -q "rtt p99" || {
    echo "trace round-trip: missing percentile table" >&2; exit 1; }
  echo "$SUMMARY" | grep -q "total: throughput" || {
    echo "trace round-trip: missing totals line" >&2; exit 1; }
  grep -q '"link_utilization"' "$TRACE_DIR/summary.json" || {
    echo "trace round-trip: record_run emitted no JSON summary" >&2; exit 1; }
  echo "trace round-trip: ok"

  echo "== profiler smoke: profiled run + validated JSON artifacts =="
  # A profiler-enabled run must still produce a valid trace (with the --meta
  # speed line parsed by trace_summarize) and print a call tree containing
  # the event-dispatch span; every JSON artifact must parse.
  ./build/tools/record_run --out="$TRACE_DIR/prof.jsonl" --duration=2 \
    --meta --profile > "$TRACE_DIR/prof_summary.json" 2> "$TRACE_DIR/prof.err"
  grep -q "sim.event" "$TRACE_DIR/prof.err" || {
    echo "profiler smoke: report missing sim.event span" >&2; exit 1; }
  ./build/tools/trace_summarize --warmup=1 "$TRACE_DIR/prof.jsonl" \
    | grep -q "x real time" || {
    echo "profiler smoke: trace meta speed line missing" >&2; exit 1; }
  ./build/tools/json_check "$TRACE_DIR/prof_summary.json"
  ./build/tools/json_check --jsonl "$TRACE_DIR/prof.jsonl"
  echo "profiler smoke: ok"

  echo "== telemetry smoke: sampled run -> query engine -> HTML report =="
  # Record a short 2-flow run with the 1 ms sampler, query the trace through
  # trace_summarize's filter flags, and render the columnar dump to HTML.
  ./build/tools/record_run --out="$TRACE_DIR/tel.jsonl" --duration=2 --flows=2 \
    --telemetry="$TRACE_DIR/tel_cols.jsonl" \
    --telemetry-bin="$TRACE_DIR/tel_cols.bin" --sample-ms=1 \
    > "$TRACE_DIR/tel_summary.json"
  ./build/tools/json_check --jsonl "$TRACE_DIR/tel_cols.jsonl"
  # Query round-trip: per-flow filtering and the event grep must agree with
  # the trace (flow 1 exists, acks exist in the window).
  ./build/tools/trace_summarize --flow=1 "$TRACE_DIR/tel.jsonl" \
    | grep -q "rtt p99" || {
    echo "telemetry smoke: --flow query lost the percentile table" >&2; exit 1; }
  ./build/tools/trace_summarize --warmup=0.5 "$TRACE_DIR/tel.jsonl" \
    | grep -q "queue p99" || {
    echo "telemetry smoke: queueing-delay breakdown missing" >&2; exit 1; }
  ACKS="$(./build/tools/trace_summarize --event=ack --since=0.5 --until=1.5 \
    "$TRACE_DIR/tel.jsonl" | wc -l)"
  [[ "$ACKS" -gt 0 ]] || {
    echo "telemetry smoke: --event=ack query returned nothing" >&2; exit 1; }
  # Unknown flags must fail fast with usage, not be silently ignored.
  if ./build/tools/trace_summarize --bogus-flag "$TRACE_DIR/tel.jsonl" \
    2>/dev/null; then
    echo "telemetry smoke: unknown flag did not exit non-zero" >&2; exit 1
  fi
  ./build/tools/report_html --out="$TRACE_DIR/tel.html" \
    "$TRACE_DIR/tel_cols.jsonl"
  # Trivial tag-balance assertion: every <svg> closes and the document closes.
  OPEN_SVG="$(grep -o "<svg" "$TRACE_DIR/tel.html" | wc -l)"
  CLOSE_SVG="$(grep -o "</svg>" "$TRACE_DIR/tel.html" | wc -l)"
  [[ "$OPEN_SVG" -gt 0 && "$OPEN_SVG" -eq "$CLOSE_SVG" ]] || {
    echo "telemetry smoke: report_html SVG tags unbalanced" >&2; exit 1; }
  grep -q "</html>" "$TRACE_DIR/tel.html" || {
    echo "telemetry smoke: report_html document not closed" >&2; exit 1; }
  echo "telemetry smoke: ok"

  echo "== fleet smoke: sharded engine must match serial bitwise =="
  # The fleet engine's determinism promise: the sharded run emits a JSON
  # summary byte-identical to the serial run at any thread count. Exercise
  # the 100-flow incast with two worker threads — the config the ISSUE names.
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 \
    --mode=serial > "$TRACE_DIR/fleet_serial.json" 2>/dev/null
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 \
    --mode=sharded --threads=2 > "$TRACE_DIR/fleet_sharded.json" 2>/dev/null
  diff "$TRACE_DIR/fleet_serial.json" "$TRACE_DIR/fleet_sharded.json" || {
    echo "fleet smoke: sharded summary diverged from serial" >&2; exit 1; }
  ./build/tools/json_check "$TRACE_DIR/fleet_serial.json"
  echo "fleet smoke: ok"

  echo "== fleet health smoke: windowed timeline + incidents, mode-invariant =="
  # --health adds the streaming health object (windowed fleet timeline +
  # severity-ranked anomaly incidents) to the summary; it must parse and be
  # byte-identical serial vs. sharded like everything else on stdout, and
  # report_html must render it as a fleet-health page.
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 --health \
    --mode=serial > "$TRACE_DIR/fleet_health_serial.json" 2>/dev/null
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 --health \
    --mode=sharded --threads=2 > "$TRACE_DIR/fleet_health_sharded.json" \
    2>/dev/null
  diff "$TRACE_DIR/fleet_health_serial.json" \
    "$TRACE_DIR/fleet_health_sharded.json" || {
    echo "fleet health smoke: sharded health report diverged from serial" >&2
    exit 1; }
  grep -q '"health"' "$TRACE_DIR/fleet_health_serial.json" || {
    echo "fleet health smoke: summary missing the health object" >&2; exit 1; }
  ./build/tools/json_check "$TRACE_DIR/fleet_health_serial.json"
  ./build/tools/report_html --out="$TRACE_DIR/fleet_health.html" \
    "$TRACE_DIR/fleet_health_serial.json"
  grep -q "fleet health" "$TRACE_DIR/fleet_health.html" || {
    echo "fleet health smoke: report_html did not render the health page" >&2
    exit 1; }
  echo "fleet health smoke: ok"

  echo "== datacenter smoke: DCTCP/ECN incast, mode-invariant =="
  # The ECN path end to end: switch marks at the threshold, the CE echo rides
  # the ACK back, DCTCP scales cwnd by alpha — and none of it may perturb the
  # serial==sharded byte-identity promise. Same for the token-bucket policer.
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 \
    --cca=dctcp --ecn=45000 --mode=serial \
    > "$TRACE_DIR/dc_serial.json" 2>/dev/null
  ./build/tools/fleet_run --topo=incast --flows=100 --duration=3 \
    --cca=dctcp --ecn=45000 --mode=sharded --threads=2 \
    > "$TRACE_DIR/dc_sharded.json" 2>/dev/null
  diff "$TRACE_DIR/dc_serial.json" "$TRACE_DIR/dc_sharded.json" || {
    echo "datacenter smoke: DCTCP/ECN sharded summary diverged" >&2; exit 1; }
  ./build/tools/json_check "$TRACE_DIR/dc_serial.json"
  grep -q '"cca":"dctcp"' "$TRACE_DIR/dc_serial.json" || {
    echo "datacenter smoke: summary is not a dctcp run" >&2; exit 1; }
  ./build/tools/fleet_run --topo=parking_lot --hops=3 --duration=3 \
    --cca=bbr --policer-rate=12 --policer-start=1 --mode=serial \
    > "$TRACE_DIR/policed_serial.json" 2>/dev/null
  ./build/tools/fleet_run --topo=parking_lot --hops=3 --duration=3 \
    --cca=bbr --policer-rate=12 --policer-start=1 --mode=sharded --threads=2 \
    > "$TRACE_DIR/policed_sharded.json" 2>/dev/null
  diff "$TRACE_DIR/policed_serial.json" "$TRACE_DIR/policed_sharded.json" || {
    echo "datacenter smoke: policed sharded summary diverged" >&2; exit 1; }
  ./build/tools/json_check "$TRACE_DIR/policed_serial.json"
  echo "datacenter smoke: ok"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== TSan: parallel engine + rollout collection must be race-free =="
  cmake -B build-tsan -S . -DLIBRA_SANITIZE=thread >/dev/null
  # The determinism/engine tests are the ones that exercise cross-thread
  # sharing (frozen brains, the pool, run_many, parallel rollout collection,
  # concurrent metrics merges, logger sinks, and the profiler's thread-local
  # trees + report-time merge); building the whole tree under TSan is
  # unnecessary for the guarantee and triples the cycle time.
  cmake --build build-tsan -j "$JOBS" --target parallel_test multiflow_train_test sim_test util_test obs_test telemetry_test profiler_test rl_test fleet_test
  (cd build-tsan && ./tests/parallel_test && ./tests/multiflow_train_test && ./tests/sim_test && ./tests/util_test && ./tests/obs_test && ./tests/telemetry_test && ./tests/profiler_test && ./tests/rl_test && ./tests/fleet_test)
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan: batched RL kernels + training path must be leak/overflow-free =="
  cmake -B build-asan -S . -DLIBRA_SANITIZE=address >/dev/null
  # rl_test covers the GEMM kernels, workspaces and the PPO update path;
  # harness_test drives the trainer end-to-end; simd_test walks the AVX2
  # kernels' unaligned loads and padded-tail handling, in both dispatch
  # modes. alloc_test is excluded: it replaces global operator new, which
  # conflicts with ASan's interceptors.
  cmake --build build-asan -j "$JOBS" --target rl_test harness_test simd_test
  (cd build-asan && ./tests/rl_test && ./tests/harness_test \
    && ./tests/simd_test && LIBRA_SIMD=off ./tests/simd_test)

  echo "== UBSan: simd_test (lane arithmetic, exponent-bit tricks) =="
  cmake -B build-ubsan -S . -DLIBRA_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS" --target simd_test
  (cd build-ubsan && ./tests/simd_test)
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== bench regression: compare against committed baseline =="
  scripts/bench_regress.sh compare
fi

echo "check.sh: all green"
