#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes: ThreadSanitizer over the parallel
# experiment engine + parallel rollout collection, AddressSanitizer over the
# batched RL kernels, and a flight-recorder trace round-trip smoke test.
# Usage: scripts/check.sh [--tsan-only | --asan-only | --no-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TIER1=1
RUN_TSAN=1
RUN_ASAN=1
case "${1:-}" in
  --tsan-only) RUN_TIER1=0; RUN_ASAN=0 ;;
  --asan-only) RUN_TIER1=0; RUN_TSAN=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  --no-sanitizers) RUN_TSAN=0; RUN_ASAN=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --asan-only | --no-tsan | --no-sanitizers]" >&2; exit 2 ;;
esac

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "== trace round-trip: record a run, summarize it offline =="
  # The recorded per-ACK stream must reproduce the run's own summary; a
  # truncated or empty trace makes trace_summarize exit non-zero.
  TRACE_DIR="$(mktemp -d)"
  trap 'rm -rf "$TRACE_DIR"' EXIT
  ./build/tools/record_run --out="$TRACE_DIR/smoke.jsonl" --duration=2 \
    > "$TRACE_DIR/summary.json"
  SUMMARY="$(./build/tools/trace_summarize --warmup=1 "$TRACE_DIR/smoke.jsonl")"
  echo "$SUMMARY" | grep -q "rtt p99" || {
    echo "trace round-trip: missing percentile table" >&2; exit 1; }
  echo "$SUMMARY" | grep -q "total: throughput" || {
    echo "trace round-trip: missing totals line" >&2; exit 1; }
  grep -q '"link_utilization"' "$TRACE_DIR/summary.json" || {
    echo "trace round-trip: record_run emitted no JSON summary" >&2; exit 1; }
  echo "trace round-trip: ok"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== TSan: parallel engine + rollout collection must be race-free =="
  cmake -B build-tsan -S . -DLIBRA_SANITIZE=thread >/dev/null
  # The determinism/engine tests are the ones that exercise cross-thread
  # sharing (frozen brains, the pool, run_many, parallel rollout collection,
  # concurrent metrics merges and logger sinks); building the whole tree under
  # TSan is unnecessary for the guarantee and triples the cycle time.
  cmake --build build-tsan -j "$JOBS" --target parallel_test sim_test util_test obs_test rl_test
  (cd build-tsan && ./tests/parallel_test && ./tests/sim_test && ./tests/util_test && ./tests/obs_test && ./tests/rl_test)
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan: batched RL kernels + training path must be leak/overflow-free =="
  cmake -B build-asan -S . -DLIBRA_SANITIZE=address >/dev/null
  # rl_test covers the GEMM kernels, workspaces and the PPO update path;
  # harness_test drives the trainer end-to-end. alloc_test is excluded: it
  # replaces global operator new, which conflicts with ASan's interceptors.
  cmake --build build-asan -j "$JOBS" --target rl_test harness_test
  (cd build-asan && ./tests/rl_test && ./tests/harness_test)
fi

echo "check.sh: all green"
