#include "sim/link.h"

#include <algorithm>
#include <stdexcept>

#include "obs/profiler.h"

namespace libra {

namespace {
// When the trace momentarily reports (near-)zero capacity, poll again instead
// of computing an infinite serialization time.
constexpr RateBps kMinServiceRate = 1000.0;  // 1 kbps
constexpr SimDuration kStallRetry = msec(5);
}  // namespace

DropTailLink::DropTailLink(EventQueue& events, LinkConfig config)
    : events_(events), config_(std::move(config)), rng_(config_.seed) {
  if (!config_.capacity) throw std::invalid_argument("DropTailLink: capacity trace required");
  if (config_.buffer_bytes <= 0) throw std::invalid_argument("DropTailLink: buffer must be > 0");
}

bool DropTailLink::policer_admits(Packet& pkt) {
  const SimTime now = events_.now();
  if (config_.policer_rate <= 0 || now < config_.policer_start ||
      now >= config_.policer_stop)
    return true;
  // Lazy refill: the bucket starts full the first time the active window is
  // exercised and accrues rate * elapsed between arrivals, capped at burst.
  const double burst = static_cast<double>(config_.policer_burst_bytes);
  if (policer_refill_ < 0) {
    policer_tokens_ = burst;
  } else {
    policer_tokens_ = std::min(
        burst, policer_tokens_ + config_.policer_rate / 8.0 *
                                     to_seconds(now - policer_refill_));
  }
  policer_refill_ = now;
  if (static_cast<double>(pkt.bytes) <= policer_tokens_) {
    policer_tokens_ -= static_cast<double>(pkt.bytes);
    return true;
  }
  // Non-conforming: mark-if-able when configured, else drop. Marked packets
  // proceed to the queue (they still consume link capacity, like a policer
  // deployed in ECN-marking mode); tokens are not consumed either way.
  if (config_.policer_marks && pkt.ecn_capable) {
    pkt.ce_marked = true;
    ++policer_marks_;
    if (recorder_) recorder_->policer(now, pkt.flow_id, pkt.seq, pkt.bytes,
                                      policer_tokens_, /*marked=*/true);
    return true;
  }
  ++drops_policer_;
  if (recorder_) {
    recorder_->policer(now, pkt.flow_id, pkt.seq, pkt.bytes, policer_tokens_,
                       /*marked=*/false);
    recorder_->drop(now, pkt.flow_id, pkt.seq, pkt.bytes, queue_bytes_,
                    DropReason::kPolicer);
  }
  if (drop_) drop_(pkt);
  return false;
}

void DropTailLink::send(Packet pkt) {
  PROF_SCOPE("link.enqueue");
  if (!policer_admits(pkt)) return;
  // Stochastic wire loss models random (non-congestive) drops; it happens
  // before queueing, exactly like Mahimahi's --uplink-loss.
  if (config_.stochastic_loss > 0 && rng_.chance(config_.stochastic_loss)) {
    ++drops_wire_;
    if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                   queue_bytes_, DropReason::kWire);
    if (drop_) drop_(pkt);
    return;
  }
  if (queue_bytes_ + pkt.bytes > config_.buffer_bytes) {
    ++drops_overflow_;
    if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                   queue_bytes_, DropReason::kOverflow);
    if (drop_) drop_(pkt);
    return;
  }
  // DCTCP-style step marking: an ECT packet arriving to a standing queue of
  // at least K bytes is CE-marked on admission (instantaneous occupancy, per
  // the DCTCP paper's switch model).
  if (config_.ecn_threshold_bytes > 0 && pkt.ecn_capable && !pkt.ce_marked &&
      queue_bytes_ >= config_.ecn_threshold_bytes) {
    pkt.ce_marked = true;
    ++ecn_marks_;
    if (recorder_) recorder_->ecn_mark(events_.now(), pkt.flow_id, pkt.seq,
                                       pkt.bytes, queue_bytes_);
  }
  pkt.enqueue_time = events_.now();
  queue_bytes_ += pkt.bytes;
  if (queue_bytes_ > max_queue_bytes_) max_queue_bytes_ = queue_bytes_;
  queue_.push_back(pkt);
  if (recorder_) recorder_->enqueue(pkt.enqueue_time, pkt.flow_id, pkt.seq,
                                    pkt.bytes, queue_bytes_, queue_.size());
  if (!transmitting_) schedule_dequeue();
}

void DropTailLink::schedule_dequeue() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  RateBps rate = config_.capacity->rate_at(events_.now());
  if (rate < kMinServiceRate) {
    // Capacity outage: re-check shortly; the head packet stays queued.
    events_.schedule_in(kStallRetry, [this] { schedule_dequeue(); });
    return;
  }
  SimDuration tx = transmission_time(queue_.front().bytes, rate);
  events_.schedule_in(tx, [this] { dequeue_head(); });
}

void DropTailLink::dequeue_head() {
  Packet pkt = queue_.front();
  queue_.pop_front();
  queue_bytes_ -= pkt.bytes;
  delivered_bytes_ += pkt.bytes;
  if (recorder_) recorder_->deliver(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                    queue_bytes_);
  // Propagation happens after serialization; delivery of this packet and the
  // start of the next transmission are independent events.
  if (deliver_) {
    Packet delivered = pkt;
    events_.schedule_in(config_.propagation_delay,
                        [this, delivered] { deliver_(delivered); });
  }
  schedule_dequeue();
}

}  // namespace libra
