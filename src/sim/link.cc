#include "sim/link.h"

#include <stdexcept>

#include "obs/profiler.h"

namespace libra {

namespace {
// When the trace momentarily reports (near-)zero capacity, poll again instead
// of computing an infinite serialization time.
constexpr RateBps kMinServiceRate = 1000.0;  // 1 kbps
constexpr SimDuration kStallRetry = msec(5);
}  // namespace

DropTailLink::DropTailLink(EventQueue& events, LinkConfig config)
    : events_(events), config_(std::move(config)), rng_(config_.seed) {
  if (!config_.capacity) throw std::invalid_argument("DropTailLink: capacity trace required");
  if (config_.buffer_bytes <= 0) throw std::invalid_argument("DropTailLink: buffer must be > 0");
}

void DropTailLink::send(Packet pkt) {
  PROF_SCOPE("link.enqueue");
  // Stochastic wire loss models random (non-congestive) drops; it happens
  // before queueing, exactly like Mahimahi's --uplink-loss.
  if (config_.stochastic_loss > 0 && rng_.chance(config_.stochastic_loss)) {
    ++drops_wire_;
    if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                   queue_bytes_, DropReason::kWire);
    if (drop_) drop_(pkt);
    return;
  }
  if (queue_bytes_ + pkt.bytes > config_.buffer_bytes) {
    ++drops_overflow_;
    if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                   queue_bytes_, DropReason::kOverflow);
    if (drop_) drop_(pkt);
    return;
  }
  pkt.enqueue_time = events_.now();
  queue_bytes_ += pkt.bytes;
  if (queue_bytes_ > max_queue_bytes_) max_queue_bytes_ = queue_bytes_;
  queue_.push_back(pkt);
  if (recorder_) recorder_->enqueue(pkt.enqueue_time, pkt.flow_id, pkt.seq,
                                    pkt.bytes, queue_bytes_, queue_.size());
  if (!transmitting_) schedule_dequeue();
}

void DropTailLink::schedule_dequeue() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  RateBps rate = config_.capacity->rate_at(events_.now());
  if (rate < kMinServiceRate) {
    // Capacity outage: re-check shortly; the head packet stays queued.
    events_.schedule_in(kStallRetry, [this] { schedule_dequeue(); });
    return;
  }
  SimDuration tx = transmission_time(queue_.front().bytes, rate);
  events_.schedule_in(tx, [this] { dequeue_head(); });
}

void DropTailLink::dequeue_head() {
  Packet pkt = queue_.front();
  queue_.pop_front();
  queue_bytes_ -= pkt.bytes;
  delivered_bytes_ += pkt.bytes;
  if (recorder_) recorder_->deliver(events_.now(), pkt.flow_id, pkt.seq, pkt.bytes,
                                    queue_bytes_);
  // Propagation happens after serialization; delivery of this packet and the
  // start of the next transmission are independent events.
  if (deliver_) {
    Packet delivered = pkt;
    events_.schedule_in(config_.propagation_delay,
                        [this, delivered] { deliver_(delivered); });
  }
  schedule_dequeue();
}

}  // namespace libra
