// The congestion-control interface every algorithm in this repo implements —
// classic (CUBIC, BBR, ...), learned (Aurora, Vivace, ...), and the Libra
// controller itself. It mirrors what the Linux kernel/QUIC stacks expose:
// per-ACK and per-loss callbacks plus a cwnd and an optional pacing rate.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/types.h"

namespace libra {

/// Feedback delivered to the CCA for every acknowledged packet.
struct AckEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  SimTime sent_time = 0;
  SimDuration rtt = 0;
  std::int64_t acked_bytes = 0;
  std::int64_t bytes_in_flight = 0;  // after removing this packet
  /// BBR-style delivery rate sample (bits/s); 0 when not yet measurable.
  RateBps delivery_rate = 0;
  SimDuration min_rtt = 0;           // sender's lifetime minimum
};

/// Feedback delivered once per packet deemed lost.
struct LossEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  SimTime sent_time = 0;
  std::int64_t lost_bytes = 0;
  std::int64_t bytes_in_flight = 0;  // after removing this packet
  bool from_timeout = false;
};

struct SendEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  std::int64_t bytes = 0;
  std::int64_t bytes_in_flight = 0;  // including this packet
};

inline constexpr std::int64_t kInfiniteCwnd = std::numeric_limits<std::int64_t>::max() / 4;

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_packet_sent(const SendEvent&) {}
  virtual void on_ack(const AckEvent& ack) = 0;
  virtual void on_loss(const LossEvent& loss) = 0;

  /// Called on the sender's periodic timer (every ~10 ms of sim time); lets
  /// time-driven algorithms (monitor intervals, BBR's ProbeRTT) advance even
  /// when no ACKs arrive.
  virtual void on_tick(SimTime /*now*/) {}

  /// Pacing rate in bits/s; return 0 to let the sender derive pacing from the
  /// congestion window (classic window-driven behaviour).
  virtual RateBps pacing_rate() const = 0;

  /// Congestion window in bytes. Rate-based algorithms return kInfiniteCwnd.
  virtual std::int64_t cwnd_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Approximate resident memory of the algorithm's state (model parameters
  /// dominate for learned CCAs); feeds the overhead benchmarks.
  virtual std::int64_t memory_bytes() const { return 256; }
};

}  // namespace libra
