// The congestion-control interface every algorithm in this repo implements —
// classic (CUBIC, BBR, ...), learned (Aurora, Vivace, ...), and the Libra
// controller itself. It mirrors what the Linux kernel/QUIC stacks expose:
// per-ACK and per-loss callbacks plus a cwnd and an optional pacing rate.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "obs/recorder.h"
#include "util/types.h"

namespace libra {

/// Feedback delivered to the CCA for every acknowledged packet.
struct AckEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  SimTime sent_time = 0;
  SimDuration rtt = 0;
  std::int64_t acked_bytes = 0;
  std::int64_t bytes_in_flight = 0;  // after removing this packet
  /// BBR-style delivery rate sample (bits/s); 0 when not yet measurable.
  RateBps delivery_rate = 0;
  SimDuration min_rtt = 0;           // sender's lifetime minimum
  /// ECN echo: the acked packet came back CE-marked (a queue marked it
  /// instead of dropping). Always false for non-ECN-capable flows.
  bool ecn_ce = false;
};

/// Feedback delivered once per packet deemed lost.
struct LossEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  SimTime sent_time = 0;
  std::int64_t lost_bytes = 0;
  std::int64_t bytes_in_flight = 0;  // after removing this packet
  bool from_timeout = false;
};

struct SendEvent {
  SimTime now = 0;
  std::uint64_t seq = 0;
  std::int64_t bytes = 0;
  std::int64_t bytes_in_flight = 0;  // including this packet
};

inline constexpr std::int64_t kInfiniteCwnd = std::numeric_limits<std::int64_t>::max() / 4;

class Telemetry;

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_packet_sent(const SendEvent&) {}
  virtual void on_ack(const AckEvent& ack) = 0;
  virtual void on_loss(const LossEvent& loss) = 0;

  /// Called on the sender's periodic timer (every ~10 ms of sim time); lets
  /// time-driven algorithms (monitor intervals, BBR's ProbeRTT) advance even
  /// when no ACKs arrive.
  virtual void on_tick(SimTime /*now*/) {}

  /// Whether on_tick does anything. The fleet engine's per-shard scan skips
  /// the whole per-tick path for window-limited flows whose controller
  /// returns false here, which is what keeps 1000-flow scenarios cheap.
  /// Defaults to true (always safe); purely ACK/loss-clocked algorithms
  /// override to false. Must be constant over the controller's lifetime.
  virtual bool wants_tick() const { return true; }

  /// Pacing rate in bits/s; return 0 to let the sender derive pacing from the
  /// congestion window (classic window-driven behaviour).
  virtual RateBps pacing_rate() const = 0;

  /// Congestion window in bytes. Rate-based algorithms return kInfiniteCwnd.
  virtual std::int64_t cwnd_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Approximate resident memory of the algorithm's state (model parameters
  /// dominate for learned CCAs); feeds the overhead benchmarks.
  virtual std::int64_t memory_bytes() const { return 256; }

  /// Attaches the run's flight recorder (called by the Sender when the flow
  /// is wired into a network). Algorithms that emit their own trace events
  /// (Libra stages/cycles, learned decisions) read it via recorder();
  /// wrappers (Libra, MeteredCca) override to propagate to inner CCAs.
  virtual void bind_recorder(FlightRecorder* rec, int flow_id) {
    obs_recorder_ = rec;
    obs_flow_ = flow_id;
  }

  /// Attaches the run's telemetry sampler (same wiring path as the
  /// recorder). Algorithms with internal control state worth annotating
  /// (Libra stage transitions) push into it; wrappers propagate.
  virtual void bind_telemetry(Telemetry* telemetry, int flow_id) {
    obs_telemetry_ = telemetry;
    obs_flow_ = flow_id;
  }

  /// Control-cycle stage sampled into the telemetry `stage` column; -1 for
  /// algorithms without staged control (everything but Libra).
  virtual int telemetry_stage() const { return -1; }

 protected:
  Telemetry* telemetry() const { return obs_telemetry_; }
  FlightRecorder* recorder() const { return obs_recorder_; }
  int obs_flow() const { return obs_flow_; }

  /// Algorithm-internal trace event (epoch reset, mode switch, RL action...).
  /// `code` is algorithm-specific; schema documented next to each call site.
  void record_cca_event(SimTime t, int code, double v0 = 0, double v1 = 0) const {
    if (obs_recorder_) obs_recorder_->cca_event(t, obs_flow_, code, v0, v1);
  }

 private:
  FlightRecorder* obs_recorder_ = nullptr;
  Telemetry* obs_telemetry_ = nullptr;
  int obs_flow_ = 0;
};

}  // namespace libra
