// Transport sender endpoint.
//
// Models a backlogged (always-has-data) flow: QUIC-style monotonically
// increasing packet numbers, per-packet ACKs, packet-threshold and
// RTO-based loss detection, SRTT/RTTVAR estimation, BBR-style delivery-rate
// sampling, and token-less pacing driven by the congestion controller's
// pacing rate (or derived from cwnd/SRTT for purely window-based CCAs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/congestion_control.h"
#include "sim/event_queue.h"
#include "sim/packet.h"

namespace libra {

struct TelemetryFlowSample;
struct FleetFlowHot;

struct SenderConfig {
  int flow_id = 0;
  std::int64_t packet_bytes = kDefaultPacketBytes;
  SimTime start_time = 0;
  SimTime stop_time = kSimTimeMax;
  SimDuration tick_interval = msec(10);
  SimDuration min_rto = msec(300);
  /// Packet-number distance after which an unacked packet is declared lost.
  int reorder_threshold = 3;
  /// Floor on the effective pacing rate so a misbehaving controller cannot
  /// silence the flow entirely (matches the minimum rates learned agents use).
  RateBps min_pacing_rate = kbps(64);
  /// Total bytes the flow has to send; negative means backlogged (infinite).
  /// A finite flow stops initiating sends once the budget is on the wire and
  /// finishes when every budgeted packet is acked or declared lost (the sim
  /// never retransmits — QUIC-style abstract stream).
  std::int64_t byte_budget = -1;
  /// Fleet-engine mode: the owner drives run_tick() from its shard scan
  /// instead of this sender scheduling its own periodic timer event.
  bool external_tick = false;
  /// Stamp outgoing packets ECT so ECN-enabled queues mark them (CE) instead
  /// of dropping; CE comes back on the ACK as AckEvent::ecn_ce.
  bool ecn_capable = false;
};

class Sender {
 public:
  using TransmitFn = std::function<void(Packet)>;

  Sender(EventQueue& events, SenderConfig config,
         std::unique_ptr<CongestionControl> cca);

  /// Wires the sender to the network; must be called before start().
  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }

  /// Attaches the run's flight recorder and propagates it to the CCA. The
  /// recorder guards every record call on its own enabled flag, so wiring it
  /// unconditionally costs nothing while recording is off.
  void set_recorder(FlightRecorder* rec) {
    recorder_ = rec;
    cca_->bind_recorder(rec, config_.flow_id);
  }

  /// Attaches the run's telemetry sampler and propagates it to the CCA
  /// (same contract as set_recorder: free while telemetry is off).
  void set_telemetry(Telemetry* telemetry) {
    telemetry_ = telemetry;
    cca_->bind_telemetry(telemetry, config_.flow_id);
  }

  /// Fills the sender-owned fields of a telemetry sample: cwnd, the
  /// *effective* pacing rate (what the pacer actually enforces, including the
  /// cwnd/SRTT-derived rate for window-driven CCAs), SRTT, inflight, losses,
  /// and the CCA's control stage. Read-only: sampling cannot perturb the run.
  void fill_telemetry(TelemetryFlowSample& sample) const;

  /// Schedules the first send and the periodic tick at config.start_time.
  void start();

  /// Invoked by the network when the ACK for `pkt` reaches the sender.
  void on_ack_packet(const Packet& pkt);

  /// One semantic tick (RTO scan, CCA on_tick, send attempt) without the
  /// self-rescheduling timer — the fleet engine's shard scan calls this for
  /// flows its SoA state says have work to do.
  void run_tick(SimTime now);

  /// Points this sender at row `idx` of the fleet engine's SoA hot state; the
  /// sender refreshes the row after every state-changing entry point.
  void bind_fleet_slot(FleetFlowHot* hot, std::size_t idx);

  /// Finite flows: set once, when the byte budget is fully acked-or-lost.
  bool finished() const { return finished_time_ >= 0; }
  SimTime finished_time() const { return finished_time_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }

  CongestionControl& cca() { return *cca_; }
  const CongestionControl& cca() const { return *cca_; }

  /// Replaces the congestion controller mid-flow (used by A/B harnesses).
  void replace_cca(std::unique_ptr<CongestionControl> cca);

  /// The rate the pacer currently enforces, including the cwnd/SRTT-derived
  /// rate for window-driven CCAs — the fleet health layer's per-window
  /// pacing snapshot (same value fill_telemetry reports).
  RateBps current_pacing_rate() const { return effective_pacing_rate(); }

  std::int64_t bytes_in_flight() const { return bytes_in_flight_; }
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t packets_acked() const { return packets_acked_; }
  std::int64_t packets_lost() const { return packets_lost_; }
  /// ACKs that carried a CE echo (0 for non-ECN flows).
  std::int64_t packets_ce() const { return packets_ce_; }
  SimDuration smoothed_rtt() const { return srtt_; }
  SimDuration min_rtt() const { return min_rtt_; }
  const SenderConfig& config() const { return config_; }

  // Observers (may be empty). Fired after the CCA sees the same event.
  std::function<void(const AckEvent&)> ack_observer;
  std::function<void(const LossEvent&)> loss_observer;
  std::function<void(const SendEvent&)> send_observer;

 private:
  struct Outstanding {
    SimTime sent_time = 0;
    std::int64_t bytes = 0;
    std::int64_t delivered_at_send = 0;
    SimTime delivered_time_at_send = 0;
  };

  // In-flight packet window keyed by sequence number. Sequences are handed
  // out monotonically and retired either from the front (loss detection) or
  // at an arbitrary recent position (ACKs), so a ring of recycled slots
  // replaces the std::map whose node-per-packet allocations dominated the
  // send/ack profile. Invariant: when non-empty, the front slot is live.
  class OutstandingWindow {
   public:
    void push(std::uint64_t seq, const Outstanding& info) {
      if (count_ == slots_.size()) grow();
      Slot& s = slots_[(head_ + count_) & (slots_.size() - 1)];
      s.info = info;
      s.live = true;
      if (count_ == 0) base_ = seq;
      ++count_;
      ++live_;
    }

    /// Live entry for `seq`, or nullptr if unknown / already retired.
    const Outstanding* find(std::uint64_t seq) const {
      const Slot* s = slot_for(seq);
      return s && s->live ? &s->info : nullptr;
    }

    /// Retires `seq` and trims retired slots off the front.
    void erase(std::uint64_t seq) {
      Slot* s = slot_for(seq);
      if (!s || !s->live) return;
      s->live = false;
      --live_;
      while (count_ > 0 && !slots_[head_].live) {
        head_ = (head_ + 1) & (slots_.size() - 1);
        ++base_;
        --count_;
      }
    }

    bool empty() const { return live_ == 0; }
    std::uint64_t front_seq() const { return base_; }
    const Outstanding& front() const { return slots_[head_].info; }

   private:
    struct Slot {
      Outstanding info;
      bool live = false;
    };

    Slot* slot_for(std::uint64_t seq) {
      if (count_ == 0 || seq < base_ || seq - base_ >= count_) return nullptr;
      return &slots_[(head_ + (seq - base_)) & (slots_.size() - 1)];
    }
    const Slot* slot_for(std::uint64_t seq) const {
      return const_cast<OutstandingWindow*>(this)->slot_for(seq);
    }

    void grow() {
      std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
      std::vector<Slot> bigger(cap);
      for (std::size_t i = 0; i < count_; ++i) {
        bigger[i] = slots_[(head_ + i) & (slots_.size() - 1)];
      }
      slots_ = std::move(bigger);
      head_ = 0;
    }

    std::vector<Slot> slots_;
    std::uint64_t base_ = 0;  // seq of the front slot
    std::size_t head_ = 0;
    std::size_t count_ = 0;   // span including retired holes
    std::size_t live_ = 0;
  };

  void maybe_send();
  void transmit_one();
  void maybe_record_rate();
  void on_tick();
  bool budget_exhausted() const {
    return config_.byte_budget >= 0 &&
           packets_sent_ * config_.packet_bytes >= config_.byte_budget;
  }
  void maybe_finish();
  void sync_hot();
  void detect_packet_threshold_losses();
  void detect_rto_losses();
  void declare_lost(std::uint64_t seq, const Outstanding& info, bool from_timeout);
  void update_rtt(SimDuration sample);
  SimDuration rto() const;
  RateBps effective_pacing_rate() const;

  EventQueue& events_;
  SenderConfig config_;
  std::unique_ptr<CongestionControl> cca_;
  TransmitFn transmit_;
  FlightRecorder* recorder_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  RateBps last_recorded_rate_ = -1;
  std::int64_t last_recorded_cwnd_ = -1;

  OutstandingWindow outstanding_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t highest_acked_ = 0;
  bool any_acked_ = false;
  std::int64_t bytes_in_flight_ = 0;

  // RTT estimation (RFC 6298 style).
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  SimDuration min_rtt_ = 0;

  // Delivery-rate sampling.
  std::int64_t delivered_bytes_ = 0;
  SimTime delivered_time_ = 0;

  SimTime next_send_time_ = 0;
  bool send_event_scheduled_ = false;
  bool started_ = false;
  bool running_ = false;  // the start event has fired
  SimTime finished_time_ = -1;

  // Fleet SoA view (null outside the fleet engine).
  FleetFlowHot* hot_ = nullptr;
  std::size_t hot_idx_ = 0;
  bool wants_tick_ = true;

  std::int64_t packets_sent_ = 0;
  std::int64_t packets_acked_ = 0;
  std::int64_t packets_lost_ = 0;
  std::int64_t packets_ce_ = 0;
};

}  // namespace libra
