// A flow couples a Sender with the measurement the evaluation needs:
// per-ACK throughput/RTT series, loss accounting, and summary metrics.
#pragma once

#include <memory>

#include "sim/sender.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace libra {

struct FlowMetrics {
  std::int64_t packets_sent = 0;
  std::int64_t packets_acked = 0;
  std::int64_t packets_lost = 0;
  std::int64_t bytes_acked = 0;
  RunningStats rtt_ms;  // per-ACK RTT samples, milliseconds

  double loss_rate() const {
    return packets_sent > 0
               ? static_cast<double>(packets_lost) / static_cast<double>(packets_sent)
               : 0.0;
  }

  /// Goodput over a window (bits/s).
  static double throughput_bps(std::int64_t bytes, SimDuration window) {
    return window > 0 ? static_cast<double>(bytes) * 8.0 / to_seconds(window) : 0.0;
  }
};

class Flow {
 public:
  Flow(EventQueue& events, SenderConfig config,
       std::unique_ptr<CongestionControl> cca)
      : sender_(std::make_unique<Sender>(events, config, std::move(cca))) {
    sender_->ack_observer = [this](const AckEvent& ev) {
      metrics_.packets_acked++;
      metrics_.bytes_acked += ev.acked_bytes;
      metrics_.rtt_ms.add(to_msec(ev.rtt));
      acked_bytes_series_.add(ev.now, static_cast<double>(ev.acked_bytes));
      rtt_series_.add(ev.now, to_msec(ev.rtt));
    };
    sender_->loss_observer = [this](const LossEvent& ev) {
      metrics_.packets_lost++;
      loss_series_.add(ev.now, static_cast<double>(ev.lost_bytes));
    };
    sender_->send_observer = [this](const SendEvent&) { metrics_.packets_sent++; };
  }

  Sender& sender() { return *sender_; }
  const Sender& sender() const { return *sender_; }
  const FlowMetrics& metrics() const { return metrics_; }

  /// (ack time, acked bytes) — bin with TimeSeries::to_rate_bins for
  /// throughput-over-time plots.
  const TimeSeries& acked_bytes_series() const { return acked_bytes_series_; }
  const TimeSeries& rtt_series() const { return rtt_series_; }
  /// (loss detection time, lost bytes).
  const TimeSeries& loss_series() const { return loss_series_; }

  /// Goodput over [t0, t1) in bits/s.
  double throughput_in(SimTime t0, SimTime t1) const {
    return FlowMetrics::throughput_bps(
        static_cast<std::int64_t>(acked_bytes_series_.sum_in(t0, t1)), t1 - t0);
  }

  /// Mean RTT (ms) over acks in [t0, t1).
  double mean_rtt_in(SimTime t0, SimTime t1) const {
    return rtt_series_.mean_in(t0, t1);
  }

 private:
  std::unique_ptr<Sender> sender_;
  FlowMetrics metrics_;
  TimeSeries acked_bytes_series_;
  TimeSeries rtt_series_;
  TimeSeries loss_series_;
};

}  // namespace libra
