#include "sim/fleet.h"

#include <algorithm>
#include <chrono>
#include <future>

#include "obs/profiler.h"
#include "obs/telemetry.h"

namespace libra {

FleetNetwork::FleetNetwork(std::vector<FleetLink> hops, FleetOptions options)
    : mode_(options.mode), opts_(std::move(options)), hop_specs_(std::move(hops)) {
  if (hop_specs_.empty())
    throw std::invalid_argument("FleetNetwork: at least one hop required");
  if (opts_.sender_shards < 0)
    throw std::invalid_argument("FleetNetwork: sender_shards must be >= 0");
  if (opts_.sender.tick_interval <= 0)
    throw std::invalid_argument("FleetNetwork: tick interval must be > 0");

  const std::size_t nshards =
      hop_specs_.size() + static_cast<std::size_t>(opts_.sender_shards);
  if (nshards >= (std::size_t{1} << 15))
    throw std::invalid_argument("FleetNetwork: too many shards");
  shards_.resize(nshards);
  seq_.resize(nshards);
  for (std::size_t s = 0; s < nshards; ++s)
    seq_[s] = static_cast<std::uint64_t>(s) << kShardShift;

  if (mode_ == FleetMode::kSerial) {
    shard_events_.assign(nshards, 0);
    queues_.push_back(std::make_unique<EventQueue>());
    queues_[0]->set_pop_hook(&FleetNetwork::pop_hook, this);
    for (Shard& sh : shards_) sh.queue = queues_[0].get();
    set_context(0);
  } else {
    queues_.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
      queues_.push_back(std::make_unique<EventQueue>());
      queues_[s]->set_seq_source(&seq_[s]);
      shards_[s].queue = queues_[s].get();
    }
    outbox_.resize(nshards);
    for (auto& row : outbox_) row.resize(nshards);
  }

  links_.reserve(hop_specs_.size());
  for (std::size_t h = 0; h < hop_specs_.size(); ++h) {
    LinkConfig cfg;
    cfg.capacity = hop_specs_[h].capacity
                       ? hop_specs_[h].capacity
                       : std::make_shared<ConstantTrace>(hop_specs_[h].rate);
    cfg.buffer_bytes = hop_specs_[h].buffer_bytes;
    // Hop-to-hop propagation is the engine's cross-shard edge (see
    // on_hop_deliver); the link itself delivers at serialization end.
    cfg.propagation_delay = 0;
    cfg.stochastic_loss = hop_specs_[h].stochastic_loss;
    cfg.ecn_threshold_bytes = hop_specs_[h].ecn_threshold_bytes;
    cfg.policer_rate = hop_specs_[h].policer_rate;
    cfg.policer_burst_bytes = hop_specs_[h].policer_burst_bytes;
    cfg.policer_marks = hop_specs_[h].policer_marks;
    cfg.policer_start = hop_specs_[h].policer_start;
    cfg.policer_stop = hop_specs_[h].policer_stop;
    cfg.seed = opts_.seed ^ (0xF1EE7u + 0x9E3779B9u * static_cast<std::uint64_t>(h));
    auto link = std::make_unique<DropTailLink>(*shards_[h].queue, std::move(cfg));
    const int hop = static_cast<int>(h);
    link->set_deliver([this, hop](const Packet& pkt) { on_hop_deliver(hop, pkt); });
    shards_[h].hops.push_back(hop);
    links_.push_back(std::move(link));
  }

  if (opts_.warmup <= 0) {
    window_start_ = 0;
  } else {
    const SimDuration tick = opts_.sender.tick_interval;
    const SimTime k = (opts_.warmup + tick - 1) / tick;
    window_start_ = std::max<SimTime>(k, 1) * tick;
  }
  hop_delivered_w0_.assign(hop_specs_.size(), 0);
}

FleetNetwork::~FleetNetwork() = default;

int FleetNetwork::add_flow(FleetFlowDef def) {
  if (started_) throw std::logic_error("FleetNetwork: add_flow after run started");
  if (!def.cca)
    throw std::invalid_argument("FleetNetwork: flow needs a controller");
  const int nhops = hop_count();
  const int enter = def.enter_hop;
  const int exit = def.exit_hop < 0 ? enter : def.exit_hop;
  if (enter < 0 || enter >= nhops || exit < enter || exit >= nhops)
    throw std::invalid_argument("FleetNetwork: bad hop span");

  const int id = flow_count();
  Route r;
  r.enter = enter;
  r.exit = exit;
  r.sender_shard =
      opts_.sender_shards > 0
          ? links_.size() + static_cast<std::size_t>(id % opts_.sender_shards)
          : shard_of_hop(enter);
  // Forward path past the exit hop's serialization: the remaining one-way
  // propagation to the receiver plus the whole uncongested return path
  // (mirroring the forward propagation and the sender's access link).
  SimDuration return_path = opts_.access_delay + def.extra_ack_delay;
  for (int h = enter; h <= exit; ++h) return_path += hop_specs_[h].to_next_delay;
  r.ack_delay = hop_specs_[static_cast<std::size_t>(exit)].to_next_delay + return_path;

  SenderConfig cfg = opts_.sender;
  cfg.flow_id = id;
  cfg.start_time = def.start;
  cfg.stop_time = def.stop;
  cfg.byte_budget = def.byte_budget;
  cfg.external_tick = opts_.soa_scan;
  auto snd = std::make_unique<Sender>(*shards_[r.sender_shard].queue, cfg,
                                      std::move(def.cca));

  DropTailLink* first = links_[static_cast<std::size_t>(enter)].get();
  const std::size_t src = r.sender_shard;
  const std::size_t dst = shard_of_hop(enter);
  const SimDuration access = opts_.access_delay;
  snd->set_transmit([this, first, src, dst, access](Packet pkt) {
    post(src, dst, access, [first, pkt] { first->send(pkt); });
  });
  snd->ack_observer = [this, id](const AckEvent& ev) {
    const auto i = static_cast<std::size_t>(id);
    acked_bytes_[i] += ev.acked_bytes;
    rtt_sum_us_[i] += ev.rtt;
    ++rtt_samples_[i];
    if (health_on_) {
      if (health_->needs_roll(id, ev.now)) health_roll(id, ev.now);
      health_->on_ack(id, ev.acked_bytes, ev.rtt);
    }
  };

  shards_[r.sender_shard].flows.push_back(id);
  routes_.push_back(r);
  senders_.push_back(std::move(snd));
  acked_bytes_.push_back(0);
  rtt_sum_us_.push_back(0);
  rtt_samples_.push_back(0);
  acked_bytes_w0_.push_back(0);
  rtt_sum_us_w0_.push_back(0);
  rtt_samples_w0_.push_back(0);
  sent_w0_.push_back(0);
  lost_w0_.push_back(0);
  return id;
}

void FleetNetwork::compute_lookahead() {
  SimDuration min_cross = kSimTimeMax;
  for (const Route& r : routes_) {
    if (r.sender_shard != shard_of_hop(r.enter))
      min_cross = std::min(min_cross, opts_.access_delay);
    for (int h = r.enter; h < r.exit; ++h)
      min_cross =
          std::min(min_cross, hop_specs_[static_cast<std::size_t>(h)].to_next_delay);
    if (r.sender_shard != shard_of_hop(r.exit))
      min_cross = std::min(min_cross, r.ack_delay);
  }
  if (min_cross == kSimTimeMax) {
    // Single-shard topology: one window covers the whole run.
    lookahead_ = std::max<SimDuration>(opts_.duration, 1);
    return;
  }
  if (min_cross <= 0)
    throw std::invalid_argument(
        "FleetNetwork: cross-shard delays (hop/access/ack) must be > 0");
  lookahead_ = min_cross;
}

void FleetNetwork::setup() {
  hot_.resize(senders_.size());
  health_on_ = health_ && health_->enabled();
  if (health_on_) {
    std::vector<FleetFlowMeta> metas(senders_.size());
    for (std::size_t i = 0; i < senders_.size(); ++i) {
      const SenderConfig& cfg = senders_[i]->config();
      metas[i].start = cfg.start_time;
      metas[i].stop = cfg.stop_time;
      metas[i].byte_budget = cfg.byte_budget;
    }
    health_->prepare(opts_.duration, std::move(metas));
    // Loss/send observers are wired only when health is on, so a health-off
    // run keeps the sender's plain null-observer checks on those paths.
    for (std::size_t i = 0; i < senders_.size(); ++i) {
      const int id = static_cast<int>(i);
      senders_[i]->loss_observer = [this, id](const LossEvent& ev) {
        if (health_->needs_roll(id, ev.now)) health_roll(id, ev.now);
        health_->on_loss(id);
      };
      senders_[i]->send_observer = [this, id](const SendEvent& ev) {
        if (health_->needs_roll(id, ev.now)) health_roll(id, ev.now);
        health_->on_send(id);
      };
    }
  }
  if (recorder_) {
    for (auto& snd : senders_) snd->set_recorder(recorder_.get());
    for (auto& link : links_) link->set_recorder(recorder_.get());
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (mode_ == FleetMode::kSerial) set_context(s);
    Shard& sh = shards_[s];
    if (window_start_ <= 0) sh.window_snapped = true;
    for (int f : sh.flows) {
      const auto i = static_cast<std::size_t>(f);
      if (telemetry_) senders_[i]->set_telemetry(telemetry_.get());
      if (opts_.soa_scan) senders_[i]->bind_fleet_slot(&hot_, i);
      senders_[i]->start();
    }
    sh.queue->schedule_in(opts_.sender.tick_interval,
                          [this, s] { shard_tick(s); });
  }
  if (telemetry_ && telemetry_->enabled()) {
    set_context(0);
    shards_[0].queue->schedule_in(telemetry_->config().sample_interval,
                                  [this] { telemetry_tick(); });
  }
}

void FleetNetwork::on_hop_deliver(int hop, const Packet& pkt) {
  const Route& r = routes_[static_cast<std::size_t>(pkt.flow_id)];
  const auto h = static_cast<std::size_t>(hop);
  if (hop < r.exit) {
    DropTailLink* next = links_[h + 1].get();
    post(shard_of_hop(hop), shard_of_hop(hop + 1), hop_specs_[h].to_next_delay,
         [next, pkt] { next->send(pkt); });
  } else {
    // Receiver acks immediately; the ACK rides the uncongested return path.
    Sender* snd = senders_[static_cast<std::size_t>(pkt.flow_id)].get();
    post(shard_of_hop(hop), r.sender_shard, r.ack_delay,
         [snd, pkt] { snd->on_ack_packet(pkt); });
  }
}

void FleetNetwork::shard_tick(std::size_t s) {
  Shard& sh = shards_[s];
  const SimTime now = sh.queue->now();
  if (!sh.window_snapped && now >= window_start_) {
    sh.window_snapped = true;
    for (int f : sh.flows) {
      const auto i = static_cast<std::size_t>(f);
      acked_bytes_w0_[i] = acked_bytes_[i];
      rtt_sum_us_w0_[i] = rtt_sum_us_[i];
      rtt_samples_w0_[i] = rtt_samples_[i];
      sent_w0_[i] = senders_[i]->packets_sent();
      lost_w0_[i] = senders_[i]->packets_lost();
    }
    for (int h : sh.hops)
      hop_delivered_w0_[static_cast<std::size_t>(h)] =
          links_[static_cast<std::size_t>(h)]->delivered_bytes();
  }
  if (health_on_) {
    // Window rolls for flows with no recent events: the tick grid is global,
    // so roll points interleave identically under both engines.
    for (int f : sh.flows)
      if (health_->needs_roll(f, now)) health_roll(f, now);
  }
  if (opts_.soa_scan) {
    PROF_SCOPE("fleet.scan");
    const std::int64_t pkt = opts_.sender.packet_bytes;
    for (int f : sh.flows) {
      const auto i = static_cast<std::size_t>(f);
      const std::uint8_t bits = hot_.flags[i];
      if (!(bits & FleetFlowHot::kActive)) continue;
      if (now >= hot_.stop_time[i]) {
        hot_.flags[i] = bits & static_cast<std::uint8_t>(~FleetFlowHot::kActive);
        continue;
      }
      if ((bits & FleetFlowHot::kWantsTick) || now >= hot_.rto_deadline[i] ||
          hot_.send_headroom[i] >= pkt) {
        senders_[i]->run_tick(now);
      }
    }
  }
  sh.queue->schedule_in(opts_.sender.tick_interval, [this, s] { shard_tick(s); });
}

void FleetNetwork::health_roll(int flow, SimTime now) {
  const Sender& snd = *senders_[static_cast<std::size_t>(flow)];
  health_->roll(flow, now, snd.cca().cwnd_bytes(),
                static_cast<double>(snd.current_pacing_rate()));
}

// Flushes the (possibly partial) final windows and stamps per-flow outcomes;
// everything read here is post-run state, identical under both engines.
void FleetNetwork::finalize_health() {
  if (!health_on_ || health_finalized_) return;
  health_finalized_ = true;
  for (int f = 0; f < flow_count(); ++f) {
    const Sender& snd = *senders_[static_cast<std::size_t>(f)];
    health_->flush_all(f, snd.cca().cwnd_bytes(),
                       static_cast<double>(snd.current_pacing_rate()));
    health_->set_flow_outcome(f, snd.finished() ? snd.finished_time() : -1,
                              snd.min_rtt());
  }
}

// One sampling event covers every flow and every hop queue (O(flows) work per
// interval, one timer regardless of flow count). Read-only, so sampling does
// not perturb the run. Serial mode only: the sampler reads across shards.
void FleetNetwork::telemetry_tick() {
  const SimTime now = queues_[0]->now();
  TelemetryFlowSample fs;
  for (std::size_t i = 0; i < senders_.size(); ++i) {
    senders_[i]->fill_telemetry(fs);
    fs.acked_bytes = static_cast<double>(acked_bytes_[i]);
    telemetry_->sample_flow(static_cast<int>(i), fs);
  }
  TelemetryQueueSample qs;
  for (std::size_t h = 0; h < links_.size(); ++h) {
    const DropTailLink& link = *links_[h];
    qs.depth_bytes = static_cast<double>(link.queue_bytes());
    qs.depth_packets = static_cast<double>(link.queue_packets());
    RateBps rate = link.capacity().rate_at(now);
    qs.sojourn_ms =
        rate > 0 ? to_msec(transmission_time(link.queue_bytes(), rate)) : 0.0;
    qs.drops = static_cast<double>(link.drops_overflow() + link.drops_wire());
    telemetry_->sample_queue(static_cast<int>(h), qs);
  }
  queues_[0]->schedule_in(telemetry_->config().sample_interval,
                          [this] { telemetry_tick(); });
}

void FleetNetwork::process_window(SimTime bound, bool inclusive) {
  auto work = [this, bound, inclusive](std::size_t s) {
    PROF_SCOPE("fleet.shard");
    EventQueue& q = *shards_[s].queue;
    if (inclusive) {
      q.run_until(bound);
    } else {
      q.run_before(bound);
    }
  };
  const std::size_t n = shards_.size();
  if (n <= 1 || pool_->thread_count() <= 1) {
    for (std::size_t s = 0; s < n; ++s) work(s);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(n - 1);
  for (std::size_t s = 1; s < n; ++s) pending.push_back(pool_->submit(work, s));
  work(0);
  for (auto& f : pending) f.get();
}

void FleetNetwork::merge_outboxes() {
  PROF_SCOPE("fleet.merge");
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    EventQueue& q = *shards_[dst].queue;
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = outbox_[src][dst];
      for (PostedMsg& m : box) q.schedule_keyed(m.t, m.key, std::move(m.fn));
      box.clear();
    }
  }
}

void FleetNetwork::run() {
  PROF_SCOPE("fleet.run");
  const auto t0 = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    compute_lookahead();
    setup();
  }
  const SimTime end = opts_.duration;
  if (mode_ == FleetMode::kSerial) {
    queues_[0]->run_until(end);
  } else {
    if (!pool_) {
      std::size_t want = opts_.threads ? opts_.threads : shards_.size();
      pool_ = std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, std::min(want, shards_.size())));
    }
    SimTime t = 0;
    while (t < end) {
      const SimTime bound = std::min<SimTime>(end, t + lookahead_);
      process_window(bound, /*inclusive=*/false);
      merge_outboxes();
      t = bound;
    }
    // Events at exactly t == end (including messages merged at the final
    // barrier). Anything they generate lands at > end in both modes.
    process_window(end, /*inclusive=*/true);
  }
  finalize_health();
  wall_time_s_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

std::uint64_t FleetNetwork::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->processed();
  return total;
}

FleetFlowRef FleetNetwork::flow(int id) const {
  const auto i = static_cast<std::size_t>(id);
  const std::uint8_t bits = i < hot_.size() ? hot_.flags[i] : 0;
  return FleetFlowRef{*senders_[i],
                      (bits & FleetFlowHot::kActive) != 0,
                      (bits & FleetFlowHot::kWantsTick) != 0,
                      i < hot_.size() ? hot_.rto_deadline[i] : 0,
                      i < hot_.size() ? hot_.send_headroom[i] : 0};
}

void FleetNetwork::enable_telemetry(const TelemetryConfig& config) {
  if (mode_ != FleetMode::kSerial)
    throw std::logic_error("FleetNetwork: telemetry requires serial mode");
  if (started_)
    throw std::logic_error("FleetNetwork: enable_telemetry before run");
  if (!telemetry_) telemetry_ = std::make_unique<Telemetry>();
  telemetry_->enable(config);
}

void FleetNetwork::enable_health(const FleetStatsConfig& config) {
  if (started_)
    throw std::logic_error("FleetNetwork: enable_health before run");
  if (!health_) health_ = std::make_unique<FleetHealth>();
  health_->enable(config);
}

void FleetNetwork::enable_recording(std::size_t ring_capacity) {
  if (mode_ != FleetMode::kSerial)
    throw std::logic_error("FleetNetwork: recording requires serial mode");
  if (started_)
    throw std::logic_error("FleetNetwork: enable_recording before run");
  if (!recorder_) recorder_ = std::make_unique<FlightRecorder>();
  recorder_->enable(ring_capacity);
}

std::vector<std::uint64_t> FleetNetwork::shard_event_counts() const {
  if (mode_ == FleetMode::kSerial) return shard_events_;
  std::vector<std::uint64_t> out;
  out.reserve(queues_.size());
  for (const auto& q : queues_) out.push_back(q->processed());
  return out;
}

FleetSummary FleetNetwork::summarize() const {
  FleetSummary out;
  out.sim_time_s = to_seconds(opts_.duration);
  out.wall_time_s = wall_time_s_;
  out.events_processed = events_processed();
  const SimTime w0 = std::min<SimTime>(window_start_, opts_.duration);
  const double win = to_seconds(opts_.duration - w0);
  out.window_s = win;

  std::int64_t rtt_sum = 0, rtt_n = 0;
  double sum_x = 0, sum_x2 = 0;
  std::size_t fair_n = 0;
  out.flows.reserve(senders_.size());
  for (std::size_t i = 0; i < senders_.size(); ++i) {
    FleetFlowSummary fs;
    const std::int64_t bytes = acked_bytes_[i] - acked_bytes_w0_[i];
    fs.throughput_bps = win > 0 ? static_cast<double>(bytes) * 8.0 / win : 0.0;
    const std::int64_t n = rtt_samples_[i] - rtt_samples_w0_[i];
    fs.avg_rtt_ms =
        n > 0 ? static_cast<double>(rtt_sum_us_[i] - rtt_sum_us_w0_[i]) /
                    (1000.0 * static_cast<double>(n))
              : 0.0;
    const std::int64_t sent = senders_[i]->packets_sent() - sent_w0_[i];
    const std::int64_t lost = senders_[i]->packets_lost() - lost_w0_[i];
    fs.loss_rate =
        sent > 0 ? static_cast<double>(lost) / static_cast<double>(sent) : 0.0;
    fs.completion_s = senders_[i]->finished()
                          ? to_seconds(senders_[i]->finished_time())
                          : -1.0;
    rtt_sum += rtt_sum_us_[i] - rtt_sum_us_w0_[i];
    rtt_n += n;
    out.total_throughput_bps += fs.throughput_bps;
    if (fs.throughput_bps > 0) {
      sum_x += fs.throughput_bps;
      sum_x2 += fs.throughput_bps * fs.throughput_bps;
      ++fair_n;
    }
    out.flows.push_back(fs);
  }
  out.avg_delay_ms =
      rtt_n > 0 ? static_cast<double>(rtt_sum) / (1000.0 * static_cast<double>(rtt_n))
                : 0.0;
  out.jain_fairness = fair_n > 0 && sum_x2 > 0
                          ? (sum_x * sum_x) / (static_cast<double>(fair_n) * sum_x2)
                          : 0.0;

  out.hop_utilization.reserve(links_.size());
  for (std::size_t h = 0; h < links_.size(); ++h) {
    const std::int64_t delivered =
        links_[h]->delivered_bytes() - hop_delivered_w0_[h];
    const double cap_bits =
        links_[h]->capacity().average_rate(w0, opts_.duration) * win;
    out.hop_utilization.push_back(
        cap_bits > 0
            ? std::min(1.0, static_cast<double>(delivered) * 8.0 / cap_bits)
            : 0.0);
  }
  return out;
}

bool deterministically_equal(const FleetSummary& a, const FleetSummary& b) {
  if (a.sim_time_s != b.sim_time_s || a.window_s != b.window_s ||
      a.total_throughput_bps != b.total_throughput_bps ||
      a.avg_delay_ms != b.avg_delay_ms || a.jain_fairness != b.jain_fairness ||
      a.events_processed != b.events_processed ||
      a.hop_utilization != b.hop_utilization || a.flows.size() != b.flows.size())
    return false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    const FleetFlowSummary& x = a.flows[i];
    const FleetFlowSummary& y = b.flows[i];
    if (x.throughput_bps != y.throughput_bps || x.avg_rtt_ms != y.avg_rtt_ms ||
        x.loss_rate != y.loss_rate || x.completion_s != y.completion_s)
      return false;
  }
  return true;
}

}  // namespace libra
