// Struct-of-arrays hot state for the fleet engine's per-tick sender scan.
//
// A 1000-flow scenario ticking every 10 ms performs 100k per-flow tick visits
// per simulated second. Visiting the Sender object (and through it the CCA)
// for each one drags several cold cache lines per flow through L1 just to
// discover that, for a window-limited classic flow, there is nothing to do.
// These parallel arrays carry exactly the facts the scan needs to make that
// decision — ~25 bytes per flow, so a 1000-flow scan reads ~25 KB of dense,
// sequential memory and touches Sender objects only for flows with real work
// (RTO expiry, a tick-driven controller, or window headroom to send into).
//
// The arrays are a *cache*, not the source of truth: the Sender refreshes its
// row (sync_hot) at the end of every state-changing entry point, and every
// transition that could create work for a skipped flow happens inside such an
// entry point. Flow objects stay the API; this is the view the hot loop takes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace libra {

struct FleetFlowHot {
  /// Flow has started and not yet finished its byte budget.
  static constexpr std::uint8_t kActive = 1u << 0;
  /// Controller's wants_tick(): on_tick must run every scan regardless of
  /// window state (BBR's ProbeRTT clock, learned monitor intervals, Libra).
  static constexpr std::uint8_t kWantsTick = 1u << 1;

  std::vector<std::uint8_t> flags;
  /// Earliest instant the front outstanding packet can RTO (kSimTimeMax when
  /// nothing is outstanding). The scan must run the flow's tick once now
  /// passes this, so timeout losses are detected on the same tick the legacy
  /// per-sender timer would have detected them.
  std::vector<SimTime> rto_deadline;
  /// cwnd_bytes - bytes_in_flight after the flow's last event. A flow is
  /// window-limited (skippable) while this is below one packet.
  std::vector<std::int64_t> send_headroom;
  /// Sender's configured stop time; the scan deactivates the flow past it.
  std::vector<SimTime> stop_time;

  void resize(std::size_t flows) {
    flags.resize(flows, 0);
    rto_deadline.resize(flows, kSimTimeMax);
    send_headroom.resize(flows, 0);
    stop_time.resize(flows, kSimTimeMax);
  }

  std::size_t size() const { return flags.size(); }
};

}  // namespace libra
