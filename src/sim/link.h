// Bottleneck link with a droptail (FIFO, byte-limited) queue, trace-driven
// time-varying capacity, stochastic wire loss and fixed propagation delay.
// This is the simulator's stand-in for a Mahimahi link shell.
#pragma once

#include <functional>
#include <memory>

#include "obs/recorder.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "trace/rate_trace.h"
#include "util/fifo_ring.h"
#include "util/rng.h"

namespace libra {

struct LinkConfig {
  std::shared_ptr<RateTrace> capacity;          // required
  std::int64_t buffer_bytes = 150 * 1000;       // droptail queue limit
  SimDuration propagation_delay = msec(15);     // one-way, after serialization
  double stochastic_loss = 0.0;                 // P(drop on the wire)
  std::uint64_t seed = 1;
};

class DropTailLink {
 public:
  /// Called when a packet exits the far end of the link.
  using DeliverFn = std::function<void(const Packet&)>;
  /// Called when a packet is dropped (queue overflow or stochastic loss).
  using DropFn = std::function<void(const Packet&)>;

  DropTailLink(EventQueue& events, LinkConfig config);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_drop(DropFn fn) { drop_ = std::move(fn); }
  void set_recorder(FlightRecorder* rec) { recorder_ = rec; }

  /// Offers a packet to the link; tail-drops if the buffer is full.
  void send(Packet pkt);

  std::int64_t queue_bytes() const { return queue_bytes_; }
  std::size_t queue_packets() const { return queue_.size(); }
  const RateTrace& capacity() const { return *config_.capacity; }
  const LinkConfig& config() const { return config_; }

  /// Total bytes that exited the link (for utilization accounting).
  std::int64_t delivered_bytes() const { return delivered_bytes_; }

  // Always-on telemetry (cheap integer updates on the existing paths).
  std::int64_t drops_overflow() const { return drops_overflow_; }
  std::int64_t drops_wire() const { return drops_wire_; }
  std::int64_t max_queue_bytes() const { return max_queue_bytes_; }

 private:
  void schedule_dequeue();
  void dequeue_head();

  EventQueue& events_;
  LinkConfig config_;
  Rng rng_;
  FifoRing<Packet> queue_;
  std::int64_t queue_bytes_ = 0;
  std::int64_t delivered_bytes_ = 0;
  std::int64_t drops_overflow_ = 0;
  std::int64_t drops_wire_ = 0;
  std::int64_t max_queue_bytes_ = 0;
  bool transmitting_ = false;
  DeliverFn deliver_;
  DropFn drop_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace libra
