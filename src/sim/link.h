// Bottleneck link with a droptail (FIFO, byte-limited) queue, trace-driven
// time-varying capacity, stochastic wire loss and fixed propagation delay.
// This is the simulator's stand-in for a Mahimahi link shell.
#pragma once

#include <functional>
#include <memory>

#include "obs/recorder.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "trace/rate_trace.h"
#include "util/fifo_ring.h"
#include "util/rng.h"

namespace libra {

struct LinkConfig {
  std::shared_ptr<RateTrace> capacity;          // required
  std::int64_t buffer_bytes = 150 * 1000;       // droptail queue limit
  SimDuration propagation_delay = msec(15);     // one-way, after serialization
  double stochastic_loss = 0.0;                 // P(drop on the wire)
  std::uint64_t seed = 1;

  /// ECN marking threshold K (bytes): an ECT packet arriving while the
  /// instantaneous queue occupancy is >= K is CE-marked instead of relying
  /// on overflow drops (DCTCP-style step marking). 0 disables marking.
  /// Non-ECT packets are unaffected (they still tail-drop at the buffer).
  std::int64_t ecn_threshold_bytes = 0;

  /// Token-bucket policer at the link ingress (before queueing), modeling
  /// ISP rate enforcement: the bucket refills at `policer_rate` bits/s up to
  /// `policer_burst_bytes`; a packet that does not fit the bucket is dropped
  /// — or CE-marked when `policer_marks` is set and the packet is ECT. The
  /// policer is active over [policer_start, policer_stop); outside the
  /// window packets pass untouched (and the bucket re-fills on re-entry).
  /// policer_rate == 0 disables the policer entirely.
  RateBps policer_rate = 0;
  std::int64_t policer_burst_bytes = 30 * 1000;
  bool policer_marks = false;
  SimTime policer_start = 0;
  SimTime policer_stop = kSimTimeMax;
};

class DropTailLink {
 public:
  /// Called when a packet exits the far end of the link.
  using DeliverFn = std::function<void(const Packet&)>;
  /// Called when a packet is dropped (queue overflow or stochastic loss).
  using DropFn = std::function<void(const Packet&)>;

  DropTailLink(EventQueue& events, LinkConfig config);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_drop(DropFn fn) { drop_ = std::move(fn); }
  void set_recorder(FlightRecorder* rec) { recorder_ = rec; }

  /// Offers a packet to the link; tail-drops if the buffer is full.
  void send(Packet pkt);

  std::int64_t queue_bytes() const { return queue_bytes_; }
  std::size_t queue_packets() const { return queue_.size(); }
  const RateTrace& capacity() const { return *config_.capacity; }
  const LinkConfig& config() const { return config_; }

  /// Total bytes that exited the link (for utilization accounting).
  std::int64_t delivered_bytes() const { return delivered_bytes_; }

  // Always-on telemetry (cheap integer updates on the existing paths).
  std::int64_t drops_overflow() const { return drops_overflow_; }
  std::int64_t drops_wire() const { return drops_wire_; }
  std::int64_t drops_policer() const { return drops_policer_; }
  std::int64_t ecn_marks() const { return ecn_marks_; }
  std::int64_t policer_marks() const { return policer_marks_; }
  std::int64_t max_queue_bytes() const { return max_queue_bytes_; }

 private:
  void schedule_dequeue();
  void dequeue_head();
  /// True when the packet clears the (active) policer; consumes tokens on
  /// conformance, records the action otherwise.
  bool policer_admits(Packet& pkt);

  EventQueue& events_;
  LinkConfig config_;
  Rng rng_;
  FifoRing<Packet> queue_;
  std::int64_t queue_bytes_ = 0;
  std::int64_t delivered_bytes_ = 0;
  std::int64_t drops_overflow_ = 0;
  std::int64_t drops_wire_ = 0;
  std::int64_t drops_policer_ = 0;
  std::int64_t ecn_marks_ = 0;
  std::int64_t policer_marks_ = 0;
  std::int64_t max_queue_bytes_ = 0;  // high-water mark of queue_bytes_
  double policer_tokens_ = 0;      // bytes; filled on first active use
  SimTime policer_refill_ = -1;    // last refill instant; <0: bucket untouched
  bool transmitting_ = false;
  DeliverFn deliver_;
  DropFn drop_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace libra
