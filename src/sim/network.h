// Dumbbell topology: N sender/receiver pairs sharing one droptail bottleneck,
// with per-flow return-path delay. This is the shape of every experiment in
// the paper (Pantheon/Mahimahi emulation and the EC2 paths alike).
#pragma once

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/flow.h"
#include "sim/link.h"

namespace libra {

class Network {
 public:
  explicit Network(LinkConfig link_config);

  /// Adds a backlogged flow driven by `cca`. `extra_ack_delay` lengthens this
  /// flow's return path beyond the link's propagation delay (heterogeneous
  /// RTTs). Returns the flow index.
  int add_flow(std::unique_ptr<CongestionControl> cca, SimTime start_time = 0,
               SimTime stop_time = kSimTimeMax, SimDuration extra_ack_delay = 0,
               SenderConfig base_config = {});

  /// Starts every flow and runs the event loop until `t`.
  void run_until(SimTime t);

  /// Wall-clock seconds spent inside run_until so far — with events().now()
  /// this gives the run's wall/sim speed ratio.
  double wall_time_s() const { return wall_time_s_; }

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  DropTailLink& link() { return *link_; }
  Flow& flow(int i) { return *flows_.at(static_cast<std::size_t>(i)); }
  const Flow& flow(int i) const { return *flows_.at(static_cast<std::size_t>(i)); }
  int flow_count() const { return static_cast<int>(flows_.size()); }

  /// Aggregate bytes delivered to receivers in [t0, t1).
  double delivered_bytes_in(SimTime t0, SimTime t1) const {
    return deliveries_.sum_in(t0, t1);
  }

  /// Fraction of the bottleneck capacity actually used over [t0, t1).
  double link_utilization(SimTime t0, SimTime t1) const;

  /// Per-run flight recorder. Disabled (and free) by default; enable it via
  /// `recorder().enable(...)` before run_until to capture the event trace.
  /// Every component (link, senders, CCAs) is wired to it at construction.
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  /// Per-run metrics registry. Counters/gauges are filled by
  /// finalize_metrics(); callers may add their own series too.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Per-run sampling telemetry (columnar per-flow/queue time series).
  /// Disabled and free by default; `telemetry().enable(...)` before the run
  /// starts makes run_until drive a fixed sim-time-interval sampler over
  /// every flow and the bottleneck queue.
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }

  /// Snapshots end-of-run simulator state (event-queue depth, link drops,
  /// per-flow packet counts) into the metrics registry. Idempotent-ish:
  /// counters are set from absolute totals only once.
  void finalize_metrics();

 private:
  void telemetry_tick();

  EventQueue events_;
  FlightRecorder recorder_;
  MetricsRegistry metrics_;
  Telemetry telemetry_;
  std::unique_ptr<DropTailLink> link_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<SimDuration> ack_delays_;
  TimeSeries deliveries_;  // (arrival time at receiver, bytes)
  double wall_time_s_ = 0;
  bool started_ = false;
  bool metrics_finalized_ = false;
};

}  // namespace libra
