// Dumbbell topology: N sender/receiver pairs sharing one droptail bottleneck,
// with per-flow return-path delay. This is the shape of every experiment in
// the paper (Pantheon/Mahimahi emulation and the EC2 paths alike).
#pragma once

#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/flow.h"
#include "sim/link.h"

namespace libra {

class Network {
 public:
  explicit Network(LinkConfig link_config);

  /// Adds a backlogged flow driven by `cca`. `extra_ack_delay` lengthens this
  /// flow's return path beyond the link's propagation delay (heterogeneous
  /// RTTs). Returns the flow index.
  int add_flow(std::unique_ptr<CongestionControl> cca, SimTime start_time = 0,
               SimTime stop_time = kSimTimeMax, SimDuration extra_ack_delay = 0,
               SenderConfig base_config = {});

  /// Starts every flow and runs the event loop until `t`.
  void run_until(SimTime t);

  EventQueue& events() { return events_; }
  DropTailLink& link() { return *link_; }
  Flow& flow(int i) { return *flows_.at(static_cast<std::size_t>(i)); }
  const Flow& flow(int i) const { return *flows_.at(static_cast<std::size_t>(i)); }
  int flow_count() const { return static_cast<int>(flows_.size()); }

  /// Aggregate bytes delivered to receivers in [t0, t1).
  double delivered_bytes_in(SimTime t0, SimTime t1) const {
    return deliveries_.sum_in(t0, t1);
  }

  /// Fraction of the bottleneck capacity actually used over [t0, t1).
  double link_utilization(SimTime t0, SimTime t1) const;

 private:
  EventQueue events_;
  std::unique_ptr<DropTailLink> link_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<SimDuration> ack_delays_;
  TimeSeries deliveries_;  // (arrival time at receiver, bytes)
  bool started_ = false;
};

}  // namespace libra
