// Dumbbell network over a CoDel bottleneck — the AQM counterpart of Network,
// used by the CoDel ablation (Sec. 2's "CUBIC needs CoDel in the network to
// get low delay; Libra gets it at the endpoint").
#pragma once

#include <memory>
#include <vector>

#include "obs/telemetry.h"
#include "sim/codel_queue.h"
#include "sim/event_queue.h"
#include "sim/flow.h"

namespace libra {

class CodelNetwork {
 public:
  explicit CodelNetwork(CodelConfig config)
      : link_(std::make_unique<CodelQueue>(events_, std::move(config))) {
    link_->set_recorder(&recorder_);
    link_->set_deliver([this](const Packet& pkt) {
      deliveries_.add(events_.now(), static_cast<double>(pkt.bytes));
      auto idx = static_cast<std::size_t>(pkt.flow_id);
      if (idx >= flows_.size()) return;
      Packet acked = pkt;
      events_.schedule_in(ack_delay_, [this, acked, idx] {
        flows_[idx]->sender().on_ack_packet(acked);
      });
    });
  }

  int add_flow(std::unique_ptr<CongestionControl> cca, SimTime start_time = 0) {
    int id = static_cast<int>(flows_.size());
    SenderConfig cfg;
    cfg.flow_id = id;
    cfg.start_time = start_time;
    auto flow = std::make_unique<Flow>(events_, cfg, std::move(cca));
    flow->sender().set_transmit([this](Packet pkt) { link_->send(std::move(pkt)); });
    flow->sender().set_recorder(&recorder_);
    flow->sender().set_telemetry(&telemetry_);
    flows_.push_back(std::move(flow));
    return id;
  }

  void run_until(SimTime t) {
    if (!started_) {
      started_ = true;
      for (auto& f : flows_) f->sender().start();
      if (telemetry_.enabled()) telemetry_tick();
    }
    events_.run_until(t);
  }

  Flow& flow(int i) { return *flows_.at(static_cast<std::size_t>(i)); }
  CodelQueue& link() { return *link_; }
  EventQueue& events() { return events_; }
  FlightRecorder& recorder() { return recorder_; }
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }

  double delivered_bytes_in(SimTime t0, SimTime t1) const {
    return deliveries_.sum_in(t0, t1);
  }

 private:
  // Mirrors Network::telemetry_tick, but the sojourn column is *exact* here:
  // CoDel already timestamps every packet at enqueue.
  void telemetry_tick() {
    const SimTime now = events_.now();
    TelemetryFlowSample fs;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      flows_[i]->sender().fill_telemetry(fs);
      fs.acked_bytes = static_cast<double>(flows_[i]->metrics().bytes_acked);
      telemetry_.sample_flow(static_cast<int>(i), fs);
    }
    TelemetryQueueSample qs;
    qs.depth_bytes = static_cast<double>(link_->queue_bytes());
    qs.depth_packets = static_cast<double>(link_->queue_packets());
    qs.sojourn_ms = to_msec(link_->head_sojourn(now));
    qs.drops = static_cast<double>(link_->codel_drops());
    telemetry_.sample_queue(0, qs);
    events_.schedule_in(telemetry_.config().sample_interval,
                        [this] { telemetry_tick(); });
  }

  EventQueue events_;
  FlightRecorder recorder_;
  Telemetry telemetry_;
  std::unique_ptr<CodelQueue> link_;
  std::vector<std::unique_ptr<Flow>> flows_;
  SimDuration ack_delay_ = msec(15);
  TimeSeries deliveries_;
  bool started_ = false;
};

}  // namespace libra
