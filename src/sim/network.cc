#include "sim/network.h"

#include <chrono>
#include <stdexcept>

#include "obs/profiler.h"

namespace libra {

Network::Network(LinkConfig link_config) {
  link_ = std::make_unique<DropTailLink>(events_, std::move(link_config));
  link_->set_recorder(&recorder_);
  link_->set_deliver([this](const Packet& pkt) {
    deliveries_.add(events_.now(), static_cast<double>(pkt.bytes));
    auto idx = static_cast<std::size_t>(pkt.flow_id);
    if (idx >= flows_.size()) return;
    // Receiver immediately acks; the ACK crosses the (uncongested) return
    // path and reaches the sender after this flow's ack delay.
    SimDuration delay = ack_delays_[idx];
    Packet acked = pkt;
    events_.schedule_in(delay, [this, acked, idx] {
      flows_[idx]->sender().on_ack_packet(acked);
    });
  });
  // Drops are silent at the sender until loss detection notices the gap,
  // exactly as on a real path.
}

int Network::add_flow(std::unique_ptr<CongestionControl> cca, SimTime start_time,
                      SimTime stop_time, SimDuration extra_ack_delay,
                      SenderConfig base_config) {
  if (started_) throw std::logic_error("Network: add_flow after run started");
  int id = static_cast<int>(flows_.size());
  SenderConfig cfg = base_config;
  cfg.flow_id = id;
  cfg.start_time = start_time;
  cfg.stop_time = stop_time;
  auto flow = std::make_unique<Flow>(events_, cfg, std::move(cca));
  flow->sender().set_transmit([this](Packet pkt) { link_->send(std::move(pkt)); });
  flow->sender().set_recorder(&recorder_);
  flow->sender().set_telemetry(&telemetry_);
  flows_.push_back(std::move(flow));
  ack_delays_.push_back(link_->config().propagation_delay + extra_ack_delay);
  return id;
}

void Network::finalize_metrics() {
  if (metrics_finalized_) return;
  metrics_finalized_ = true;
  metrics_.counter("sim.events_processed")
      .inc(static_cast<std::int64_t>(events_.processed()));
  metrics_.gauge("sim.event_queue_max_pending")
      .set(static_cast<double>(events_.max_pending()));
  metrics_.counter("link.drops_overflow").inc(link_->drops_overflow());
  metrics_.counter("link.drops_wire").inc(link_->drops_wire());
  metrics_.counter("link.delivered_bytes").inc(link_->delivered_bytes());
  metrics_.gauge("link.max_queue_bytes")
      .set(static_cast<double>(link_->max_queue_bytes()));
  for (const auto& f : flows_) {
    const Sender& s = f->sender();
    metrics_.counter("flows").inc();
    metrics_.counter("flow.packets_sent").inc(s.packets_sent());
    metrics_.counter("flow.packets_acked").inc(s.packets_acked());
    metrics_.counter("flow.packets_lost").inc(s.packets_lost());
    if (s.smoothed_rtt() > 0)
      metrics_.gauge("flow.srtt_ms").set(to_msec(s.smoothed_rtt()));
    if (s.min_rtt() > 0)
      metrics_.gauge("flow.min_rtt_ms").set(to_msec(s.min_rtt()));
  }
  metrics_.counter("trace.recorded")
      .inc(static_cast<std::int64_t>(recorder_.recorded()));
  metrics_.counter("trace.overwritten")
      .inc(static_cast<std::int64_t>(recorder_.overwritten()));
  if (telemetry_.enabled()) {
    metrics_.counter("telemetry.samples")
        .inc(static_cast<std::int64_t>(telemetry_.samples()));
    metrics_.counter("telemetry.stage_events")
        .inc(static_cast<std::int64_t>(telemetry_.stage_events().size()));
    metrics_.gauge("telemetry.bucket_width_ms")
        .set(to_msec(telemetry_.bucket_width()));
  }
}

// One sampling event covers every flow plus the bottleneck queue, so the
// event-queue cost of telemetry is one timer per interval regardless of flow
// count. The callback only *reads* simulator state, which keeps results
// bitwise identical with telemetry on vs off.
void Network::telemetry_tick() {
  const SimTime now = events_.now();
  TelemetryFlowSample fs;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->sender().fill_telemetry(fs);
    fs.acked_bytes = static_cast<double>(flows_[i]->metrics().bytes_acked);
    telemetry_.sample_flow(static_cast<int>(i), fs);
  }
  TelemetryQueueSample qs;
  qs.depth_bytes = static_cast<double>(link_->queue_bytes());
  qs.depth_packets = static_cast<double>(link_->queue_packets());
  // Droptail has no per-packet sojourn state; estimate the head sojourn as
  // the time to drain the standing queue at the current capacity.
  RateBps rate = link_->capacity().rate_at(now);
  qs.sojourn_ms =
      rate > 0 ? to_msec(transmission_time(link_->queue_bytes(), rate)) : 0.0;
  qs.drops = static_cast<double>(link_->drops_overflow() + link_->drops_wire());
  telemetry_.sample_queue(0, qs);
  events_.schedule_in(telemetry_.config().sample_interval,
                      [this] { telemetry_tick(); });
}

void Network::run_until(SimTime t) {
  PROF_SCOPE("sim.run");
  const auto t0 = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    for (auto& f : flows_) f->sender().start();
    if (telemetry_.enabled()) telemetry_tick();
  }
  events_.run_until(t);
  wall_time_s_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

double Network::link_utilization(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return 0.0;
  double delivered_bits = deliveries_.sum_in(t0, t1) * 8.0;
  double capacity_bits = link_->capacity().average_rate(t0, t1) * to_seconds(t1 - t0);
  if (capacity_bits <= 0) return 0.0;
  return std::min(1.0, delivered_bits / capacity_bits);
}

}  // namespace libra
