// Discrete-event scheduler.
//
// Events are totally ordered by (time, insertion sequence) so simulations are
// deterministic: two events at the same instant fire in the order they were
// scheduled.
//
// Hot-path notes: callbacks are SmallFunction, so the closures the simulator
// schedules (sender timers, ACK deliveries carrying a Packet) never touch the
// heap. The priority queue itself sifts only 24-byte {time, seq, slot} keys
// over a plain vector; the callbacks sit still in a slot pool and are moved
// exactly once, when their event fires. Keeping the fat payload out of the
// heap keeps sift traffic small, and popping through mutable access avoids
// the const_cast that std::priority_queue::top() would force.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/small_function.h"
#include "util/types.h"

namespace libra {

class EventQueue {
 public:
  // Sized for the largest simulator capture (the ACK closure: Packet + two
  // words of context); anything bigger degrades to one heap allocation.
  using Callback = SmallFunction<88>;

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, Callback cb) {
    if (t < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(cb));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(cb);
    }
    heap_.push_back(Key{t, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > max_pending_) max_pending_ = heap_.size();
  }

  void schedule_in(SimDuration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Events executed since construction (events/sec telemetry for benches).
  std::uint64_t processed() const { return processed_; }

  /// High-water mark of pending events (event-queue depth telemetry).
  std::size_t max_pending() const { return max_pending_; }

  /// Executes the earliest event; returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Key key = heap_.back();
    heap_.pop_back();
    // Move the callback out and recycle its slot *before* invoking: the
    // callback is free to schedule new events, which may reuse the slot.
    Callback cb = std::move(slots_[key.slot]);
    free_slots_.push_back(key.slot);
    now_ = key.time;
    ++processed_;
    cb();
    return true;
  }

  /// Runs every event with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t) {
    while (!heap_.empty() && heap_.front().time <= t) run_next();
    if (t > now_) now_ = t;
  }

  void run_for(SimDuration d) { run_until(now_ + d); }

 private:
  struct Key {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // std::push_heap builds a max-heap, so "greater" ordering puts the earliest
  // (time, seq) at the front.
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::vector<Key> heap_;
  std::vector<Callback> slots_;         // indexed by Key::slot
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t max_pending_ = 0;
};

}  // namespace libra
