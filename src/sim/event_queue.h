// Discrete-event scheduler.
//
// Events are totally ordered by (time, insertion sequence) so simulations are
// deterministic: two events at the same instant fire in the order they were
// scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/types.h"

namespace libra {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, Callback cb) {
    if (t < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    heap_.push(Event{t, next_seq_++, std::move(cb)});
  }

  void schedule_in(SimDuration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Executes the earliest event; returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.callback();
    return true;
  }

  /// Runs every event with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t) {
    while (!heap_.empty() && heap_.top().time <= t) run_next();
    if (t > now_) now_ = t;
  }

  void run_for(SimDuration d) { run_until(now_ + d); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback callback;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace libra
