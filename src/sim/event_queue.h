// Discrete-event scheduler.
//
// Events are totally ordered by (time, insertion sequence) so simulations are
// deterministic: two events at the same instant fire in the order they were
// scheduled.
//
// Hot-path notes: callbacks are SmallFunction, so the closures the simulator
// schedules (sender timers, ACK deliveries carrying a Packet) never touch the
// heap. The priority queue itself sifts only 24-byte {time, seq, slot} keys
// over a plain vector; the callbacks sit still in slot pools and are moved
// exactly once, when their event fires. Slots come in two sizes: most events
// are timer ticks capturing a pointer or two, so they land in a hot pool of
// 24-byte-capacity slots, while the fat ACK closures (a Packet plus context)
// go to a separate cold pool of 88-byte slots. The split keeps the pool the
// cache touches most ~3x denser; the pool is picked at compile time from the
// closure's size and tagged in the slot index's high bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "obs/profiler.h"
#include "util/small_function.h"
#include "util/types.h"

namespace libra {

class EventQueue {
 public:
  // Cold slots, sized for the largest simulator capture (the ACK closure:
  // Packet + two words of context); anything bigger degrades to one heap
  // allocation inside SmallFunction.
  using Callback = SmallFunction<88>;
  // Hot slots: timer/tick closures capturing at most three words.
  using TimerCallback = SmallFunction<24>;

  static_assert(sizeof(TimerCallback) <= 40,
                "hot slot outgrew its budget (storage + ops pointer)");
  static_assert(sizeof(Callback) <= 104,
                "cold slot outgrew its budget (storage + ops pointer)");
  static_assert(sizeof(TimerCallback) < sizeof(Callback),
                "hot/cold split is pointless unless hot slots are smaller");

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time t. The slot pool is picked at compile
  /// time: closures that fit a TimerCallback inline go to the hot pool,
  /// everything else to the cold pool.
  template <typename Fn>
  void schedule_at(SimTime t, Fn&& fn) {
    if (t < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    std::uint32_t slot;
    if constexpr (fits_hot<Fn>) {
      slot = kHotBit | claim(hot_slots_, free_hot_,
                             TimerCallback(std::forward<Fn>(fn)));
    } else {
      slot = claim(cold_slots_, free_cold_, Callback(std::forward<Fn>(fn)));
    }
    heap_.push_back(Key{t, (*seq_src_)++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > max_pending_) max_pending_ = heap_.size();
  }

  /// Schedules a pre-built callback with an explicit ordering key instead of
  /// the internal insertion sequence. The fleet engine uses this to give
  /// cross-shard messages a (source shard, source sequence) key that sorts
  /// the same whether the queue is the single serial queue or a per-shard
  /// one — the foundation of its bitwise serial==sharded guarantee.
  void schedule_keyed(SimTime t, std::uint64_t key, Callback fn) {
    if (t < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    std::uint32_t slot = claim(cold_slots_, free_cold_, std::move(fn));
    heap_.push_back(Key{t, key, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > max_pending_) max_pending_ = heap_.size();
  }

  /// Redirects the insertion-sequence counter used by schedule_at/schedule_in.
  /// The fleet engine points this at a per-shard counter so ordering keys are
  /// a pure function of the shard topology; nullptr restores the default
  /// internal counter. The counter's high bits are part of the key, so
  /// sources must hand out globally unique values.
  void set_seq_source(std::uint64_t* src) { seq_src_ = src ? src : &next_seq_; }

  /// Called right before each popped event runs, with the event's ordering
  /// key. The fleet engine's serial mode uses it to recover which shard an
  /// event belongs to (the key's high bits) and switch the sequence source
  /// accordingly. One predicted-not-taken branch when unset.
  using PopHook = void (*)(void* ctx, std::uint64_t key);
  void set_pop_hook(PopHook hook, void* ctx) {
    pop_hook_ = hook;
    pop_ctx_ = ctx;
  }

  template <typename Fn>
  void schedule_in(SimDuration d, Fn&& fn) {
    schedule_at(now_ + d, std::forward<Fn>(fn));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Events executed since construction (events/sec telemetry for benches).
  std::uint64_t processed() const { return processed_; }

  /// High-water mark of pending events (event-queue depth telemetry).
  std::size_t max_pending() const { return max_pending_; }

  /// Executes the earliest event; returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    PROF_SCOPE("sim.event");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Key key = heap_.back();
    heap_.pop_back();
    now_ = key.time;
    ++processed_;
    if (pop_hook_) pop_hook_(pop_ctx_, key.seq);
    // Move the callback out and recycle its slot *before* invoking: the
    // callback is free to schedule new events, which may reuse the slot.
    if (key.slot & kHotBit) {
      const std::uint32_t s = key.slot & ~kHotBit;
      TimerCallback cb = std::move(hot_slots_[s]);
      free_hot_.push_back(s);
      cb();
    } else {
      Callback cb = std::move(cold_slots_[key.slot]);
      free_cold_.push_back(key.slot);
      cb();
    }
    return true;
  }

  /// Runs every event with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t) {
    while (!heap_.empty() && heap_.front().time <= t) run_next();
    if (t > now_) now_ = t;
  }

  /// Runs every event with time strictly < t and leaves the clock at the last
  /// executed event. Window processing for the sharded engine: a lookahead
  /// window [T, T+L) must exclude its right edge, where cross-shard messages
  /// merged at the barrier may still land.
  void run_before(SimTime t) {
    while (!heap_.empty() && heap_.front().time < t) run_next();
  }

  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Events currently parked in the hot (timer) vs cold (payload) slot pool
  /// — pool-sizing telemetry for the event-queue benches.
  std::size_t hot_slot_count() const { return hot_slots_.size(); }
  std::size_t cold_slot_count() const { return cold_slots_.size(); }

 private:
  struct Key {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // std::push_heap builds a max-heap, so "greater" ordering puts the earliest
  // (time, seq) at the front.
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  // High bit of Key::slot tags the pool; the low 31 bits index into it.
  static constexpr std::uint32_t kHotBit = 1u << 31;

  // Same criteria SmallFunction<24> uses for inline storage: routing on them
  // means nothing ever lands in a hot slot only to heap-allocate inside it.
  template <typename Fn>
  static constexpr bool fits_hot =
      sizeof(std::decay_t<Fn>) <= 24 &&
      alignof(std::decay_t<Fn>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<Fn>>;

  template <typename Slot>
  static std::uint32_t claim(std::vector<Slot>& slots,
                             std::vector<std::uint32_t>& free, Slot cb) {
    std::uint32_t slot;
    if (free.empty()) {
      slot = static_cast<std::uint32_t>(slots.size());
      slots.push_back(std::move(cb));
    } else {
      slot = free.back();
      free.pop_back();
      slots[slot] = std::move(cb);
    }
    return slot;
  }

  std::vector<Key> heap_;
  std::vector<TimerCallback> hot_slots_;  // indexed by Key::slot low bits
  std::vector<Callback> cold_slots_;
  std::vector<std::uint32_t> free_hot_;
  std::vector<std::uint32_t> free_cold_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t* seq_src_ = &next_seq_;
  PopHook pop_hook_ = nullptr;
  void* pop_ctx_ = nullptr;
  std::uint64_t processed_ = 0;
  std::size_t max_pending_ = 0;
};

}  // namespace libra
