// Fleet-scale simulation engine: hundreds-to-thousands of flows over chains
// of bottleneck hops, with a struct-of-arrays hot path and optional sharded
// event processing.
//
// Topology model: a path of `FleetLink` hops (each a DropTailLink with its
// own buffer, capacity and egress propagation delay). A flow enters at hop
// `enter_hop`, traverses contiguous hops through `exit_hop`, and its ACKs
// return over an uncongested path whose delay mirrors the forward
// propagation. Senders sit an `access_delay` in front of their first hop.
// Incast is N flows into one hop; a parking lot is several hops with per-hop
// cross traffic plus long flows spanning the chain.
//
// Execution modes, bitwise identical by construction:
//
//  - kSerial: one EventQueue holds every component's events. Each event's
//    ordering key is (shard << 48) | per-shard sequence, where a shard is a
//    bottleneck hop (plus optional sender groups) and the per-shard counters
//    advance exactly as they would under sharded execution (the queue's pop
//    hook switches the active counter to the executing event's shard).
//  - kSharded: each shard runs its own EventQueue, processed in conservative
//    lookahead windows of width L = the minimum cross-shard propagation
//    delay. Within a window shards run independently (in parallel); events a
//    shard schedules onto another shard carry at least L of delay, are
//    buffered in per-(src,dst) outboxes, and are merged into the destination
//    queues in fixed shard order at the window barrier — before the
//    destination has processed any event at or past the message's time.
//
// Because per-shard keys and per-shard execution order are identical in both
// modes, every simulated quantity — flow counters, queue evolution, RNG
// streams, learned-CCA decisions — is bitwise identical between kSerial and
// kSharded at any thread count. tests/fleet_test.cc asserts this for classic
// and learned controllers.
//
// Hot path: senders run in external-tick mode — instead of one timer event
// per flow per tick (the naive engine's dominant cost at 1000 flows), each
// shard runs a single periodic scan over the FleetFlowHot SoA rows of its
// flows and only calls into Sender objects that have actual work (RTO hit,
// tick-driven controller, window headroom). See sim/flow_soa.h.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "obs/fleet_stats.h"
#include "sim/congestion_control.h"
#include "sim/event_queue.h"
#include "sim/flow_soa.h"
#include "sim/link.h"
#include "sim/sender.h"
#include "trace/rate_trace.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace libra {

class Telemetry;
struct TelemetryConfig;

enum class FleetMode { kSerial, kSharded };

/// One bottleneck hop of the chain.
struct FleetLink {
  /// Fixed capacity; used when `capacity` is null.
  RateBps rate = mbps(96);
  /// Optional trace-driven capacity (overrides `rate`).
  std::shared_ptr<RateTrace> capacity;
  std::int64_t buffer_bytes = 150 * 1000;
  /// One-way propagation from this hop's egress to the next hop (or to the
  /// receiver, for the exit hop). This is the cross-shard edge, so it bounds
  /// the sharded engine's lookahead; must be > 0 for sharded topologies.
  SimDuration to_next_delay = msec(5);
  double stochastic_loss = 0.0;
  /// ECN marking threshold and ingress token-bucket policer, passed straight
  /// through to LinkConfig (see sim/link.h for semantics). All processing
  /// happens on the hop's owning shard, so the serial==sharded bitwise
  /// identity contract holds for every marking/policing combination.
  std::int64_t ecn_threshold_bytes = 0;
  RateBps policer_rate = 0;
  std::int64_t policer_burst_bytes = 30 * 1000;
  bool policer_marks = false;
  SimTime policer_start = 0;
  SimTime policer_stop = kSimTimeMax;
};

struct FleetOptions {
  FleetMode mode = FleetMode::kSerial;
  /// Worker threads for kSharded (capped at the shard count); 0 = one per
  /// shard. Has no effect on results — only on wall time.
  std::size_t threads = 0;
  /// Extra shards that split senders off their first hop's shard (incast
  /// parallelism); 0 keeps each sender co-located with its first hop.
  int sender_shards = 0;
  /// One-way sender <-> first-hop delay. With sender_shards > 0 this is a
  /// cross-shard edge and must be > 0.
  SimDuration access_delay = msec(2);
  SimDuration duration = sec(10);
  /// Measurement-window warmup; the window opens at the first shard tick at
  /// or after this instant (identical across shards and modes).
  SimTime warmup = sec(1);
  std::uint64_t seed = 1;
  /// When true (default) flows run under the SoA shard scan (one periodic
  /// event per shard, skipping flows with no work). When false every sender
  /// self-schedules its own tick timer — the naive engine, kept as the
  /// baseline bench_fleet measures the scan against. Results are equivalent
  /// but not bitwise identical across this switch (event keys differ).
  bool soa_scan = true;
  /// Base per-flow sender config (tick interval, packet size, RTO floor...).
  SenderConfig sender;
};

struct FleetFlowDef {
  std::unique_ptr<CongestionControl> cca;
  SimTime start = 0;
  SimTime stop = kSimTimeMax;
  /// Total bytes to send; negative = backlogged for the whole run.
  std::int64_t byte_budget = -1;
  int enter_hop = 0;
  /// Last hop traversed; -1 means enter_hop (single-bottleneck flow).
  int exit_hop = -1;
  SimDuration extra_ack_delay = 0;
};

struct FleetFlowSummary {
  double throughput_bps = 0;  // acked bytes over the measurement window
  double avg_rtt_ms = 0;      // mean per-ACK RTT in the window
  double loss_rate = 0;       // window losses / window sends
  double completion_s = -1;   // finite flows: finish instant; -1 if unfinished
};

struct FleetSummary {
  double sim_time_s = 0;
  double window_s = 0;  // measurement window (duration minus effective warmup)
  double total_throughput_bps = 0;
  double avg_delay_ms = 0;
  /// Jain index over the window throughputs of flows that moved bytes.
  double jain_fairness = 0;
  std::uint64_t events_processed = 0;
  /// Host-dependent; the only field excluded from bitwise-equality checks.
  double wall_time_s = 0;
  std::vector<double> hop_utilization;
  std::vector<FleetFlowSummary> flows;

  double events_per_wall_s() const {
    return wall_time_s > 0 ? static_cast<double>(events_processed) / wall_time_s
                           : 0.0;
  }
};

/// Exact equality over every deterministic field (everything but wall time).
bool deterministically_equal(const FleetSummary& a, const FleetSummary& b);

/// Thin per-flow object view over the engine's SoA state.
struct FleetFlowRef {
  const Sender& sender;
  bool active = false;
  bool wants_tick = false;
  SimTime rto_deadline = 0;
  std::int64_t send_headroom = 0;
};

class FleetNetwork {
 public:
  FleetNetwork(std::vector<FleetLink> hops, FleetOptions options);
  ~FleetNetwork();
  FleetNetwork(const FleetNetwork&) = delete;
  FleetNetwork& operator=(const FleetNetwork&) = delete;

  /// Adds a flow before run(); returns its id (dense, in insertion order).
  int add_flow(FleetFlowDef def);

  /// Runs the whole scenario to options.duration.
  void run();

  FleetSummary summarize() const;

  int flow_count() const { return static_cast<int>(senders_.size()); }
  int hop_count() const { return static_cast<int>(links_.size()); }
  std::size_t shard_count() const { return shards_.size(); }
  /// Conservative window width (valid after run() starts).
  SimDuration lookahead() const { return lookahead_; }
  std::uint64_t events_processed() const;

  Sender& sender(int flow) { return *senders_[static_cast<std::size_t>(flow)]; }
  const Sender& sender(int flow) const {
    return *senders_[static_cast<std::size_t>(flow)];
  }
  const DropTailLink& hop(int h) const {
    return *links_[static_cast<std::size_t>(h)];
  }
  FleetFlowRef flow(int id) const;

  /// Sampling telemetry; one O(flows) sampling event per interval, exactly
  /// like the single-bottleneck Network. Serial mode only (the sampler is a
  /// cross-shard reader and would break shard isolation).
  void enable_telemetry(const TelemetryConfig& config);
  Telemetry* telemetry() { return telemetry_.get(); }

  /// Streaming windowed health stats (obs/fleet_stats.h). Unlike telemetry
  /// this works under BOTH engines: every hook for a flow fires on the flow's
  /// owning sender shard, so accumulation is race-free and the finished
  /// timeline is bitwise identical serial vs. sharded at any thread count.
  /// Call before run(); read timeline() via health() after run() returns
  /// (run() flushes the final windows and stamps flow outcomes).
  void enable_health(const FleetStatsConfig& config = {});
  const FleetHealth* health() const { return health_.get(); }

  /// Black-box flight recording: a fixed ring of the most recent trace
  /// events (no sink, oldest overwritten), so tracing a 1000-flow run is
  /// memory-bounded. Serial mode only — the ring is a cross-shard writer.
  void enable_recording(std::size_t ring_capacity);
  const FlightRecorder* recorder() const { return recorder_.get(); }

  /// Events executed per shard (valid after run()). Deterministic — identical
  /// serial vs. sharded — because both engines process the same per-shard
  /// event sequences; feeds fleet_run's shard-imbalance wall stats.
  std::vector<std::uint64_t> shard_event_counts() const;

 private:
  static constexpr unsigned kShardShift = 48;

  struct Route {
    int enter = 0;
    int exit = 0;
    std::size_t sender_shard = 0;
    SimDuration ack_delay = 0;
  };

  struct Shard {
    EventQueue* queue = nullptr;  // owned by queues_
    std::vector<int> flows;       // ascending flow ids
    std::vector<int> hops;
    bool window_snapped = false;
  };

  struct PostedMsg {
    SimTime t = 0;
    std::uint64_t key = 0;
    EventQueue::Callback fn;
  };

  std::size_t shard_of_hop(int h) const { return static_cast<std::size_t>(h); }

  /// Serial mode: makes `shard` the executing context so every key drawn by
  /// component-internal scheduling comes from that shard's counter.
  void set_context(std::size_t shard) {
    current_ = shard;
    queues_[0]->set_seq_source(&seq_[shard]);
  }
  static void pop_hook(void* ctx, std::uint64_t key) {
    auto* self = static_cast<FleetNetwork*>(ctx);
    const auto s = static_cast<std::size_t>(key >> kShardShift);
    ++self->shard_events_[s];
    self->set_context(s);
  }

  /// Schedules `fn` onto shard `dst`, `delay` after shard `src`'s current
  /// time. Intra-shard posts go straight to the queue; cross-shard posts
  /// carry a (src, src-sequence) key and, under kSharded, ride the outbox to
  /// the next barrier. Cross-shard delay must be >= the lookahead.
  template <typename Fn>
  void post(std::size_t src, std::size_t dst, SimDuration delay, Fn&& fn) {
    if (src == dst) {
      shards_[src].queue->schedule_in(delay, std::forward<Fn>(fn));
      return;
    }
    if (delay < lookahead_)
      throw std::logic_error("FleetNetwork: cross-shard delay below lookahead");
    EventQueue& q = *shards_[src].queue;
    const SimTime t = q.now() + delay;
    const std::uint64_t key = seq_[src]++;
    if (mode_ == FleetMode::kSerial) {
      // Executing a cross-shard message means executing *as* the destination:
      // the wrapper switches the context the pop hook set from the key's
      // source shard to dst before the payload runs, so follow-on scheduling
      // draws from dst's counter — exactly as it does under kSharded, where
      // dst's queue always draws from dst's counter. The event count moves
      // with it (the pop hook charged the key's source shard), keeping
      // shard_event_counts() identical to the sharded engine's per-queue
      // tallies.
      q.schedule_keyed(t, key,
                       EventQueue::Callback(
                           [this, src, dst, f = std::forward<Fn>(fn)]() mutable {
                             --shard_events_[src];
                             ++shard_events_[dst];
                             set_context(dst);
                             f();
                           }));
    } else {
      outbox_[src][dst].push_back(
          PostedMsg{t, key, EventQueue::Callback(std::forward<Fn>(fn))});
    }
  }

  void compute_lookahead();
  void setup();
  void on_hop_deliver(int hop, const Packet& pkt);
  void shard_tick(std::size_t s);
  /// Flushes `flow`'s completed health windows with a fresh cwnd/pacing
  /// snapshot; called only when FleetHealth::needs_roll fired.
  void health_roll(int flow, SimTime now);
  void finalize_health();
  void telemetry_tick();
  void process_window(SimTime bound, bool inclusive);
  void merge_outboxes();

  FleetMode mode_;
  FleetOptions opts_;
  std::vector<FleetLink> hop_specs_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<DropTailLink>> links_;
  std::vector<std::unique_ptr<Sender>> senders_;
  std::vector<Route> routes_;
  FleetFlowHot hot_;

  // Per-flow measurement accumulators. Integer sums in event order, so the
  // derived summary doubles are an exact function of the simulated run.
  std::vector<std::int64_t> acked_bytes_, rtt_sum_us_, rtt_samples_;
  std::vector<std::int64_t> acked_bytes_w0_, rtt_sum_us_w0_, rtt_samples_w0_;
  std::vector<std::int64_t> sent_w0_, lost_w0_;
  std::vector<std::int64_t> hop_delivered_w0_;
  SimTime window_start_ = 0;

  std::vector<std::uint64_t> seq_;  // per-shard key counters, pre-shifted
  std::size_t current_ = 0;         // serial mode: executing shard
  std::vector<std::uint64_t> shard_events_;  // serial: events per shard
  std::vector<std::vector<std::vector<PostedMsg>>> outbox_;  // [src][dst]
  SimDuration lookahead_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<FleetHealth> health_;
  std::unique_ptr<FlightRecorder> recorder_;
  bool health_on_ = false;  // cached health_->enabled() for the hot hooks
  bool health_finalized_ = false;
  bool started_ = false;
  double wall_time_s_ = 0;
};

}  // namespace libra
