// CoDel active queue management (Nichols & Jacobson, CACM 2012).
//
// The paper motivates Libra by noting CUBIC can only keep queueing delay low
// with AQM support like CoDel, "which requires changes in the network devices
// and incurs extra costs" (Sec. 2). This queue discipline implements CoDel so
// that claim can be tested: bench/ablation runs compare CUBIC-under-CoDel
// with Libra-under-droptail.
//
// Algorithm: track each packet's sojourn time; once the sojourn stays above
// `target` for an `interval`, enter dropping state and drop head packets at
// intervals shrinking with the square root of the drop count (the control
// law), until the sojourn falls below target.
#pragma once

#include <cmath>
#include <deque>
#include <functional>
#include <memory>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "trace/rate_trace.h"
#include "util/rng.h"

namespace libra {

struct CodelConfig {
  std::shared_ptr<RateTrace> capacity;       // required
  std::int64_t buffer_bytes = 1'000'000;     // hard cap behind CoDel
  SimDuration propagation_delay = msec(15);
  SimDuration target = msec(5);              // acceptable standing sojourn
  SimDuration interval = msec(100);          // sliding window (~worst-case RTT)
  double stochastic_loss = 0.0;
  std::uint64_t seed = 1;
  /// RFC 8289 §4.1: when set, a control-law firing CE-marks an ECT head
  /// packet (which is then forwarded) instead of dropping it. The dropping
  /// state machine — count escalation, drop_next_ scheduling, re-entry
  /// memory — is shared verbatim between the two modes; only the action
  /// taken on a firing differs. Non-ECT packets are still dropped.
  bool ecn_mark = false;
};

class CodelQueue {
 public:
  using DeliverFn = std::function<void(const Packet&)>;
  using DropFn = std::function<void(const Packet&)>;

  CodelQueue(EventQueue& events, CodelConfig config)
      : events_(events), config_(std::move(config)), rng_(config_.seed) {
    if (!config_.capacity) throw std::invalid_argument("CodelQueue: capacity required");
  }

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_drop(DropFn fn) { drop_ = std::move(fn); }
  void set_recorder(FlightRecorder* rec) { recorder_ = rec; }

  void send(Packet pkt) {
    PROF_SCOPE("aqm.enqueue");
    if (config_.stochastic_loss > 0 && rng_.chance(config_.stochastic_loss)) {
      if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq,
                                     pkt.bytes, queue_bytes_, DropReason::kWire);
      if (drop_) drop_(pkt);
      return;
    }
    if (queue_bytes_ + pkt.bytes > config_.buffer_bytes) {
      if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq,
                                     pkt.bytes, queue_bytes_, DropReason::kOverflow);
      if (drop_) drop_(pkt);
      return;
    }
    pkt.enqueue_time = events_.now();
    queue_bytes_ += pkt.bytes;
    queue_.push_back(pkt);
    if (recorder_) recorder_->enqueue(pkt.enqueue_time, pkt.flow_id, pkt.seq,
                                      pkt.bytes, queue_bytes_, queue_.size());
    if (!transmitting_) schedule_dequeue();
  }

  std::int64_t queue_bytes() const { return queue_bytes_; }
  std::size_t queue_packets() const { return queue_.size(); }
  /// Sojourn time of the current head packet (exact — CoDel timestamps every
  /// packet at enqueue); 0 when the queue is empty. Telemetry read point.
  SimDuration head_sojourn(SimTime now) const {
    return queue_.empty() ? 0 : now - queue_.front().enqueue_time;
  }
  std::int64_t codel_drops() const { return codel_drops_; }
  /// Control-law firings resolved as CE marks (ecn_mark mode only).
  std::int64_t codel_marks() const { return codel_marks_; }
  /// Current control-law count (observability for the RFC 8289 §4.2
  /// re-entry tests); 0 until the first dropping episode.
  std::int64_t codel_drop_count() const { return drop_count_; }
  bool codel_dropping() const { return dropping_; }

 private:
  void schedule_dequeue() {
    if (queue_.empty()) {
      transmitting_ = false;
      return;
    }
    transmitting_ = true;
    RateBps rate = config_.capacity->rate_at(events_.now());
    if (rate < 1000.0) {
      events_.schedule_in(msec(5), [this] { schedule_dequeue(); });
      return;
    }
    SimDuration tx = transmission_time(queue_.front().bytes, rate);
    events_.schedule_in(tx, [this] { dequeue_head(); });
  }

  /// CoDel's decision point is at *dequeue*: examine the head's sojourn time
  /// and possibly drop it (repeatedly) before forwarding the survivor.
  void dequeue_head() {
    PROF_SCOPE("aqm.dequeue");
    while (!queue_.empty()) {
      Packet pkt = queue_.front();
      queue_.pop_front();
      queue_bytes_ -= pkt.bytes;
      const bool fired = should_drop(pkt);
      if (fired && config_.ecn_mark && pkt.ecn_capable) {
        // Mark mode: the firing CE-marks the head, which is then forwarded.
        // should_drop() already advanced count/drop_next_ exactly as it
        // would for a drop, so the control-law schedule is mode-invariant.
        pkt.ce_marked = true;
        ++codel_marks_;
        if (recorder_) recorder_->ecn_mark(events_.now(), pkt.flow_id, pkt.seq,
                                           pkt.bytes, queue_bytes_);
      } else if (fired) {
        ++codel_drops_;
        if (recorder_) recorder_->drop(events_.now(), pkt.flow_id, pkt.seq,
                                       pkt.bytes, queue_bytes_, DropReason::kCodel);
        if (drop_) drop_(pkt);
        continue;
      }
      if (recorder_) recorder_->deliver(events_.now(), pkt.flow_id, pkt.seq,
                                        pkt.bytes, queue_bytes_);
      if (deliver_) {
        events_.schedule_in(config_.propagation_delay,
                            [this, pkt] { deliver_(pkt); });
      }
      break;
    }
    schedule_dequeue();
  }

  bool should_drop(const Packet& pkt) {
    const SimTime now = events_.now();
    SimDuration sojourn = now - pkt.enqueue_time;

    if (sojourn < config_.target || queue_bytes_ < 2 * kDefaultPacketBytes) {
      // Sojourn dipped below target: leave dropping state.
      first_above_ = 0;
      dropping_ = false;
      return false;
    }

    if (!dropping_) {
      if (first_above_ == 0) {
        first_above_ = now + config_.interval;
        return false;
      }
      if (now < first_above_) return false;
      // Sojourn exceeded target for a full interval: start dropping.
      dropping_ = true;
      // Control-law memory (RFC 8289 §4.2 / Appendix A): if dropping stopped
      // only recently, restart from the drop *rate added by the previous
      // dropping episode* (count - lastcount), not from the stale absolute
      // count; after a long non-dropping interval restart from 1.
      std::int64_t delta = drop_count_ - last_count_;
      drop_count_ = (delta > 1 && now - drop_next_ < 16 * config_.interval)
                        ? delta
                        : 1;
      drop_next_ = now + control_law(config_.interval, drop_count_);
      last_count_ = drop_count_;
      return true;
    }

    if (now >= drop_next_) {
      ++drop_count_;
      // Schedule from the previous deadline, not from now: late dequeues must
      // not stretch the drop cadence below what the control law demands
      // (RFC 8289 Appendix A re-runs the law on drop_next_).
      drop_next_ += control_law(config_.interval, drop_count_);
      return true;
    }
    return false;
  }

  static SimDuration control_law(SimDuration interval, std::int64_t count) {
    return static_cast<SimDuration>(
        static_cast<double>(interval) / std::sqrt(static_cast<double>(count)));
  }

  EventQueue& events_;
  CodelConfig config_;
  Rng rng_;
  std::deque<Packet> queue_;
  std::int64_t queue_bytes_ = 0;
  bool transmitting_ = false;
  DeliverFn deliver_;
  DropFn drop_;
  FlightRecorder* recorder_ = nullptr;

  // CoDel state.
  bool dropping_ = false;
  SimTime first_above_ = 0;
  SimTime drop_next_ = 0;
  std::int64_t drop_count_ = 0;
  std::int64_t last_count_ = 0;  // count at the last dropping-state entry
  std::int64_t codel_drops_ = 0;
  std::int64_t codel_marks_ = 0;
};

}  // namespace libra
