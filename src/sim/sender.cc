#include "sim/sender.h"

#include <algorithm>
#include <stdexcept>

#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "sim/flow_soa.h"

namespace libra {

Sender::Sender(EventQueue& events, SenderConfig config,
               std::unique_ptr<CongestionControl> cca)
    : events_(events), config_(config), cca_(std::move(cca)) {
  if (!cca_) throw std::invalid_argument("Sender: congestion controller required");
  if (config_.packet_bytes <= 0) throw std::invalid_argument("Sender: bad packet size");
}

void Sender::start() {
  if (started_) return;
  started_ = true;
  SimTime at = std::max(config_.start_time, events_.now());
  events_.schedule_at(at, [this] {
    running_ = true;
    next_send_time_ = events_.now();
    maybe_send();
    if (config_.external_tick) {
      sync_hot();  // the owner's shard scan takes over from here
    } else {
      on_tick();
    }
  });
}

void Sender::bind_fleet_slot(FleetFlowHot* hot, std::size_t idx) {
  hot_ = hot;
  hot_idx_ = idx;
  wants_tick_ = cca_->wants_tick();
  if (hot_) {
    hot_->stop_time[idx] = config_.stop_time;
    sync_hot();
  }
}

void Sender::run_tick(SimTime now) {
  if (now >= config_.stop_time) {
    sync_hot();
    return;
  }
  detect_rto_losses();
  cca_->on_tick(now);
  if (recorder_) maybe_record_rate();
  maybe_send();
  maybe_finish();
  sync_hot();
}

void Sender::maybe_finish() {
  if (finished_time_ >= 0 || config_.byte_budget < 0) return;
  if (budget_exhausted() && outstanding_.empty())
    finished_time_ = events_.now();
}

// Refreshes this sender's SoA row. Called at the end of every state-changing
// entry point (ACK delivery, tick, pacing-timer send, start), so the shard
// scan's skip decision is always based on post-event state.
void Sender::sync_hot() {
  if (!hot_) return;
  const std::size_t i = hot_idx_;
  hot_->rto_deadline[i] = outstanding_.empty()
                              ? kSimTimeMax
                              : outstanding_.front().sent_time + rto();
  hot_->send_headroom[i] =
      budget_exhausted() ? 0 : cca_->cwnd_bytes() - bytes_in_flight_;
  std::uint8_t flags = 0;
  if (running_ && finished_time_ < 0) flags |= FleetFlowHot::kActive;
  if (wants_tick_) flags |= FleetFlowHot::kWantsTick;
  hot_->flags[i] = flags;
}

void Sender::replace_cca(std::unique_ptr<CongestionControl> cca) {
  if (!cca) throw std::invalid_argument("Sender: null controller");
  cca_ = std::move(cca);
  if (recorder_) cca_->bind_recorder(recorder_, config_.flow_id);
  if (telemetry_) cca_->bind_telemetry(telemetry_, config_.flow_id);
  wants_tick_ = cca_->wants_tick();
  sync_hot();
}

void Sender::fill_telemetry(TelemetryFlowSample& sample) const {
  sample.cwnd_bytes = static_cast<double>(cca_->cwnd_bytes());
  sample.pacing_rate_bps = effective_pacing_rate();
  sample.srtt_ms = to_msec(srtt_);
  sample.inflight_bytes = static_cast<double>(bytes_in_flight_);
  sample.lost_packets = static_cast<double>(packets_lost_);
  sample.stage = static_cast<double>(cca_->telemetry_stage());
}

void Sender::maybe_record_rate() {
  // One trace record per *change* of the effective control outputs, emitted
  // after the CCA processed the triggering event — this is the uniform
  // rate/cwnd instrumentation for every algorithm family.
  if (!recorder_ || !recorder_->enabled()) return;
  RateBps rate = cca_->pacing_rate();
  std::int64_t cwnd = cca_->cwnd_bytes();
  if (rate == last_recorded_rate_ && cwnd == last_recorded_cwnd_) return;
  last_recorded_rate_ = rate;
  last_recorded_cwnd_ = cwnd;
  recorder_->rate_change(events_.now(), config_.flow_id, rate, cwnd);
}

RateBps Sender::effective_pacing_rate() const {
  RateBps rate = cca_->pacing_rate();
  if (rate <= 0) {
    // Window-driven CCA: pace one cwnd per SRTT with a 25% headroom so the
    // window, not the pacer, is the binding constraint (as Linux does).
    if (srtt_ <= 0) return 0;  // pre-handshake: send unpaced up to cwnd
    rate = 1.25 * static_cast<double>(cca_->cwnd_bytes()) * 8.0 / to_seconds(srtt_);
  }
  return std::max(rate, config_.min_pacing_rate);
}

void Sender::maybe_send() {
  const SimTime now = events_.now();
  if (now < config_.start_time || now >= config_.stop_time) return;

  while (true) {
    if (budget_exhausted()) return;  // finite flow: everything is on the wire
    if (bytes_in_flight_ + config_.packet_bytes > cca_->cwnd_bytes()) return;

    RateBps rate = effective_pacing_rate();
    if (rate > 0) {
      // Don't accumulate sending credit across idle periods.
      if (next_send_time_ < now) next_send_time_ = now;
      if (next_send_time_ > now) {
        if (!send_event_scheduled_) {
          send_event_scheduled_ = true;
          events_.schedule_at(next_send_time_, [this] {
            send_event_scheduled_ = false;
            maybe_send();
            sync_hot();
          });
        }
        return;
      }
      transmit_one();
      next_send_time_ += transmission_time(config_.packet_bytes, rate);
    } else {
      transmit_one();  // unpaced: window-limited burst
    }
  }
}

void Sender::transmit_one() {
  PROF_SCOPE("sender.send");
  const SimTime now = events_.now();
  Packet pkt;
  pkt.flow_id = config_.flow_id;
  pkt.seq = next_seq_++;
  pkt.bytes = config_.packet_bytes;
  pkt.sent_time = now;
  pkt.delivered_at_send = delivered_bytes_;
  pkt.delivered_time_at_send = delivered_time_ > 0 ? delivered_time_ : now;
  pkt.ecn_capable = config_.ecn_capable;

  outstanding_.push(pkt.seq, {now, pkt.bytes, pkt.delivered_at_send,
                              pkt.delivered_time_at_send});
  bytes_in_flight_ += pkt.bytes;
  ++packets_sent_;

  SendEvent ev{now, pkt.seq, pkt.bytes, bytes_in_flight_};
  cca_->on_packet_sent(ev);
  if (send_observer) send_observer(ev);
  if (recorder_) recorder_->send(now, config_.flow_id, pkt.seq, pkt.bytes, bytes_in_flight_);
  if (transmit_) transmit_(pkt);
}

void Sender::update_rtt(SimDuration sample) {
  if (sample <= 0) sample = 1;
  if (min_rtt_ == 0 || sample < min_rtt_) min_rtt_ = sample;
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    SimDuration err = std::abs(srtt_ - sample);
    rttvar_ += (err - rttvar_) / 4;
    srtt_ += (sample - srtt_) / 8;
  }
}

SimDuration Sender::rto() const {
  if (srtt_ == 0) return sec(1);
  SimDuration candidate = srtt_ + std::max<SimDuration>(4 * rttvar_, msec(10));
  return std::clamp<SimDuration>(candidate, config_.min_rto, sec(10));
}

void Sender::on_ack_packet(const Packet& pkt) {
  PROF_SCOPE("sender.ack");
  const SimTime now = events_.now();
  const Outstanding* found = outstanding_.find(pkt.seq);
  if (!found) return;  // already declared lost: spurious

  const Outstanding info = *found;
  outstanding_.erase(pkt.seq);
  bytes_in_flight_ -= info.bytes;
  ++packets_acked_;

  SimDuration rtt = now - info.sent_time;
  update_rtt(rtt);
  delivered_bytes_ += info.bytes;
  delivered_time_ = now;

  RateBps delivery_rate = 0;
  SimDuration interval = now - info.delivered_time_at_send;
  if (interval > 0 && delivered_bytes_ > info.delivered_at_send) {
    delivery_rate = static_cast<double>(delivered_bytes_ - info.delivered_at_send) *
                    8.0 / to_seconds(interval);
  }

  highest_acked_ = std::max(highest_acked_, pkt.seq);
  any_acked_ = true;

  AckEvent ev{now, pkt.seq, info.sent_time, rtt, info.bytes,
              bytes_in_flight_, delivery_rate, min_rtt_};
  // The ACK carries the delivered packet back, so the CE echo is simply the
  // packet's own mark (receiver echo with zero additional state).
  ev.ecn_ce = pkt.ce_marked;
  if (ev.ecn_ce) ++packets_ce_;
  cca_->on_ack(ev);
  if (ack_observer) ack_observer(ev);
  if (recorder_) {
    recorder_->ack(now, config_.flow_id, pkt.seq, rtt, info.bytes, delivery_rate,
                   bytes_in_flight_);
    maybe_record_rate();
  }

  detect_packet_threshold_losses();
  maybe_send();
  maybe_finish();
  sync_hot();
}

void Sender::detect_packet_threshold_losses() {
  if (!any_acked_) return;
  // FIFO bottleneck + in-order ACK path: a packet trailing the highest ACK by
  // the reorder threshold is gone.
  while (!outstanding_.empty()) {
    std::uint64_t seq = outstanding_.front_seq();
    if (seq + static_cast<std::uint64_t>(config_.reorder_threshold) > highest_acked_)
      break;
    Outstanding info = outstanding_.front();
    outstanding_.erase(seq);
    declare_lost(seq, info, /*from_timeout=*/false);
  }
}

void Sender::detect_rto_losses() {
  const SimTime now = events_.now();
  const SimDuration timeout = rto();
  while (!outstanding_.empty()) {
    if (now - outstanding_.front().sent_time < timeout) break;
    std::uint64_t seq = outstanding_.front_seq();
    Outstanding info = outstanding_.front();
    outstanding_.erase(seq);
    declare_lost(seq, info, /*from_timeout=*/true);
  }
}

void Sender::declare_lost(std::uint64_t seq, const Outstanding& info,
                          bool from_timeout) {
  bytes_in_flight_ -= info.bytes;
  ++packets_lost_;
  LossEvent ev{events_.now(), seq, info.sent_time, info.bytes,
               bytes_in_flight_, from_timeout};
  cca_->on_loss(ev);
  if (loss_observer) loss_observer(ev);
  if (recorder_) {
    recorder_->loss(ev.now, config_.flow_id, seq, info.bytes, from_timeout);
    maybe_record_rate();
  }
}

void Sender::on_tick() {
  const SimTime now = events_.now();
  if (now >= config_.stop_time) return;
  run_tick(now);
  events_.schedule_in(config_.tick_interval, [this] { on_tick(); });
}

}  // namespace libra
