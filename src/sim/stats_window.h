// Send-window-attributed statistics.
//
// Libra evaluation and PCC monitor intervals test candidate rates whose feedback (ACKs/losses)
// only returns ~1 RTT later, during the exploitation stage. A StatsWindow
// captures everything about packets *sent* within [send_start, send_end],
// regardless of when their feedback arrives, so utilities are attributed to
// the right decision.
#pragma once

#include <cmath>
#include <vector>

#include "rl/matrix_simd.h"
#include "rl/simd.h"
#include "sim/congestion_control.h"
#include "stats/utility_fn.h"

namespace libra {

class StatsWindow {
 public:
  StatsWindow(SimTime send_start, SimTime send_end, RateBps applied_rate)
      : send_start_(send_start), send_end_(send_end), applied_rate_(applied_rate) {}

  bool covers(SimTime sent_time) const {
    return sent_time >= send_start_ && sent_time < send_end_;
  }

  void on_ack(const AckEvent& ev) {
    if (!covers(ev.sent_time)) return;
    acked_bytes_ += ev.acked_bytes;
    ++acks_;
    if (first_ack_ == 0) first_ack_ = ev.now;
    last_ack_ = ev.now;
    rtt_samples_.push_back({to_seconds(ev.now), to_seconds(ev.rtt)});
  }

  /// Ends the send window early (exploration can exit before its deadline).
  void close(SimTime end) { send_end_ = std::min(send_end_, end); }

  void on_loss(const LossEvent& ev) {
    if (!covers(ev.sent_time)) return;
    ++losses_;
  }

  int acks() const { return acks_; }
  int losses() const { return losses_; }
  RateBps applied_rate() const { return applied_rate_; }
  SimTime send_end() const { return send_end_; }

  /// Achieved throughput of the window's packets, measured as the receive
  /// rate over the ACK arrival span (PCC-style). Self-normalizing: feedback
  /// still in flight when the cycle closes shrinks the span too, so truncated
  /// collection does not bias against higher-rate candidates.
  double throughput_bps() const {
    SimDuration ack_span = last_ack_ - first_ack_;
    if (acks_ >= 2 && ack_span > 0)
      return static_cast<double>(acked_bytes_) * 8.0 / to_seconds(ack_span);
    SimDuration span = send_end_ - send_start_;
    return span > 0 ? static_cast<double>(acked_bytes_) * 8.0 / to_seconds(span) : 0;
  }

  double loss_rate() const {
    int total = acks_ + losses_;
    return total > 0 ? static_cast<double>(losses_) / total : 0.0;
  }

  /// Least-squares d(RTT)/dt over the window's ACKs (dimensionless).
  double rtt_gradient() const {
    std::size_t n = rtt_samples_.size();
    if (n < 2) return 0.0;
    if (simd::use_avx2()) {
      // RttSample is two packed doubles, i.e. the interleaved {t, y} layout
      // the vector scan consumes directly.
      static_assert(sizeof(RttSample) == 2 * sizeof(double));
      return simd::ls_slope_avx2(&rtt_samples_.front().t, n);
    }
    double mt = 0, mr = 0;
    for (auto& s : rtt_samples_) { mt += s.t; mr += s.rtt; }
    mt /= static_cast<double>(n);
    mr /= static_cast<double>(n);
    double num = 0, den = 0;
    for (auto& s : rtt_samples_) {
      num += (s.t - mt) * (s.rtt - mr);
      den += (s.t - mt) * (s.t - mt);
    }
    return den > 1e-12 ? num / den : 0.0;
  }

  /// RTT gradient with PCC's latency-noise filter applied: tiny slopes are
  /// jitter (competing sawtooth traffic, scheduling noise), and with beta in
  /// the hundreds they would otherwise dominate the utility and starve the
  /// flow. Only sustained queue growth should register.
  double filtered_rtt_gradient(double noise_floor = 0.02) const {
    double g = rtt_gradient();
    return std::abs(g) < noise_floor ? 0.0 : g;
  }

  /// Eq. 1 utility of this window's behaviour.
  double utility_value(const UtilityParams& p) const {
    return utility(p, throughput_bps() / 1e6, filtered_rtt_gradient(), loss_rate());
  }

 private:
  struct RttSample { double t; double rtt; };  // packed: the SIMD scan layout
  SimTime send_start_;
  SimTime send_end_;
  RateBps applied_rate_;
  SimTime first_ack_ = 0;
  SimTime last_ack_ = 0;
  std::int64_t acked_bytes_ = 0;
  int acks_ = 0;
  int losses_ = 0;
  std::vector<RttSample> rtt_samples_;
};

}  // namespace libra
