// The unit of transmission in the simulator.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace libra {

struct Packet {
  int flow_id = 0;
  std::uint64_t seq = 0;       // per-flow packet number (QUIC-style, monotonic)
  std::int64_t bytes = kDefaultPacketBytes;
  SimTime sent_time = 0;       // when the sender handed it to the link
  SimTime enqueue_time = 0;    // when it entered the bottleneck queue

  // Delivery-rate sampling context (BBR-style rate sampler): snapshot of the
  // sender's delivered counter when this packet left.
  std::int64_t delivered_at_send = 0;
  SimTime delivered_time_at_send = 0;

  // Explicit congestion notification (RFC 3168 wire contract, collapsed to
  // two bits): the sender stamps ecn_capable (ECT); an ECN-enabled queue sets
  // ce_marked (CE) instead of dropping. The receiver echoes CE on the ACK —
  // the ACK carries this packet back, so no separate echo field is needed.
  bool ecn_capable = false;
  bool ce_marked = false;
};

}  // namespace libra
