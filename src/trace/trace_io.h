// Mahimahi-compatible trace file I/O.
//
// Mahimahi's trace format is one integer per line: the millisecond timestamp
// at which one MTU-sized (1500 B) packet delivery opportunity occurs; the
// file loops after the last timestamp. We can export any RateTrace to this
// format and import such files back as a PiecewiseTrace (binned), which lets
// this repo exchange traces with Pantheon-era tooling.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/rate_trace.h"

namespace libra {

/// Writes `trace` over [0, length) to `out` in mahimahi format.
void write_mahimahi(const RateTrace& trace, SimDuration length, std::ostream& out);
void write_mahimahi_file(const RateTrace& trace, SimDuration length,
                         const std::string& path);

/// Parses mahimahi-format input into a piecewise trace, binning delivery
/// opportunities into `bin` wide rate segments. The resulting trace loops
/// with the file's total duration.
std::unique_ptr<PiecewiseTrace> read_mahimahi(std::istream& in, SimDuration bin = msec(100));
std::unique_ptr<PiecewiseTrace> read_mahimahi_file(const std::string& path,
                                                   SimDuration bin = msec(100));

}  // namespace libra
