#include "trace/rate_trace.h"

namespace libra {

PiecewiseTrace::PiecewiseTrace(std::vector<Segment> segments, SimDuration loop_period)
    : segments_(std::move(segments)), loop_period_(loop_period) {
  if (segments_.empty()) throw std::invalid_argument("PiecewiseTrace: no segments");
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].start <= segments_[i - 1].start)
      throw std::invalid_argument("PiecewiseTrace: segments must be strictly increasing");
  }
  for (const Segment& s : segments_) {
    if (s.rate < 0) throw std::invalid_argument("PiecewiseTrace: negative rate");
  }
  if (loop_period_ > 0 && loop_period_ <= segments_.back().start)
    throw std::invalid_argument("PiecewiseTrace: loop period ends before last segment");
}

SimTime PiecewiseTrace::fold(SimTime t) const {
  if (loop_period_ <= 0) return t;
  SimTime m = t % loop_period_;
  return m < 0 ? m + loop_period_ : m;
}

RateBps PiecewiseTrace::rate_at(SimTime t) const {
  t = fold(t);
  // Last segment whose start is <= t; before the first breakpoint we use the
  // first segment so the trace is total over all of time.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime v, const Segment& s) { return v < s.start; });
  if (it == segments_.begin()) return segments_.front().rate;
  return std::prev(it)->rate;
}

RateBps PiecewiseTrace::average_rate(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return rate_at(t0);
  // Integrate in at-most-loop-sized pieces; segments are coarse (>=1ms) so a
  // simple walk is fine.
  double bits = 0.0;
  SimTime t = t0;
  while (t < t1) {
    SimTime ft = fold(t);
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), ft,
        [](SimTime v, const Segment& s) { return v < s.start; });
    RateBps rate = (it == segments_.begin()) ? segments_.front().rate
                                             : std::prev(it)->rate;
    // End of the current constant piece in folded time.
    SimTime seg_end;
    if (it == segments_.end()) {
      seg_end = (loop_period_ > 0) ? loop_period_ : kSimTimeMax;
    } else {
      seg_end = it->start;
    }
    SimTime advance = std::min(seg_end - ft, t1 - t);
    if (advance <= 0) advance = 1;  // defensive: always make progress
    bits += rate * to_seconds(advance);
    t += advance;
  }
  return bits / to_seconds(t1 - t0);
}

std::unique_ptr<PiecewiseTrace> make_step_trace(const std::vector<RateBps>& levels,
                                                SimDuration step_duration) {
  if (levels.empty()) throw std::invalid_argument("make_step_trace: no levels");
  if (step_duration <= 0) throw std::invalid_argument("make_step_trace: bad duration");
  std::vector<PiecewiseTrace::Segment> segs;
  segs.reserve(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    segs.push_back({static_cast<SimTime>(i) * step_duration, levels[i]});
  }
  return std::make_unique<PiecewiseTrace>(
      std::move(segs), static_cast<SimDuration>(levels.size()) * step_duration);
}

}  // namespace libra
