// Link-capacity traces.
//
// A RateTrace maps simulated time to the instantaneous capacity of the
// bottleneck link, replacing the Mahimahi packet-delivery traces used in the
// paper. Stochastic traces (LTE model) are materialized into a piecewise-
// constant series at generation time so that rate_at() is a pure lookup and
// a run is reproducible from its seed.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/types.h"

namespace libra {

class RateTrace {
 public:
  virtual ~RateTrace() = default;

  /// Instantaneous capacity at time `t` (bits/second).
  virtual RateBps rate_at(SimTime t) const = 0;

  /// Average capacity over [t0, t1); used for link-utilization metrics.
  virtual RateBps average_rate(SimTime t0, SimTime t1) const = 0;

  virtual std::unique_ptr<RateTrace> clone() const = 0;
};

/// Fixed-capacity link.
class ConstantTrace final : public RateTrace {
 public:
  explicit ConstantTrace(RateBps rate) : rate_(rate) {
    if (rate <= 0) throw std::invalid_argument("ConstantTrace: rate must be > 0");
  }

  RateBps rate_at(SimTime) const override { return rate_; }
  RateBps average_rate(SimTime, SimTime) const override { return rate_; }
  std::unique_ptr<RateTrace> clone() const override {
    return std::make_unique<ConstantTrace>(rate_);
  }

 private:
  RateBps rate_;
};

/// Piecewise-constant capacity: sorted breakpoints, each holding from its
/// start time until the next. Time before the first breakpoint uses the first
/// segment's rate; time after the last repeats the trace cyclically if
/// `loop_period` > 0, else holds the last rate.
class PiecewiseTrace final : public RateTrace {
 public:
  struct Segment {
    SimTime start = 0;
    RateBps rate = 0;
  };

  explicit PiecewiseTrace(std::vector<Segment> segments, SimDuration loop_period = 0);

  RateBps rate_at(SimTime t) const override;
  RateBps average_rate(SimTime t0, SimTime t1) const override;
  std::unique_ptr<RateTrace> clone() const override {
    return std::make_unique<PiecewiseTrace>(*this);
  }

  const std::vector<Segment>& segments() const { return segments_; }
  SimDuration loop_period() const { return loop_period_; }

 private:
  SimTime fold(SimTime t) const;

  std::vector<Segment> segments_;
  SimDuration loop_period_;
};

/// The paper's Fig. 2(a) "step-scenario": capacity changes every
/// `step_duration`, cycling through `levels`.
std::unique_ptr<PiecewiseTrace> make_step_trace(const std::vector<RateBps>& levels,
                                                SimDuration step_duration);

}  // namespace libra
