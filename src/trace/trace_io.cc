#include "trace/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace libra {

void write_mahimahi(const RateTrace& trace, SimDuration length, std::ostream& out) {
  if (length <= 0) throw std::invalid_argument("write_mahimahi: length must be > 0");
  // Walk in 1ms steps accumulating deliverable bytes; emit one line per full
  // MTU accumulated, stamped with the current millisecond.
  double credit_bytes = 0.0;
  for (SimTime t = 0; t < length; t += msec(1)) {
    credit_bytes += bytes_in(msec(1), trace.rate_at(t));
    while (credit_bytes >= kDefaultPacketBytes) {
      out << (t / 1000) << "\n";
      credit_bytes -= kDefaultPacketBytes;
    }
  }
}

void write_mahimahi_file(const RateTrace& trace, SimDuration length,
                         const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_mahimahi_file: cannot open " + path);
  write_mahimahi(trace, length, f);
}

std::unique_ptr<PiecewiseTrace> read_mahimahi(std::istream& in, SimDuration bin) {
  if (bin <= 0) throw std::invalid_argument("read_mahimahi: bin must be > 0");
  std::vector<std::int64_t> stamps_ms;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    stamps_ms.push_back(std::stoll(line));
  }
  if (stamps_ms.empty()) throw std::runtime_error("read_mahimahi: empty trace");

  SimDuration total = msec(stamps_ms.back() + 1);
  std::size_t nbins = static_cast<std::size_t>((total + bin - 1) / bin);
  std::vector<std::int64_t> counts(nbins, 0);
  for (std::int64_t ms : stamps_ms) {
    auto idx = static_cast<std::size_t>(msec(ms) / bin);
    counts[std::min(idx, nbins - 1)]++;
  }

  std::vector<PiecewiseTrace::Segment> segs;
  segs.reserve(nbins);
  for (std::size_t i = 0; i < nbins; ++i) {
    double bits = static_cast<double>(counts[i]) * kDefaultPacketBytes * 8;
    segs.push_back({static_cast<SimTime>(i) * bin, bits / to_seconds(bin)});
  }
  return std::make_unique<PiecewiseTrace>(std::move(segs),
                                          static_cast<SimDuration>(nbins) * bin);
}

std::unique_ptr<PiecewiseTrace> read_mahimahi_file(const std::string& path,
                                                   SimDuration bin) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_mahimahi_file: cannot open " + path);
  return read_mahimahi(f, bin);
}

}  // namespace libra
