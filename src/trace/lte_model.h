// Synthetic LTE cellular capacity model.
//
// The paper uses LTE traces collected by Pantheon and DeepCC for three
// mobility profiles (stationary, walking, driving; 0-40 Mbps band). Those
// trace files are not redistributable, so we substitute a mean-reverting
// stochastic model whose parameters were chosen to match the statistical
// character the paper's experiments depend on:
//   * capacity confined to a 0-40 Mbps band,
//   * short-timescale variation growing from stationary -> walking -> driving,
//   * occasional deep fades / handover outages in mobile profiles.
// The generator materializes a PiecewiseTrace (100 ms granularity) so runs
// are reproducible from the seed.
#pragma once

#include <memory>

#include "trace/rate_trace.h"
#include "util/rng.h"

namespace libra {

enum class LteProfile {
  kStationary,  // LTE#1: steady, mild fading
  kWalking,     // LTE#2: moderate variation, occasional dips
  kDriving,     // LTE#3: strong variation, deep fades and handover outages
};

struct LteModelParams {
  RateBps mean_rate = mbps(24);     // long-run mean of the capacity process
  RateBps min_rate = mbps(0.5);     // floor (link never fully dies outside outages)
  RateBps max_rate = mbps(40);      // LTE band ceiling used in the paper
  double reversion = 0.25;          // pull toward the mean per step
  double volatility = 0.10;         // stddev of the multiplicative step noise
  double fade_probability = 0.0;    // chance per step of entering a fade
  double fade_depth = 0.25;         // fade multiplies capacity by this factor
  SimDuration fade_duration = msec(600);
  SimDuration granularity = msec(100);
};

/// Canonical parameters for the three mobility profiles.
LteModelParams lte_profile_params(LteProfile profile);

/// Generates a reproducible synthetic LTE trace of the given length.
std::unique_ptr<PiecewiseTrace> make_lte_trace(LteProfile profile,
                                               SimDuration length,
                                               std::uint64_t seed);

/// Same but with explicit parameters (used by tests and ablations).
std::unique_ptr<PiecewiseTrace> make_lte_trace(const LteModelParams& params,
                                               SimDuration length,
                                               std::uint64_t seed);

}  // namespace libra
