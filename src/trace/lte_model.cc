#include "trace/lte_model.h"

#include <algorithm>
#include <cmath>

namespace libra {

LteModelParams lte_profile_params(LteProfile profile) {
  LteModelParams p;
  switch (profile) {
    case LteProfile::kStationary:
      p.mean_rate = mbps(26);
      p.volatility = 0.06;
      p.reversion = 0.30;
      p.fade_probability = 0.002;
      p.fade_depth = 0.5;
      p.fade_duration = msec(300);
      break;
    case LteProfile::kWalking:
      p.mean_rate = mbps(20);
      p.volatility = 0.12;
      p.reversion = 0.20;
      p.fade_probability = 0.01;
      p.fade_depth = 0.35;
      p.fade_duration = msec(500);
      break;
    case LteProfile::kDriving:
      p.mean_rate = mbps(14);
      p.volatility = 0.22;
      p.reversion = 0.12;
      p.fade_probability = 0.03;
      p.fade_depth = 0.15;
      p.fade_duration = msec(800);
      break;
  }
  return p;
}

std::unique_ptr<PiecewiseTrace> make_lte_trace(LteProfile profile,
                                               SimDuration length,
                                               std::uint64_t seed) {
  return make_lte_trace(lte_profile_params(profile), length, seed);
}

std::unique_ptr<PiecewiseTrace> make_lte_trace(const LteModelParams& p,
                                               SimDuration length,
                                               std::uint64_t seed) {
  if (length <= 0) throw std::invalid_argument("make_lte_trace: length must be > 0");
  Rng rng(seed);
  std::vector<PiecewiseTrace::Segment> segs;
  segs.reserve(static_cast<std::size_t>(length / p.granularity) + 1);

  // Mean-reverting geometric walk in log-rate space: log-space keeps the
  // process positive and makes volatility scale-free across the 0-40 Mbps band.
  double log_mean = std::log(p.mean_rate);
  double log_rate = log_mean;
  SimDuration fade_remaining = 0;

  for (SimTime t = 0; t < length; t += p.granularity) {
    log_rate += p.reversion * (log_mean - log_rate) + rng.normal(0.0, p.volatility);
    double rate = std::exp(log_rate);

    if (fade_remaining > 0) {
      fade_remaining -= p.granularity;
    } else if (rng.chance(p.fade_probability)) {
      fade_remaining = p.fade_duration;
    }
    if (fade_remaining > 0) rate *= p.fade_depth;

    rate = std::clamp(rate, static_cast<double>(p.min_rate),
                      static_cast<double>(p.max_rate));
    segs.push_back({t, rate});
  }
  return std::make_unique<PiecewiseTrace>(std::move(segs), length);
}

}  // namespace libra
