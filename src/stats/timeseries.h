// Timestamped value series with binning, used for throughput-over-time plots
// (Figs. 2a, 8, 15, 18) and convergence analysis.
#pragma once

#include <stdexcept>
#include <vector>

#include "util/types.h"

namespace libra {

class TimeSeries {
 public:
  struct Point {
    SimTime time = 0;
    double value = 0.0;
  };

  void add(SimTime t, double v) { points_.push_back({t, v}); }

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Sum of values with time in [t0, t1).
  double sum_in(SimTime t0, SimTime t1) const {
    double s = 0.0;
    for (const Point& p : points_)
      if (p.time >= t0 && p.time < t1) s += p.value;
    return s;
  }

  /// Mean of values with time in [t0, t1); 0 if no points fall inside.
  double mean_in(SimTime t0, SimTime t1) const {
    double s = 0.0;
    std::size_t n = 0;
    for (const Point& p : points_)
      if (p.time >= t0 && p.time < t1) { s += p.value; ++n; }
    return n > 0 ? s / static_cast<double>(n) : 0.0;
  }

  /// Bins point *values as byte counts* into rates (bits/s) per `bin` window
  /// over [0, horizon). Events outside the horizon are ignored.
  std::vector<double> to_rate_bins(SimDuration bin, SimDuration horizon) const {
    if (bin <= 0 || horizon <= 0) throw std::invalid_argument("to_rate_bins: bad args");
    std::vector<double> bits(static_cast<std::size_t>((horizon + bin - 1) / bin), 0.0);
    for (const Point& p : points_) {
      if (p.time < 0 || p.time >= horizon) continue;
      bits[static_cast<std::size_t>(p.time / bin)] += p.value * 8.0;
    }
    for (double& b : bits) b /= to_seconds(bin);
    return bits;
  }

 private:
  std::vector<Point> points_;
};

}  // namespace libra
