// Convergence metrics reproducing the paper's Table 5 definitions:
//   * convergence time: time from a flow's entry to the earliest moment after
//     which its rate stays within +/-25% of its own level for 5 seconds;
//   * stability: stddev of the flow's throughput after convergence;
//   * average throughput after convergence.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "stats/summary.h"
#include "util/types.h"

namespace libra {

struct ConvergenceResult {
  bool converged = false;
  SimDuration convergence_time = 0;  // from flow entry
  double stddev_after = 0.0;         // bits/s
  double mean_after = 0.0;           // bits/s
};

/// `rate_bins` are per-`bin` throughput samples (bits/s) starting at the
/// flow's entry time. `band` is the +/- tolerance (0.25 in the paper) and
/// `hold` the duration the rate must stay inside the band (5 s).
inline ConvergenceResult analyze_convergence(const std::vector<double>& rate_bins,
                                             SimDuration bin,
                                             double band = 0.25,
                                             SimDuration hold = sec(5)) {
  ConvergenceResult res;
  if (rate_bins.empty() || bin <= 0) return res;
  const auto hold_bins = static_cast<std::size_t>(hold / bin);
  if (hold_bins == 0 || rate_bins.size() < hold_bins) return res;

  for (std::size_t start = 0; start + hold_bins <= rate_bins.size(); ++start) {
    // Candidate level: mean over the hold window starting here.
    double level = 0.0;
    for (std::size_t i = start; i < start + hold_bins; ++i) level += rate_bins[i];
    level /= static_cast<double>(hold_bins);
    if (level <= 0.0) continue;

    bool stable = true;
    for (std::size_t i = start; i < start + hold_bins; ++i) {
      if (rate_bins[i] < (1.0 - band) * level || rate_bins[i] > (1.0 + band) * level) {
        stable = false;
        break;
      }
    }
    if (!stable) continue;

    res.converged = true;
    res.convergence_time = static_cast<SimDuration>(start) * bin;
    RunningStats after;
    for (std::size_t i = start; i < rate_bins.size(); ++i) after.add(rate_bins[i]);
    res.stddev_after = after.stddev();
    res.mean_after = after.mean();
    return res;
  }
  return res;
}

}  // namespace libra
