// Empirical CDF over a sample set (paper Fig. 2(b)).
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace libra {

class Cdf {
 public:
  void add(double sample) { samples_.push_back(sample); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }

  /// Fraction of samples <= x.
  double fraction_below(double x) const {
    ensure_sorted();
    if (samples_.empty()) throw std::logic_error("Cdf: no samples");
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Value at quantile q in [0,1].
  double quantile(double q) const {
    ensure_sorted();
    if (samples_.empty()) throw std::logic_error("Cdf: no samples");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("Cdf: quantile out of range");
    auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1));
    return samples_[idx];
  }

  const std::vector<double>& sorted_samples() const {
    ensure_sorted();
    return samples_;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace libra
