// Control-plane overhead measurement.
//
// The paper reports iperf CPU utilization per CCA (Figs. 2c, 12). Our
// substitute measures the same quantity directly: wall-clock time actually
// spent inside a CCA's decision code, normalized by simulated time, plus a
// memory figure from the CCA's own accounting (model parameters dominate).
#pragma once

#include <chrono>
#include <cstdint>

#include "util/types.h"

namespace libra {

class OverheadMeter {
 public:
  /// RAII scope that attributes elapsed wall time to the meter.
  class Scope {
   public:
    explicit Scope(OverheadMeter& meter)
        : meter_(meter), start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      auto end = std::chrono::steady_clock::now();
      meter_.busy_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             end - start_).count();
      meter_.invocations_++;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OverheadMeter& meter_;
    std::chrono::steady_clock::time_point start_;
  };

  std::int64_t busy_nanoseconds() const { return busy_ns_; }
  std::int64_t invocations() const { return invocations_; }

  /// CPU seconds of decision work per simulated second: the analogue of the
  /// paper's CPU-utilization fraction.
  double cpu_per_sim_second(SimDuration simulated) const {
    if (simulated <= 0) return 0.0;
    return static_cast<double>(busy_ns_) / 1e9 / to_seconds(simulated);
  }

  void reset() { busy_ns_ = 0; invocations_ = 0; }

 private:
  std::int64_t busy_ns_ = 0;
  std::int64_t invocations_ = 0;
};

}  // namespace libra
