// The utility functional form shared by Libra (Eq. 1) and the PCC family:
//   u(x) = alpha * x^t - beta * x * max(0, dRTT/dt) - gamma * x * L
// with x in Mbps (the PCC convention the default coefficients assume),
// 0 < t < 1 and alpha, beta, gamma > 0 — which is what makes the
// non-cooperative game strictly socially concave (Appendix A).
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra {

struct UtilityParams {
  double t = 0.9;
  double alpha = 1.0;
  double beta = 900.0;
  double gamma = 11.35;

  void validate() const {
    if (!(t > 0.0 && t < 1.0)) throw std::invalid_argument("UtilityParams: need 0<t<1");
    if (alpha <= 0 || beta <= 0 || gamma <= 0)
      throw std::invalid_argument("UtilityParams: coefficients must be positive");
  }
};

/// `x_mbps`: sending (or achieved) rate in Mbps; `rtt_gradient`: d(RTT)/dt,
/// dimensionless; `loss_rate` in [0,1].
inline double utility(const UtilityParams& p, double x_mbps, double rtt_gradient,
                      double loss_rate) {
  if (x_mbps < 0) throw std::invalid_argument("utility: negative rate");
  return p.alpha * std::pow(x_mbps, p.t) -
         p.beta * x_mbps * std::max(0.0, rtt_gradient) -
         p.gamma * x_mbps * loss_rate;
}

/// Preset preference profiles used in the flexibility experiments (Fig. 11):
/// Th-1/Th-2 scale alpha by 2x/3x, La-1/La-2 scale beta by 2x/3x.
inline UtilityParams throughput_oriented(int level) {
  UtilityParams p;
  p.alpha *= (level == 1 ? 2.0 : 3.0);
  return p;
}
inline UtilityParams latency_oriented(int level) {
  UtilityParams p;
  p.beta *= (level == 1 ? 2.0 : 3.0);
  return p;
}

}  // namespace libra
