// Fairness metrics.
#pragma once

#include <stdexcept>
#include <vector>

namespace libra {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 == perfectly fair.
inline double jain_index(const std::vector<double>& rates) {
  if (rates.empty()) throw std::invalid_argument("jain_index: empty input");
  double sum = 0.0, sq = 0.0;
  for (double r : rates) {
    if (r < 0) throw std::invalid_argument("jain_index: negative rate");
    sum += r;
    sq += r * r;
  }
  if (sq == 0.0) return 1.0;  // all-zero allocation is (degenerately) fair
  return sum * sum / (static_cast<double>(rates.size()) * sq);
}

}  // namespace libra
