// Streaming and batch summary statistics.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace libra {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  double range() const { return n_ > 0 ? max_ - min_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order statistics).
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(values.begin(), values.end());
  double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace libra
