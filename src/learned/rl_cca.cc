#include "learned/rl_cca.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "stats/utility_fn.h"

namespace libra {

std::vector<StateFeature> libra_state_space() {
  return {StateFeature::kSendRate, StateFeature::kLossRate,
          StateFeature::kRttGradient, StateFeature::kDeliveryRate};
}

std::vector<StateFeature> baseline_state_space() {
  return {StateFeature::kSendRate, StateFeature::kRttAndMinRtt,
          StateFeature::kLossRate, StateFeature::kRttGradient,
          StateFeature::kDeliveryRate};
}

std::size_t feature_frame_size(const std::vector<StateFeature>& features) {
  std::size_t n = 0;
  for (StateFeature f : features)
    n += (f == StateFeature::kRttAndMinRtt) ? 2 : 1;
  return n;
}

PpoConfig make_ppo_config(const RlCcaConfig& cfg, std::uint64_t seed,
                          std::vector<std::size_t> hidden) {
  PpoConfig ppo;
  ppo.state_dim = feature_frame_size(cfg.features) * cfg.history;
  ppo.hidden = std::move(hidden);
  ppo.seed = seed;
  return ppo;
}

BatchedPolicyEval::BatchedPolicyEval(std::shared_ptr<const RlBrain> brain,
                                     std::size_t max_batch)
    : brain_(std::move(brain)), max_batch_(max_batch) {
  if (!brain_) throw std::invalid_argument("BatchedPolicyEval: null brain");
  if (max_batch_ == 0)
    throw std::invalid_argument("BatchedPolicyEval: max_batch must be > 0");
  if (brain_->agent.config().state_dim % brain_->normalizer.dim() != 0)
    throw std::invalid_argument(
        "BatchedPolicyEval: state_dim is not a whole number of frames");
  brain_->agent.configure_policy_workspace(ws_, max_batch_);
}

void BatchedPolicyEval::evaluate(const std::vector<Vector>& raw_states,
                                 Vector& out) {
  const std::size_t state_dim = brain_->agent.config().state_dim;
  const std::size_t frame = brain_->normalizer.dim();
  frame_scratch_.resize(frame);
  out.resize(raw_states.size());
  for (std::size_t base = 0; base < raw_states.size(); base += max_batch_) {
    const std::size_t n = std::min(max_batch_, raw_states.size() - base);
    ws_.set_batch(n);
    Matrix& in = ws_.input();
    for (std::size_t r = 0; r < n; ++r) {
      const Vector& s = raw_states[base + r];
      if (s.size() != state_dim)
        throw std::invalid_argument("BatchedPolicyEval: state dim mismatch");
      // The state is `history` stacked feature frames; the same per-frame
      // statistics normalize every frame (matching RlCca::build_frame).
      double* row = in.data().data() + r * state_dim;
      for (std::size_t off = 0; off < state_dim; off += frame) {
        frame_scratch_.assign(s.begin() + static_cast<std::ptrdiff_t>(off),
                              s.begin() + static_cast<std::ptrdiff_t>(off + frame));
        brain_->normalizer.normalize_into(frame_scratch_, row + off);
      }
    }
    brain_->agent.act_greedy_batch(ws_, chunk_out_);
    std::copy(chunk_out_.begin(), chunk_out_.end(), out.begin() + base);
  }
}

void save_brain(const RlBrain& brain, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_brain: cannot open " + path);
  brain.agent.save(out);
  brain.normalizer.save(out);
}

bool load_brain(RlBrain& brain, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  brain.agent.load(in);
  brain.normalizer.load(in);
  return true;
}

RlCca::RlCca(RlCcaConfig config, std::shared_ptr<RlBrain> brain)
    : config_(std::move(config)),
      brain_(std::move(brain)),
      sample_rng_(config_.sampling_seed),
      history_(config_.history),
      rate_(config_.initial_rate) {
  if (!brain_) throw std::invalid_argument("RlCca: brain required");
  std::size_t want = feature_frame_size(config_.features) * config_.history;
  if (brain_->agent.config().state_dim != want)
    throw std::invalid_argument("RlCca: brain state_dim does not match feature set");
}

void RlCca::on_packet_sent(const SendEvent& ev) { collector_.on_send(ev); }

void RlCca::on_ack(const AckEvent& ack) {
  collector_.on_ack(ack);
  srtt_ = srtt_ == 0 ? ack.rtt : srtt_ + (ack.rtt - srtt_) / 8;
  maybe_close_mi(ack.now);
}

void RlCca::on_loss(const LossEvent& loss) { collector_.on_loss(loss); }

void RlCca::on_tick(SimTime now) { maybe_close_mi(now); }

std::int64_t RlCca::cwnd_bytes() const {
  // Cap inflight at two rate-BDPs as a safety valve (the pacer is the real
  // control); before any RTT estimate let the pacer run free.
  if (srtt_ <= 0) return kInfiniteCwnd;
  auto bdp = static_cast<std::int64_t>(rate_ / 8.0 * to_seconds(srtt_));
  return std::max<std::int64_t>(2 * bdp, 4 * kDefaultPacketBytes);
}

void RlCca::force_rate(RateBps rate) {
  rate_ = std::clamp(rate, config_.min_rate, config_.max_rate);
}

Vector RlCca::build_frame(const MiReport& r) const {
  Vector f;
  f.reserve(feature_frame_size(config_.features));
  for (StateFeature feat : config_.features) {
    switch (feat) {
      case StateFeature::kAckGapEwma: f.push_back(r.ack_gap_ewma_s * 1e3); break;
      case StateFeature::kSendGapEwma: f.push_back(r.send_gap_ewma_s * 1e3); break;
      case StateFeature::kRttRatio:
        f.push_back(r.min_rtt_s > 0 ? r.last_rtt_s / r.min_rtt_s : 1.0);
        break;
      case StateFeature::kSendRate: f.push_back(to_mbps(rate_)); break;
      case StateFeature::kSentAckedRatio: f.push_back(r.sent_acked_ratio); break;
      case StateFeature::kRttAndMinRtt:
        f.push_back(r.last_rtt_s * 1e3);
        f.push_back(r.min_rtt_s * 1e3);
        break;
      case StateFeature::kLossRate: f.push_back(r.loss_rate); break;
      case StateFeature::kRttGradient: f.push_back(r.rtt_gradient); break;
      case StateFeature::kDeliveryRate: f.push_back(to_mbps(r.avg_delivery_bps)); break;
    }
  }
  return f;
}

double RlCca::compute_reward(const MiReport& r) {
  if (config_.reward_is_eq1_utility) {
    // Modified-RL benchmark: the raw Eq. 1 utility (scaled into a reward-
    // friendly magnitude) replaces the normalized reward.
    UtilityParams up;
    double u = utility(up, r.throughput_bps / 1e6, r.rtt_gradient, r.loss_rate);
    // Bounded squash: Eq. 1's raw magnitude is dominated by RTT-gradient
    // noise (the beta=900 term), which as a raw RL reward collapses the
    // policy; squashing preserves the ordering Eq. 1 defines while keeping
    // the reward scale learnable.
    double reward = 2.0 * u / (10.0 + std::abs(u));
    if (config_.reward_mode == RewardMode::kDelta) {
      double abs = reward;
      reward = have_prev_r_ ? abs - prev_r_ : 0.0;
      prev_r_ = abs;
      have_prev_r_ = true;
    }
    return reward;
  }
  // Alg. 2: r_t = w1*x/x_max - w2*d/d_min - w3*L, with running normalizers.
  x_max_bps_ = std::max(x_max_bps_, r.throughput_bps);
  if (r.min_rtt_s > 0 && (d_min_s_ == 0 || r.min_rtt_s < d_min_s_))
    d_min_s_ = r.min_rtt_s;
  double d_norm = (d_min_s_ > 0 && r.avg_rtt_s > 0) ? r.avg_rtt_s / d_min_s_ : 1.0;
  double loss_term = config_.reward_includes_loss ? config_.w3 * r.loss_rate : 0.0;

  // Throughput normalization differs by reward mode. The delta design uses
  // the running max (Alg. 2): the *difference* of the ratcheting ratio still
  // rewards growth. For the absolute design (Aurora/Orca style) the running
  // max is degenerate — any constant rate saturates its own maximum — so a
  // fixed scale keeps absolute throughput rewarded.
  double thr_term = config_.reward_mode == RewardMode::kDelta
                        ? r.throughput_bps / x_max_bps_
                        : r.throughput_bps / mbps(100);
  // Penalize *excess* delay (d/d_min - 1): with the raw ratio (>= 1) an
  // absolute-reward agent's laziest policy (minimum rate, zero queue) would
  // dominate everything that has to cross a transient queue to ramp up. The
  // shift is invisible to the delta design (constants cancel in r_t-r_{t-1}).
  double rt = config_.w1 * thr_term - config_.w2 * (d_norm - 1.0) - loss_term;

  double reward = rt;
  if (config_.reward_mode == RewardMode::kDelta) {
    reward = have_prev_r_ ? rt - prev_r_ : 0.0;
  }
  prev_r_ = rt;
  have_prev_r_ = true;
  return reward;
}

void RlCca::apply_action(double a) {
  a = std::clamp(a, -config_.action_scale, config_.action_scale);
  RateBps next = rate_;
  switch (config_.action_mode) {
    case ActionMode::kAiad:
      next = rate_ + a * config_.aiad_step;
      break;
    case ActionMode::kMimdAurora:
      next = a >= 0 ? rate_ * (1.0 + config_.aurora_delta * a)
                    : rate_ / (1.0 - config_.aurora_delta * a);
      break;
    case ActionMode::kMimdOrca:
      next = rate_ * std::exp2(a);
      break;
  }
  rate_ = std::clamp(next, config_.min_rate, config_.max_rate);
}

void RlCca::external_begin(SimTime now, RateBps base_rate) {
  collector_.finish(now);  // discard anything accumulated outside the cycle
  force_rate(base_rate);
}

RateBps RlCca::external_decide(SimTime now) {
  if (!collector_.has_acks()) {
    collector_.finish(now);
    return rate_;  // hold the previous decision (Sec. 3 no-ACK rule)
  }
  MiReport report = collector_.finish(now);
  last_report_ = report;
  learn_and_act(report);
  return rate_;
}

void RlCca::maybe_close_mi(SimTime now) {
  if (config_.external_control) return;
  if (mi_end_ == 0) {
    mi_end_ = now + std::max(config_.min_mi,
                             config_.mi_duration > 0 ? config_.mi_duration : msec(50));
    return;
  }
  if (now < mi_end_) return;

  SimDuration next_mi = config_.mi_duration > 0
                            ? config_.mi_duration
                            : std::max(config_.min_mi, srtt_ > 0 ? srtt_ : msec(50));
  mi_end_ = now + next_mi;

  if (!collector_.has_acks()) {
    // Sec. 3: no feedback during the interval — keep the current decision and
    // do not charge the agent for an unobservable step.
    collector_.finish(now);
    return;
  }

  MiReport report = collector_.finish(now);
  last_report_ = report;
  learn_and_act(report);
}

void RlCca::learn_and_act(const MiReport& report) {
  double reward = compute_reward(report);
  episode_reward_ += reward;
  ++episode_steps_;
  if (config_.training) {
    brain_->agent.give_reward(reward, episode_ending_);
    episode_ending_ = false;
  }

  Vector frame = build_frame(report);
  // The normalizer learns only while training; frozen deployed policies keep
  // the offline statistics. This also makes inference runs independent of
  // each other (no shared-brain writes), which the parallel experiment
  // engine's determinism guarantee relies on.
  if (config_.training) brain_->normalizer.update(frame);
  history_.push(brain_->normalizer.normalize(frame));

  // Stack h frames, zero-padding while the history warms up.
  std::size_t frame_dim = feature_frame_size(config_.features);
  Vector state(frame_dim * config_.history, 0.0);
  std::size_t pad = config_.history - history_.size();
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const Vector& f = history_.at(i);
    std::copy(f.begin(), f.end(), state.begin() +
              static_cast<std::ptrdiff_t>((pad + i) * frame_dim));
  }

  double action;
  if (config_.training) {
    action = brain_->agent.act(state);
  } else if (config_.stochastic_inference) {
    // Sample the policy with this instance's own RNG: the draw distribution
    // matches PpoAgent::act_sampled, but the stream is private, so concurrent
    // runs sharing a frozen brain stay race-free and per-run deterministic.
    action = brain_->agent.act_greedy(state) +
             brain_->agent.exploration_stddev() * sample_rng_.normal();
  } else {
    action = brain_->agent.act_greedy(state);
  }
  apply_action(action);
  // Trace code 1: one MI closed — the applied rate and the reward earned.
  record_cca_event(report.end, 1, rate_, reward);
}

}  // namespace libra
