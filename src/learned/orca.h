// Orca (Abbasloo et al., SIGCOMM 2020): a two-level design where CUBIC runs
// underneath and a DRL agent periodically *overwrites* the congestion window
// with cwnd * 2^a, a in [-2, 2]. The paper's key observation about Orca —
// occasional inappropriate DRL multipliers causing severe rate drops — arises
// here naturally from the stochastic policy.
#pragma once

#include <memory>

#include "classic/cubic.h"
#include "learned/monitor.h"
#include "learned/rl_cca.h"

namespace libra {

struct OrcaParams {
  /// Floor on the monitoring period; the effective period is
  /// max(decision_period, smoothed RTT), as in Orca's max(20 ms, RTT).
  SimDuration decision_period = msec(20);
  double action_scale = 2.0;                // cwnd multiplier in [1/4, 4]
  bool training = true;
  /// Deployed Orca keeps sampling its stochastic policy; those occasional
  /// inappropriate multipliers are exactly the behaviour the paper's Fig. 2b
  /// safety analysis attributes Orca's variability to.
  bool stochastic_inference = true;
  /// Private seed for inference-time policy sampling (see RlCcaConfig).
  std::uint64_t sampling_seed = 0x02CA5EED;
  std::int64_t mss = kDefaultPacketBytes;
  /// Hard cap on the overridden window (kernels clamp cwnd too): without it,
  /// a run of sampled up-actions compounds 4x per period without bound.
  std::int64_t max_cwnd_bytes = 12'000 * kDefaultPacketBytes;
};

/// State features Orca reports to its agent (Tab. 1 rows ii, iv, vi, vii, ix).
std::vector<StateFeature> orca_state_space();

/// Builds a brain with the dimensionality Orca's feature set requires.
std::shared_ptr<RlBrain> make_orca_brain(std::uint64_t seed = 13);

class Orca final : public CongestionControl {
 public:
  Orca(OrcaParams params, std::shared_ptr<RlBrain> brain);

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cubic_.cwnd_bytes(); }
  std::string name() const override { return "orca"; }
  std::int64_t memory_bytes() const override {
    return brain_->agent.memory_bytes() + 2048;
  }

  double episode_reward() const { return episode_reward_; }
  int episode_steps() const { return episode_steps_; }

 private:
  void maybe_decide(SimTime now);
  Vector build_state(const MiReport& r);

  OrcaParams params_;
  std::shared_ptr<RlBrain> brain_;
  Rng sample_rng_{0x02CA5EED};
  Cubic cubic_;
  MiCollector collector_;
  RingBuffer<Vector> history_;
  SimTime next_decision_ = 0;
  SimDuration srtt_ = 0;
  double x_max_bps_ = mbps(1);
  double d_min_s_ = 0;
  RateBps current_rate_bps_ = 0;
  double episode_reward_ = 0;
  int episode_steps_ = 0;
};

}  // namespace libra
