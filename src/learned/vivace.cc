#include "learned/vivace.h"

#include <algorithm>
#include <cmath>

namespace libra {

namespace {
constexpr SimDuration kMinMi = msec(10);
constexpr SimDuration kMaxMi = msec(300);
}  // namespace

std::unique_ptr<Vivace> make_proteus() {
  return std::make_unique<Vivace>(proteus_params());
}

Vivace::Vivace(VivaceParams params)
    : params_(std::move(params)), rate_(params_.initial_rate) {
  params_.utility.validate();
}

RateBps Vivace::pacing_rate() const {
  switch (phase_) {
    case Phase::kProbeUp: return rate_ * (1.0 + params_.epsilon);
    case Phase::kProbeDown: return rate_ * (1.0 - params_.epsilon);
    default: return rate_;
  }
}

std::int64_t Vivace::cwnd_bytes() const {
  if (srtt_ <= 0) return kInfiniteCwnd;
  auto bdp = static_cast<std::int64_t>(pacing_rate() / 8.0 * to_seconds(srtt_));
  return std::max<std::int64_t>(2 * bdp, 4 * kDefaultPacketBytes);
}

SimDuration Vivace::mi_length() const {
  SimDuration rtt = srtt_ > 0 ? srtt_ : msec(50);
  SimDuration five_packets = transmission_time(5 * kDefaultPacketBytes,
                                               std::max(rate_, params_.min_rate));
  return std::clamp(std::max(rtt, five_packets), kMinMi, kMaxMi);
}

void Vivace::on_packet_sent(const SendEvent&) {}

void Vivace::on_ack(const AckEvent& ack) {
  srtt_ = srtt_ == 0 ? ack.rtt : srtt_ + (ack.rtt - srtt_) / 8;
  for (Mi& mi : pending_) mi.window.on_ack(ack);
  roll_mi(ack.now);
  process_mature(ack.now);
}

void Vivace::on_loss(const LossEvent& loss) {
  for (Mi& mi : pending_) mi.window.on_loss(loss);
}

void Vivace::on_tick(SimTime now) {
  roll_mi(now);
  process_mature(now);
}

void Vivace::roll_mi(SimTime now) {
  if (mi_end_ != 0 && now < mi_end_) return;

  // Advance the sending schedule based on what the MI that just ended
  // carried: each probe phase lasts exactly one MI. Decisions set phase_ to
  // kProbeUp asynchronously; that assignment must survive until an MI has
  // actually been sent under it, hence the dispatch on last_tag_.
  if (mi_end_ != 0) {
    if (last_tag_ == MiTag::kProbeUp) {
      phase_ = Phase::kProbeDown;
    } else if (last_tag_ == MiTag::kProbeDown) {
      phase_ = Phase::kWait;
    }
  }

  SimDuration len = mi_length();
  MiTag tag = MiTag::kNeutral;
  switch (phase_) {
    case Phase::kStarting: tag = MiTag::kStarting; break;
    case Phase::kProbeUp: tag = MiTag::kProbeUp; break;
    case Phase::kProbeDown: tag = MiTag::kProbeDown; break;
    case Phase::kWait: tag = MiTag::kNeutral; break;
  }
  pending_.push_back({StatsWindow(now, now + len, pacing_rate()), tag});
  last_tag_ = tag;
  mi_end_ = now + len;

  // Bound memory if feedback stalls entirely.
  while (pending_.size() > 32) pending_.pop_front();
}

double Vivace::window_utility(const StatsWindow& w) const {
  // PCC computes utility on the sender's applied rate; loss and RTT gradient
  // come from the window's own (send-time-attributed) feedback, with the
  // latency-noise filter of the reference implementation.
  return utility(params_.utility, w.applied_rate() / 1e6,
                 w.filtered_rtt_gradient(), w.loss_rate());
}

void Vivace::decide_from_probes(double u_up, double u_down,
                                double rate_probed_mbps) {
  double denom = 2.0 * params_.epsilon * rate_probed_mbps;
  double gradient = denom > 1e-9 ? (u_up - u_down) / denom : 0.0;

  double sign = gradient > 0 ? 1.0 : (gradient < 0 ? -1.0 : 0.0);
  if (sign != 0 && sign == last_step_sign_) {
    confidence_ = std::min(confidence_ + 1, params_.confidence_limit);
  } else {
    confidence_ = 1;
  }
  last_step_sign_ = sign;

  // Vivace's dynamic change boundary: the allowed per-round rate change
  // grows while the gradient keeps its sign (confidence amplifier), capped at
  // max_step_fraction of the current rate.
  double step_mbps = params_.theta0 * confidence_ * gradient;
  double bound_fraction = std::min(0.05 * confidence_, params_.max_step_fraction);
  double bound = bound_fraction * rate_probed_mbps;
  step_mbps = std::clamp(step_mbps, -bound, bound);
  rate_ = std::clamp(rate_ + step_mbps * 1e6, params_.min_rate, params_.max_rate);
  phase_ = Phase::kProbeUp;  // immediately start the next probe round
}

void Vivace::process_mature(SimTime now) {
  // A window is mature when its feedback has had a full RTT to return.
  SimDuration grace = srtt_ > 0 ? srtt_ : msec(50);
  while (!pending_.empty()) {
    Mi& front = pending_.front();
    if (now < front.window.send_end() + grace) break;

    switch (front.tag) {
      case MiTag::kNeutral:
        pending_.pop_front();
        break;

      case MiTag::kStarting: {
        // Only the first window sent at each doubling level is informative;
        // later windows at the same rate would compare the rate to itself.
        double applied = front.window.applied_rate();
        if (front.window.acks() < 2 || applied <= last_start_rate_evaluated_) {
          pending_.pop_front();
          break;
        }
        double u = window_utility(front.window);
        pending_.pop_front();
        if (phase_ != Phase::kStarting) break;  // already exited startup
        last_start_rate_evaluated_ = applied;
        if (!have_prev_start_utility_ || u > prev_start_utility_) {
          prev_start_utility_ = u;
          have_prev_start_utility_ = true;
          if (rate_ >= params_.max_rate) {
            phase_ = Phase::kProbeUp;  // nothing left to double into
          } else {
            rate_ = std::min(rate_ * 2.0, params_.max_rate);
            record_cca_event(now, 2, rate_, u);  // code 2: startup doubling
          }
        } else {
          rate_ = std::max(rate_ / 2.0, params_.min_rate);
          phase_ = Phase::kProbeUp;
          record_cca_event(now, 3, rate_, u);  // code 3: startup exit (halve)
        }
        break;
      }

      case MiTag::kProbeUp: {
        // Find the matching down-probe; both must be mature to decide.
        if (pending_.size() < 2) return;
        Mi& down = pending_[1];
        if (down.tag != MiTag::kProbeDown) {  // desynchronized: discard
          pending_.pop_front();
          break;
        }
        if (now < down.window.send_end() + grace) return;
        if (front.window.acks() >= 2 && down.window.acks() >= 2) {
          double u_up = window_utility(front.window);
          double u_down = window_utility(down.window);
          decide_from_probes(u_up, u_down, rate_ / 1e6);
          // Code 1: gradient step decided — new rate and confidence streak.
          record_cca_event(now, 1, rate_, static_cast<double>(confidence_));
        } else {
          phase_ = Phase::kProbeUp;  // retry the probe round
        }
        pending_.pop_front();
        pending_.pop_front();
        break;
      }

      case MiTag::kProbeDown:
        // Orphaned down-probe (its pair was dropped): discard.
        pending_.pop_front();
        break;
    }
  }
}

}  // namespace libra
