// Indigo-style congestion control (Yan et al., ATC 2018). Indigo imitates an
// oracle that keeps cwnd at the bandwidth-delay product; we substitute the
// trained LSTM with the oracle target itself, tracked conservatively (a
// fraction below the measured BDP). This reproduces Indigo's signature in
// the paper's Tab. 5: fast, very stable convergence at an under-utilized
// equilibrium.
#pragma once

#include <algorithm>

#include "sim/congestion_control.h"
#include "util/ewma.h"

namespace libra {

struct IndigoParams {
  std::int64_t mss = kDefaultPacketBytes;
  double target_fraction = 0.85;  // of the measured BDP
  double smoothing = 0.1;
};

class Indigo final : public CongestionControl {
 public:
  explicit Indigo(IndigoParams params = {})
      : params_(params), cwnd_(10 * params.mss), bw_est_(params.smoothing) {}

  void on_ack(const AckEvent& ack) override {
    if (ack.delivery_rate > 0) bw_est_.update(ack.delivery_rate);
    // While the path shows no queueing, the capacity has not been found yet:
    // keep ramping (the delivery-rate estimate only reflects our own sending
    // rate until the bottleneck saturates, so it cannot be trusted alone).
    bool queue_empty = ack.min_rtt > 0 &&
                       ack.rtt < ack.min_rtt + ack.min_rtt / 8;
    if (!bw_est_.initialized() || ack.min_rtt <= 0 || queue_empty) {
      cwnd_ += params_.mss;
      return;
    }
    double bdp = bw_est_.value() / 8.0 * to_seconds(ack.min_rtt);
    auto target = static_cast<std::int64_t>(params_.target_fraction * bdp);
    target = std::max<std::int64_t>(target, 4 * params_.mss);
    // Move a quarter of the gap per ACK: smooth, oscillation-free tracking of
    // the (slightly under-utilizing) oracle target. A small unconditional
    // probe prevents the self-referential starvation spiral when competing
    // flows keep the queue full (the BDP estimate only sees our own share).
    cwnd_ += (target - cwnd_) / 4 + params_.mss / 8;
    cwnd_ = std::max<std::int64_t>(cwnd_, 2 * params_.mss);
  }

  void on_loss(const LossEvent& loss) override {
    if (loss.from_timeout) {
      cwnd_ = std::max<std::int64_t>(cwnd_ / 2, 2 * params_.mss);
    } else {
      // Gentle backoff: the probe's overflow losses must not accumulate.
      cwnd_ = std::max<std::int64_t>(cwnd_ - params_.mss, 2 * params_.mss);
    }
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "indigo"; }
  std::int64_t memory_bytes() const override {
    // Stands in for Indigo's LSTM parameter block.
    return 1 << 20;
  }

 private:
  IndigoParams params_;
  std::int64_t cwnd_;
  Ewma bw_est_;
};

}  // namespace libra
