// Monitor-interval (MI) statistics collector.
//
// Rate-based and learned CCAs act once per MI rather than per ACK. The
// collector aggregates everything the paper's nine state candidates (Tab. 1)
// and the utility/reward functions need: throughput, RTT statistics, the RTT
// gradient (least-squares slope of RTT over time), loss rate, delivery rate,
// and the inter-send / inter-ACK gap EWMAs.
#pragma once

#include <vector>

#include "rl/matrix_simd.h"
#include "rl/simd.h"
#include "sim/congestion_control.h"
#include "util/ewma.h"

namespace libra {

struct MiReport {
  SimTime start = 0;
  SimTime end = 0;
  int sends = 0;
  int acks = 0;
  int losses = 0;
  double throughput_bps = 0;     // acked bytes over the MI
  double avg_rtt_s = 0;
  double last_rtt_s = 0;
  double min_rtt_s = 0;          // flow-lifetime minimum
  double rtt_gradient = 0;       // d(RTT)/dt, dimensionless
  double loss_rate = 0;          // losses / (acks + losses)
  double avg_delivery_bps = 0;   // mean of per-ACK delivery-rate samples
  double ack_gap_ewma_s = 0;     // state candidate (i)
  double send_gap_ewma_s = 0;    // state candidate (ii)
  double sent_acked_ratio = 0;   // state candidate (v)

  SimDuration duration() const { return end - start; }
};

class MiCollector {
 public:
  void on_send(const SendEvent& ev) {
    if (last_send_time_ > 0)
      send_gap_ewma_.update(to_seconds(ev.now - last_send_time_));
    last_send_time_ = ev.now;
    ++sends_;
  }

  void on_ack(const AckEvent& ev) {
    if (last_ack_time_ > 0)
      ack_gap_ewma_.update(to_seconds(ev.now - last_ack_time_));
    last_ack_time_ = ev.now;
    ++acks_;
    acked_bytes_ += ev.acked_bytes;
    rtt_sum_s_ += to_seconds(ev.rtt);
    last_rtt_s_ = to_seconds(ev.rtt);
    min_rtt_s_ = to_seconds(ev.min_rtt);
    if (ev.delivery_rate > 0) {
      delivery_sum_ += ev.delivery_rate;
      ++delivery_samples_;
    }
    rtt_samples_.push_back({to_seconds(ev.now), to_seconds(ev.rtt)});
  }

  void on_loss(const LossEvent&) { ++losses_; }

  bool has_acks() const { return acks_ > 0; }

  /// Closes the current MI at `now` and resets per-MI accumulators. Gap EWMAs
  /// and last-RTT carry across intervals (they are long-running state).
  MiReport finish(SimTime now) {
    MiReport r;
    r.start = mi_start_;
    r.end = now;
    r.sends = sends_;
    r.acks = acks_;
    r.losses = losses_;
    SimDuration d = now - mi_start_;
    r.throughput_bps = d > 0 ? static_cast<double>(acked_bytes_) * 8.0 / to_seconds(d) : 0;
    r.avg_rtt_s = acks_ > 0 ? rtt_sum_s_ / acks_ : last_rtt_s_;
    r.last_rtt_s = last_rtt_s_;
    r.min_rtt_s = min_rtt_s_;
    r.rtt_gradient = rtt_slope();
    r.loss_rate = (acks_ + losses_) > 0
                      ? static_cast<double>(losses_) / static_cast<double>(acks_ + losses_)
                      : 0;
    r.avg_delivery_bps = delivery_samples_ > 0 ? delivery_sum_ / delivery_samples_ : 0;
    r.ack_gap_ewma_s = ack_gap_ewma_.value();
    r.send_gap_ewma_s = send_gap_ewma_.value();
    r.sent_acked_ratio = acks_ > 0 ? static_cast<double>(sends_) / acks_ : 1.0;

    mi_start_ = now;
    sends_ = acks_ = losses_ = 0;
    acked_bytes_ = 0;
    rtt_sum_s_ = 0;
    delivery_sum_ = 0;
    delivery_samples_ = 0;
    rtt_samples_.clear();
    return r;
  }

 private:
  /// Least-squares slope of (time, RTT); both in seconds, so dimensionless.
  double rtt_slope() const {
    std::size_t n = rtt_samples_.size();
    if (n < 2) return 0.0;
    if (simd::use_avx2()) {
      static_assert(sizeof(RttSample) == 2 * sizeof(double));
      return simd::ls_slope_avx2(&rtt_samples_.front().t, n);
    }
    double mt = 0, mr = 0;
    for (auto& s : rtt_samples_) { mt += s.t; mr += s.rtt; }
    mt /= static_cast<double>(n);
    mr /= static_cast<double>(n);
    double num = 0, den = 0;
    for (auto& s : rtt_samples_) {
      num += (s.t - mt) * (s.rtt - mr);
      den += (s.t - mt) * (s.t - mt);
    }
    return den > 1e-12 ? num / den : 0.0;
  }

  struct RttSample { double t; double rtt; };

  SimTime mi_start_ = 0;
  int sends_ = 0, acks_ = 0, losses_ = 0;
  std::int64_t acked_bytes_ = 0;
  double rtt_sum_s_ = 0, last_rtt_s_ = 0, min_rtt_s_ = 0;
  double delivery_sum_ = 0;
  int delivery_samples_ = 0;
  SimTime last_send_time_ = 0, last_ack_time_ = 0;
  Ewma ack_gap_ewma_{0.25};
  Ewma send_gap_ewma_{0.25};
  std::vector<RttSample> rtt_samples_;
};

}  // namespace libra
