// Aurora (Jay et al., ICML 2019) as a chassis configuration: MI-based deep-RL
// rate control with state {latency gradient, latency ratio, send/ack ratio}
// stacked over a 10-step history, Aurora's (1 +/- delta*a) MIMD action map,
// and an absolute (non-delta) reward.
#pragma once

#include <memory>

#include "learned/rl_cca.h"

namespace libra {

inline RlCcaConfig aurora_config() {
  RlCcaConfig cfg;
  cfg.features = {StateFeature::kRttGradient, StateFeature::kRttRatio,
                  StateFeature::kSentAckedRatio};
  cfg.history = 10;
  cfg.action_mode = ActionMode::kMimdAurora;
  cfg.action_scale = 4.0;  // Aurora's effective per-MI adjustment band
  cfg.aurora_delta = 0.025;
  cfg.reward_mode = RewardMode::kAbsolute;
  // Aurora's +/-2.5%-per-MI action map needs dozens of consistent up-steps to
  // ramp; starting mid-band keeps the (budget-constrained) training tractable.
  cfg.initial_rate = mbps(10);
  cfg.stochastic_inference = true;  // deployed Aurora keeps sampling its policy
  cfg.name = "aurora";
  return cfg;
}

inline std::shared_ptr<RlBrain> make_aurora_brain(std::uint64_t seed = 11) {
  RlCcaConfig cfg = aurora_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed),
                                   feature_frame_size(cfg.features));
}

inline std::unique_ptr<RlCca> make_aurora(std::shared_ptr<RlBrain> brain,
                                          bool training = true) {
  RlCcaConfig cfg = aurora_config();
  cfg.training = training;
  return std::make_unique<RlCca>(cfg, std::move(brain));
}

}  // namespace libra
