// Libra's optimized RL component (Sec. 4.2 / Alg. 2): state space
// (iv)(vii)(viii)(ix) found by the paper's search, MIMD x*2^a action,
// delta-reward with the loss term, PPO. Also the "Modified RL" benchmark —
// the same agent rewarded directly with Eq. 1's utility — used to show that
// the utility function alone does not buy convergence or fairness.
#pragma once

#include <memory>

#include "learned/rl_cca.h"

namespace libra {

inline RlCcaConfig libra_rl_config() {
  RlCcaConfig cfg;  // defaults are already the paper's optimized formulation
  cfg.name = "libra-rl";
  return cfg;
}

inline std::shared_ptr<RlBrain> make_libra_rl_brain(std::uint64_t seed = 17) {
  RlCcaConfig cfg = libra_rl_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed),
                                   feature_frame_size(cfg.features));
}

inline std::unique_ptr<RlCca> make_libra_rl(std::shared_ptr<RlBrain> brain,
                                            bool training = true) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = training;
  return std::make_unique<RlCca>(cfg, std::move(brain));
}

inline RlCcaConfig modified_rl_config() {
  RlCcaConfig cfg = libra_rl_config();
  cfg.reward_is_eq1_utility = true;
  cfg.reward_mode = RewardMode::kAbsolute;
  cfg.name = "modified-rl";
  return cfg;
}

inline std::unique_ptr<RlCca> make_modified_rl(std::shared_ptr<RlBrain> brain,
                                               bool training = true) {
  RlCcaConfig cfg = modified_rl_config();
  cfg.training = training;
  return std::make_unique<RlCca>(cfg, std::move(brain));
}

}  // namespace libra
