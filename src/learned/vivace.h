// PCC Vivace (Dong et al., NSDI 2018): online gradient-ascent congestion
// control. Each control round probes rate*(1+eps) and rate*(1-eps) for one
// monitor interval (MI) each, waits for the *send-time-attributed* feedback
// of those MIs (PCC's monitor module semantics — a probe's losses are charged
// to the probe that caused them, not to whichever interval the ACKs happen to
// arrive in), estimates the utility gradient and moves the rate with a
// confidence-amplified, boundary-clamped step.
//
// PCC Proteus is instantiated as a parameter variant (latency-averse utility,
// gentler probing) via make_proteus().
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "sim/congestion_control.h"
#include "sim/stats_window.h"
#include "stats/utility_fn.h"

namespace libra {

struct VivaceParams {
  UtilityParams utility;
  double epsilon = 0.05;            // probe amplitude
  double theta0 = 1.0;              // base step size (Mbps per unit gradient)
  double max_step_fraction = 0.2;   // per-round rate-change bound
  int confidence_limit = 6;
  RateBps initial_rate = mbps(2.0);
  RateBps min_rate = kbps(100);
  RateBps max_rate = mbps(400);
  std::string name = "vivace";
};

class Vivace : public CongestionControl {
 public:
  explicit Vivace(VivaceParams params = {});

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  RateBps pacing_rate() const override;
  std::int64_t cwnd_bytes() const override;
  std::string name() const override { return params_.name; }

  RateBps base_rate() const { return rate_; }
  bool in_startup() const { return phase_ == Phase::kStarting; }

 private:
  enum class Phase { kStarting, kProbeUp, kProbeDown, kWait };
  enum class MiTag { kStarting, kProbeUp, kProbeDown, kNeutral };

  struct Mi {
    StatsWindow window;
    MiTag tag;
  };

  void roll_mi(SimTime now);
  void process_mature(SimTime now);
  void decide_from_probes(double u_up, double u_down, double rate_probed_mbps);
  double window_utility(const StatsWindow& w) const;
  SimDuration mi_length() const;

  VivaceParams params_;
  Phase phase_ = Phase::kStarting;
  MiTag last_tag_ = MiTag::kNeutral;
  RateBps rate_;
  SimTime mi_end_ = 0;
  SimDuration srtt_ = 0;
  std::deque<Mi> pending_;

  double prev_start_utility_ = 0;
  bool have_prev_start_utility_ = false;
  RateBps last_start_rate_evaluated_ = 0;
  int confidence_ = 1;
  double last_step_sign_ = 0;
};

/// PCC Proteus (primary mode) as evaluated in the paper: the same online-
/// learning engine with a more latency-averse utility and gentler probing,
/// which reproduces its slower re-convergence after capacity shifts.
inline VivaceParams proteus_params() {
  VivaceParams p;
  p.utility.beta = 1800.0;
  p.epsilon = 0.03;
  p.theta0 = 0.5;
  p.max_step_fraction = 0.1;
  p.name = "proteus";
  return p;
}

std::unique_ptr<Vivace> make_proteus();

}  // namespace libra
