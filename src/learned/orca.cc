#include "learned/orca.h"

#include <algorithm>
#include <cmath>

namespace libra {

namespace {
constexpr std::size_t kOrcaHistory = 8;
constexpr double kW1 = 1.0, kW2 = 0.5, kW3 = 10.0;
}  // namespace

std::vector<StateFeature> orca_state_space() {
  return {StateFeature::kSendGapEwma, StateFeature::kSendRate,
          StateFeature::kRttAndMinRtt, StateFeature::kLossRate,
          StateFeature::kDeliveryRate};
}

std::shared_ptr<RlBrain> make_orca_brain(std::uint64_t seed) {
  PpoConfig ppo;
  ppo.state_dim = feature_frame_size(orca_state_space()) * kOrcaHistory;
  ppo.seed = seed;
  return std::make_shared<RlBrain>(ppo, feature_frame_size(orca_state_space()));
}

Orca::Orca(OrcaParams params, std::shared_ptr<RlBrain> brain)
    : params_(params), brain_(std::move(brain)), sample_rng_(params.sampling_seed),
      cubic_(CubicParams{.mss = params.mss}), history_(kOrcaHistory) {
  if (!brain_) throw std::invalid_argument("Orca: brain required");
}

void Orca::on_packet_sent(const SendEvent& ev) {
  collector_.on_send(ev);
  cubic_.on_packet_sent(ev);
}

void Orca::on_ack(const AckEvent& ack) {
  collector_.on_ack(ack);
  cubic_.on_ack(ack);
  if (ack.rtt > 0) {
    srtt_ = srtt_ == 0 ? ack.rtt : srtt_ + (ack.rtt - srtt_) / 8;
    current_rate_bps_ = static_cast<double>(cubic_.cwnd_bytes()) * 8.0 /
                        to_seconds(ack.rtt);
  }
  maybe_decide(ack.now);
}

void Orca::on_loss(const LossEvent& loss) {
  collector_.on_loss(loss);
  cubic_.on_loss(loss);
}

void Orca::on_tick(SimTime now) { maybe_decide(now); }

Vector Orca::build_state(const MiReport& r) {
  Vector frame;
  for (StateFeature feat : orca_state_space()) {
    switch (feat) {
      case StateFeature::kSendGapEwma: frame.push_back(r.send_gap_ewma_s * 1e3); break;
      case StateFeature::kSendRate: frame.push_back(to_mbps(current_rate_bps_)); break;
      case StateFeature::kRttAndMinRtt:
        frame.push_back(r.last_rtt_s * 1e3);
        frame.push_back(r.min_rtt_s * 1e3);
        break;
      case StateFeature::kLossRate: frame.push_back(r.loss_rate); break;
      case StateFeature::kDeliveryRate: frame.push_back(to_mbps(r.avg_delivery_bps)); break;
      default: break;
    }
  }
  // Frozen deployed policies keep their offline normalizer statistics (and
  // concurrent inference runs must not write to the shared brain).
  if (params_.training) brain_->normalizer.update(frame);
  history_.push(brain_->normalizer.normalize(frame));

  std::size_t frame_dim = feature_frame_size(orca_state_space());
  Vector state(frame_dim * kOrcaHistory, 0.0);
  std::size_t pad = kOrcaHistory - history_.size();
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const Vector& f = history_.at(i);
    std::copy(f.begin(), f.end(),
              state.begin() + static_cast<std::ptrdiff_t>((pad + i) * frame_dim));
  }
  return state;
}

void Orca::maybe_decide(SimTime now) {
  SimDuration period = std::max(params_.decision_period, srtt_);
  if (next_decision_ == 0) {
    next_decision_ = now + period;
    return;
  }
  if (now < next_decision_) return;
  next_decision_ = now + period;

  if (!collector_.has_acks()) {
    collector_.finish(now);
    return;
  }
  MiReport report = collector_.finish(now);

  // Orca's absolute reward: normalized throughput minus delay and loss terms.
  x_max_bps_ = std::max(x_max_bps_, report.throughput_bps);
  if (report.min_rtt_s > 0 && (d_min_s_ == 0 || report.min_rtt_s < d_min_s_))
    d_min_s_ = report.min_rtt_s;
  double d_norm = (d_min_s_ > 0 && report.avg_rtt_s > 0)
                      ? report.avg_rtt_s / d_min_s_ : 1.0;
  // Fixed throughput scale: an absolute reward normalized by the agent's own
  // running max would make any constant rate look optimal.
  double reward = kW1 * report.throughput_bps / mbps(100) -
                  kW2 * (d_norm - 1.0) - kW3 * report.loss_rate;
  episode_reward_ += reward;
  ++episode_steps_;
  if (params_.training) brain_->agent.give_reward(reward);

  Vector state = build_state(report);
  double a;
  if (params_.training) {
    a = brain_->agent.act(state);
  } else if (params_.stochastic_inference) {
    // Same draw distribution as PpoAgent::act_sampled, private RNG stream
    // (keeps parallel runs race-free and individually deterministic).
    a = brain_->agent.act_greedy(state) +
        brain_->agent.exploration_stddev() * sample_rng_.normal();
  } else {
    a = brain_->agent.act_greedy(state);
  }
  a = std::clamp(a, -params_.action_scale, params_.action_scale);

  // Apply cwnd' = cwnd * 2^a and let CUBIC continue from the new value.
  auto cwnd = static_cast<std::int64_t>(
      static_cast<double>(cubic_.cwnd_bytes()) * std::exp2(a));
  cubic_.set_cwnd_bytes(std::min(cwnd, params_.max_cwnd_bytes));
}

}  // namespace libra
