// RemyCC-style rule-table congestion control (Winstein & Balakrishnan,
// SIGCOMM 2013). Remy's tables are produced by a large offline optimizer we
// do not reproduce; instead we ship a compact hand-constructed table with
// the same *shape* — state = (inter-ACK EWMA, inter-send EWMA, RTT ratio),
// action = (window multiple m, window increment b, minimum send interval) —
// tuned for a mid-range design span. As in the paper's evaluation, behaviour
// degrades when conditions leave that span (DESIGN.md, substitutions).
#pragma once

#include <vector>

#include "learned/monitor.h"
#include "sim/congestion_control.h"

namespace libra {

struct RemyRule {
  // Match bounds on the state (upper bounds; rules checked in order).
  double max_rtt_ratio;
  double max_ack_gap_ms;
  // Action.
  double window_multiple;
  double window_increment_pkts;
  double min_send_interval_ms;
};

class Remy final : public CongestionControl {
 public:
  explicit Remy(std::int64_t mss = kDefaultPacketBytes)
      : mss_(mss), cwnd_(4 * mss) {}

  void on_packet_sent(const SendEvent& ev) override { collector_.on_send(ev); }

  void on_ack(const AckEvent& ack) override {
    collector_.on_ack(ack);
    srtt_ = srtt_ == 0 ? ack.rtt : srtt_ + (ack.rtt - srtt_) / 8;
    // Remy acts on every ACK using its memory of gap EWMAs and RTT ratio.
    if (ack.now < next_action_) return;
    next_action_ = ack.now + srtt_ / 2;

    MiReport probe = snapshot();
    double rtt_ratio = ack.min_rtt > 0
                           ? static_cast<double>(ack.rtt) /
                                 static_cast<double>(ack.min_rtt)
                           : 1.0;
    const RemyRule& rule = match(rtt_ratio, probe.ack_gap_ewma_s * 1e3);
    double next = rule.window_multiple *
                      (static_cast<double>(cwnd_) / static_cast<double>(mss_)) +
                  rule.window_increment_pkts;
    cwnd_ = std::max<std::int64_t>(
        static_cast<std::int64_t>(next * static_cast<double>(mss_)), 2 * mss_);
    min_interval_ = seconds(rule.min_send_interval_ms / 1e3);
  }

  void on_loss(const LossEvent&) override {
    // RemyCC has no explicit loss rule; losses surface through the ACK gaps.
  }

  RateBps pacing_rate() const override {
    if (min_interval_ <= 0) return 0;
    return static_cast<double>(mss_) * 8.0 / to_seconds(min_interval_);
  }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "remy"; }

 private:
  /// The gap EWMAs live in the collector; peek without closing an MI.
  MiReport snapshot() {
    MiCollector copy = collector_;
    return copy.finish(0);
  }

  const RemyRule& match(double rtt_ratio, double ack_gap_ms) const {
    static const std::vector<RemyRule> kTable = {
        // Queue empty, dense ACKs: ramp hard.
        {1.05, 5.0, 1.00, 2.0, 0.0},
        {1.05, 1e9, 1.00, 1.0, 0.0},
        // Mild queue: probe gently.
        {1.30, 5.0, 1.00, 0.5, 0.5},
        {1.30, 1e9, 0.98, 0.5, 1.0},
        // Standing queue: back off.
        {1.80, 1e9, 0.85, 0.0, 2.0},
        // Heavy congestion: collapse.
        {1e9, 1e9, 0.60, 0.0, 4.0},
    };
    for (const RemyRule& r : kTable) {
      if (rtt_ratio <= r.max_rtt_ratio && ack_gap_ms <= r.max_ack_gap_ms) return r;
    }
    return kTable.back();
  }

  std::int64_t mss_;
  std::int64_t cwnd_;
  SimDuration srtt_ = 0;
  SimTime next_action_ = 0;
  SimDuration min_interval_ = 0;
  MiCollector collector_;
};

}  // namespace libra
