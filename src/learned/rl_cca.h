// Configurable RL congestion-control chassis.
//
// One class implements every RL-formulation variant studied in Sec. 4.2 of
// the paper: the nine state candidates of Tab. 1 (selectable per instance),
// AIAD vs the two MIMD action modes with a scale knob (Fig. 6), reward with
// or without the loss term (Tab. 3), and absolute-r vs delta-r rewards
// (Tab. 4). Libra's optimized RL component, Aurora, and "Modified RL" are all
// chassis configurations; Orca layers the same brain over CUBIC.
//
// The PPO agent and state normalizer live in a shared RlBrain so that one
// trained policy can drive many flows/episodes (training persists across
// simulator instances).
#pragma once

#include <memory>

#include "learned/monitor.h"
#include "rl/normalizer.h"
#include "rl/ppo.h"
#include "sim/congestion_control.h"
#include "util/ring_buffer.h"

namespace libra {

/// The nine state candidates of Tab. 1 (indices match the paper).
enum class StateFeature {
  kAckGapEwma,       // (i)   EWMA of inter-ACK gap
  kSendGapEwma,      // (ii)  EWMA of inter-send gap
  kRttRatio,         // (iii) latest RTT / min RTT
  kSendRate,         // (iv)  current sending rate
  kSentAckedRatio,   // (v)   packets sent / acked in the MI
  kRttAndMinRtt,     // (vi)  current RTT and min RTT (two scalars)
  kLossRate,         // (vii) average loss rate
  kRttGradient,      // (viii) d(RTT)/dt
  kDeliveryRate,     // (ix)  average delivery rate
};

/// Libra's optimized state space: (iv), (vii), (viii), (ix) — the best
/// combination found by the paper's simulated-annealing search (Tab. 2).
std::vector<StateFeature> libra_state_space();
/// The search baseline: (iv), (vi), (vii), (viii), (ix).
std::vector<StateFeature> baseline_state_space();

enum class ActionMode {
  kAiad,        // x += a                      (RL-TCP, DRL-CC)
  kMimdAurora,  // x *= (1 + delta*a) / divide (Aurora)
  kMimdOrca,    // x *= 2^a                    (Orca; Libra uses this)
};

enum class RewardMode {
  kAbsolute,  // R_t = r_t        (Aurora, Orca)
  kDelta,     // R_t = r_t - r_{t-1}  (Libra, RL-TCP)
};

struct RlCcaConfig {
  std::vector<StateFeature> features = libra_state_space();
  std::size_t history = 8;          // h stacked feature frames
  ActionMode action_mode = ActionMode::kMimdOrca;
  double action_scale = 2.0;        // a in [-scale, scale]
  double aurora_delta = 0.025;      // Aurora's step-scaling factor
  double aiad_step = mbps(1);       // rate change per unit action in AIAD
  RewardMode reward_mode = RewardMode::kDelta;
  bool reward_includes_loss = true; // Tab. 3 ablation
  double w1 = 1.0, w2 = 0.5, w3 = 10.0;  // reward weights (Alg. 2)
  /// "Modified RL" benchmark: replace the reward with Libra's Eq. 1 utility
  /// computed on the MI statistics (shows Eq. 1 alone does not grant
  /// convergence/fairness — Remark 6).
  bool reward_is_eq1_utility = false;
  SimDuration mi_duration = 0;      // 0 => one smoothed RTT per MI
  SimDuration min_mi = msec(10);
  RateBps initial_rate = mbps(2.5);
  RateBps min_rate = kbps(80);
  RateBps max_rate = mbps(400);
  bool training = true;             // sample actions + learn; false = inference
  /// Inference-mode behaviour: sample the stochastic policy (how DRL CCAs
  /// actually deploy — source of the variability Fig. 2b studies) instead of
  /// taking the mean action.
  bool stochastic_inference = false;
  /// Seed for this instance's private inference-sampling stream (kept off the
  /// shared brain so parallel runs never contend on one RNG).
  std::uint64_t sampling_seed = 0xCCA5EED;
  /// When true the chassis never closes MIs on its own; a wrapping controller
  /// (Libra) drives decisions via external_begin()/external_decide().
  bool external_control = false;
  std::string name = "rl";
};

/// Long-lived learning state shared across flows/episodes. The normalizer is
/// per-feature-frame (the same statistics apply to every stacked frame).
struct RlBrain {
  RlBrain(PpoConfig ppo_config, std::size_t frame_dim)
      : agent(std::move(ppo_config)), normalizer(frame_dim) {}
  PpoAgent agent;
  RunningNormalizer normalizer;
};

/// Batched greedy inference over a shared brain: normalizes raw state frames
/// and runs them through the actor as one matrix per layer, chunked at
/// `max_batch`. Bitwise identical to per-state act_greedy, but each weight
/// matrix is traversed once per chunk instead of once per state — the win the
/// paper's 512-unit-wide deployments need (a 512x512 layer is 2 MB, so the
/// per-state path is memory-bound on weight streaming).
///
/// Read-only with respect to the brain; one instance per thread (the
/// workspace is mutable scratch).
class BatchedPolicyEval {
 public:
  BatchedPolicyEval(std::shared_ptr<const RlBrain> brain,
                    std::size_t max_batch = 256);

  /// Greedy policy means for `raw_states` (raw, un-normalized frames of the
  /// brain's state_dim), written to `out` (resized to match). States beyond
  /// max_batch are processed in max_batch-sized chunks.
  void evaluate(const std::vector<Vector>& raw_states, Vector& out);

  std::size_t max_batch() const { return max_batch_; }

 private:
  std::shared_ptr<const RlBrain> brain_;
  std::size_t max_batch_;
  MlpWorkspace ws_;
  Vector chunk_out_;
  Vector frame_scratch_;
};

/// Persists a brain (policy + normalizer) to `path`; parent dir must exist.
void save_brain(const RlBrain& brain, const std::string& path);
/// Restores a brain saved by save_brain; returns false if the file is absent.
/// Throws on dimensionality mismatch (stale cache for a changed config).
bool load_brain(RlBrain& brain, const std::string& path);

/// Number of scalars contributed by one frame of the given feature set.
std::size_t feature_frame_size(const std::vector<StateFeature>& features);

/// Builds a PPO config whose state_dim matches `cfg`'s features x history.
PpoConfig make_ppo_config(const RlCcaConfig& cfg, std::uint64_t seed = 7,
                          std::vector<std::size_t> hidden = {64, 64});

class RlCca : public CongestionControl {
 public:
  RlCca(RlCcaConfig config, std::shared_ptr<RlBrain> brain);

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  RateBps pacing_rate() const override { return rate_; }
  std::int64_t cwnd_bytes() const override;
  std::string name() const override { return config_.name; }
  std::int64_t memory_bytes() const override {
    return brain_->agent.memory_bytes() + 1024;
  }

  /// External rate override (used by the Libra controller, which feeds the
  /// backup RL decision but applies its own base rate).
  void force_rate(RateBps rate);
  RateBps current_rate() const { return rate_; }

  /// External-control mode (Libra, Alg. 1): opens a measurement interval at
  /// the start of the exploration stage with the cycle's base rate.
  void external_begin(SimTime now, RateBps base_rate);
  /// Closes the interval, learns from it, and returns the agent's backup rate
  /// decision x_rl (base * 2^a). If no ACKs arrived during the interval the
  /// previous decision is held (Sec. 3).
  RateBps external_decide(SimTime now);

  /// Cumulative reward and MI count since the last reset (episode metrics).
  double episode_reward() const { return episode_reward_; }
  int episode_steps() const { return episode_steps_; }
  void reset_episode_metrics() { episode_reward_ = 0; episode_steps_ = 0; }

  /// Marks an episode boundary for GAE on the next MI close.
  void mark_episode_end() { episode_ending_ = true; }

  /// Processes any pending MI. Returns the last MI's raw report — Libra's
  /// controller uses it to run the agent on its own schedule.
  const MiReport& last_report() const { return last_report_; }

  RlBrain& brain() { return *brain_; }

 private:
  void maybe_close_mi(SimTime now);
  void learn_and_act(const MiReport& report);
  Vector build_frame(const MiReport& r) const;
  double compute_reward(const MiReport& r);
  void apply_action(double a);

  RlCcaConfig config_;
  std::shared_ptr<RlBrain> brain_;
  Rng sample_rng_{0xCCA5EED};
  MiCollector collector_;
  RingBuffer<Vector> history_;
  RateBps rate_;
  SimTime mi_end_ = 0;
  SimDuration srtt_ = 0;
  double prev_r_ = 0;
  bool have_prev_r_ = false;
  double x_max_bps_ = mbps(1);   // running max throughput (reward normalizer)
  double d_min_s_ = 0;           // running min delay (reward normalizer)
  double episode_reward_ = 0;
  int episode_steps_ = 0;
  bool episode_ending_ = false;
  MiReport last_report_;
};

}  // namespace libra
