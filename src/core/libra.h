// Libra: the unified congestion-control framework (the paper's primary
// contribution, Sec. 3-4, Alg. 1).
//
// A classic CCA and an RL-based CCA run side by side under a three-stage
// control cycle:
//   1. Exploration  — start from the base rate x_prev; the classic CCA steers
//      the actual sending rate per ACK while the RL agent computes a backup
//      decision per monitor interval. Exit early when the two candidates
//      diverge by >= th1 (0.3 x base rate) or after k RTTs.
//   2. Evaluation   — try the two candidate rates for one evaluation interval
//      (EI, 0.5 RTT) each, LOWER RATE FIRST to avoid the self-inflicted
//      queueing side effect (Fig. 4); meanwhile the exploration stage's
//      delayed feedback yields u(x_prev).
//   3. Exploitation — replay x_prev while the candidates' delayed feedback
//      returns; then pick argmax{u(x_prev), u(x_cl), u(x_rl)} as the next
//      cycle's base rate.
// Edge cases (Sec. 3): no ACKs in exploration -> the RL decision is held; no
// ACKs in other stages -> the cycle result falls back to x_prev.
//
// Clean-Slate Libra (no classic candidate) is the same machine with
// use_classic=false.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "sim/stats_window.h"
#include "learned/rl_cca.h"
#include "sim/congestion_control.h"
#include "stats/overhead.h"

namespace libra {

struct LibraParams {
  UtilityParams utility;
  /// k: exploration-stage length in (estimated) RTTs. 1 for CUBIC-like CCAs,
  /// 3 for BBR (inherits the gain-probing half of its cycle) — Sec. 4.3.
  double exploration_rtts = 1.0;
  /// EI duration in RTTs (two EIs per cycle). Paper default 0.5.
  double ei_rtts = 0.5;
  /// Exploitation-stage length in RTTs (1 for CUBIC, 3 for BBR).
  double exploitation_rtts = 1.0;
  /// th1 as a fraction of the base rate (0.3 covers BBR's +/-25% probing).
  double switch_threshold = 0.3;
  /// Evaluate the lower candidate rate first (the paper's rule). Exposed so
  /// the Fig. 4 ablation can flip it.
  bool lower_rate_first = true;
  /// false => Clean-Slate Libra: drop the classic candidate entirely.
  bool use_classic = true;
  RateBps initial_rate = mbps(2.0);
  RateBps min_rate = kbps(100);
  RateBps max_rate = mbps(400);
  std::string name = "libra";
};

/// Which decision won a control cycle — aggregated for Fig. 17.
enum class Decision { kPrev, kClassic, kRl };

struct DecisionCounts {
  std::int64_t prev = 0;
  std::int64_t classic = 0;
  std::int64_t rl = 0;
  std::int64_t total() const { return prev + classic + rl; }
};

class Libra final : public CongestionControl {
 public:
  /// `classic` may be null only when params.use_classic is false. The RL
  /// component is a chassis instance sharing a (possibly pre-trained) brain.
  Libra(LibraParams params, std::unique_ptr<CongestionControl> classic,
        std::unique_ptr<RlCca> rl);

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  /// Propagates the recorder to both candidate CCAs so algorithm-internal
  /// events (CUBIC epochs, RL actions) land in the same per-run trace.
  void bind_recorder(FlightRecorder* rec, int flow_id) override;

  /// Propagates telemetry the same way; stage transitions become exact-time
  /// telemetry events (not just interval samples of telemetry_stage()).
  void bind_telemetry(Telemetry* telemetry, int flow_id) override;
  int telemetry_stage() const override { return static_cast<int>(stage_); }

  RateBps pacing_rate() const override;
  std::int64_t cwnd_bytes() const override;
  std::string name() const override { return params_.name; }
  std::int64_t memory_bytes() const override;

  const DecisionCounts& decision_counts() const { return decisions_; }
  RateBps base_rate() const { return x_prev_; }

  /// Wall-clock cost of the RL agent's decisions (for the overhead benches).
  const OverheadMeter& rl_overhead() const { return rl_overhead_; }

  enum class Stage { kExploration, kEvalFirst, kEvalSecond, kExploitation };
  Stage stage() const { return stage_; }

  /// Per-cycle debugging/analysis record (drives the Fig. 18 utility series).
  struct CycleInfo {
    SimTime time = 0;
    RateBps x_prev = 0, x_cl = 0, x_rl = 0;
    double u_prev = 0, u_cl = 0, u_rl = 0;
    int acks_explore = 0, acks_first = 0, acks_second = 0;
    bool valid = false;  // false => no-ACK fallback to x_prev
    Decision winner = Decision::kPrev;
  };
  std::function<void(const CycleInfo&)> cycle_observer;

 private:
  void advance(SimTime now);
  void record_stage(SimTime now) const;
  void enter_exploration(SimTime now);
  void enter_evaluation(SimTime now);
  void enter_exploitation(SimTime now);
  void finish_cycle(SimTime now);
  SimDuration rtt_estimate() const;
  SimDuration ei_for(RateBps candidate_rate) const;
  RateBps classic_rate() const;
  void sync_classic_to(RateBps rate);

  LibraParams params_;
  std::unique_ptr<CongestionControl> classic_;
  std::unique_ptr<RlCca> rl_;

  Stage stage_ = Stage::kExploration;
  SimTime stage_end_ = 0;
  RateBps x_prev_;
  RateBps applied_rate_;
  RateBps x_cl_ = 0;  // classic candidate frozen at evaluation entry
  RateBps x_rl_ = 0;  // RL candidate frozen at evaluation entry
  bool first_is_classic_ = true;

  std::optional<StatsWindow> w_explore_;
  std::optional<StatsWindow> w_first_;
  std::optional<StatsWindow> w_second_;

  SimDuration srtt_ = 0;
  bool exploration_saw_ack_ = false;
  DecisionCounts decisions_;
  OverheadMeter rl_overhead_;
};

}  // namespace libra
