#include "core/libra.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "classic/window_adjustable.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"

namespace libra {

namespace {
constexpr SimDuration kDefaultRtt = msec(100);
constexpr SimDuration kMinStage = msec(5);
}  // namespace

Libra::Libra(LibraParams params, std::unique_ptr<CongestionControl> classic,
             std::unique_ptr<RlCca> rl)
    : params_(std::move(params)),
      classic_(std::move(classic)),
      rl_(std::move(rl)),
      x_prev_(params_.initial_rate),
      applied_rate_(params_.initial_rate) {
  params_.utility.validate();
  if (params_.use_classic && !classic_)
    throw std::invalid_argument("Libra: classic CCA required unless clean-slate");
  if (!rl_) throw std::invalid_argument("Libra: RL component required");
}

void Libra::bind_recorder(FlightRecorder* rec, int flow_id) {
  CongestionControl::bind_recorder(rec, flow_id);
  if (classic_) classic_->bind_recorder(rec, flow_id);
  rl_->bind_recorder(rec, flow_id);
}

void Libra::bind_telemetry(Telemetry* t, int flow_id) {
  CongestionControl::bind_telemetry(t, flow_id);
  if (classic_) classic_->bind_telemetry(t, flow_id);
  rl_->bind_telemetry(t, flow_id);
}

void Libra::record_stage(SimTime now) const {
  if (FlightRecorder* rec = recorder())
    rec->stage_transition(now, obs_flow(), static_cast<int>(stage_));
  if (Telemetry* t = telemetry())
    t->stage_event(now, obs_flow(), static_cast<int>(stage_));
}

SimDuration Libra::rtt_estimate() const { return srtt_ > 0 ? srtt_ : kDefaultRtt; }

SimDuration Libra::ei_for(RateBps candidate_rate) const {
  // Nominal EI is a fraction of the RTT (0.5 by default), but a candidate
  // must carry enough packets to be measurable — stretch the interval at low
  // rates so at least ~4 MTUs are sent (bounded so cycles stay responsive).
  auto nominal = static_cast<SimDuration>(params_.ei_rtts *
                                          static_cast<double>(rtt_estimate()));
  SimDuration four_packets = transmission_time(4 * kDefaultPacketBytes,
                                               std::max(candidate_rate, params_.min_rate));
  return std::clamp<SimDuration>(std::max(nominal, four_packets), kMinStage, msec(250));
}

RateBps Libra::classic_rate() const {
  if (!classic_) return x_prev_;
  RateBps paced = classic_->pacing_rate();
  if (paced > 0) return paced;
  return static_cast<double>(classic_->cwnd_bytes()) * 8.0 /
         to_seconds(rtt_estimate());
}

void Libra::sync_classic_to(RateBps rate) {
  if (!classic_) return;
  // Window-based classics restart the new cycle from the base rate: translate
  // the rate into a window. Model-based classics (BBR) keep their own model —
  // Libra inherits their probing unchanged (Sec. 4.3).
  if (auto* adjustable = dynamic_cast<WindowAdjustable*>(classic_.get())) {
    auto cwnd = static_cast<std::int64_t>(rate / 8.0 * to_seconds(rtt_estimate()));
    adjustable->set_cwnd_bytes(cwnd);
  }
}

void Libra::enter_exploration(SimTime now) {
  PROF_SCOPE("libra.explore");
  stage_ = Stage::kExploration;
  SimDuration len = std::max<SimDuration>(
      kMinStage, static_cast<SimDuration>(params_.exploration_rtts *
                                          static_cast<double>(rtt_estimate())));
  stage_end_ = now + len;
  applied_rate_ = x_prev_;
  exploration_saw_ack_ = false;
  // Resynchronize the classic candidate to the base rate only when another
  // candidate won and moved it: unconditionally rewriting the window every
  // cycle would reset CUBIC's epoch clock ~3x per RTT-triple and freeze it in
  // the slow early-epoch region forever.
  if (classic_ && std::abs(classic_rate() - x_prev_) > 0.2 * x_prev_) {
    sync_classic_to(x_prev_);
  }
  rl_->external_begin(now, x_prev_);
  w_explore_.emplace(now, now + len, x_prev_);
  record_stage(now);
}

void Libra::enter_evaluation(SimTime now) {
  PROF_SCOPE("libra.evaluate");
  if (w_explore_) w_explore_->close(now);
  // Freeze the two candidates. The RL backup decision is the one costly
  // computation in the control cycle (Remark 5); meter it.
  x_cl_ = std::clamp(classic_rate(), params_.min_rate, params_.max_rate);
  {
    OverheadMeter::Scope scope(rl_overhead_);
    x_rl_ = std::clamp(rl_->external_decide(now), params_.min_rate, params_.max_rate);
  }

  if (!params_.use_classic) {
    // Clean-slate: only the RL candidate gets an EI.
    SimDuration ei = ei_for(x_rl_);
    stage_ = Stage::kEvalSecond;
    stage_end_ = now + ei;
    applied_rate_ = x_rl_;
    w_first_.reset();
    w_second_.emplace(now, now + ei, x_rl_);
    record_stage(now);
    return;
  }

  // "Lower rate first" minimizes the self-inflicted queueing side effect on
  // the second candidate's measurement (Fig. 4).
  bool classic_lower = x_cl_ <= x_rl_;
  first_is_classic_ = params_.lower_rate_first ? classic_lower : !classic_lower;
  RateBps first = first_is_classic_ ? x_cl_ : x_rl_;

  SimDuration ei = ei_for(first);
  stage_ = Stage::kEvalFirst;
  stage_end_ = now + ei;
  applied_rate_ = first;
  w_first_.emplace(now, now + ei, first);
  record_stage(now);
}

void Libra::enter_exploitation(SimTime now) {
  PROF_SCOPE("libra.exploit");
  stage_ = Stage::kExploitation;
  SimDuration len = std::max<SimDuration>(
      kMinStage, static_cast<SimDuration>(params_.exploitation_rtts *
                                          static_cast<double>(rtt_estimate())));
  stage_end_ = now + len;
  applied_rate_ = x_prev_;
  record_stage(now);
}

void Libra::finish_cycle(SimTime now) {
  PROF_SCOPE("libra.cycle");
  // No feedback outside the exploration stage: fall back to x_prev (Sec. 3).
  bool first_ok = w_first_ && w_first_->acks() >= 2;
  bool second_ok = w_second_ && w_second_->acks() >= 2;
  bool explore_ok = w_explore_ && w_explore_->acks() >= 2;

  Decision winner = Decision::kPrev;
  CycleInfo info;
  info.time = now;
  info.x_prev = x_prev_;
  info.x_cl = x_cl_;
  info.x_rl = x_rl_;
  info.acks_explore = w_explore_ ? w_explore_->acks() : 0;
  info.acks_first = w_first_ ? w_first_->acks() : 0;
  info.acks_second = w_second_ ? w_second_->acks() : 0;
  // Compare every window that produced a usable measurement. A starved
  // exploration window only removes x_prev from the comparison (it is the
  // fallback anyway); if no candidate is measurable the cycle result is
  // x_prev (Sec. 3 no-ACK rule).
  if (first_ok || second_ok) {
    info.valid = true;
    double best = std::numeric_limits<double>::lowest();
    if (explore_ok) {
      info.u_prev = w_explore_->utility_value(params_.utility);
      best = info.u_prev;
    }
    if (first_ok) {
      double u = w_first_->utility_value(params_.utility);
      Decision d = (params_.use_classic && first_is_classic_) ? Decision::kClassic
                                                              : Decision::kRl;
      (d == Decision::kClassic ? info.u_cl : info.u_rl) = u;
      if (u > best) { best = u; winner = d; }
    }
    if (second_ok) {
      double u = w_second_->utility_value(params_.utility);
      // The second EI carries whichever candidate did not go first; in
      // clean-slate mode it is always the RL candidate.
      Decision d = (params_.use_classic && first_is_classic_) ? Decision::kRl
                                                              : (!params_.use_classic
                                                                     ? Decision::kRl
                                                                     : Decision::kClassic);
      (d == Decision::kClassic ? info.u_cl : info.u_rl) = u;
      if (u > best) { best = u; winner = d; }
    }
  }
  info.winner = winner;
  if (cycle_observer) cycle_observer(info);
  if (FlightRecorder* rec = recorder()) {
    rec->cycle_result(now, obs_flow(), static_cast<int>(winner), info.valid,
                      info.x_prev, info.x_cl, info.x_rl, info.u_prev,
                      info.u_cl, info.u_rl);
  }

  switch (winner) {
    case Decision::kPrev: ++decisions_.prev; break;
    case Decision::kClassic:
      ++decisions_.classic;
      x_prev_ = x_cl_;
      break;
    case Decision::kRl:
      ++decisions_.rl;
      x_prev_ = x_rl_;
      break;
  }
  x_prev_ = std::clamp(x_prev_, params_.min_rate, params_.max_rate);

  w_explore_.reset();
  w_first_.reset();
  w_second_.reset();
  enter_exploration(now);
}

void Libra::advance(SimTime now) {
  if (stage_end_ == 0) {
    enter_exploration(now);
    return;
  }
  // Early exit from exploration on candidate divergence (Alg. 1 lines 10-11),
  // but only once the base-rate behaviour is measurable (>= 3 ACKs) so the
  // u(x_prev) comparison stays meaningful.
  if (stage_ == Stage::kExploration && w_explore_ && w_explore_->acks() >= 3) {
    RateBps cl = params_.use_classic ? classic_rate() : x_prev_;
    RateBps rl = rl_->current_rate();
    if (std::abs(cl - rl) >= params_.switch_threshold * x_prev_) {
      enter_evaluation(now);
      return;
    }
  }
  if (now < stage_end_) return;

  switch (stage_) {
    case Stage::kExploration:
      enter_evaluation(now);
      break;
    case Stage::kEvalFirst: {
      RateBps second = first_is_classic_ ? x_rl_ : x_cl_;
      SimDuration ei = ei_for(second);
      stage_ = Stage::kEvalSecond;
      stage_end_ = now + ei;
      applied_rate_ = second;
      w_second_.emplace(now, now + ei, second);
      record_stage(now);
      break;
    }
    case Stage::kEvalSecond:
      enter_exploitation(now);
      break;
    case Stage::kExploitation:
      finish_cycle(now);
      break;
  }
}

void Libra::on_packet_sent(const SendEvent& ev) {
  if (stage_ == Stage::kExploration) {
    if (classic_) classic_->on_packet_sent(ev);
    rl_->on_packet_sent(ev);
  }
}

void Libra::on_ack(const AckEvent& ack) {
  srtt_ = srtt_ == 0 ? ack.rtt : srtt_ + (ack.rtt - srtt_) / 8;
  if (w_explore_) w_explore_->on_ack(ack);
  if (w_first_) w_first_->on_ack(ack);
  if (w_second_) w_second_->on_ack(ack);

  if (stage_ == Stage::kExploration) {
    exploration_saw_ack_ = true;
    if (classic_) {
      classic_->on_ack(ack);
      applied_rate_ = std::clamp(classic_rate(), params_.min_rate, params_.max_rate);
    }
    {
      // The RL backup decision is the only costly computation in the cycle.
      OverheadMeter::Scope scope(rl_overhead_);
      rl_->on_ack(ack);
    }
  }
  advance(ack.now);
}

void Libra::on_loss(const LossEvent& loss) {
  if (w_explore_) w_explore_->on_loss(loss);
  if (w_first_) w_first_->on_loss(loss);
  if (w_second_) w_second_->on_loss(loss);
  if (stage_ == Stage::kExploration) {
    if (classic_) classic_->on_loss(loss);
    rl_->on_loss(loss);
  }
}

void Libra::on_tick(SimTime now) {
  if (stage_ == Stage::kExploration) {
    if (classic_) classic_->on_tick(now);
    OverheadMeter::Scope scope(rl_overhead_);
    rl_->on_tick(now);
  }
  advance(now);
}

RateBps Libra::pacing_rate() const { return applied_rate_; }

std::int64_t Libra::cwnd_bytes() const {
  auto bdp = static_cast<std::int64_t>(applied_rate_ / 8.0 *
                                       to_seconds(rtt_estimate()));
  return std::max<std::int64_t>(2 * bdp, 4 * kDefaultPacketBytes);
}

std::int64_t Libra::memory_bytes() const {
  std::int64_t total = rl_->memory_bytes() + 512;
  if (classic_) total += classic_->memory_bytes();
  return total;
}

}  // namespace libra
