// Factories for the Libra variants evaluated in the paper: C-Libra (CUBIC
// underneath, 1-RTT exploration/exploitation), B-Libra (BBR underneath,
// 3-RTT exploration/exploitation — Sec. 4.3), and Clean-Slate Libra.
#pragma once

#include <memory>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "core/libra.h"
#include "learned/libra_rl.h"

namespace libra {

inline LibraParams c_libra_params() {
  LibraParams p;
  p.exploration_rtts = 1.0;
  p.ei_rtts = 0.5;
  p.exploitation_rtts = 1.0;
  p.name = "c-libra";
  return p;
}

inline LibraParams b_libra_params() {
  LibraParams p;
  p.exploration_rtts = 3.0;  // inherits the first 3 RTTs of BBR's probe cycle
  p.ei_rtts = 0.5;
  p.exploitation_rtts = 3.0;
  p.name = "b-libra";
  return p;
}

inline std::unique_ptr<RlCca> libra_rl_component(std::shared_ptr<RlBrain> brain,
                                                 bool training) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = training;
  cfg.external_control = true;  // Libra drives one decision per control cycle
  // x_rl stays a *sampled* policy output: Libra's evaluation stage is what
  // filters occasional bad draws (the framework's safety mechanism), so the
  // controller must face the same stochasticity the pure DRL CCAs deploy with.
  cfg.stochastic_inference = true;
  return std::make_unique<RlCca>(cfg, std::move(brain));
}

inline std::unique_ptr<Libra> make_c_libra(std::shared_ptr<RlBrain> brain,
                                           bool training = true,
                                           LibraParams params = c_libra_params()) {
  return std::make_unique<Libra>(params, std::make_unique<Cubic>(),
                                 libra_rl_component(std::move(brain), training));
}

inline std::unique_ptr<Libra> make_b_libra(std::shared_ptr<RlBrain> brain,
                                           bool training = true,
                                           LibraParams params = b_libra_params()) {
  return std::make_unique<Libra>(params, std::make_unique<Bbr>(),
                                 libra_rl_component(std::move(brain), training));
}

/// Sec. 7: Libra over an arbitrary classic CCA (Westwood, Illinois, ...).
/// CUBIC-like stage durations apply; window-based classics that implement
/// WindowAdjustable get base-rate resynchronization, others (rate-based or
/// model-based) keep their own state, as BBR does.
inline std::unique_ptr<Libra> make_libra_over(
    std::unique_ptr<CongestionControl> classic, std::shared_ptr<RlBrain> brain,
    bool training = true, LibraParams params = c_libra_params()) {
  params.name = "libra-" + classic->name();
  return std::make_unique<Libra>(params, std::move(classic),
                                 libra_rl_component(std::move(brain), training));
}

inline std::unique_ptr<Libra> make_clean_slate_libra(std::shared_ptr<RlBrain> brain,
                                                     bool training = true) {
  LibraParams p = c_libra_params();
  p.use_classic = false;
  p.name = "cl-libra";
  return std::make_unique<Libra>(p, nullptr,
                                 libra_rl_component(std::move(brain), training));
}

}  // namespace libra
