// Move-only callable with inline (small-buffer) storage.
//
// The event queue schedules millions of short-lived closures per simulated
// minute; std::function heap-allocates any capture larger than ~2 pointers,
// which dominates the hot-path profile. SmallFunction keeps captures up to
// `Capacity` bytes inline (the largest simulator capture — an ACK closure
// carrying a Packet — fits) and falls back to the heap only for oversized
// callables, so the common case costs zero allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace libra {

template <std::size_t Capacity>
class SmallFunction {
 public:
  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs `to` from `from`, then destroys `from`'s residue.
    void (*relocate)(void* to, void* from) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* to, void* from) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* to, void* from) noexcept {
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void move_from(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace libra
