// Minimal leveled logging. Benches and examples print their own structured
// output; the logger exists for debugging simulator internals and is silent
// at the default level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace libra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static void log(LogLevel level, const std::string& msg) {
    if (level < threshold()) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::cerr << "[" << names[static_cast<int>(level)] << "] " << msg << "\n";
  }
};

inline void log_debug(const std::string& m) { Logger::log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { Logger::log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { Logger::log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { Logger::log(LogLevel::kError, m); }

}  // namespace libra
