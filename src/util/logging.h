// Minimal leveled logging. Benches and examples print their own structured
// output; the logger exists for debugging simulator internals and is silent
// at the default level.
//
// Thread safety: each message is formatted into one buffer and handed to a
// LineSink, which performs a single synchronized write — concurrent run_many
// workers can log without interleaving partial lines. The sink and threshold
// should be configured at startup, before worker threads exist.
#pragma once

#include <memory>
#include <string>

#include "obs/sink.h"

namespace libra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  /// Redirects log output (default: the process-wide stderr sink). Passing
  /// nullptr restores the default. Configure before spawning workers.
  static void set_sink(std::shared_ptr<LineSink> sink) {
    sink_ref() = sink ? std::move(sink) : stderr_sink();
  }

  static void log(LogLevel level, const std::string& msg) {
    if (level < threshold()) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::string line;
    line.reserve(msg.size() + 8);
    line += '[';
    line += names[static_cast<int>(level)];
    line += "] ";
    line += msg;
    sink_ref()->write_line(line);
  }

 private:
  static std::shared_ptr<LineSink>& sink_ref() {
    static std::shared_ptr<LineSink> sink = stderr_sink();
    return sink;
  }
};

inline void log_debug(const std::string& m) { Logger::log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { Logger::log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { Logger::log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { Logger::log(LogLevel::kError, m); }

}  // namespace libra
