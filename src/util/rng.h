// Deterministic random number generation.
//
// Every stochastic component (loss process, LTE capacity model, RL policy
// sampling, experiment repetition) owns its own Rng seeded from the scenario
// seed, so adding a component never perturbs the random stream of another.
#pragma once

#include <cstdint>
#include <random>

namespace libra {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child stream; useful to hand one Rng per component.
  Rng fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace libra
