// Fixed-capacity ring buffer used for the RL agent's stacked feature history
// and for sliding-window statistics.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace libra {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity must be > 0");
  }

  void push(T value) {
    buf_[head_] = std::move(value);
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  /// Element `i` counted from the oldest retained entry (0 == oldest).
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  /// Most recent element.
  const T& back() const { return at(size_ - 1); }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool full() const { return size_ == buf_.size(); }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; head_ = 0; }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace libra
