// Fixed-size worker pool for fan-out of independent simulations.
//
// Each experiment (seed x scenario x CCA) owns its Network and EventQueue, so
// parallelism is always per-run, never intra-run: submitting N runs to the
// pool preserves bitwise determinism while using every core. `submit` returns
// a std::future (exceptions propagate through it); `parallel_for` blocks
// until a whole index range has been processed.
#pragma once

#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace libra {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// LIBRA_THREADS env var if set (>=1), else the hardware concurrency.
  static std::size_t default_thread_count() {
    if (const char* env = std::getenv("LIBRA_THREADS")) {
      long n = std::strtol(env, nullptr, 10);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  /// Enqueues `fn(args...)`; the returned future delivers the result or
  /// rethrows whatever the task threw.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         tup = std::make_tuple(std::forward<Args>(args)...)]() mutable -> R {
          return std::apply(std::move(f), std::move(tup));
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for every i in [begin, end), fanned across the pool; blocks
  /// until the range is done. The first task exception (lowest index wins on
  /// ties by submission order) is rethrown on the caller.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& fn) {
    if (begin >= end) return;
    std::vector<std::future<void>> pending;
    pending.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      pending.push_back(submit([&fn, i] { fn(i); }));
    }
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ set and queue drained
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace libra
