// Time-windowed min/max filter in the style of the Linux kernel's
// lib/win_minmax.c, used by BBR for the bandwidth max-filter and the RTT
// min-filter. Keeps the best, second-best and third-best samples so expiry
// is O(1) per update.
#pragma once

#include <array>

#include "util/types.h"

namespace libra {

template <typename T, typename Compare>
class WindowedFilter {
 public:
  explicit WindowedFilter(SimDuration window) : window_(window) {}

  void update(T sample, SimTime now) {
    Compare better;
    if (!valid_ || better(sample, estimates_[0].value) ||
        now - estimates_[2].time > window_) {
      reset(sample, now);
      return;
    }
    if (better(sample, estimates_[1].value)) {
      estimates_[1] = {sample, now};
      estimates_[2] = estimates_[1];
    } else if (better(sample, estimates_[2].value)) {
      estimates_[2] = {sample, now};
    }
    // Expire stale bests: promote the runners-up as the window slides.
    if (now - estimates_[0].time > window_) {
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = {sample, now};
      if (now - estimates_[0].time > window_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
    } else if (estimates_[1].time == estimates_[0].time &&
               now - estimates_[1].time > window_ / 4) {
      estimates_[1] = {sample, now};
      estimates_[2] = estimates_[1];
    } else if (estimates_[2].time == estimates_[1].time &&
               now - estimates_[2].time > window_ / 2) {
      estimates_[2] = {sample, now};
    }
  }

  void reset(T sample, SimTime now) {
    estimates_.fill({sample, now});
    valid_ = true;
  }

  bool valid() const { return valid_; }
  T best() const { return estimates_[0].value; }
  SimTime best_time() const { return estimates_[0].time; }

 private:
  struct Sample {
    T value{};
    SimTime time = 0;
  };
  SimDuration window_;
  std::array<Sample, 3> estimates_{};
  bool valid_ = false;
};

struct MaxCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const { return a >= b; }
};
struct MinCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const { return a <= b; }
};

template <typename T>
using WindowedMax = WindowedFilter<T, MaxCompare>;
template <typename T>
using WindowedMin = WindowedFilter<T, MinCompare>;

}  // namespace libra
