// Exponentially weighted moving average with explicit warm-up semantics.
#pragma once

namespace libra {

class Ewma {
 public:
  /// `gain` is the weight of each new sample (0 < gain <= 1).
  explicit Ewma(double gain = 0.125) : gain_(gain) {}

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += gain_ * (sample - value_);
    }
  }

  void reset() { initialized_ = false; value_ = 0.0; }

  bool initialized() const { return initialized_; }
  /// Last smoothed value; 0 until the first sample arrives.
  double value() const { return value_; }
  double value_or(double fallback) const { return initialized_ ? value_ : fallback; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace libra
