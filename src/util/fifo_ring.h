// Growable circular FIFO that recycles its slots (free-list semantics):
// after warm-up, push/pop never allocate, unlike std::deque whose block
// churn shows up in the per-packet profile of the bottleneck queue.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace libra {

template <typename T>
class FifoRing {
 public:
  explicit FifoRing(std::size_t initial_capacity = 16) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(value);
    ++size_;
  }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void grow() {
    std::vector<T> bigger(slots_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace libra
