// Core scalar types shared by every Libra module.
//
// All simulation time is kept in integer microseconds (SimTime) so that the
// event queue is exactly ordered and runs are bit-reproducible across
// platforms. Rates are double bits-per-second; converting helpers keep the
// unit mistakes out of call sites.
#pragma once

#include <cstdint>
#include <limits>

namespace libra {

/// Simulated time in microseconds since the start of the run.
using SimTime = std::int64_t;

/// A duration in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Rate in bits per second.
using RateBps = double;

inline constexpr SimDuration usec(std::int64_t n) { return n; }
inline constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
inline constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000; }

/// Converts a possibly fractional count of seconds to SimDuration.
inline constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * 1e6);
}

inline constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
inline constexpr double to_msec(SimDuration d) { return static_cast<double>(d) / 1e3; }

inline constexpr RateBps mbps(double m) { return m * 1e6; }
inline constexpr RateBps kbps(double k) { return k * 1e3; }
inline constexpr double to_mbps(RateBps r) { return r / 1e6; }

/// Default MTU-sized data packet payload used throughout the simulator.
inline constexpr std::int64_t kDefaultPacketBytes = 1500;

/// Time to serialize `bytes` onto a link running at `rate` bps.
inline constexpr SimDuration transmission_time(std::int64_t bytes, RateBps rate) {
  if (rate <= 0) return kSimTimeMax;
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / rate * 1e6);
}

/// Bytes deliverable in `d` at `rate` bps.
inline constexpr double bytes_in(SimDuration d, RateBps rate) {
  return rate / 8.0 * to_seconds(d);
}

}  // namespace libra
