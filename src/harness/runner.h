// Experiment runner: builds a Network from a Scenario, attaches flows, runs,
// and produces the summary metrics every bench reports.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "sim/network.h"

namespace libra {

using CcaFactory = std::function<std::unique_ptr<CongestionControl>()>;

struct FlowSpec {
  CcaFactory make_cca;
  SimTime start = 0;
  SimTime stop = kSimTimeMax;
  SimDuration extra_ack_delay = 0;
};

struct FlowSummary {
  double throughput_bps = 0;
  double avg_rtt_ms = 0;
  double loss_rate = 0;
};

struct RunSummary {
  double link_utilization = 0;
  double avg_delay_ms = 0;   // mean per-ACK RTT across flows
  double total_throughput_bps = 0;
  /// Wall-clock seconds the simulation took vs simulated seconds covered.
  /// Host-dependent (excluded from the bitwise-determinism guarantee, which
  /// covers the simulated quantities above).
  double wall_time_s = 0;
  double sim_time_s = 0;
  std::vector<FlowSummary> flows;

  /// Simulated seconds per wall second (0 when wall time was not measured).
  double speed_ratio() const {
    return wall_time_s > 0 ? sim_time_s / wall_time_s : 0.0;
  }
};

/// Serializes a summary as one JSON object (schema in EXPERIMENTS.md).
std::string to_json(const RunSummary& summary);

/// Per-run observability switches. Defaults are all-off: the recorder stays
/// disabled and costs one predicted branch per would-be record point.
struct ObsOptions {
  bool record = false;  // enable the flight recorder for this run
  std::size_t ring_capacity = FlightRecorder::kDefaultCapacity;
  /// When non-empty, the trace streams to this file while recording (the ring
  /// flushes instead of overwriting), so runs of any length trace completely.
  std::string trace_path;
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// Appends an end-of-run "run" metadata event (wall/sim time, speed ratio)
  /// to the trace. Off by default: wall time is host-dependent, and the
  /// default trace must stay byte-identical for identical seeds.
  bool trace_meta = false;
  /// Sampling telemetry (columnar per-flow/queue time series). Disabled by
  /// default; when enabled the sampler runs at telemetry.config's interval
  /// and the columnar store is dumped to the configured path(s) post-run.
  TelemetryOptions telemetry;
};

/// Builds the network and runs it to `scenario.duration`. The returned
/// Network owns the flows and all their time series.
std::unique_ptr<Network> run_scenario(const Scenario& scenario,
                                      const std::vector<FlowSpec>& flows,
                                      std::uint64_t seed);

/// As above, with observability: enables the flight recorder / trace sink per
/// `obs`, and finalizes the network's metrics registry after the run.
std::unique_ptr<Network> run_scenario(const Scenario& scenario,
                                      const std::vector<FlowSpec>& flows,
                                      std::uint64_t seed, const ObsOptions& obs);

/// Metrics over [warmup, horizon) of an already-run network.
RunSummary summarize(const Network& net, SimTime warmup, SimTime horizon);

/// Convenience: single flow, full duration, default 2 s warmup.
RunSummary run_single(const Scenario& scenario, const CcaFactory& make_cca,
                      std::uint64_t seed, SimDuration warmup = sec(2));

}  // namespace libra
