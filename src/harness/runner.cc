#include "harness/runner.h"

#include <fstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/sink.h"

namespace libra {

std::unique_ptr<Network> run_scenario(const Scenario& scenario,
                                      const std::vector<FlowSpec>& flows,
                                      std::uint64_t seed) {
  return run_scenario(scenario, flows, seed, ObsOptions{});
}

std::unique_ptr<Network> run_scenario(const Scenario& scenario,
                                      const std::vector<FlowSpec>& flows,
                                      std::uint64_t seed, const ObsOptions& obs) {
  if (flows.empty()) throw std::invalid_argument("run_scenario: no flows");
  auto net = std::make_unique<Network>(scenario.link_config(seed));
  if (obs.record) {
    net->recorder().enable(obs.ring_capacity);
    if (!obs.trace_path.empty()) {
      net->recorder().set_sink(StreamLineSink::open_file(obs.trace_path),
                               obs.trace_format);
    }
  }
  if (obs.telemetry.enabled) net->telemetry().enable(obs.telemetry.config);
  for (const FlowSpec& spec : flows) {
    SenderConfig base;
    base.ecn_capable = scenario.ecn_enabled();
    net->add_flow(spec.make_cca(), spec.start, spec.stop, spec.extra_ack_delay,
                  base);
  }
  net->run_until(scenario.duration);
  net->finalize_metrics();
  if (obs.trace_meta) {
    net->recorder().run_meta(scenario.duration, net->wall_time_s(),
                             to_seconds(scenario.duration));
  }
  net->recorder().flush();  // drain the ring tail to the sink (no-op without one)
  if (obs.telemetry.enabled) {
    if (!obs.telemetry.binary_path.empty()) {
      std::ofstream out(obs.telemetry.binary_path, std::ios::binary);
      if (!out) throw std::runtime_error("run_scenario: cannot open " +
                                         obs.telemetry.binary_path);
      net->telemetry().write_binary(out);
    }
    if (!obs.telemetry.jsonl_path.empty()) {
      std::ofstream out(obs.telemetry.jsonl_path);
      if (!out) throw std::runtime_error("run_scenario: cannot open " +
                                         obs.telemetry.jsonl_path);
      net->telemetry().write_jsonl(out);
    }
  }
  return net;
}

std::string to_json(const RunSummary& summary) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("link_utilization").value(summary.link_utilization);
  w.key("avg_delay_ms").value(summary.avg_delay_ms);
  w.key("total_throughput_bps").value(summary.total_throughput_bps);
  w.key("wall_time_s").value(summary.wall_time_s);
  w.key("sim_time_s").value(summary.sim_time_s);
  w.key("speed_ratio").value(summary.speed_ratio());
  w.key("flows").begin_array();
  for (const FlowSummary& f : summary.flows) {
    w.begin_object();
    w.key("throughput_bps").value(f.throughput_bps);
    w.key("avg_rtt_ms").value(f.avg_rtt_ms);
    w.key("loss_rate").value(f.loss_rate);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

RunSummary summarize(const Network& net, SimTime warmup, SimTime horizon) {
  RunSummary sum;
  sum.link_utilization = net.link_utilization(warmup, horizon);
  sum.wall_time_s = net.wall_time_s();
  sum.sim_time_s = to_seconds(net.events().now());
  double rtt_weighted = 0;
  std::int64_t rtt_samples = 0;
  for (int i = 0; i < net.flow_count(); ++i) {
    const Flow& f = net.flow(i);
    FlowSummary fs;
    fs.throughput_bps = f.throughput_in(warmup, horizon);
    fs.avg_rtt_ms = f.mean_rtt_in(warmup, horizon);
    // Loss rate over the window: lost packets / (acked + lost) within it.
    double lost = f.loss_series().sum_in(warmup, horizon) / kDefaultPacketBytes;
    double acked = f.acked_bytes_series().sum_in(warmup, horizon) / kDefaultPacketBytes;
    fs.loss_rate = (lost + acked) > 0 ? lost / (lost + acked) : 0.0;
    sum.total_throughput_bps += fs.throughput_bps;

    std::int64_t n = static_cast<std::int64_t>(acked);
    rtt_weighted += fs.avg_rtt_ms * static_cast<double>(n);
    rtt_samples += n;
    sum.flows.push_back(fs);
  }
  sum.avg_delay_ms = rtt_samples > 0 ? rtt_weighted / static_cast<double>(rtt_samples) : 0;
  return sum;
}

RunSummary run_single(const Scenario& scenario, const CcaFactory& make_cca,
                      std::uint64_t seed, SimDuration warmup) {
  auto net = run_scenario(scenario, {{make_cca}}, seed);
  return summarize(*net, warmup, scenario.duration);
}

}  // namespace libra
