// Decorator that attributes wall-clock time spent inside a congestion
// controller's callbacks to an OverheadMeter — the measurement behind the
// paper's CPU-utilization comparisons (Figs. 2c, 12).
#pragma once

#include <memory>

#include "sim/congestion_control.h"
#include "stats/overhead.h"

namespace libra {

class MeteredCca final : public CongestionControl {
 public:
  MeteredCca(std::unique_ptr<CongestionControl> inner,
             std::shared_ptr<OverheadMeter> meter)
      : inner_(std::move(inner)), meter_(std::move(meter)) {}

  void on_packet_sent(const SendEvent& ev) override {
    OverheadMeter::Scope s(*meter_);
    inner_->on_packet_sent(ev);
  }
  void on_ack(const AckEvent& ack) override {
    OverheadMeter::Scope s(*meter_);
    inner_->on_ack(ack);
  }
  void on_loss(const LossEvent& loss) override {
    OverheadMeter::Scope s(*meter_);
    inner_->on_loss(loss);
  }
  void on_tick(SimTime now) override {
    OverheadMeter::Scope s(*meter_);
    inner_->on_tick(now);
  }
  bool wants_tick() const override { return inner_->wants_tick(); }

  void bind_recorder(FlightRecorder* rec, int flow_id) override {
    CongestionControl::bind_recorder(rec, flow_id);
    inner_->bind_recorder(rec, flow_id);
  }

  void bind_telemetry(Telemetry* telemetry, int flow_id) override {
    CongestionControl::bind_telemetry(telemetry, flow_id);
    inner_->bind_telemetry(telemetry, flow_id);
  }
  int telemetry_stage() const override { return inner_->telemetry_stage(); }

  RateBps pacing_rate() const override { return inner_->pacing_rate(); }
  std::int64_t cwnd_bytes() const override { return inner_->cwnd_bytes(); }
  std::string name() const override { return inner_->name(); }
  std::int64_t memory_bytes() const override { return inner_->memory_bytes(); }

  CongestionControl& inner() { return *inner_; }

 private:
  std::unique_ptr<CongestionControl> inner_;
  std::shared_ptr<OverheadMeter> meter_;
};

}  // namespace libra
