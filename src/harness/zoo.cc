#include "harness/zoo.h"

#include <filesystem>
#include <stdexcept>

#include "classic/bbr.h"
#include "classic/compound.h"
#include "classic/copa.h"
#include "classic/cubic.h"
#include "classic/dctcp.h"
#include "classic/illinois.h"
#include "classic/newreno.h"
#include "classic/sprout_ewma.h"
#include "classic/vegas.h"
#include "classic/westwood.h"
#include "core/factory.h"
#include "harness/parallel.h"
#include "harness/trainer.h"
#include "learned/aurora.h"
#include "learned/indigo.h"
#include "learned/libra_rl.h"
#include "learned/orca.h"
#include "learned/remy.h"
#include "learned/vivace.h"

namespace libra {

CcaZoo::CcaZoo(ZooConfig config) : config_(std::move(config)) {}

std::vector<std::string> CcaZoo::all_names() {
  return {"cubic",   "bbr",     "newreno",  "vegas",       "westwood",
          "illinois", "copa",  "compound", "dctcp", "sprout", "vivace",
          "proteus", "remy",    "indigo",  "aurora",   "orca",
          "modified-rl", "libra-rl", "c-libra", "b-libra", "cl-libra"};
}

std::shared_ptr<RlBrain> CcaZoo::brain(const std::string& family) {
  {
    std::lock_guard<std::mutex> lock(brains_mu_);
    auto it = brains_.find(family);
    if (it != brains_.end()) return it->second;
  }
  // Train outside the lock (minutes of work); last writer wins if two
  // threads race to the same family — both produce identical brains.
  auto brain = train_or_load(family);
  std::lock_guard<std::mutex> lock(brains_mu_);
  brains_[family] = brain;
  return brain;
}

std::vector<std::string> CcaZoo::brain_families() {
  return {"libra-rl", "modified-rl", "aurora", "orca"};
}

void CcaZoo::train_all(ThreadPool& pool) {
  const std::vector<std::string> families = brain_families();
  // Chunked so the caller participates: each family's train_parallel nests
  // rollout fan-out on the same pool without risk of starving it.
  parallel_for_chunked(pool, 0, families.size(), 1,
                       [&](std::size_t i) { brain(families[i]); });
}

void CcaZoo::train_all() { train_all(default_pool()); }

std::shared_ptr<RlBrain> CcaZoo::train_or_load(const std::string& family) {
  std::shared_ptr<RlBrain> brain;
  // Bound factories take the brain as an argument so that train_parallel can
  // rebind each episode to its per-episode collector snapshot.
  BrainBoundFactory train_factory;
  const std::vector<std::size_t> hidden{config_.hidden_width, config_.hidden_width};

  if (family == "libra-rl") {
    RlCcaConfig cfg = libra_rl_config();
    brain = std::make_shared<RlBrain>(make_ppo_config(cfg, config_.seed, hidden),
                                      feature_frame_size(cfg.features));
    train_factory = [](const std::shared_ptr<RlBrain>& b) {
      return make_libra_rl(b, /*training=*/true);
    };
  } else if (family == "modified-rl") {
    RlCcaConfig cfg = modified_rl_config();
    brain = std::make_shared<RlBrain>(make_ppo_config(cfg, config_.seed + 1, hidden),
                                      feature_frame_size(cfg.features));
    train_factory = [](const std::shared_ptr<RlBrain>& b) {
      return make_modified_rl(b, /*training=*/true);
    };
  } else if (family == "aurora") {
    RlCcaConfig cfg = aurora_config();
    brain = std::make_shared<RlBrain>(make_ppo_config(cfg, config_.seed + 2, hidden),
                                      feature_frame_size(cfg.features));
    train_factory = [](const std::shared_ptr<RlBrain>& b) {
      return make_aurora(b, /*training=*/true);
    };
  } else if (family == "orca") {
    PpoConfig ppo;
    ppo.state_dim = feature_frame_size(orca_state_space()) * 8;
    ppo.hidden = hidden;
    ppo.seed = config_.seed + 3;
    brain = std::make_shared<RlBrain>(ppo, feature_frame_size(orca_state_space()));
    train_factory = [](const std::shared_ptr<RlBrain>& b) {
      OrcaParams p;
      p.training = true;
      return std::make_unique<Orca>(p, b);
    };
  } else {
    throw std::out_of_range("CcaZoo: unknown brain family " + family);
  }

  // Aurora trains on its own published environment span (random loss <= 5%);
  // the Libra-paper env randomizes loss up to 10%, which is pure reward noise
  // for an agent that cannot influence it.
  TrainEnvRanges ranges;
  ranges.competitors = config_.train_competitors;
  if (family == "aurora") ranges.loss_hi = 0.05;

  auto train = [&] {
    Trainer trainer(ranges, config_.seed ^ 0x5EED);
    if (config_.train_telemetry && !config_.brain_dir.empty()) {
      // Learning curves are artifacts next to the brain they explain.
      trainer.set_telemetry(StreamLineSink::open_file(
          config_.brain_dir + "/" + family + ".train.jsonl"));
    }
    trainer.train_parallel(train_factory, brain, config_.train_episodes,
                           default_pool(), config_.rollout_round);
  };

  if (!config_.brain_dir.empty()) {
    std::filesystem::create_directories(config_.brain_dir);
    std::string path = config_.brain_dir + "/" + family + ".brain";
    try {
      if (load_brain(*brain, path)) return brain;
    } catch (const std::exception&) {
      // Stale cache for a changed architecture: retrain below.
    }
    train();
    save_brain(*brain, path);
    return brain;
  }

  train();
  return brain;
}

CcaFactory CcaZoo::factory(const std::string& name) {
  const bool train = config_.experiment_training;
  if (name == "cubic") return [] { return std::make_unique<Cubic>(); };
  if (name == "bbr") return [] { return std::make_unique<Bbr>(); };
  if (name == "newreno") return [] { return std::make_unique<NewReno>(); };
  if (name == "vegas") return [] { return std::make_unique<Vegas>(); };
  if (name == "westwood") return [] { return std::make_unique<Westwood>(); };
  if (name == "illinois") return [] { return std::make_unique<Illinois>(); };
  if (name == "copa") return [] { return std::make_unique<Copa>(); };
  if (name == "compound") return [] { return std::make_unique<CompoundTcp>(); };
  if (name == "dctcp") return [] { return std::make_unique<Dctcp>(); };
  if (name == "sprout") return [] { return std::make_unique<SproutEwma>(); };
  if (name == "vivace") return [] { return std::make_unique<Vivace>(); };
  if (name == "proteus") return [] { return make_proteus(); };
  if (name == "remy") return [] { return std::make_unique<Remy>(); };
  if (name == "indigo") return [] { return std::make_unique<Indigo>(); };
  if (name == "aurora") {
    auto b = brain("aurora");
    return [b, train] { return make_aurora(b, train); };
  }
  if (name == "orca") {
    auto b = brain("orca");
    return [b, train] {
      OrcaParams p;
      p.training = train;
      return std::make_unique<Orca>(p, b);
    };
  }
  if (name == "modified-rl") {
    auto b = brain("modified-rl");
    return [b, train] { return make_modified_rl(b, train); };
  }
  if (name == "libra-rl") {
    auto b = brain("libra-rl");
    return [b, train] { return make_libra_rl(b, train); };
  }
  if (name == "c-libra") {
    auto b = brain("libra-rl");
    return [b, train] { return make_c_libra(b, train); };
  }
  if (name == "b-libra") {
    auto b = brain("libra-rl");
    return [b, train] { return make_b_libra(b, train); };
  }
  if (name == "cl-libra") {
    auto b = brain("libra-rl");
    return [b, train] { return make_clean_slate_libra(b, train); };
  }
  throw std::out_of_range("CcaZoo: unknown CCA " + name);
}

}  // namespace libra
