#include "harness/scenario.h"

namespace libra {

Scenario wired_scenario(double rate_mbps, SimDuration min_rtt,
                        std::int64_t buffer_bytes) {
  Scenario s;
  s.name = "wired-" + std::to_string(static_cast<int>(rate_mbps)) + "mbps";
  s.nominal_rate = mbps(rate_mbps);
  s.make_trace = [rate_mbps](std::uint64_t) {
    return std::make_shared<ConstantTrace>(mbps(rate_mbps));
  };
  s.min_rtt = min_rtt;
  s.buffer_bytes = buffer_bytes;
  return s;
}

Scenario lte_scenario(LteProfile profile, const std::string& label,
                      SimDuration min_rtt, std::int64_t buffer_bytes) {
  Scenario s;
  s.name = label;
  s.nominal_rate = lte_profile_params(profile).mean_rate;
  s.make_trace = [profile](std::uint64_t seed) -> std::shared_ptr<RateTrace> {
    return make_lte_trace(profile, sec(120), seed);
  };
  s.min_rtt = min_rtt;
  s.buffer_bytes = buffer_bytes;
  return s;
}

Scenario step_scenario() {
  Scenario s;
  s.name = "step";
  s.nominal_rate = mbps(12.5);
  s.make_trace = [](std::uint64_t) -> std::shared_ptr<RateTrace> {
    // Fig. 2(a)-style staircase including a 5 Mbps level (the point where
    // Orca's offline training range is exceeded).
    return make_step_trace({mbps(20), mbps(5), mbps(15), mbps(10), mbps(25)},
                           sec(10));
  };
  s.min_rtt = msec(80);
  // 1 BDP at the 12.5 Mbps average: 12.5e6/8 * 0.08 = 125 KB.
  s.buffer_bytes = 125 * 1000;
  s.duration = sec(50);
  return s;
}

std::vector<Scenario> fig1_scenarios() {
  return {
      wired_scenario(24), wired_scenario(48), wired_scenario(96),
      lte_scenario(LteProfile::kStationary, "lte-stationary"),
      lte_scenario(LteProfile::kWalking, "lte-walking"),
      lte_scenario(LteProfile::kDriving, "lte-driving"),
  };
}

std::vector<Scenario> wired_set() {
  return {wired_scenario(12), wired_scenario(24), wired_scenario(48),
          wired_scenario(96)};
}

std::vector<Scenario> cellular_set() {
  // A fourth trace (bus-like: walking-band mean with driving-grade fades)
  // mirrors the paper's 4-trace cellular set.
  Scenario bus;
  bus.name = "lte-bus";
  LteModelParams p = lte_profile_params(LteProfile::kWalking);
  p.fade_probability = 0.025;
  p.fade_depth = 0.2;
  p.volatility = 0.17;
  bus.nominal_rate = p.mean_rate;
  bus.make_trace = [p](std::uint64_t seed) -> std::shared_ptr<RateTrace> {
    return make_lte_trace(p, sec(120), seed);
  };
  return {lte_scenario(LteProfile::kStationary, "lte-stationary"),
          lte_scenario(LteProfile::kWalking, "lte-walking"),
          lte_scenario(LteProfile::kDriving, "lte-driving"), bus};
}

Scenario wan_inter_continental() {
  Scenario s;
  s.name = "wan-inter";
  s.nominal_rate = mbps(40);
  s.make_trace = [](std::uint64_t seed) -> std::shared_ptr<RateTrace> {
    // Capacity jitter stands in for unknown queue-management and shaping
    // schemes along the path (Sec. 5.4).
    LteModelParams p;
    p.mean_rate = mbps(40);
    p.min_rate = mbps(8);
    p.max_rate = mbps(60);
    p.volatility = 0.08;
    p.reversion = 0.3;
    p.fade_probability = 0.004;
    p.fade_depth = 0.5;
    return make_lte_trace(p, sec(120), seed);
  };
  s.min_rtt = msec(180);
  s.buffer_bytes = 600 * 1000;
  s.stochastic_loss = 0.012;
  return s;
}

Scenario wan_intra_continental() {
  Scenario s;
  s.name = "wan-intra";
  s.nominal_rate = mbps(80);
  s.make_trace = [](std::uint64_t seed) -> std::shared_ptr<RateTrace> {
    LteModelParams p;
    p.mean_rate = mbps(80);
    p.min_rate = mbps(30);
    p.max_rate = mbps(110);
    p.volatility = 0.04;
    p.reversion = 0.35;
    p.fade_probability = 0.001;
    p.fade_depth = 0.6;
    return make_lte_trace(p, sec(120), seed);
  };
  s.min_rtt = msec(40);
  s.buffer_bytes = 400 * 1000;
  s.stochastic_loss = 0.002;
  return s;
}

Scenario satellite_scenario() {
  Scenario s;
  s.name = "satellite";
  s.nominal_rate = mbps(20);
  s.make_trace = [](std::uint64_t) -> std::shared_ptr<RateTrace> {
    return std::make_shared<ConstantTrace>(mbps(20));
  };
  s.min_rtt = msec(600);
  s.buffer_bytes = 2 * 1000 * 1000;
  s.stochastic_loss = 0.03;
  s.duration = sec(90);
  return s;
}

Scenario fiveg_scenario() {
  Scenario s;
  s.name = "5g";
  s.nominal_rate = mbps(120);
  s.make_trace = [](std::uint64_t seed) -> std::shared_ptr<RateTrace> {
    // mmWave-style abrupt swings: high band with frequent deep blockage.
    LteModelParams p;
    p.mean_rate = mbps(150);
    p.min_rate = mbps(5);
    p.max_rate = mbps(300);
    p.volatility = 0.3;
    p.reversion = 0.15;
    p.fade_probability = 0.05;
    p.fade_depth = 0.1;
    p.fade_duration = msec(400);
    return make_lte_trace(p, sec(120), seed);
  };
  s.min_rtt = msec(20);
  s.buffer_bytes = 800 * 1000;
  return s;
}

Scenario datacenter_ecn_scenario(double rate_mbps, SimDuration min_rtt,
                                 std::int64_t ecn_threshold_bytes) {
  Scenario s = wired_scenario(rate_mbps, min_rtt, 900 * 1000);
  s.name = "dc-ecn-" + std::to_string(static_cast<int>(rate_mbps));
  s.ecn_threshold_bytes = ecn_threshold_bytes;
  s.duration = sec(30);
  return s;
}

Scenario policed_wan_scenario(double rate_mbps, double policer_rate_mbps,
                              std::int64_t burst_bytes, SimTime policer_start) {
  Scenario s = wired_scenario(rate_mbps, msec(20));
  s.name = "policed-" + std::to_string(static_cast<int>(policer_rate_mbps));
  s.policer_rate = mbps(policer_rate_mbps);
  s.policer_burst_bytes = burst_bytes;
  s.policer_start = policer_start;
  s.duration = sec(30);
  return s;
}

}  // namespace libra
