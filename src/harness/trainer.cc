#include "harness/trainer.h"

#include "core/libra.h"
#include "learned/orca.h"
#include "learned/rl_cca.h"

namespace libra {

std::optional<std::pair<double, int>> episode_reward_of(CongestionControl& cca) {
  if (auto* rl = dynamic_cast<RlCca*>(&cca))
    return std::make_pair(rl->episode_reward(), rl->episode_steps());
  if (auto* orca = dynamic_cast<Orca*>(&cca))
    return std::make_pair(orca->episode_reward(), orca->episode_steps());
  return std::nullopt;
}

EpisodeStats Trainer::run_episode(const CcaFactory& make_cca) {
  Scenario env;
  double cap = rng_.uniform(ranges_.capacity_lo_mbps, ranges_.capacity_hi_mbps);
  env.name = "train";
  env.nominal_rate = mbps(cap);
  env.make_trace = [cap](std::uint64_t) {
    return std::make_shared<ConstantTrace>(mbps(cap));
  };
  env.min_rtt = rng_.uniform_int(ranges_.rtt_lo, ranges_.rtt_hi);
  env.buffer_bytes = rng_.uniform_int(ranges_.buffer_lo, ranges_.buffer_hi);
  env.stochastic_loss = rng_.uniform(ranges_.loss_lo, ranges_.loss_hi);
  env.duration = ranges_.episode_length;

  auto net = run_scenario(env, {{make_cca}}, rng_.uniform_int(1, 1'000'000'000));

  EpisodeStats stats;
  RunSummary sum = summarize(*net, 0, env.duration);
  stats.throughput_bps = sum.total_throughput_bps;
  stats.avg_rtt_ms = sum.avg_delay_ms;
  stats.loss_rate = sum.flows.front().loss_rate;
  stats.link_utilization = sum.link_utilization;
  if (auto r = episode_reward_of(net->flow(0).sender().cca())) {
    stats.reward = r->first;
    stats.steps = r->second;
  }
  return stats;
}

std::vector<EpisodeStats> Trainer::train(const CcaFactory& make_cca, int episodes) {
  std::vector<EpisodeStats> curve;
  curve.reserve(static_cast<std::size_t>(episodes));
  for (int i = 0; i < episodes; ++i) curve.push_back(run_episode(make_cca));
  return curve;
}

}  // namespace libra
