#include "harness/trainer.h"

#include <algorithm>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "core/libra.h"
#include "harness/parallel.h"
#include "learned/orca.h"
#include "learned/rl_cca.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "stats/fairness.h"

namespace libra {

std::optional<std::pair<double, int>> episode_reward_of(CongestionControl& cca) {
  if (auto* rl = dynamic_cast<RlCca*>(&cca))
    return std::make_pair(rl->episode_reward(), rl->episode_steps());
  if (auto* orca = dynamic_cast<Orca*>(&cca))
    return std::make_pair(orca->episode_reward(), orca->episode_steps());
  return std::nullopt;
}

Scenario Trainer::sample_env(std::uint64_t& run_seed) {
  Scenario env;
  double cap = rng_.uniform(ranges_.capacity_lo_mbps, ranges_.capacity_hi_mbps);
  env.name = "train";
  env.nominal_rate = mbps(cap);
  env.make_trace = [cap](std::uint64_t) {
    return std::make_shared<ConstantTrace>(mbps(cap));
  };
  env.min_rtt = rng_.uniform_int(ranges_.rtt_lo, ranges_.rtt_hi);
  env.buffer_bytes = rng_.uniform_int(ranges_.buffer_lo, ranges_.buffer_hi);
  env.stochastic_loss = rng_.uniform(ranges_.loss_lo, ranges_.loss_hi);
  env.duration = ranges_.episode_length;
  run_seed = static_cast<std::uint64_t>(rng_.uniform_int(1, 1'000'000'000));
  return env;
}

std::vector<Trainer::CompetitorSpec> Trainer::sample_competitors(
    const RlBrain* brain) {
  const CompetitorMix& mix = ranges_.competitors;
  if (mix.max_flows <= 0) return {};  // consume no draws: legacy RNG stream
  if (mix.min_flows < 0 || mix.min_flows > mix.max_flows)
    throw std::invalid_argument("CompetitorMix: bad [min_flows, max_flows]");
  const double total = mix.w_cubic + mix.w_bbr + mix.w_self;
  if (total <= 0)
    throw std::invalid_argument("CompetitorMix: kind weights sum to zero");
  if (mix.duty_on <= 0.0 || mix.duty_on > 1.0)
    throw std::invalid_argument("CompetitorMix: duty_on must be in (0, 1]");
  const bool duty_cycled = mix.duty_on < 1.0;
  if (duty_cycled && (mix.period_lo <= 0 || mix.period_hi < mix.period_lo))
    throw std::invalid_argument("CompetitorMix: bad [period_lo, period_hi]");

  const int n = static_cast<int>(rng_.uniform_int(mix.min_flows, mix.max_flows));
  std::vector<CompetitorSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    CompetitorSpec spec;
    const double u = rng_.uniform(0.0, total);
    if (u < mix.w_cubic) {
      spec.kind = CompetitorKind::kCubic;
    } else if (u < mix.w_cubic + mix.w_bbr) {
      spec.kind = CompetitorKind::kBbr;
    } else {
      spec.kind = CompetitorKind::kSelf;
    }
    spec.start = mix.max_stagger > 0 ? rng_.uniform_int(0, mix.max_stagger) : 0;
    if (duty_cycled) {
      // Period drawn per competitor on the same serial stream as everything
      // else; always-on mixes (duty_on == 1.0) take this branch never, so
      // they consume zero extra draws and legacy streams stay bit-identical.
      spec.period = rng_.uniform_int(mix.period_lo, mix.period_hi);
      spec.duty_on = mix.duty_on;
    }
    if (spec.kind == CompetitorKind::kSelf) {
      if (!brain)
        throw std::invalid_argument(
            "Trainer: self-play competitors (w_self > 0) require "
            "train_parallel, which holds the brain to snapshot");
      // Frozen snapshot of the current policy: own RNG stream (drawn here, on
      // the main thread), collect_only so it can never update, and a frozen-
      // reference normalizer. Its transitions and normalizer delta are
      // discarded at episode end — only the learner teaches the master brain.
      PpoConfig cfg = brain->agent.config();
      cfg.seed = static_cast<std::uint64_t>(rng_.uniform_int(1, 1'000'000'000));
      cfg.collect_only = true;
      spec.self_brain =
          std::make_shared<RlBrain>(std::move(cfg), brain->normalizer.dim());
      spec.self_brain->agent.copy_parameters_from(brain->agent);
      spec.self_brain->normalizer = brain->normalizer;
      spec.self_brain->normalizer.begin_delta_collection();
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

EpisodeStats Trainer::run_in_env(const Scenario& env, const CcaFactory& make_cca,
                                 std::uint64_t run_seed,
                                 const std::vector<CompetitorSpec>& competitors,
                                 const BrainBoundFactory* self_factory) {
  std::vector<FlowSpec> flows;
  flows.reserve(1 + competitors.size());
  flows.push_back({make_cca});  // the learner is always flow 0
  for (const CompetitorSpec& c : competitors) {
    CcaFactory factory;
    switch (c.kind) {
      case CompetitorKind::kCubic:
        factory = [] { return std::make_unique<Cubic>(); };
        break;
      case CompetitorKind::kBbr:
        factory = [] { return std::make_unique<Bbr>(); };
        break;
      case CompetitorKind::kSelf: {
        if (!self_factory)
          throw std::invalid_argument(
              "Trainer: self-play competitor without a brain-bound factory");
        std::shared_ptr<RlBrain> snapshot = c.self_brain;
        const BrainBoundFactory& make = *self_factory;
        factory = [snapshot, &make] { return make(snapshot); };
        break;
      }
    }
    if (c.period <= 0 || c.duty_on >= 1.0) {
      // Always-on: the legacy single-window realization.
      FlowSpec f;
      f.make_cca = std::move(factory);
      f.start = c.start;
      flows.push_back(std::move(f));
      continue;
    }
    // Duty-cycled: one flow per on-window, so the learner sees this
    // competitor's traffic arrive and depart every period. A fresh CCA
    // instance per window (restarting from slow start) is the behaviour of
    // real on/off cross traffic — short downloads, ABR video chunks.
    const SimDuration on = static_cast<SimDuration>(
        static_cast<double>(c.period) * c.duty_on);
    if (on <= 0) continue;
    for (SimTime t = c.start; t < env.duration; t += c.period) {
      FlowSpec f;
      f.make_cca = factory;
      f.start = t;
      f.stop = std::min<SimTime>(t + on, env.duration);
      flows.push_back(std::move(f));
    }
  }
  auto net = run_scenario(env, flows, run_seed);

  EpisodeStats stats;
  RunSummary sum = summarize(*net, 0, env.duration);
  stats.throughput_bps = sum.total_throughput_bps;
  stats.avg_rtt_ms = sum.flows.front().avg_rtt_ms;
  stats.loss_rate = sum.flows.front().loss_rate;
  stats.link_utilization = sum.link_utilization;
  stats.competitors = static_cast<int>(competitors.size());
  stats.learner_throughput_bps = sum.flows.front().throughput_bps;
  if (sum.flows.size() > 1) {
    std::vector<double> rates;
    rates.reserve(sum.flows.size());
    for (const FlowSummary& f : sum.flows) rates.push_back(f.throughput_bps);
    stats.fairness = jain_index(rates);
  }
  if (auto r = episode_reward_of(net->flow(0).sender().cca())) {
    stats.reward = r->first;
    stats.steps = r->second;
  }
  return stats;
}

EpisodeStats Trainer::run_episode(const CcaFactory& make_cca) {
  std::uint64_t run_seed = 0;
  Scenario env = sample_env(run_seed);
  std::vector<CompetitorSpec> competitors = sample_competitors(nullptr);
  return run_in_env(env, make_cca, run_seed, competitors);
}

void Trainer::emit_episode(int index, const EpisodeStats& stats) {
  if (!telemetry_) return;
  std::string line;
  JsonWriter w(line);
  w.begin_object();
  w.key("ev").value("episode");
  w.key("episode").value(static_cast<std::int64_t>(index));
  w.key("reward").value(stats.reward);
  w.key("steps").value(static_cast<std::int64_t>(stats.steps));
  w.key("throughput_bps").value(stats.throughput_bps);
  w.key("avg_rtt_ms").value(stats.avg_rtt_ms);
  w.key("loss_rate").value(stats.loss_rate);
  w.key("link_utilization").value(stats.link_utilization);
  w.key("competitors").value(static_cast<std::int64_t>(stats.competitors));
  w.key("learner_throughput_bps").value(stats.learner_throughput_bps);
  w.key("fairness").value(stats.fairness);
  w.end_object();
  telemetry_->write_line(line);
}

std::vector<EpisodeStats> Trainer::train(const CcaFactory& make_cca, int episodes) {
  std::vector<EpisodeStats> curve;
  curve.reserve(static_cast<std::size_t>(episodes));
  for (int i = 0; i < episodes; ++i) {
    curve.push_back(run_episode(make_cca));
    emit_episode(i, curve.back());
  }
  return curve;
}

std::vector<EpisodeStats> Trainer::train_parallel(
    const BrainBoundFactory& make_cca, const std::shared_ptr<RlBrain>& brain,
    int episodes, ThreadPool& pool, int round_size) {
  if (!brain) throw std::invalid_argument("train_parallel: brain required");
  if (round_size < 1) round_size = 1;

  struct EpisodeJob {
    Scenario env;
    std::uint64_t run_seed = 0;
    std::shared_ptr<RlBrain> collector;
    std::vector<CompetitorSpec> competitors;
    EpisodeStats stats;
    std::vector<PpoTransition> rollout;
    RunningNormalizer norm_delta{1};
  };

  std::vector<EpisodeStats> curve;
  curve.reserve(static_cast<std::size_t>(episodes));

  // Telemetry hook: every policy update the master agent runs during the
  // ordered reduction streams its training statistics. The observer is a pure
  // reader, so installing it cannot change the trained weights.
  if (telemetry_) {
    std::shared_ptr<LineSink> sink = telemetry_;
    brain->agent.update_observer = [sink](const PpoUpdateStats& st) {
      std::string line;
      JsonWriter w(line);
      w.begin_object();
      w.key("ev").value("update");
      w.key("update").value(static_cast<std::int64_t>(st.update));
      w.key("transitions").value(static_cast<std::uint64_t>(st.transitions));
      w.key("policy_loss").value(st.policy_loss);
      w.key("value_loss").value(st.value_loss);
      w.key("clip_fraction").value(st.clip_fraction);
      w.key("approx_kl").value(st.approx_kl);
      w.key("entropy").value(st.entropy);
      w.end_object();
      sink->write_line(line);
    };
  }

  int round = 0;
  for (int done = 0; done < episodes; done += round_size, ++round) {
    PROF_SCOPE("train.round");
    const int r = std::min(round_size, episodes - done);
    std::vector<EpisodeJob> jobs(static_cast<std::size_t>(r));

    // Main thread, sequential: draw every stochastic input of the round (env
    // realizations, run seeds, per-episode agent RNG streams) and snapshot
    // the current policy into per-episode collector brains. Nothing below
    // depends on the pool's thread count.
    for (EpisodeJob& job : jobs) {
      job.env = sample_env(job.run_seed);
      job.competitors = sample_competitors(brain.get());
      PpoConfig cfg = brain->agent.config();
      cfg.seed = static_cast<std::uint64_t>(rng_.uniform_int(1, 1'000'000'000));
      cfg.collect_only = true;
      job.collector =
          std::make_shared<RlBrain>(std::move(cfg), brain->normalizer.dim());
      job.collector->agent.copy_parameters_from(brain->agent);
      job.collector->normalizer = brain->normalizer;
      job.collector->normalizer.begin_delta_collection();
    }

    // Fan the round's episodes out; each mutates only its own collector brain
    // and its own Network, so workers share nothing mutable.
    parallel_for_chunked(pool, 0, jobs.size(), 1, [&](std::size_t i) {
      PROF_SCOPE("train.episode");
      EpisodeJob& job = jobs[i];
      job.stats = run_in_env(
          job.env, [&job, &make_cca] { return make_cca(job.collector); },
          job.run_seed, job.competitors, &make_cca);
      job.rollout = job.collector->agent.take_transitions(/*mark_final_done=*/true);
      job.norm_delta = job.collector->normalizer.take_delta();
    });

    // Ordered reduction on the main thread: the only writes to the master
    // brain. Episode order is submission order, so the learned weights are
    // bitwise identical at any thread count.
    {
      PROF_SCOPE("train.reduce");
      for (EpisodeJob& job : jobs) {
        brain->normalizer.merge(job.norm_delta);
        brain->agent.ingest(std::move(job.rollout));
        emit_episode(done + static_cast<int>(&job - jobs.data()), job.stats);
        curve.push_back(job.stats);
      }
    }

    if (telemetry_) {
      std::string line;
      JsonWriter w(line);
      w.begin_object();
      w.key("ev").value("round");
      w.key("round").value(static_cast<std::int64_t>(round));
      w.key("episodes_done").value(static_cast<std::int64_t>(done + r));
      w.key("updates").value(static_cast<std::int64_t>(brain->agent.update_count()));
      w.key("norm_count").value(static_cast<std::uint64_t>(brain->normalizer.count()));
      w.key("norm_mean_abs").value(brain->normalizer.mean_abs());
      w.key("norm_mean_std").value(brain->normalizer.mean_std());
      w.key("exploration_stddev").value(brain->agent.exploration_stddev());
      w.end_object();
      telemetry_->write_line(line);
    }
  }
  if (telemetry_) {
    brain->agent.update_observer = nullptr;
    telemetry_->flush();
  }
  return curve;
}

}  // namespace libra
