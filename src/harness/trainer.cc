#include "harness/trainer.h"

#include "core/libra.h"
#include "harness/parallel.h"
#include "learned/orca.h"
#include "learned/rl_cca.h"

namespace libra {

std::optional<std::pair<double, int>> episode_reward_of(CongestionControl& cca) {
  if (auto* rl = dynamic_cast<RlCca*>(&cca))
    return std::make_pair(rl->episode_reward(), rl->episode_steps());
  if (auto* orca = dynamic_cast<Orca*>(&cca))
    return std::make_pair(orca->episode_reward(), orca->episode_steps());
  return std::nullopt;
}

Scenario Trainer::sample_env(std::uint64_t& run_seed) {
  Scenario env;
  double cap = rng_.uniform(ranges_.capacity_lo_mbps, ranges_.capacity_hi_mbps);
  env.name = "train";
  env.nominal_rate = mbps(cap);
  env.make_trace = [cap](std::uint64_t) {
    return std::make_shared<ConstantTrace>(mbps(cap));
  };
  env.min_rtt = rng_.uniform_int(ranges_.rtt_lo, ranges_.rtt_hi);
  env.buffer_bytes = rng_.uniform_int(ranges_.buffer_lo, ranges_.buffer_hi);
  env.stochastic_loss = rng_.uniform(ranges_.loss_lo, ranges_.loss_hi);
  env.duration = ranges_.episode_length;
  run_seed = static_cast<std::uint64_t>(rng_.uniform_int(1, 1'000'000'000));
  return env;
}

EpisodeStats Trainer::run_in_env(const Scenario& env, const CcaFactory& make_cca,
                                 std::uint64_t run_seed) {
  auto net = run_scenario(env, {{make_cca}}, run_seed);

  EpisodeStats stats;
  RunSummary sum = summarize(*net, 0, env.duration);
  stats.throughput_bps = sum.total_throughput_bps;
  stats.avg_rtt_ms = sum.avg_delay_ms;
  stats.loss_rate = sum.flows.front().loss_rate;
  stats.link_utilization = sum.link_utilization;
  if (auto r = episode_reward_of(net->flow(0).sender().cca())) {
    stats.reward = r->first;
    stats.steps = r->second;
  }
  return stats;
}

EpisodeStats Trainer::run_episode(const CcaFactory& make_cca) {
  std::uint64_t run_seed = 0;
  Scenario env = sample_env(run_seed);
  return run_in_env(env, make_cca, run_seed);
}

std::vector<EpisodeStats> Trainer::train(const CcaFactory& make_cca, int episodes) {
  std::vector<EpisodeStats> curve;
  curve.reserve(static_cast<std::size_t>(episodes));
  for (int i = 0; i < episodes; ++i) curve.push_back(run_episode(make_cca));
  return curve;
}

std::vector<EpisodeStats> Trainer::train_parallel(
    const BrainBoundFactory& make_cca, const std::shared_ptr<RlBrain>& brain,
    int episodes, ThreadPool& pool, int round_size) {
  if (!brain) throw std::invalid_argument("train_parallel: brain required");
  if (round_size < 1) round_size = 1;

  struct EpisodeJob {
    Scenario env;
    std::uint64_t run_seed = 0;
    std::shared_ptr<RlBrain> collector;
    EpisodeStats stats;
    std::vector<PpoTransition> rollout;
    RunningNormalizer norm_delta{1};
  };

  std::vector<EpisodeStats> curve;
  curve.reserve(static_cast<std::size_t>(episodes));

  for (int done = 0; done < episodes; done += round_size) {
    const int r = std::min(round_size, episodes - done);
    std::vector<EpisodeJob> jobs(static_cast<std::size_t>(r));

    // Main thread, sequential: draw every stochastic input of the round (env
    // realizations, run seeds, per-episode agent RNG streams) and snapshot
    // the current policy into per-episode collector brains. Nothing below
    // depends on the pool's thread count.
    for (EpisodeJob& job : jobs) {
      job.env = sample_env(job.run_seed);
      PpoConfig cfg = brain->agent.config();
      cfg.seed = static_cast<std::uint64_t>(rng_.uniform_int(1, 1'000'000'000));
      cfg.collect_only = true;
      job.collector =
          std::make_shared<RlBrain>(std::move(cfg), brain->normalizer.dim());
      job.collector->agent.copy_parameters_from(brain->agent);
      job.collector->normalizer = brain->normalizer;
      job.collector->normalizer.begin_delta_collection();
    }

    // Fan the round's episodes out; each mutates only its own collector brain
    // and its own Network, so workers share nothing mutable.
    parallel_for_chunked(pool, 0, jobs.size(), 1, [&](std::size_t i) {
      EpisodeJob& job = jobs[i];
      job.stats = run_in_env(
          job.env, [&job, &make_cca] { return make_cca(job.collector); },
          job.run_seed);
      job.rollout = job.collector->agent.take_transitions(/*mark_final_done=*/true);
      job.norm_delta = job.collector->normalizer.take_delta();
    });

    // Ordered reduction on the main thread: the only writes to the master
    // brain. Episode order is submission order, so the learned weights are
    // bitwise identical at any thread count.
    for (EpisodeJob& job : jobs) {
      brain->normalizer.merge(job.norm_delta);
      brain->agent.ingest(std::move(job.rollout));
      curve.push_back(job.stats);
    }
  }
  return curve;
}

}  // namespace libra
