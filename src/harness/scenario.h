// Canonical experiment scenarios.
//
// Each Scenario fully determines a bottleneck (trace family, buffer, loss,
// min RTT) while leaving the stochastic trace realization to a per-run seed,
// so repeated-trial experiments (Fig. 2b, Tab. 6) get genuinely different
// trace draws.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "trace/lte_model.h"
#include "trace/rate_trace.h"

namespace libra {

struct Scenario {
  std::string name;
  /// Builds the capacity trace for a given run seed.
  std::function<std::shared_ptr<RateTrace>(std::uint64_t seed)> make_trace;
  SimDuration min_rtt = msec(30);
  std::int64_t buffer_bytes = 150 * 1000;
  double stochastic_loss = 0.0;
  SimDuration duration = sec(60);
  /// Nominal mean capacity (for reporting normalization).
  RateBps nominal_rate = 0;

  /// Datacenter & policed-path knobs (see sim/link.h for semantics). An
  /// ecn_threshold > 0 marks the scenario ECN-enabled; run_scenario stamps
  /// every flow's packets ECT so the marks reach the CCAs.
  std::int64_t ecn_threshold_bytes = 0;
  RateBps policer_rate = 0;
  std::int64_t policer_burst_bytes = 30 * 1000;
  bool policer_marks = false;
  SimTime policer_start = 0;
  SimTime policer_stop = kSimTimeMax;

  bool ecn_enabled() const { return ecn_threshold_bytes > 0 || policer_marks; }

  LinkConfig link_config(std::uint64_t seed) const {
    LinkConfig cfg;
    cfg.capacity = make_trace(seed);
    cfg.buffer_bytes = buffer_bytes;
    cfg.propagation_delay = min_rtt / 2;  // other half is the ACK path
    cfg.stochastic_loss = stochastic_loss;
    cfg.seed = seed ^ 0xABCDEF;
    cfg.ecn_threshold_bytes = ecn_threshold_bytes;
    cfg.policer_rate = policer_rate;
    cfg.policer_burst_bytes = policer_burst_bytes;
    cfg.policer_marks = policer_marks;
    cfg.policer_start = policer_start;
    cfg.policer_stop = policer_stop;
    return cfg;
  }
};

/// Fixed-rate wired bottleneck.
Scenario wired_scenario(double rate_mbps, SimDuration min_rtt = msec(30),
                        std::int64_t buffer_bytes = 150 * 1000);

/// Synthetic LTE cellular bottleneck for a mobility profile.
Scenario lte_scenario(LteProfile profile, const std::string& label,
                      SimDuration min_rtt = msec(30),
                      std::int64_t buffer_bytes = 150 * 1000);

/// Fig. 2(a): capacity steps every 10 s (cycling levels), 80 ms RTT, 1 BDP.
Scenario step_scenario();

/// The Fig. 1 sets: Wired#1-3 (24/48/96 Mbps) and LTE#1-3.
std::vector<Scenario> fig1_scenarios();

/// The Fig. 7 sets: 4 wired (12/24/48/96 Mbps) and 4 cellular traces.
std::vector<Scenario> wired_set();
std::vector<Scenario> cellular_set();

/// Synthetic WAN path profiles standing in for the EC2 experiments (Sec. 5.4):
/// inter-continental (long RTT, stochastic loss, capacity jitter) and
/// intra-continental (moderate RTT, mild loss).
Scenario wan_inter_continental();
Scenario wan_intra_continental();

/// Sec. 7 extensions: satellite-like (very long RTT + heavy stochastic loss)
/// and 5G-like (abrupt large capacity fluctuation).
Scenario satellite_scenario();
Scenario fiveg_scenario();

/// Datacenter path: fast wired bottleneck, short RTT, ECN step marking at
/// `ecn_threshold_bytes` (DCTCP's switch model). Pair with the dctcp CCA.
Scenario datacenter_ecn_scenario(double rate_mbps = 960,
                                 SimDuration min_rtt = msec(2),
                                 std::int64_t ecn_threshold_bytes = 45 * 1000);

/// Adversarial WAN path: the access link is fast but an ISP token-bucket
/// policer caps the flow at `policer_rate_mbps` from `policer_start` on —
/// the BBR lt_bw detection scenario.
Scenario policed_wan_scenario(double rate_mbps = 40, double policer_rate_mbps = 10,
                              std::int64_t burst_bytes = 30 * 1000,
                              SimTime policer_start = 0);

}  // namespace libra
