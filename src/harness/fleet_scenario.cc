#include "harness/fleet_scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace libra {

FleetSpec incast_fleet(int flows, double rate_mbps, SimDuration stagger) {
  FleetSpec spec;
  spec.name = "incast_" + std::to_string(flows);
  spec.hops = 1;
  spec.hop_rate_mbps = rate_mbps;
  spec.flows = flows;
  spec.stagger = stagger;
  return spec;
}

FleetSpec parking_lot_fleet(int hops, int cross_per_hop, int long_flows,
                            double rate_mbps) {
  FleetSpec spec;
  spec.name = "parking_lot_" + std::to_string(hops);
  spec.hops = hops;
  spec.hop_rate_mbps = rate_mbps;
  spec.flows = hops * cross_per_hop;
  spec.long_flows = long_flows;
  spec.span = 1;
  spec.stagger = msec(10);
  return spec;
}

std::vector<FleetFlowPlan> plan_fleet_flows(const FleetSpec& spec,
                                            std::uint64_t seed) {
  if (spec.hops < 1) throw std::invalid_argument("FleetSpec: hops must be >= 1");
  if (spec.flows < 0 || spec.long_flows < 0)
    throw std::invalid_argument("FleetSpec: negative flow count");
  if (spec.span < 1 || spec.span > spec.hops)
    throw std::invalid_argument("FleetSpec: span out of range");

  std::vector<FleetFlowPlan> plans;
  plans.reserve(static_cast<std::size_t>(spec.flows + spec.long_flows));

  // Static layout: pure arithmetic, no RNG involvement, so churn-off plans
  // match hand-written flow lists bit for bit.
  for (int i = 0; i < spec.long_flows; ++i) {
    FleetFlowPlan p;
    p.start = static_cast<SimTime>(i) * spec.stagger;
    p.enter_hop = 0;
    p.exit_hop = spec.hops - 1;
    plans.push_back(p);
  }
  for (int i = 0; i < spec.flows; ++i) {
    FleetFlowPlan p;
    p.start = static_cast<SimTime>(spec.long_flows + i) * spec.stagger;
    p.enter_hop = i % spec.hops;
    p.exit_hop = std::min(p.enter_hop + spec.span - 1, spec.hops - 1);
    plans.push_back(p);
  }

  if (spec.churn.enabled) {
    const FleetChurnSpec& c = spec.churn;
    if (c.arrivals_per_sec <= 0)
      throw std::invalid_argument("FleetChurnSpec: arrival rate must be > 0");
    if (c.pareto_alpha <= 0)
      throw std::invalid_argument("FleetChurnSpec: pareto_alpha must be > 0");
    if (c.min_bytes <= 0 || c.max_bytes < c.min_bytes)
      throw std::invalid_argument("FleetChurnSpec: bad size bounds");
    // Dedicated stream: the constant matches no other component's seed mix,
    // and static planning above never touches it.
    Rng rng(seed ^ 0xC0FFEE0Dull);
    const SimTime stop = std::min<SimTime>(c.stop, spec.duration);
    double t = to_seconds(c.start);
    const double horizon = to_seconds(stop);
    const double inv_alpha = 1.0 / c.pareto_alpha;
    while (true) {
      t += rng.exponential(c.arrivals_per_sec);
      if (t >= horizon) break;
      FleetFlowPlan p;
      p.start = sec(t);
      // Bounded Pareto via inverse transform of the plain Pareto CDF, then
      // truncation: size = min / (1-u)^(1/alpha), clamped to max_bytes.
      const double u = rng.uniform();
      const double raw =
          static_cast<double>(c.min_bytes) * std::pow(1.0 - u, -inv_alpha);
      p.byte_budget = std::min<std::int64_t>(
          c.max_bytes, static_cast<std::int64_t>(std::llround(
                           std::min(raw, static_cast<double>(c.max_bytes)))));
      p.byte_budget = std::max(p.byte_budget, c.min_bytes);
      p.enter_hop = static_cast<int>(rng.uniform_int(0, spec.hops - 1));
      p.exit_hop = std::min(p.enter_hop + spec.span - 1, spec.hops - 1);
      plans.push_back(p);
    }
  }
  return plans;
}

std::vector<FleetLink> fleet_links(const FleetSpec& spec) {
  std::vector<FleetLink> links(static_cast<std::size_t>(spec.hops));
  for (FleetLink& link : links) {
    link.rate = mbps(spec.hop_rate_mbps);
    link.buffer_bytes = spec.buffer_bytes;
    link.to_next_delay = spec.hop_delay;
    link.ecn_threshold_bytes = spec.ecn_threshold_bytes;
    link.policer_rate = spec.policer_rate_mbps > 0 ? mbps(spec.policer_rate_mbps) : 0;
    link.policer_burst_bytes = spec.policer_burst_bytes;
    link.policer_marks = spec.policer_marks;
    link.policer_start = spec.policer_start;
    link.policer_stop = spec.policer_stop;
  }
  return links;
}

FleetOptions fleet_options(const FleetSpec& spec, std::uint64_t seed,
                           const FleetRunOptions& run) {
  FleetOptions opts;
  opts.mode = run.mode;
  opts.threads = run.threads;
  opts.sender_shards = spec.sender_shards;
  opts.access_delay = spec.access_delay;
  opts.duration = spec.duration;
  opts.warmup = spec.warmup;
  opts.seed = seed;
  opts.sender.tick_interval = run.tick_interval;
  opts.sender.ecn_capable = spec.ecn_threshold_bytes > 0 || spec.policer_marks;
  opts.soa_scan = run.soa_scan;
  return opts;
}

FleetSummary run_fleet(
    const FleetSpec& spec,
    const std::function<std::unique_ptr<CongestionControl>(int flow)>& make_cca,
    std::uint64_t seed, const FleetRunOptions& run, FleetObsResult* obs) {
  std::vector<FleetFlowPlan> plans = plan_fleet_flows(spec, seed);
  FleetNetwork net(fleet_links(spec), fleet_options(spec, seed, run));
  if (run.health) net.enable_health(run.health_config.stats);
  if (run.record_capacity > 0) net.enable_recording(run.record_capacity);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    FleetFlowDef def;
    def.cca = make_cca(static_cast<int>(i));
    def.start = plans[i].start;
    def.stop = plans[i].stop;
    def.byte_budget = plans[i].byte_budget;
    def.enter_hop = plans[i].enter_hop;
    def.exit_hop = plans[i].exit_hop;
    net.add_flow(std::move(def));
  }
  net.run();
  if (obs) {
    obs->shard_events = net.shard_event_counts();
    if (run.health)
      obs->health = analyze_health(net.health()->timeline(), run.health_config);
    if (const FlightRecorder* rec = net.recorder()) {
      obs->trace_recorded = rec->recorded();
      obs->trace_overwritten = rec->overwritten();
      obs->trace_buffered = rec->buffered();
    }
  }
  return net.summarize();
}

FleetSummary run_fleet(const FleetSpec& spec, const CcaFactory& make_cca,
                       std::uint64_t seed, const FleetRunOptions& run,
                       FleetObsResult* obs) {
  return run_fleet(
      spec, [&make_cca](int) { return make_cca(); }, seed, run, obs);
}

}  // namespace libra
