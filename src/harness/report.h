// Plain-text table output used by the bench binaries to print the paper's
// tables and figure series in a uniform, diffable format.
//
// Structured output: when JsonReport is enabled (bench --json flag or the
// LIBRA_JSON_OUT environment variable, see bench/common.h), every section()
// and Table::print() call is additionally captured and serialized as one
// JSON document at process exit — benches get machine-readable output with
// no per-bench changes.
#pragma once

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace libra {

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline std::string fmt_pct(double frac, int precision = 1) {
  return fmt(frac * 100.0, precision) + "%";
}

/// Captures the bench's sections/tables and writes them as one JSON document
/// at exit. Disabled (and empty) unless enable() ran; all methods are cheap
/// no-ops while disabled.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// Starts capturing; the document is written when finalize() runs (benches
  /// register it via std::atexit in benchx::parse_args). Empty `path` means
  /// stdout.
  void enable(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = true;
    path_ = std::move(path);
  }

  bool enabled() const { return enabled_; }

  void set_bench(const std::string& id, const std::string& what) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    bench_id_ = id;
    bench_what_ = what;
  }

  void begin_section(const std::string& title) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    sections_.push_back(Section{title, {}});
  }

  void add_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (sections_.empty()) sections_.push_back(Section{"", {}});
    sections_.back().tables.push_back(CapturedTable{header, rows});
  }

  /// Attaches an arbitrary pre-serialized JSON value under `key` at the top
  /// level (e.g. a metrics registry snapshot). Later calls with the same key
  /// overwrite.
  void add_json(const std::string& key, std::string json_value) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [k, v] : extras_) {
      if (k == key) {
        v = std::move(json_value);
        return;
      }
    }
    extras_.emplace_back(key, std::move(json_value));
  }

  /// Serializes and writes the document (once; later calls are no-ops).
  void finalize() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || finalized_) return;
    finalized_ = true;
    std::string out = render_locked();
    if (path_.empty()) {
      std::fwrite(out.data(), 1, out.size(), stdout);
      std::fwrite("\n", 1, 1, stdout);
      std::fflush(stdout);
    } else {
      std::ofstream file(path_, std::ios::trunc);
      file << out << "\n";
    }
  }

 private:
  struct CapturedTable {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  struct Section {
    std::string title;
    std::vector<CapturedTable> tables;
  };

  std::string render_locked() const {
    std::string out;
    JsonWriter w(out);
    w.begin_object();
    w.key("bench").value(bench_id_);
    w.key("what").value(bench_what_);
    w.key("sections").begin_array();
    for (const Section& s : sections_) {
      w.begin_object();
      w.key("title").value(s.title);
      w.key("tables").begin_array();
      for (const CapturedTable& t : s.tables) {
        w.begin_object();
        w.key("header").begin_array();
        for (const std::string& h : t.header) w.value(h);
        w.end_array();
        w.key("rows").begin_array();
        for (const auto& row : t.rows) {
          w.begin_array();
          for (const std::string& cell : row) w.value(cell);
          w.end_array();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    // Raw pre-serialized extras (already valid JSON values).
    for (const auto& [key, json_value] : extras_) {
      w.key(key);
      out += json_value;
    }
    w.end_object();
    return out;
  }

  mutable std::mutex mu_;
  bool enabled_ = false;
  bool finalized_ = false;
  std::string path_;
  std::string bench_id_, bench_what_;
  std::vector<Section> sections_;
  std::vector<std::pair<std::string, std::string>> extras_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& out = std::cout) const {
    JsonReport::instance().add_table(header_, rows_);
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        out << std::left << std::setw(static_cast<int>(widths[i]) + 2)
            << (i < row.size() ? row[i] : "");
      }
      out << "\n";
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void section(const std::string& title, std::ostream& out = std::cout) {
  JsonReport::instance().begin_section(title);
  out << "\n=== " << title << " ===\n";
}

}  // namespace libra
