// Plain-text table output used by the bench binaries to print the paper's
// tables and figure series in a uniform, diffable format.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace libra {

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline std::string fmt_pct(double frac, int precision = 1) {
  return fmt(frac * 100.0, precision) + "%";
}

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        out << std::left << std::setw(static_cast<int>(widths[i]) + 2)
            << (i < row.size() ? row[i] : "");
      }
      out << "\n";
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void section(const std::string& title, std::ostream& out = std::cout) {
  out << "\n=== " << title << " ===\n";
}

}  // namespace libra
