// CCA registry ("zoo"): builds any algorithm in the repo by name and manages
// the trained brains the learned algorithms share. Brains are trained once
// per process (or loaded from a cache directory) so repeated-experiment
// benches reuse a single policy, as the paper's offline-trained agents do.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/trainer.h"
#include "learned/rl_cca.h"
#include "util/thread_pool.h"

namespace libra {

struct ZooConfig {
  /// Directory for cached trained policies; "" disables caching.
  std::string brain_dir = "brains";
  int train_episodes = 400;
  /// Hidden-layer width of the PPO actor/critic. The paper uses 512; the
  /// default trains fast with near-identical policy quality at these state
  /// sizes. The overhead benches use 512 to measure paper-scale model cost.
  std::size_t hidden_width = 64;
  std::uint64_t seed = 42;
  /// When false (default) learned CCAs act greedily during experiments, like
  /// the paper's frozen offline-trained models.
  bool experiment_training = false;
  /// Episodes collected per policy snapshot during training (see
  /// Trainer::train_parallel). A fixed algorithm parameter: changing it
  /// changes the trained policy, changing the thread count does not.
  int rollout_round = 8;
  /// Stream training telemetry (learning curves, PPO update stats) to
  /// `<brain_dir>/<family>.train.jsonl` while training. Needs brain_dir;
  /// pure observation — the trained weights are identical either way.
  bool train_telemetry = true;
  /// Competitor flows sharing the training bottleneck (see CompetitorMix).
  /// Default off, reproducing single-flow training bit-for-bit; training with
  /// competitors is what teaches the paper's fairness behaviour (Sec. 5).
  CompetitorMix train_competitors;
};

class CcaZoo {
 public:
  explicit CcaZoo(ZooConfig config = {});

  /// Names: cubic bbr newreno vegas westwood illinois copa compound dctcp
  /// sprout vivace proteus remy indigo aurora orca modified-rl libra-rl
  /// c-libra b-libra cl-libra. Throws std::out_of_range on unknown names.
  CcaFactory factory(const std::string& name);

  static std::vector<std::string> all_names();

  /// Trained (or loading/cached) brain for a learned family:
  /// "libra-rl", "aurora", "orca", "modified-rl".
  std::shared_ptr<RlBrain> brain(const std::string& family);

  /// The learned families brain() understands.
  static std::vector<std::string> brain_families();

  /// Trains (or loads) every brain family, fanning the independent trainings
  /// across `pool`. Each family owns its brain and a private Trainer seeded
  /// from the zoo config, so the result is bitwise-identical to training the
  /// families one after another.
  void train_all(ThreadPool& pool);
  void train_all();

  const ZooConfig& config() const { return config_; }

 private:
  std::shared_ptr<RlBrain> train_or_load(const std::string& family);

  ZooConfig config_;
  std::mutex brains_mu_;
  std::map<std::string, std::shared_ptr<RlBrain>> brains_;
};

}  // namespace libra
