#include "harness/parallel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace libra {

RunRequest RunRequest::single(Scenario scenario, CcaFactory factory,
                              std::uint64_t seed, SimDuration warmup) {
  RunRequest req;
  req.scenario = std::move(scenario);
  req.flows.push_back(FlowSpec{std::move(factory)});
  req.seed = seed;
  req.warmup = warmup;
  return req;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

double request_flow_seconds(const RunRequest& request) {
  double total = 0;
  const SimTime duration = request.scenario.duration;
  for (const FlowSpec& flow : request.flows) {
    const SimTime start = std::clamp<SimTime>(flow.start, 0, duration);
    const SimTime stop = std::clamp<SimTime>(flow.stop, start, duration);
    total += to_seconds(stop - start);
  }
  return total;
}

namespace {

// Shared state of one chunked loop. Helpers hold it by shared_ptr: a helper
// task that only gets scheduled after the loop finished finds no work and
// exits without touching freed memory.
struct ChunkLoop {
  std::function<void(std::size_t)> fn;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;
  std::size_t error_index = static_cast<std::size_t>(-1);

  // Claim-and-run until the cursor passes the end. Exceptions are recorded
  // (lowest index wins) and the loop keeps going, matching parallel_for's
  // "drain everything, rethrow first" contract.
  void drain() {
    for (;;) {
      std::size_t i0 = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (i0 >= end) return;
      std::size_t i1 = std::min(i0 + chunk, end);
      for (std::size_t i = i0; i < i1; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
        }
      }
      std::size_t done =
          completed.fetch_add(i1 - i0, std::memory_order_acq_rel) + (i1 - i0);
      if (done >= end) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t chunk,
                          const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (chunk == 0) throw std::invalid_argument("parallel_for_chunked: chunk must be > 0");

  auto loop = std::make_shared<ChunkLoop>();
  loop->fn = [&fn, begin](std::size_t i) { fn(begin + i); };
  loop->end = end - begin;  // work in [0, end-begin); offset restored in fn
  loop->chunk = chunk;

  // One helper per worker, capped by the chunk count (fewer chunks than
  // workers means the extras would find nothing to claim anyway). Futures are
  // deliberately dropped: if the pool is saturated — e.g. this call is nested
  // inside a pool task — the helpers may never run, and the caller's own
  // drain below still finishes the range.
  std::size_t chunks = (loop->end + chunk - 1) / chunk;
  std::size_t helpers = std::min(pool.thread_count(), chunks);
  for (std::size_t h = 1; h < helpers; ++h) pool.submit([loop] { loop->drain(); });

  loop->drain();

  // The cursor is exhausted, but helpers may still be mid-chunk; wait for
  // every index to complete before touching the error slot or returning
  // (fn may reference caller stack state).
  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->done_cv.wait(lock, [&] {
      return loop->completed.load(std::memory_order_acquire) >= loop->end;
    });
    if (loop->error) std::rethrow_exception(loop->error);
  }
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool,
                                 const RunManyOptions& options) {
  for (const RunRequest& req : requests) {
    if (req.flows.empty()) throw std::invalid_argument("run_many: request with no flows");
  }
  std::vector<RunSummary> results(requests.size());
  std::mutex progress_mu;
  RunProgress progress;
  progress.total = requests.size();
  std::vector<double> flow_seconds;
  if (options.on_progress) {
    flow_seconds.reserve(requests.size());
    for (const RunRequest& req : requests) {
      flow_seconds.push_back(request_flow_seconds(req));
      progress.total_flow_seconds += flow_seconds.back();
    }
  }
  parallel_for_chunked(pool, 0, requests.size(), 1, [&](std::size_t i) {
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) return;
    const RunRequest& req = requests[i];
    auto t0 = std::chrono::steady_clock::now();
    auto net = run_scenario(req.scenario, req.flows, req.seed, req.obs);
    results[i] = summarize(*net, req.warmup, req.scenario.duration);
    if (req.inspect) req.inspect(*net);
    if (options.metrics) {
      // Stamp batch-level series into the (still single-threaded) per-run
      // registry, then fold everything into the aggregate in one locked merge.
      double wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      MetricsRegistry& local = net->metrics();
      local.counter("runs").inc();
      local
          .histogram("run_wall_ms",
                     Histogram::exponential(1.0, 2.0, 20))  // 1 ms .. ~8.7 min
          .add(wall_ms);
      options.metrics->merge(local);
    }
    if (options.on_progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++progress.done;
      progress.completed_flow_seconds += flow_seconds[i];
      options.on_progress(progress);
    }
  });
  return results;
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool) {
  return run_many(requests, pool, RunManyOptions{});
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests) {
  return run_many(requests, default_pool(), RunManyOptions{});
}

AveragedSummary average_runs_parallel(const Scenario& scenario,
                                      const CcaFactory& factory, int runs,
                                      SimDuration warmup, ThreadPool& pool,
                                      std::uint64_t base_seed) {
  std::vector<RunRequest> batch;
  batch.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    batch.push_back(RunRequest::single(
        scenario, factory, base_seed + static_cast<std::uint64_t>(r), warmup));
  }
  std::vector<RunSummary> summaries = run_many(batch, pool);

  AveragedSummary avg;
  for (const RunSummary& s : summaries) {
    avg.link_utilization += s.link_utilization;
    avg.avg_delay_ms += s.avg_delay_ms;
    avg.throughput_bps += s.total_throughput_bps;
    avg.loss_rate += s.flows[0].loss_rate;
  }
  if (runs > 0) {
    avg.link_utilization /= runs;
    avg.avg_delay_ms /= runs;
    avg.throughput_bps /= runs;
    avg.loss_rate /= runs;
  }
  return avg;
}

}  // namespace libra
