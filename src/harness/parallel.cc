#include "harness/parallel.h"

#include <chrono>
#include <mutex>
#include <stdexcept>

namespace libra {

RunRequest RunRequest::single(Scenario scenario, CcaFactory factory,
                              std::uint64_t seed, SimDuration warmup) {
  RunRequest req;
  req.scenario = std::move(scenario);
  req.flows.push_back(FlowSpec{std::move(factory)});
  req.seed = seed;
  req.warmup = warmup;
  return req;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool,
                                 const RunManyOptions& options) {
  for (const RunRequest& req : requests) {
    if (req.flows.empty()) throw std::invalid_argument("run_many: request with no flows");
  }
  std::vector<RunSummary> results(requests.size());
  std::mutex progress_mu;
  std::size_t done = 0;
  pool.parallel_for(0, requests.size(), [&](std::size_t i) {
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) return;
    const RunRequest& req = requests[i];
    auto t0 = std::chrono::steady_clock::now();
    auto net = run_scenario(req.scenario, req.flows, req.seed, req.obs);
    results[i] = summarize(*net, req.warmup, req.scenario.duration);
    if (options.metrics) {
      // Stamp batch-level series into the (still single-threaded) per-run
      // registry, then fold everything into the aggregate in one locked merge.
      double wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      MetricsRegistry& local = net->metrics();
      local.counter("runs").inc();
      local
          .histogram("run_wall_ms",
                     Histogram::exponential(1.0, 2.0, 20))  // 1 ms .. ~8.7 min
          .add(wall_ms);
      options.metrics->merge(local);
    }
    if (options.on_progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++done;
      options.on_progress(done, requests.size());
    }
  });
  return results;
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool) {
  return run_many(requests, pool, RunManyOptions{});
}

std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests) {
  return run_many(requests, default_pool(), RunManyOptions{});
}

AveragedSummary average_runs_parallel(const Scenario& scenario,
                                      const CcaFactory& factory, int runs,
                                      SimDuration warmup, ThreadPool& pool,
                                      std::uint64_t base_seed) {
  std::vector<RunRequest> batch;
  batch.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    batch.push_back(RunRequest::single(
        scenario, factory, base_seed + static_cast<std::uint64_t>(r), warmup));
  }
  std::vector<RunSummary> summaries = run_many(batch, pool);

  AveragedSummary avg;
  for (const RunSummary& s : summaries) {
    avg.link_utilization += s.link_utilization;
    avg.avg_delay_ms += s.avg_delay_ms;
    avg.throughput_bps += s.total_throughput_bps;
    avg.loss_rate += s.flows[0].loss_rate;
  }
  if (runs > 0) {
    avg.link_utilization /= runs;
    avg.avg_delay_ms /= runs;
    avg.throughput_bps /= runs;
    avg.loss_rate /= runs;
  }
  return avg;
}

}  // namespace libra
