// Training loop for the RL congestion controllers.
//
// Mirrors the paper's training environment (Sec. 5): every episode samples a
// fresh network — link capacity 10-200 Mbps, min RTT 10-200 ms, buffer
// 10 KB-5 MB, stochastic loss 0-10% — starts a new flow, and lets the shared
// PPO brain learn across episodes.
//
// Two training modes:
//  * train(): the seed's serial loop — every episode acts directly on the
//    shared brain, updating mid-episode whenever the horizon fills.
//  * train_parallel(): round-based parallel rollout collection. Each round
//    snapshots the policy into per-episode collector brains (own RNG stream,
//    frozen-reference normalizer), fans the episodes across a thread pool,
//    then reduces transitions and normalizer deltas back into the master
//    brain in episode order. The reduction is the only place the master brain
//    mutates, so trained weights are bitwise identical at any thread count.
//
// Telemetry: set_telemetry() attaches a LineSink; training then streams one
// JSON object per line — {"ev":"episode",...} per finished episode,
// {"ev":"update",...} per PPO policy update (loss/clip/KL/entropy, via
// PpoAgent::update_observer), {"ev":"round",...} per parallel round with
// normalizer statistics. Pure observation: the trained weights are identical
// with or without a sink. Schema in EXPERIMENTS.md.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "harness/runner.h"
#include "learned/rl_cca.h"
#include "obs/sink.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace libra {

/// What a training episode's learner shares its bottleneck with. A flow kind
/// is drawn per competitor with the given weights; kSelf plays a frozen
/// snapshot of the current policy against the learner (self-play), which
/// requires train_parallel (the serial path has no brain handle to clone).
enum class CompetitorKind { kCubic, kBbr, kSelf };

struct CompetitorMix {
  /// Competitors per episode, drawn uniformly from [min_flows, max_flows].
  /// The default (0, 0) reproduces single-flow training exactly — including
  /// its RNG stream, since no competitor draws are consumed.
  int min_flows = 0, max_flows = 0;
  double w_cubic = 1.0, w_bbr = 1.0, w_self = 0.0;  // kind weights
  /// Competitor start times are staggered uniformly over [0, max_stagger] so
  /// the learner sees both empty-link startup and late-joiner dynamics.
  SimDuration max_stagger = sec(1);
  /// On/off duty cycling: the fraction of each on/off period a competitor
  /// spends sending. The default 1.0 keeps competitors on for their whole
  /// lifetime and consumes zero extra RNG draws, so legacy training streams
  /// stay bit-identical. For 0 < duty_on < 1 each competitor draws its period
  /// from [period_lo, period_hi] on the serial trainer stream and is realized
  /// as one flow per on-window, so the learner sees bursty departures and
  /// arrivals of cross traffic mid-episode.
  double duty_on = 1.0;
  SimDuration period_lo = sec(1), period_hi = sec(2);
};

struct TrainEnvRanges {
  double capacity_lo_mbps = 10, capacity_hi_mbps = 200;
  SimDuration rtt_lo = msec(10), rtt_hi = msec(200);
  std::int64_t buffer_lo = 10 * 1000, buffer_hi = 5 * 1000 * 1000;
  double loss_lo = 0.0, loss_hi = 0.10;
  SimDuration episode_length = sec(6);
  CompetitorMix competitors;
};

struct EpisodeStats {
  double reward = 0;       // cumulative agent reward over the episode
  int steps = 0;           // agent decisions taken
  double throughput_bps = 0;
  double avg_rtt_ms = 0;   // learner flow
  double loss_rate = 0;    // learner flow
  double link_utilization = 0;
  int competitors = 0;               // flows sharing the bottleneck
  double learner_throughput_bps = 0; // flow 0 alone (== throughput_bps solo)
  double fairness = 1.0;             // Jain index over all flows (1.0 solo)
};

/// Builds a controller bound to the given brain (training mode on) — the
/// factory shape parallel rollout collection needs, since each episode runs
/// against its own collector snapshot of the master brain.
using BrainBoundFactory =
    std::function<std::unique_ptr<CongestionControl>(const std::shared_ptr<RlBrain>&)>;

/// Pulls the cumulative episode reward out of a controller if it is one of
/// the RL types (RlCca, Orca, or a Libra wrapping an RlCca).
std::optional<std::pair<double, int>> episode_reward_of(CongestionControl& cca);

class Trainer {
 public:
  Trainer(TrainEnvRanges ranges, std::uint64_t seed)
      : ranges_(ranges), rng_(seed) {}

  /// Runs one episode in a freshly sampled environment; the factory must bind
  /// the controller to the brain being trained (training mode on).
  EpisodeStats run_episode(const CcaFactory& make_cca);

  /// Runs `episodes` episodes serially; returns per-episode stats.
  std::vector<EpisodeStats> train(const CcaFactory& make_cca, int episodes);

  /// Round-based parallel rollout collection into `brain` (see file header).
  /// `round_size` episodes are collected per policy snapshot; it is a fixed
  /// algorithm parameter — results depend on it, but NOT on the pool's thread
  /// count. Episode stats come back in episode order.
  std::vector<EpisodeStats> train_parallel(const BrainBoundFactory& make_cca,
                                           const std::shared_ptr<RlBrain>& brain,
                                           int episodes, ThreadPool& pool,
                                           int round_size = 8);

  /// Streams per-episode / per-update / per-round training statistics as
  /// JSONL through `sink` (nullptr disables). See the file header.
  void set_telemetry(std::shared_ptr<LineSink> sink) {
    telemetry_ = std::move(sink);
  }

 private:
  /// One competitor flow of an episode plan, fully realized on the main
  /// thread (kind, staggered start, and — for self-play — the frozen policy
  /// snapshot it runs), so episode workers consume no shared randomness.
  struct CompetitorSpec {
    CompetitorKind kind = CompetitorKind::kCubic;
    SimTime start = 0;
    /// On/off duty cycle (period drawn on the trainer stream); period == 0
    /// means always-on, the legacy single-window realization.
    SimDuration period = 0;
    double duty_on = 1.0;
    std::shared_ptr<RlBrain> self_brain;  // kSelf only
  };

  Scenario sample_env(std::uint64_t& run_seed);
  /// Draws this episode's competitor flows from the trainer RNG (consumes no
  /// draws when the mix is empty). `brain` is the master policy to snapshot
  /// for kSelf competitors; pass nullptr on the serial path, where drawing
  /// kSelf is an error.
  std::vector<CompetitorSpec> sample_competitors(const RlBrain* brain);
  EpisodeStats run_in_env(const Scenario& env, const CcaFactory& make_cca,
                          std::uint64_t run_seed,
                          const std::vector<CompetitorSpec>& competitors = {},
                          const BrainBoundFactory* self_factory = nullptr);
  void emit_episode(int index, const EpisodeStats& stats);

  TrainEnvRanges ranges_;
  Rng rng_;
  std::shared_ptr<LineSink> telemetry_;
};

}  // namespace libra
