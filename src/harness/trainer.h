// Training loop for the RL congestion controllers.
//
// Mirrors the paper's training environment (Sec. 5): every episode samples a
// fresh network — link capacity 10-200 Mbps, min RTT 10-200 ms, buffer
// 10 KB-5 MB, stochastic loss 0-10% — starts a new flow, and lets the shared
// PPO brain learn across episodes.
#pragma once

#include <optional>
#include <vector>

#include "harness/runner.h"
#include "util/rng.h"

namespace libra {

struct TrainEnvRanges {
  double capacity_lo_mbps = 10, capacity_hi_mbps = 200;
  SimDuration rtt_lo = msec(10), rtt_hi = msec(200);
  std::int64_t buffer_lo = 10 * 1000, buffer_hi = 5 * 1000 * 1000;
  double loss_lo = 0.0, loss_hi = 0.10;
  SimDuration episode_length = sec(6);
};

struct EpisodeStats {
  double reward = 0;       // cumulative agent reward over the episode
  int steps = 0;           // agent decisions taken
  double throughput_bps = 0;
  double avg_rtt_ms = 0;
  double loss_rate = 0;
  double link_utilization = 0;
};

/// Pulls the cumulative episode reward out of a controller if it is one of
/// the RL types (RlCca, Orca, or a Libra wrapping an RlCca).
std::optional<std::pair<double, int>> episode_reward_of(CongestionControl& cca);

class Trainer {
 public:
  Trainer(TrainEnvRanges ranges, std::uint64_t seed)
      : ranges_(ranges), rng_(seed) {}

  /// Runs one episode in a freshly sampled environment; the factory must bind
  /// the controller to the brain being trained (training mode on).
  EpisodeStats run_episode(const CcaFactory& make_cca);

  /// Runs `episodes` episodes; returns per-episode stats (learning curve).
  std::vector<EpisodeStats> train(const CcaFactory& make_cca, int episodes);

 private:
  TrainEnvRanges ranges_;
  Rng rng_;
};

}  // namespace libra
