// Parallel experiment engine: fans independent runs (seeds x scenarios x CCA
// factories) across a thread pool.
//
// Every run owns its Network and EventQueue, so parallelism is strictly
// per-run — nothing inside a simulation is shared mutably. Determinism
// guarantee: run_many() returns, in submission order, RunSummary values
// bitwise-identical to executing the same requests serially with run_single,
// provided each factory builds controllers that do not write shared state
// (all classic CCAs; learned CCAs in inference mode — frozen brains are
// read-only and policy sampling uses per-instance RNG streams).
//
// Thread count comes from the pool; default_pool() honours the LIBRA_THREADS
// environment variable, else uses every hardware thread.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace libra {

/// One experiment: a scenario realization (per-run seed) driven by flows.
struct RunRequest {
  Scenario scenario;
  /// Flows to attach; must be safe to invoke from worker threads.
  std::vector<FlowSpec> flows;
  std::uint64_t seed = 1;
  SimDuration warmup = sec(2);
  /// Per-run trace/recording switches (off by default). Give each request its
  /// own trace_path — requests must not share a file.
  ObsOptions obs;

  /// When set, invoked with the completed Network (on the worker thread,
  /// after summarize, before the network is destroyed). The escape hatch for
  /// experiments that need more than a RunSummary — e.g. per-flow time
  /// series. Must only touch state owned by this request.
  std::function<void(const Network&)> inspect;

  /// Single-flow convenience, mirroring run_single's signature.
  static RunRequest single(Scenario scenario, CcaFactory factory,
                           std::uint64_t seed, SimDuration warmup = sec(2));
};

/// Snapshot handed to RunManyOptions::on_progress after each completed run.
struct RunProgress {
  std::size_t done = 0;   ///< Runs completed so far (including this one).
  std::size_t total = 0;  ///< Runs in the batch.
  /// Simulated flow-seconds completed so far / in the whole batch: for each
  /// run, the sum over its flows of the active interval clamped to the
  /// scenario duration ([start, min(stop, duration))). Weights progress by
  /// how much simulated work each run carries, so a batch mixing short and
  /// long scenarios reports smoother progress than the raw run count.
  double completed_flow_seconds = 0;
  double total_flow_seconds = 0;
};

/// Flow-seconds one request contributes to RunProgress (see above).
double request_flow_seconds(const RunRequest& request);

/// Batch-level switches for run_many. All optional; none affect the returned
/// summaries (determinism guarantee unchanged).
struct RunManyOptions {
  /// Fired once per completed run, serialized under an internal mutex so the
  /// callback never runs concurrently with itself. `done`/`total` count runs;
  /// the flow-seconds fields weight progress by simulated work.
  std::function<void(const RunProgress&)> on_progress;
  /// Cooperative cancellation: when *cancel becomes true, runs that have not
  /// started are skipped (their result slots keep the default RunSummary,
  /// recognizable by empty .flows). In-flight runs finish normally.
  std::atomic<bool>* cancel = nullptr;
  /// When set, each run's metrics registry — plus a "runs" counter and a
  /// "run_wall_ms" histogram of per-run wall time — is merged here. merge()
  /// locks the destination, so workers aggregate safely.
  MetricsRegistry* metrics = nullptr;
};

/// Process-wide pool shared by the batch helpers (created on first use).
ThreadPool& default_pool();

/// Runs fn(i) for every i in [begin, end), claimed in chunks of `chunk`
/// indices from a shared atomic cursor (work-stealing style: fast workers
/// take more chunks). The caller drains chunks too, so the loop makes
/// progress — and cannot deadlock — even when invoked from inside a pool
/// task with every worker busy. Every index runs exactly once; the exception
/// from the lowest-claimed chunk is rethrown after the range drains.
void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t chunk,
                          const std::function<void(std::size_t)>& fn);

/// Runs every request on `pool` and returns summaries in submission order.
/// The first exception thrown by any run is rethrown after the batch drains.
std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool,
                                 const RunManyOptions& options);
std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests,
                                 ThreadPool& pool);
std::vector<RunSummary> run_many(const std::vector<RunRequest>& requests);

/// Mean per-seed metrics (the paper averages 5 runs; benches default 3).
struct AveragedSummary {
  double link_utilization = 0;
  double avg_delay_ms = 0;
  double throughput_bps = 0;
  double loss_rate = 0;  // of flow 0, matching the serial bench helper
};

/// Parallel replacement for the benches' seed-averaging loop: runs
/// `runs` single-flow experiments with seeds base_seed..base_seed+runs-1
/// and averages them. Deterministic: same inputs, same result, any pool.
AveragedSummary average_runs_parallel(const Scenario& scenario,
                                      const CcaFactory& factory, int runs,
                                      SimDuration warmup, ThreadPool& pool,
                                      std::uint64_t base_seed = 1000);

}  // namespace libra
