// Fleet-scale scenario builders: canonical many-flow topologies for the
// FleetNetwork engine.
//
// Two topology families cover the paper's multi-flow concerns at scale:
//
//  - Incast: N flows fan into one bottleneck hop, with optionally staggered
//    start times. Stress-tests fairness (Jain index across the fan-in) and
//    the engine's per-tick scan cost, which is what bench_fleet measures.
//  - Parking lot: a chain of H bottleneck hops where `long_flows` span the
//    whole chain and the remaining flows are per-hop cross traffic spanning
//    `span` hops each. The classic multi-bottleneck fairness topology.
//
// Flow plans are built by plan_fleet_flows() before the network exists, on a
// dedicated serial RNG stream: static (non-churn) plans draw NOTHING from the
// stream, so enabling churn — which draws exponential inter-arrivals and
// truncated-Pareto flow sizes — never perturbs any other seeded component,
// and churn-off plans are bitwise identical to hand-written static plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "obs/health.h"
#include "sim/fleet.h"

namespace libra {

/// Staggered flow arrivals with heavy-tailed (bounded Pareto) sizes.
struct FleetChurnSpec {
  bool enabled = false;
  /// Mean arrival rate of short flows (Poisson process).
  double arrivals_per_sec = 20.0;
  /// Pareto shape; alpha in (1, 2] gives the classic heavy-tailed mix where
  /// most flows are mice but most bytes ride elephants.
  double pareto_alpha = 1.2;
  /// Pareto scale = minimum flow size.
  std::int64_t min_bytes = 15 * 1000;
  /// Truncation bound so a single draw cannot dominate the whole run.
  std::int64_t max_bytes = 30 * 1000 * 1000;
  /// Arrival process active over [start, stop).
  SimTime start = sec(1);
  SimTime stop = kSimTimeMax;
};

struct FleetSpec {
  std::string name;
  /// Number of bottleneck hops in the chain (1 = incast).
  int hops = 1;
  double hop_rate_mbps = 96.0;
  std::int64_t buffer_bytes = 150 * 1000;
  /// Hop-to-next propagation (cross-shard edge; bounds the lookahead).
  SimDuration hop_delay = msec(5);
  SimDuration access_delay = msec(2);
  /// Long-lived flows. For incast every flow enters hop 0; for a parking lot
  /// `long_flows` of them span the whole chain and the rest are cross
  /// traffic, flow i entering hop (i % hops) and spanning `span` hops.
  int flows = 100;
  int long_flows = 0;
  int span = 1;
  /// Per-flow start stagger: flow i starts at i * stagger.
  SimDuration stagger = 0;
  SimDuration duration = sec(10);
  SimTime warmup = sec(1);
  /// Shards dedicated to senders (FleetOptions::sender_shards).
  int sender_shards = 0;
  FleetChurnSpec churn;

  /// Datacenter & policed-path knobs (see sim/link.h for semantics). An
  /// ecn_threshold > 0 also makes every sender ECN-capable, so the marks
  /// actually reach the CCAs; the policer applies to every hop of the chain
  /// (the canonical policed specs are single-bottleneck anyway).
  std::int64_t ecn_threshold_bytes = 0;
  double policer_rate_mbps = 0;
  std::int64_t policer_burst_bytes = 30 * 1000;
  bool policer_marks = false;
  SimTime policer_start = 0;
  SimTime policer_stop = kSimTimeMax;
};

/// One planned flow: everything FleetNetwork::add_flow needs except the CCA.
struct FleetFlowPlan {
  SimTime start = 0;
  SimTime stop = kSimTimeMax;
  std::int64_t byte_budget = -1;  // negative = backlogged long flow
  int enter_hop = 0;
  int exit_hop = -1;
};

/// N-flow single-bottleneck fan-in.
FleetSpec incast_fleet(int flows, double rate_mbps = 960.0,
                       SimDuration stagger = msec(10));

/// H-hop chain: `long_flows` spanning flows plus per-hop cross traffic.
FleetSpec parking_lot_fleet(int hops, int cross_per_hop, int long_flows = 4,
                            double rate_mbps = 96.0);

/// Expands the spec into concrete flow plans. Static flows are laid out
/// arithmetically with zero RNG draws; churn flows (if enabled) are drawn
/// from a dedicated Rng seeded with `seed` — exponential inter-arrival times
/// and bounded-Pareto sizes, appended after the static flows in arrival
/// order. Deterministic: same (spec, seed) always yields the same plan.
std::vector<FleetFlowPlan> plan_fleet_flows(const FleetSpec& spec,
                                            std::uint64_t seed);

struct FleetRunOptions {
  FleetMode mode = FleetMode::kSerial;
  std::size_t threads = 0;
  SimDuration tick_interval = msec(10);
  /// false: per-sender self-scheduled tick timers (the naive baseline the
  /// SoA scan is benchmarked against; see FleetOptions::soa_scan).
  bool soa_scan = true;
  /// Streaming windowed health stats + anomaly detection; works under both
  /// engines and never perturbs the run. Read the report back through the
  /// FleetObsResult out-parameter of run_fleet.
  bool health = false;
  HealthConfig health_config;
  /// >0: black-box FlightRecorder ring of this many events (bounded memory,
  /// oldest overwritten). Serial mode only.
  std::size_t record_capacity = 0;
};

/// Observability outputs of a fleet run (everything summarize() doesn't
/// cover). All fields are deterministic: the health report and the per-shard
/// event counts are bitwise identical serial vs. sharded.
struct FleetObsResult {
  HealthReport health;  // empty unless FleetRunOptions::health
  std::uint64_t trace_recorded = 0;  // black-box ring stats (record_capacity)
  std::uint64_t trace_overwritten = 0;
  std::uint64_t trace_buffered = 0;
  std::vector<std::uint64_t> shard_events;  // events executed per shard
};

/// Builds FleetOptions for the spec (shared by both run_fleet overloads).
FleetOptions fleet_options(const FleetSpec& spec, std::uint64_t seed,
                           const FleetRunOptions& run);

/// Builds the hop chain for the spec.
std::vector<FleetLink> fleet_links(const FleetSpec& spec);

/// Plans flows, builds the network, attaches `make_cca()` per flow, runs to
/// spec.duration and summarizes. `make_cca` is invoked once per flow in flow
/// order (so shared-state factories see a deterministic sequence). When `obs`
/// is non-null it receives the run's observability outputs (health report,
/// black-box trace stats, per-shard event counts).
FleetSummary run_fleet(const FleetSpec& spec, const CcaFactory& make_cca,
                       std::uint64_t seed, const FleetRunOptions& run = {},
                       FleetObsResult* obs = nullptr);

/// As above but the factory sees the flow id (mixed-CCA fleets).
FleetSummary run_fleet(
    const FleetSpec& spec,
    const std::function<std::unique_ptr<CongestionControl>(int flow)>& make_cca,
    std::uint64_t seed, const FleetRunOptions& run = {},
    FleetObsResult* obs = nullptr);

}  // namespace libra
