#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace libra {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5*ln(2*pi)
}

PpoAgent::PpoAgent(PpoConfig config)
    : config_(std::move(config)), rng_(config_.seed), log_std_(config_.init_log_std) {
  if (config_.state_dim == 0) throw std::invalid_argument("PpoAgent: state_dim required");
  std::vector<std::size_t> actor_sizes{config_.state_dim};
  actor_sizes.insert(actor_sizes.end(), config_.hidden.begin(), config_.hidden.end());
  actor_sizes.push_back(1);
  std::vector<std::size_t> critic_sizes = actor_sizes;

  actor_ = std::make_unique<Mlp>(actor_sizes, rng_);
  critic_ = std::make_unique<Mlp>(critic_sizes, rng_);
  actor_opt_ = std::make_unique<AdamOptimizer>(*actor_, AdamConfig{.learning_rate = config_.actor_lr});
  critic_opt_ = std::make_unique<AdamOptimizer>(*critic_, AdamConfig{.learning_rate = config_.critic_lr});
  buffer_.reserve(config_.horizon);
}

double PpoAgent::exploration_stddev() const { return std::exp(log_std_); }

double PpoAgent::log_prob(double action, double mean) const {
  double sd = std::exp(log_std_);
  double z = (action - mean) / sd;
  return -0.5 * z * z - log_std_ - kHalfLog2Pi;
}

double PpoAgent::act(const Vector& state) {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act: state dim mismatch");

  double value = critic_->evaluate1(state);
  if (buffer_.size() >= config_.horizon) update(value);

  double mean = actor_->evaluate1(state);
  double action = mean + std::exp(log_std_) * rng_.normal();

  Transition t;
  t.state = state;
  t.action = action;
  t.log_prob = log_prob(action, mean);
  t.value = value;
  pending_ = std::move(t);
  return action;
}

double PpoAgent::act_greedy(const Vector& state) const {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act_greedy: state dim mismatch");
  return actor_->evaluate1(state);
}

double PpoAgent::act_sampled(const Vector& state) {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act_sampled: state dim mismatch");
  return actor_->evaluate1(state) + std::exp(log_std_) * rng_.normal();
}

void PpoAgent::give_reward(double reward, bool done) {
  if (!pending_) return;  // reward with no opened transition: drop
  pending_->reward = reward;
  pending_->done = done;
  buffer_.push_back(std::move(*pending_));
  pending_.reset();
}

void PpoAgent::update(double bootstrap_value) {
  const std::size_t n = buffer_.size();
  if (n == 0) return;

  // GAE-lambda advantages computed backward through the rollout.
  Vector advantages(n, 0.0), returns(n, 0.0);
  double next_value = bootstrap_value;
  double gae = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& t = buffer_[i];
    double not_done = t.done ? 0.0 : 1.0;
    double delta = t.reward + config_.gamma * next_value * not_done - t.value;
    gae = delta + config_.gamma * config_.gae_lambda * not_done * gae;
    advantages[i] = gae;
    returns[i] = gae + t.value;
    next_value = t.value;
  }

  // Normalize advantages for stable step sizes.
  double mean = std::accumulate(advantages.begin(), advantages.end(), 0.0) /
                static_cast<double>(n);
  double var = 0.0;
  for (double a : advantages) var += (a - mean) * (a - mean);
  double sd = std::sqrt(var / static_cast<double>(n)) + 1e-8;
  for (double& a : advantages) a = (a - mean) / sd;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_.engine());
    for (std::size_t start = 0; start < n; start += config_.minibatch) {
      std::size_t end = std::min(start + config_.minibatch, n);
      double batch = static_cast<double>(end - start);
      double log_std_grad = 0.0;
      double sd_now = std::exp(log_std_);

      for (std::size_t k = start; k < end; ++k) {
        const Transition& t = buffer_[order[k]];
        double adv = advantages[order[k]];
        double ret = returns[order[k]];

        // Actor: clipped surrogate. Gradient flows only when the unclipped
        // ratio is the active branch.
        double mu = actor_->forward(t.state)[0];
        double logp = log_prob(t.action, mu);
        double ratio = std::exp(logp - t.log_prob);
        double clipped = std::clamp(ratio, 1.0 - config_.clip_ratio,
                                    1.0 + config_.clip_ratio);
        bool unclipped_active = ratio * adv <= clipped * adv + 1e-12;
        if (unclipped_active) {
          // dL/dlogp = -adv * ratio ; dlogp/dmu = (a - mu)/sd^2
          double dl_dlogp = -adv * ratio;
          double dlogp_dmu = (t.action - mu) / (sd_now * sd_now);
          actor_->backward({dl_dlogp * dlogp_dmu});
          // dlogp/dlog_std = z^2 - 1
          double z = (t.action - mu) / sd_now;
          log_std_grad += dl_dlogp * (z * z - 1.0);
        }
        // Entropy bonus: H = log_std + const; loss -= coef*H.
        log_std_grad -= config_.entropy_coef;

        // Critic: 0.5*(V - ret)^2.
        double v = critic_->forward(t.state)[0];
        critic_->backward({v - ret});
      }

      actor_opt_->step(1.0 / batch);
      critic_opt_->step(1.0 / batch);
      log_std_ -= log_std_opt_.step(log_std_grad / batch);
      log_std_ = std::clamp(log_std_, config_.min_log_std, config_.max_log_std);
    }
  }

  buffer_.clear();
  ++updates_;
}

void PpoAgent::save(std::ostream& out) const {
  out.precision(17);
  out << log_std_ << '\n';
  actor_->save(out);
  critic_->save(out);
}

void PpoAgent::load(std::istream& in) {
  in >> log_std_;
  actor_->load(in);
  critic_->load(in);
}

std::int64_t PpoAgent::memory_bytes() const {
  // Parameters (actor + critic) plus two Adam moment mirrors each.
  auto params = static_cast<std::int64_t>(actor_->parameter_count() +
                                          critic_->parameter_count());
  return params * 3 * static_cast<std::int64_t>(sizeof(double));
}

}  // namespace libra
