#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "obs/profiler.h"

namespace libra {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5*ln(2*pi)
}

PpoAgent::PpoAgent(PpoConfig config)
    : config_(std::move(config)), rng_(config_.seed), log_std_(config_.init_log_std) {
  if (config_.state_dim == 0) throw std::invalid_argument("PpoAgent: state_dim required");
  if (config_.minibatch == 0) throw std::invalid_argument("PpoAgent: minibatch required");
  std::vector<std::size_t> actor_sizes{config_.state_dim};
  actor_sizes.insert(actor_sizes.end(), config_.hidden.begin(), config_.hidden.end());
  actor_sizes.push_back(1);
  std::vector<std::size_t> critic_sizes = actor_sizes;

  actor_ = std::make_unique<Mlp>(actor_sizes, rng_);
  critic_ = std::make_unique<Mlp>(critic_sizes, rng_);
  actor_opt_ = std::make_unique<AdamOptimizer>(*actor_, AdamConfig{.learning_rate = config_.actor_lr});
  critic_opt_ = std::make_unique<AdamOptimizer>(*critic_, AdamConfig{.learning_rate = config_.critic_lr});
  buffer_.reserve(config_.horizon + 1);

  // Size every update() workspace up front: all dims are known here, so the
  // training loop never allocates (see the alloc-counting test).
  actor_ws_.configure(*actor_, config_.minibatch);
  critic_ws_.configure(*critic_, config_.minibatch);
  advantages_.reserve(config_.horizon + 1);
  returns_.reserve(config_.horizon + 1);
  order_.reserve(config_.horizon + 1);
  mb_action_.resize(config_.minibatch);
  mb_old_logp_.resize(config_.minibatch);
  mb_adv_.resize(config_.minibatch);
  mb_ret_.resize(config_.minibatch);
}

double PpoAgent::exploration_stddev() const { return std::exp(log_std_); }

double PpoAgent::log_prob(double action, double mean) const {
  double sd = std::exp(log_std_);
  double z = (action - mean) / sd;
  return -0.5 * z * z - log_std_ - kHalfLog2Pi;
}

double PpoAgent::act(const Vector& state) {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act: state dim mismatch");

  double value = critic_->evaluate1(state);
  if (!config_.collect_only && buffer_.size() >= config_.horizon) update(value);

  double mean = actor_->evaluate1(state);
  double action = mean + std::exp(log_std_) * rng_.normal();

  PpoTransition t;
  t.state = state;
  t.action = action;
  t.log_prob = log_prob(action, mean);
  t.value = value;
  pending_ = std::move(t);
  return action;
}

double PpoAgent::act_greedy(const Vector& state) const {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act_greedy: state dim mismatch");
  return actor_->evaluate1(state);
}

double PpoAgent::act_sampled(const Vector& state) {
  if (state.size() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act_sampled: state dim mismatch");
  return actor_->evaluate1(state) + std::exp(log_std_) * rng_.normal();
}

void PpoAgent::configure_policy_workspace(MlpWorkspace& ws,
                                          std::size_t max_batch) const {
  ws.configure(*actor_, max_batch);
}

void PpoAgent::act_greedy_batch(MlpWorkspace& ws, Vector& out) const {
  if (ws.input().cols() != config_.state_dim)
    throw std::invalid_argument("PpoAgent::act_greedy_batch: state dim mismatch");
  actor_->forward_batch(ws);
  const Matrix& o = ws.output();
  out.resize(o.rows());
  // The actor's output layer is 1-wide; column 0 is the policy mean.
  for (std::size_t i = 0; i < o.rows(); ++i) out[i] = o(i, 0);
}

void PpoAgent::give_reward(double reward, bool done) {
  if (!pending_) return;  // reward with no opened transition: drop
  pending_->reward = reward;
  pending_->done = done;
  buffer_.push_back(std::move(*pending_));
  pending_.reset();
}

void PpoAgent::copy_parameters_from(const PpoAgent& other) {
  actor_->copy_parameters_from(*other.actor_);
  critic_->copy_parameters_from(*other.critic_);
  log_std_ = other.log_std_;
}

std::vector<PpoTransition> PpoAgent::take_transitions(bool mark_final_done) {
  pending_.reset();
  if (mark_final_done && !buffer_.empty()) buffer_.back().done = true;
  std::vector<PpoTransition> out = std::move(buffer_);
  buffer_.clear();
  buffer_.reserve(config_.horizon + 1);
  return out;
}

void PpoAgent::ingest(std::vector<PpoTransition> batch) {
  for (PpoTransition& t : batch) {
    // Bootstrap from the incoming transition's recorded value: V(s_next) under
    // the policy that collected it — the ordered-replay analogue of act()'s
    // "update before acting on the state that overflows the horizon".
    if (buffer_.size() >= config_.horizon) update(t.value);
    buffer_.push_back(std::move(t));
  }
}

void PpoAgent::flush_update(double bootstrap_value) { update(bootstrap_value); }

void PpoAgent::update(double bootstrap_value) {
  PROF_SCOPE("ppo.update");
  const std::size_t n = buffer_.size();
  if (n == 0) return;

  {
    PROF_SCOPE("ppo.gae");
    // GAE-lambda advantages computed backward through the rollout. The vectors
    // live in reserved capacity (<= horizon), so no allocation.
    advantages_.resize(n);
    returns_.resize(n);
    double next_value = bootstrap_value;
    double gae = 0.0;
    for (std::size_t i = n; i-- > 0;) {
      const PpoTransition& t = buffer_[i];
      double not_done = t.done ? 0.0 : 1.0;
      double delta = t.reward + config_.gamma * next_value * not_done - t.value;
      gae = delta + config_.gamma * config_.gae_lambda * not_done * gae;
      advantages_[i] = gae;
      returns_[i] = gae + t.value;
      next_value = t.value;
    }

    // Normalize advantages for stable step sizes.
    double mean = std::accumulate(advantages_.begin(), advantages_.end(), 0.0) /
                  static_cast<double>(n);
    double var = 0.0;
    for (double a : advantages_) var += (a - mean) * (a - mean);
    double sd = std::sqrt(var / static_cast<double>(n)) + 1e-8;
    for (double& a : advantages_) a = (a - mean) / sd;
  }

  // Training-dynamics accumulators (observer telemetry). Pure reads of values
  // the loss/gradient path computes anyway: the weight updates are bit-
  // identical whether or not anyone listens.
  double stat_policy_loss = 0, stat_value_loss = 0, stat_kl = 0;
  std::uint64_t stat_clipped = 0, stat_rows = 0;

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});

  const std::size_t dim = config_.state_dim;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order_.begin(), order_.end(), rng_.engine());
    for (std::size_t start = 0; start < n; start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, n);
      const std::size_t b = end - start;
      const double batch = static_cast<double>(b);
      const double sd_now = std::exp(log_std_);
      double log_std_grad = 0.0;

      // Assemble the minibatch: states as one (b x dim) matrix shared by the
      // actor and critic passes, scalars into flat arrays.
      actor_ws_.set_batch(b);
      critic_ws_.set_batch(b);
      Vector& states = actor_ws_.input().data();
      for (std::size_t k = start; k < end; ++k) {
        const PpoTransition& t = buffer_[order_[k]];
        const std::size_t row = k - start;
        std::copy(t.state.begin(), t.state.end(), states.begin() +
                  static_cast<std::ptrdiff_t>(row * dim));
        mb_action_[row] = t.action;
        mb_old_logp_[row] = t.log_prob;
        mb_adv_[row] = advantages_[order_[k]];
        mb_ret_[row] = returns_[order_[k]];
      }
      critic_ws_.input().data() = states;  // same capacity: plain copy, no alloc

      // Actor: clipped surrogate over the whole minibatch. Gradient flows
      // only for rows where the unclipped ratio is the active branch.
      {
        PROF_SCOPE("ppo.forward");
        actor_->forward_batch(actor_ws_);
      }
      const Vector& mu = actor_ws_.output().data();  // (b x 1)
      Vector& dmu = actor_ws_.output_grad().data();
      for (std::size_t row = 0; row < b; ++row) {
        double adv = mb_adv_[row];
        double logp = log_prob(mb_action_[row], mu[row]);
        double ratio = std::exp(logp - mb_old_logp_[row]);
        double clipped = std::clamp(ratio, 1.0 - config_.clip_ratio,
                                    1.0 + config_.clip_ratio);
        stat_policy_loss -= std::min(ratio * adv, clipped * adv);
        stat_kl += mb_old_logp_[row] - logp;
        if (std::abs(ratio - 1.0) > config_.clip_ratio) ++stat_clipped;
        bool unclipped_active = ratio * adv <= clipped * adv + 1e-12;
        if (unclipped_active) {
          // dL/dlogp = -adv * ratio ; dlogp/dmu = (a - mu)/sd^2
          double dl_dlogp = -adv * ratio;
          dmu[row] = dl_dlogp * (mb_action_[row] - mu[row]) / (sd_now * sd_now);
          // dlogp/dlog_std = z^2 - 1
          double z = (mb_action_[row] - mu[row]) / sd_now;
          log_std_grad += dl_dlogp * (z * z - 1.0);
        } else {
          dmu[row] = 0.0;
        }
        // Entropy bonus: H = log_std + const; loss -= coef*H.
        log_std_grad -= config_.entropy_coef;
      }
      {
        PROF_SCOPE("ppo.backward");
        actor_->backward_batch(actor_ws_);
      }

      // Critic: 0.5*(V - ret)^2 over the same minibatch.
      {
        PROF_SCOPE("ppo.forward");
        critic_->forward_batch(critic_ws_);
      }
      const Vector& v = critic_ws_.output().data();
      Vector& dv = critic_ws_.output_grad().data();
      for (std::size_t row = 0; row < b; ++row) {
        dv[row] = v[row] - mb_ret_[row];
        stat_value_loss += 0.5 * dv[row] * dv[row];
      }
      stat_rows += b;
      {
        PROF_SCOPE("ppo.backward");
        critic_->backward_batch(critic_ws_);
      }

      {
        PROF_SCOPE("ppo.adam");
        actor_opt_->step(1.0 / batch);
        critic_opt_->step(1.0 / batch);
        log_std_ -= log_std_opt_.step(log_std_grad / batch);
        log_std_ = std::clamp(log_std_, config_.min_log_std, config_.max_log_std);
      }
    }
  }

  buffer_.clear();
  ++updates_;

  if (update_observer && stat_rows > 0) {
    const double rows = static_cast<double>(stat_rows);
    PpoUpdateStats stats;
    stats.update = updates_;
    stats.transitions = n;
    stats.policy_loss = stat_policy_loss / rows;
    stats.value_loss = stat_value_loss / rows;
    stats.clip_fraction = static_cast<double>(stat_clipped) / rows;
    stats.approx_kl = stat_kl / rows;
    // Differential entropy of the Gaussian policy: log_std + 0.5*ln(2*pi*e).
    stats.entropy = log_std_ + kHalfLog2Pi + 0.5;
    update_observer(stats);
  }
}

void PpoAgent::save(std::ostream& out) const {
  out.precision(17);
  out << log_std_ << '\n';
  actor_->save(out);
  critic_->save(out);
}

void PpoAgent::load(std::istream& in) {
  in >> log_std_;
  actor_->load(in);
  critic_->load(in);
}

std::int64_t PpoAgent::memory_bytes() const {
  // Parameters (actor + critic) plus two Adam moment mirrors each.
  auto params = static_cast<std::int64_t>(actor_->parameter_count() +
                                          critic_->parameter_count());
  return params * 3 * static_cast<std::int64_t>(sizeof(double));
}

}  // namespace libra
