#include "rl/mlp.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace libra {

Mlp::Mlp(const std::vector<std::size_t>& sizes, Rng& rng) : sizes_(sizes) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least in+out sizes");
  for (std::size_t s : sizes)
    if (s == 0) throw std::invalid_argument("Mlp: zero-width layer");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    Layer layer;
    layer.weights = Matrix(sizes[i + 1], sizes[i]);
    layer.bias = Vector(sizes[i + 1], 0.0);
    layer.grad_weights = Matrix(sizes[i + 1], sizes[i]);
    layer.grad_bias = Vector(sizes[i + 1], 0.0);
    double bound = std::sqrt(6.0 / static_cast<double>(sizes[i] + sizes[i + 1]));
    for (double& w : layer.weights.data()) w = rng.uniform(-bound, bound);
    layers_.push_back(std::move(layer));
  }
}

Vector Mlp::forward(const Vector& input) {
  if (input.size() != sizes_.front()) throw std::invalid_argument("Mlp: bad input size");
  // In-place writes keep the cache's buffers alive across calls: after the
  // first pass no forward() allocates.
  activations_.resize(layers_.size() + 1);
  activations_[0] = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Vector& z = activations_[i + 1];
    layers_[i].weights.multiply_into(activations_[i], z);
    axpy(z, layers_[i].bias, 1.0);
    if (i + 1 < layers_.size()) {
      for (double& v : z) v = std::tanh(v);
    }
  }
  return activations_.back();
}

void Mlp::evaluate_into(const Vector& input, Vector& out) const {
  if (input.size() != sizes_.front()) throw std::invalid_argument("Mlp: bad input size");
  // Per-thread ping-pong scratch: concurrent evaluation of one shared frozen
  // model from the parallel experiment engine must not share buffers.
  thread_local Vector ping, pong;
  const Vector* x = &input;
  bool use_ping = true;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Vector& z = last ? out : (use_ping ? ping : pong);
    layers_[i].weights.multiply_into(*x, z);
    axpy(z, layers_[i].bias, 1.0);
    if (!last) {
      for (double& v : z) v = std::tanh(v);
    }
    x = &z;
    use_ping = !use_ping;
  }
}

double Mlp::evaluate1(const Vector& input) const {
  thread_local Vector out;
  evaluate_into(input, out);
  return out[0];
}

Vector Mlp::evaluate(const Vector& input) const {
  Vector out;
  evaluate_into(input, out);
  return out;
}

Vector Mlp::backward(const Vector& grad_output) {
  if (activations_.size() != layers_.size() + 1)
    throw std::logic_error("Mlp::backward without a cached forward pass");
  grad_cur_ = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    // For hidden layers the cached activation is tanh(z); d tanh = 1 - a^2.
    if (i + 1 < layers_.size()) {
      const Vector& act = activations_[i + 1];
      for (std::size_t j = 0; j < grad_cur_.size(); ++j)
        grad_cur_[j] *= 1.0 - act[j] * act[j];
    }
    layers_[i].grad_weights.add_outer(grad_cur_, activations_[i]);
    axpy(layers_[i].grad_bias, grad_cur_, 1.0);
    layers_[i].weights.multiply_transposed_into(grad_cur_, grad_next_);
    std::swap(grad_cur_, grad_next_);
  }
  return grad_cur_;
}

void Mlp::zero_gradients() {
  for (Layer& l : layers_) {
    l.grad_weights.fill(0.0);
    std::fill(l.grad_bias.begin(), l.grad_bias.end(), 0.0);
  }
}

void Mlp::save(std::ostream& out) const {
  out << sizes_.size();
  for (std::size_t s : sizes_) out << ' ' << s;
  out << '\n';
  out.precision(17);
  for (const Layer& l : layers_) {
    for (double w : l.weights.data()) out << w << ' ';
    for (double b : l.bias) out << b << ' ';
    out << '\n';
  }
}

void Mlp::load(std::istream& in) {
  std::size_t n = 0;
  in >> n;
  if (n != sizes_.size()) throw std::runtime_error("Mlp::load: layer-count mismatch");
  for (std::size_t expected : sizes_) {
    std::size_t got = 0;
    in >> got;
    if (got != expected) throw std::runtime_error("Mlp::load: layer-size mismatch");
  }
  for (Layer& l : layers_) {
    for (double& w : l.weights.data()) in >> w;
    for (double& b : l.bias) in >> b;
  }
  if (!in) throw std::runtime_error("Mlp::load: truncated parameter stream");
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.weights.size() + l.bias.size();
  return n;
}

}  // namespace libra
