#include "rl/mlp.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "rl/matrix_simd.h"
#include "rl/simd.h"

namespace libra {

namespace {

// Activation kernels, dispatched like the GEMM layer. The AVX2 tanh pads its
// remainder into a full vector, so each element's result is independent of
// position — batched and per-sample activations stay bitwise identical.
inline void tanh_inplace(double* x, std::size_t n) {
  if (simd::use_avx2()) {
    simd::tanh_inplace_avx2(x, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

inline void tanh_backprop(double* g, const double* act, std::size_t n) {
  if (simd::use_avx2()) {
    simd::tanh_backprop_avx2(g, act, n);  // bitwise identical to scalar
    return;
  }
  for (std::size_t j = 0; j < n; ++j) g[j] *= 1.0 - act[j] * act[j];
}

}  // namespace

void MlpWorkspace::configure(const Mlp& net, std::size_t max_batch) {
  const std::vector<std::size_t>& sizes = net.sizes();
  acts.resize(sizes.size());
  deltas.resize(sizes.size() - 1);
  for (std::size_t i = 0; i < sizes.size(); ++i) acts[i].resize(max_batch, sizes[i]);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    deltas[i].resize(max_batch, sizes[i + 1]);
  input_grad.resize(max_batch, sizes.front());
}

void MlpWorkspace::set_batch(std::size_t batch) {
  for (Matrix& m : acts) m.resize(batch, m.cols());
  for (Matrix& m : deltas) m.resize(batch, m.cols());
  input_grad.resize(batch, input_grad.cols());
}

Mlp::Mlp(const std::vector<std::size_t>& sizes, Rng& rng) : sizes_(sizes) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least in+out sizes");
  for (std::size_t s : sizes)
    if (s == 0) throw std::invalid_argument("Mlp: zero-width layer");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    Layer layer;
    layer.weights = Matrix(sizes[i + 1], sizes[i]);
    layer.bias = Vector(sizes[i + 1], 0.0);
    layer.grad_weights = Matrix(sizes[i + 1], sizes[i]);
    layer.grad_bias = Vector(sizes[i + 1], 0.0);
    double bound = std::sqrt(6.0 / static_cast<double>(sizes[i] + sizes[i + 1]));
    for (double& w : layer.weights.data()) w = rng.uniform(-bound, bound);
    layers_.push_back(std::move(layer));
  }
  ws1_.configure(*this, 1);
}

void Mlp::forward_batch(MlpWorkspace& ws) const {
  const std::size_t batch = ws.acts.front().rows();
  if (ws.acts.front().cols() != sizes_.front())
    throw std::invalid_argument("Mlp::forward_batch: bad input width");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix& z = ws.acts[i + 1];
    z.resize(batch, sizes_[i + 1]);
    // z = acts_i * W^T + b, row-broadcast. Wide layers (512x512 is 2 MB of
    // weights) go through the cache-blocked kernel, which is bitwise
    // identical to the flat one; narrow layers stay on the flat kernel where
    // the tiling loop overhead isn't paid for.
    const Matrix& w = layers_[i].weights;
    if (batch >= 4 && w.size() >= 32768) {
      gemm_transB_blocked(ws.acts[i], w, z);
    } else {
      gemm_transB(ws.acts[i], w, z);
    }
    add_row_broadcast(z, layers_[i].bias);
    if (i + 1 < layers_.size()) {
      tanh_inplace(z.data().data(), z.data().size());
    }
  }
}

void Mlp::backward_batch(MlpWorkspace& ws, bool want_input_grad) {
  const std::size_t batch = ws.acts.front().rows();
  if (ws.deltas.back().rows() != batch ||
      ws.deltas.back().cols() != sizes_.back())
    throw std::logic_error("Mlp::backward_batch: output_grad shape mismatch");
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Matrix& dz = ws.deltas[i];
    // For hidden layers the cached activation is tanh(z); d tanh = 1 - a^2.
    if (i + 1 < layers_.size()) {
      const Vector& act = ws.acts[i + 1].data();
      Vector& g = dz.data();
      tanh_backprop(g.data(), act.data(), g.size());
    }
    // grad_W += dZ^T * acts_i ; grad_b += column sums of dZ.
    gemm_transA(dz, ws.acts[i], layers_[i].grad_weights, /*accumulate=*/true);
    add_col_sums(dz, layers_[i].grad_bias);
    if (i > 0) {
      // dA_i = dZ_i * W_i, feeding the next (lower) layer's tanh' pass.
      gemm(dz, layers_[i].weights, ws.deltas[i - 1]);
    } else if (want_input_grad) {
      ws.input_grad.resize(batch, sizes_.front());
      gemm(dz, layers_[i].weights, ws.input_grad);
    }
  }
}

Vector Mlp::forward(const Vector& input) {
  if (input.size() != sizes_.front()) throw std::invalid_argument("Mlp: bad input size");
  // Batch of one through the member workspace: after construction no
  // forward() allocates (out1_ grows once).
  ws1_.set_batch(1);
  std::copy(input.begin(), input.end(), ws1_.input().data().begin());
  forward_batch(ws1_);
  has_forward_ = true;
  out1_ = ws1_.output().data();
  return out1_;
}

void Mlp::evaluate_into(const Vector& input, Vector& out) const {
  if (input.size() != sizes_.front()) throw std::invalid_argument("Mlp: bad input size");
  // Per-thread ping-pong scratch: concurrent evaluation of one shared frozen
  // model from the parallel experiment engine must not share buffers.
  thread_local Vector ping, pong;
  const Vector* x = &input;
  bool use_ping = true;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Vector& z = last ? out : (use_ping ? ping : pong);
    layers_[i].weights.multiply_into(*x, z);
    axpy(z, layers_[i].bias, 1.0);
    if (!last) {
      tanh_inplace(z.data(), z.size());
    }
    x = &z;
    use_ping = !use_ping;
  }
}

double Mlp::evaluate1(const Vector& input) const {
  thread_local Vector out;
  evaluate_into(input, out);
  return out[0];
}

Vector Mlp::evaluate(const Vector& input) const {
  Vector out;
  evaluate_into(input, out);
  return out;
}

Vector Mlp::backward(const Vector& grad_output) {
  if (!has_forward_)
    throw std::logic_error("Mlp::backward without a cached forward pass");
  if (grad_output.size() != sizes_.back())
    throw std::invalid_argument("Mlp::backward: bad grad_output size");
  std::copy(grad_output.begin(), grad_output.end(),
            ws1_.output_grad().data().begin());
  backward_batch(ws1_, /*want_input_grad=*/true);
  in_grad1_ = ws1_.input_grad.data();
  return in_grad1_;
}

void Mlp::zero_gradients() {
  for (Layer& l : layers_) {
    l.grad_weights.fill(0.0);
    std::fill(l.grad_bias.begin(), l.grad_bias.end(), 0.0);
  }
}

void Mlp::copy_parameters_from(const Mlp& other) {
  if (other.sizes_ != sizes_)
    throw std::invalid_argument("Mlp::copy_parameters_from: shape mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].weights.data() = other.layers_[i].weights.data();
    layers_[i].bias = other.layers_[i].bias;
  }
}

void Mlp::save(std::ostream& out) const {
  out << sizes_.size();
  for (std::size_t s : sizes_) out << ' ' << s;
  out << '\n';
  out.precision(17);
  for (const Layer& l : layers_) {
    for (double w : l.weights.data()) out << w << ' ';
    for (double b : l.bias) out << b << ' ';
    out << '\n';
  }
}

void Mlp::load(std::istream& in) {
  std::size_t n = 0;
  in >> n;
  if (n != sizes_.size()) throw std::runtime_error("Mlp::load: layer-count mismatch");
  for (std::size_t expected : sizes_) {
    std::size_t got = 0;
    in >> got;
    if (got != expected) throw std::runtime_error("Mlp::load: layer-size mismatch");
  }
  for (Layer& l : layers_) {
    for (double& w : l.weights.data()) in >> w;
    for (double& b : l.bias) in >> b;
  }
  if (!in) throw std::runtime_error("Mlp::load: truncated parameter stream");
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.weights.size() + l.bias.size();
  return n;
}

}  // namespace libra
