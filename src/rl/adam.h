// Adam optimizer bound to an Mlp's accumulated gradients, plus a scalar
// variant for standalone parameters (the Gaussian policy's log-std).
#pragma once

#include <cmath>
#include <vector>

#include "rl/mlp.h"

namespace libra {

struct AdamConfig {
  double learning_rate = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class AdamOptimizer {
 public:
  AdamOptimizer(Mlp& net, AdamConfig config = {}) : net_(net), config_(config) {
    for (const Mlp::Layer& l : net_.layers()) {
      m_.emplace_back(l.weights.size() + l.bias.size(), 0.0);
      v_.emplace_back(l.weights.size() + l.bias.size(), 0.0);
    }
  }

  /// Applies one Adam step from the gradients accumulated in the network
  /// (optionally pre-scaled by 1/batch via `grad_scale`), then zeroes them.
  void step(double grad_scale = 1.0) {
    ++t_;
    double bc1 = 1.0 - std::pow(config_.beta1, t_);
    double bc2 = 1.0 - std::pow(config_.beta2, t_);
    for (std::size_t li = 0; li < net_.layers().size(); ++li) {
      Mlp::Layer& layer = net_.layers()[li];
      std::size_t wn = layer.weights.size();
      for (std::size_t i = 0; i < wn + layer.bias.size(); ++i) {
        double g = (i < wn ? layer.grad_weights.data()[i] : layer.grad_bias[i - wn]) *
                   grad_scale;
        double& m = m_[li][i];
        double& v = v_[li][i];
        m = config_.beta1 * m + (1.0 - config_.beta1) * g;
        v = config_.beta2 * v + (1.0 - config_.beta2) * g * g;
        double update = config_.learning_rate * (m / bc1) /
                        (std::sqrt(v / bc2) + config_.epsilon);
        if (i < wn) {
          layer.weights.data()[i] -= update;
        } else {
          layer.bias[i - wn] -= update;
        }
      }
    }
    net_.zero_gradients();
  }

 private:
  Mlp& net_;
  AdamConfig config_;
  std::vector<std::vector<double>> m_, v_;
  long t_ = 0;
};

/// Adam for a single scalar parameter.
class ScalarAdam {
 public:
  explicit ScalarAdam(AdamConfig config = {}) : config_(config) {}

  double step(double grad) {
    ++t_;
    m_ = config_.beta1 * m_ + (1.0 - config_.beta1) * grad;
    v_ = config_.beta2 * v_ + (1.0 - config_.beta2) * grad * grad;
    double mh = m_ / (1.0 - std::pow(config_.beta1, t_));
    double vh = v_ / (1.0 - std::pow(config_.beta2, t_));
    return config_.learning_rate * mh / (std::sqrt(vh) + config_.epsilon);
  }

 private:
  AdamConfig config_;
  double m_ = 0.0, v_ = 0.0;
  long t_ = 0;
};

}  // namespace libra
