// Adam optimizer bound to an Mlp's accumulated gradients, plus a scalar
// variant for standalone parameters (the Gaussian policy's log-std).
//
// step() is fused over contiguous parameter slabs: moments live in one flat
// arena per network, and each layer's weights and biases are updated by a
// single branch-free loop over raw spans — no per-element layout dispatch,
// no allocation.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "rl/matrix_simd.h"
#include "rl/mlp.h"
#include "rl/simd.h"

namespace libra {

struct AdamConfig {
  double learning_rate = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class AdamOptimizer {
 public:
  AdamOptimizer(Mlp& net, AdamConfig config = {}) : net_(net), config_(config) {
    std::size_t total = 0;
    for (const Mlp::Layer& l : net_.layers()) total += l.weights.size() + l.bias.size();
    m_.assign(total, 0.0);
    v_.assign(total, 0.0);
  }

  /// Applies one Adam step from the gradients accumulated in the network
  /// (optionally pre-scaled by 1/batch via `grad_scale`), then zeroes them.
  void step(double grad_scale = 1.0) {
    ++t_;
    const double bc1 = 1.0 - std::pow(config_.beta1, t_);
    const double bc2 = 1.0 - std::pow(config_.beta2, t_);
    std::size_t off = 0;
    for (Mlp::Layer& layer : net_.layers()) {
      update_span(layer.weights.data().data(), layer.grad_weights.data().data(),
                  layer.weights.size(), off, grad_scale, bc1, bc2);
      off += layer.weights.size();
      update_span(layer.bias.data(), layer.grad_bias.data(), layer.bias.size(),
                  off, grad_scale, bc1, bc2);
      off += layer.bias.size();
    }
    net_.zero_gradients();
  }

 private:
  void update_span(double* param, const double* grad, std::size_t n,
                   std::size_t off, double grad_scale, double bc1, double bc2) {
    double* m = &m_[off];
    double* v = &v_[off];
    const double b1 = config_.beta1, b2 = config_.beta2;
    const double lr = config_.learning_rate, eps = config_.epsilon;
    if (simd::use_avx2()) {
      simd::adam_span_avx2(param, grad, m, v, n, grad_scale, b1, b2, bc1, bc2,
                           lr, eps);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double g = grad[i] * grad_scale;
      m[i] = b1 * m[i] + (1.0 - b1) * g;
      v[i] = b2 * v[i] + (1.0 - b2) * g * g;
      param[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
  }

  Mlp& net_;
  AdamConfig config_;
  std::vector<double> m_, v_;  // one contiguous moment slab per network
  long t_ = 0;
};

/// Adam for a single scalar parameter.
class ScalarAdam {
 public:
  explicit ScalarAdam(AdamConfig config = {}) : config_(config) {}

  double step(double grad) {
    ++t_;
    m_ = config_.beta1 * m_ + (1.0 - config_.beta1) * grad;
    v_ = config_.beta2 * v_ + (1.0 - config_.beta2) * grad * grad;
    double mh = m_ / (1.0 - std::pow(config_.beta1, t_));
    double vh = v_ / (1.0 - std::pow(config_.beta2, t_));
    return config_.learning_rate * mh / (std::sqrt(vh) + config_.epsilon);
  }

 private:
  AdamConfig config_;
  double m_ = 0.0, v_ = 0.0;
  long t_ = 0;
};

}  // namespace libra
