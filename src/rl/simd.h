// Runtime ISA dispatch for the dense kernel set in rl/matrix.h.
//
// Policy: one process-global dispatch decision, made once at static-init time
// from CPUID feature detection (AVX2 + FMA + OS xsave support, via
// __builtin_cpu_supports) and the LIBRA_SIMD environment variable, then read
// by every kernel through a relaxed atomic load. The decision is process-wide
// rather than per-call so a simulation is a pure function of (binary, inputs,
// LIBRA_SIMD): results are bitwise reproducible run-to-run at a given ISA.
//
// Determinism contract (mirrors the fixed-accumulation-order notes in
// matrix.h):
//  - kScalar is the pre-SIMD kernel set, verbatim. LIBRA_SIMD=off output is
//    bitwise identical to builds that predate the dispatch layer.
//  - kAvx2 dot-product kernels use one uniform accumulation structure: two
//    4-lane vertical accumulator chains stepping k by 8, reduced in a fixed
//    tree, with the k%8 remainder folded in scalar index order via std::fma.
//    Every dot product in the process — matvec, flat and blocked gemm_transB,
//    any batch size — shares that structure, so per-sample and batched
//    inference stay bitwise identical to each other, just as in scalar mode.
//  - Axpy-style kernels (gemm, gemm_transA, axpy, Adam) keep the scalar
//    per-element accumulation order; the only cross-ISA drift is FMA's single
//    rounding, which the ULP-bound tests in tests/simd_test.cc assert.
//  - Element-wise kernels without contractions (row broadcast, column sums,
//    normalize_into) are bitwise identical across ISAs.
//
// LIBRA_SIMD values: "off"/"scalar"/"0" force the scalar fallback;
// "avx2" requests AVX2 (silently falling back when unsupported);
// unset/""/"auto"/"on"/"1" auto-detect.
#pragma once

#include <atomic>

namespace libra::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

namespace detail {
// The active dispatch decision. Defined in simd.cc, initialized by a static
// initializer there; kernels in headers read it with a relaxed load (a plain
// register read on x86), so dispatch adds no synchronization to hot loops.
extern std::atomic<int> g_active_isa;
}  // namespace detail

/// True when this build carries the AVX2 kernel translation unit (x86-64
/// compilers with -mavx2 -mfma support). When false, dispatch is pinned to
/// scalar regardless of the host CPU.
bool compiled_with_avx2();

/// True when the host CPU (and OS, via xgetbv) supports AVX2 + FMA and the
/// AVX2 kernels are compiled in.
bool avx2_supported();

/// The ISA the kernel layer is currently dispatching to.
inline Isa active() {
  return static_cast<Isa>(detail::g_active_isa.load(std::memory_order_relaxed));
}

/// Hot-path dispatch predicate used by the kernels in matrix.h et al.
inline bool use_avx2() {
  return detail::g_active_isa.load(std::memory_order_relaxed) ==
         static_cast<int>(Isa::kAvx2);
}

/// Forces the dispatch decision, e.g. `force(Isa::kScalar)` for the
/// --deterministic bench mode or for scalar-vs-AVX2 comparison tests.
/// Requests for an unsupported ISA fall back to scalar. Returns the ISA
/// actually installed. Allocation-free; callers must not race it against
/// in-flight kernels if they need a consistent mode for a whole computation.
Isa force(Isa isa);

/// Maps a LIBRA_SIMD value to the ISA it requests (capped by host support).
/// Exposed for tests; `nullptr` (unset) means auto-detect.
Isa isa_from_env_value(const char* value);

/// Re-reads LIBRA_SIMD from the environment and reinstalls the dispatch
/// decision. Called once automatically at static-init time; tests call it
/// again after setenv() to exercise the override path.
Isa init_from_env();

/// Short stable name for baseline files and bench reports: "scalar" | "avx2".
const char* isa_name(Isa isa);

}  // namespace libra::simd
