// Dense row-major matrix and vector helpers sized for the small MLPs used by
// the RL congestion controllers, plus a small GEMM/GEMV kernel set operating
// on caller-owned buffers so training loops run allocation-free.
// No external dependencies.
//
// Every kernel dispatches once, via simd::use_avx2() (a relaxed atomic load),
// between the scalar bodies below — kept verbatim as the LIBRA_SIMD=off
// fallback, bitwise identical to pre-dispatch builds — and the AVX2+FMA
// microkernels in matrix_simd.cc. See rl/simd.h for the determinism contract.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "rl/matrix_simd.h"
#include "rl/simd.h"

namespace libra {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  /// Reshapes in place. Shrinking (or growing back within the high-water
  /// capacity) never allocates — workspaces size themselves once for the
  /// largest batch and then resize per minibatch for free.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// y = W x, written into a caller-owned buffer (resized to `rows`); lets
  /// inference loops reuse scratch space instead of allocating per layer.
  /// Shape checks are assert-based: this is the per-ACK hot path, and every
  /// caller's dimensions are fixed at network construction.
  void multiply_into(const Vector& x, Vector& y) const {
    assert(x.size() == cols_ && "Matrix::multiply: dim mismatch");
    assert(&x != &y && "Matrix::multiply: aliased in/out");
    y.resize(rows_);
    if (simd::use_avx2()) {
      // Same dot contract as gemm_transB with m == 1, so per-sample
      // inference stays bitwise identical to batched rows.
      simd::matvec_avx2(data_.data(), x.data(), y.data(), rows_, cols_);
      return;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      double acc = 0.0;
      const double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  }

  /// y = W x  (rows x cols) * (cols) -> (rows)
  Vector multiply(const Vector& x) const {
    Vector y;
    multiply_into(x, y);
    return y;
  }

  /// y = W^T x, into a caller-owned buffer (resized to `cols`).
  void multiply_transposed_into(const Vector& x, Vector& y) const {
    assert(x.size() == rows_ && "multiply_transposed: dim mismatch");
    assert(&x != &y && "multiply_transposed: aliased in/out");
    y.assign(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
    }
  }

  /// y = W^T x  (rows x cols)^T * (rows) -> (cols)
  Vector multiply_transposed(const Vector& x) const {
    Vector y;
    multiply_transposed_into(x, y);
    return y;
  }

  /// this += scale * (a outer b), a has `rows` entries, b has `cols` entries.
  void add_outer(const Vector& a, const Vector& b, double scale = 1.0) {
    assert(a.size() == rows_ && b.size() == cols_ && "add_outer: dim mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
      double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) row[c] += scale * a[r] * b[c];
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

inline void axpy(Vector& y, const Vector& x, double a) {
  if (y.size() != x.size()) throw std::invalid_argument("axpy: dim mismatch");
  if (simd::use_avx2()) {
    simd::axpy_avx2(y.data(), x.data(), a, y.size());
    return;
  }
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

// --- Batched kernels --------------------------------------------------------
//
// All kernels write into caller-owned, pre-sized outputs and allocate nothing:
// they are the training hot path, driven per minibatch from Ppo::update.
// Shape checks are assert-based like the Matrix fast paths above. Accumulation
// order is fixed (row-major, leftmost index outermost) so results are bitwise
// reproducible and, for the batch dimension, identical to processing the rows
// one at a time.

/// C = A * B (+ C when `accumulate`). A (m x k), B (k x n), C (m x n).
inline void gemm(const Matrix& a, const Matrix& b, Matrix& c,
                 bool accumulate = false) {
  assert(a.cols() == b.rows() && "gemm: inner dim mismatch");
  assert(c.rows() == a.rows() && c.cols() == b.cols() && "gemm: out dim mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (simd::use_avx2()) {
    simd::gemm_avx2(a.data().data(), b.data().data(), c.data().data(), m, k, n,
                    accumulate);
    return;
  }
  if (!accumulate) c.fill(0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = &a.data()[i * k];
    double* crow = &c.data()[i * n];
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = arow[p];
      const double* brow = &b.data()[p * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

/// C = A^T * B (+ C when `accumulate`). A (k x m), B (k x n), C (m x n).
/// With A = dZ and B = activations this accumulates a whole minibatch of
/// weight gradients in one pass, matching per-sample add_outer ordering.
inline void gemm_transA(const Matrix& a, const Matrix& b, Matrix& c,
                        bool accumulate = false) {
  assert(a.rows() == b.rows() && "gemm_transA: inner dim mismatch");
  assert(c.rows() == a.cols() && c.cols() == b.cols() && "gemm_transA: out dim mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (simd::use_avx2()) {
    simd::gemm_transA_avx2(a.data().data(), b.data().data(), c.data().data(),
                           k, m, n, accumulate);
    return;
  }
  if (!accumulate) c.fill(0.0);
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = &a.data()[p * m];
    const double* brow = &b.data()[p * n];
    for (std::size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      double* crow = &c.data()[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

/// C = A * B^T (+ C when `accumulate`). A (m x k), B (n x k), C (m x n).
/// The forward-pass shape: activations (batch x in) times weights (out x in).
///
/// Register-blocked 2x4: each step of the k loop feeds 8 independent
/// accumulator chains, hiding FP-add latency (a single-accumulator dot
/// product caps the whole MLP at one FMA per ~4 cycles). Every c(i,j) is
/// still a pure sequential sum over k, so results are bitwise identical to
/// the naive triple loop at any block size.
inline void gemm_transB(const Matrix& a, const Matrix& b, Matrix& c,
                        bool accumulate = false) {
  assert(a.cols() == b.cols() && "gemm_transB: inner dim mismatch");
  assert(c.rows() == a.rows() && c.cols() == b.rows() && "gemm_transB: out dim mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const double* adata = a.data().data();
  const double* bdata = b.data().data();
  double* cdata = c.data().data();
  if (simd::use_avx2()) {
    simd::gemm_transB_avx2(adata, bdata, cdata, m, k, n, accumulate);
    return;
  }

  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = adata + i * k;
    const double* a1 = a0 + k;
    double* c0 = cdata + i * n;
    double* c1 = c0 + n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = bdata + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s00 = accumulate ? c0[j] : 0.0, s01 = accumulate ? c0[j + 1] : 0.0;
      double s02 = accumulate ? c0[j + 2] : 0.0, s03 = accumulate ? c0[j + 3] : 0.0;
      double s10 = accumulate ? c1[j] : 0.0, s11 = accumulate ? c1[j + 1] : 0.0;
      double s12 = accumulate ? c1[j + 2] : 0.0, s13 = accumulate ? c1[j + 3] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double x0 = a0[p], x1 = a1[p];
        const double w0 = b0[p], w1 = b1[p], w2 = b2[p], w3 = b3[p];
        s00 += x0 * w0; s01 += x0 * w1; s02 += x0 * w2; s03 += x0 * w3;
        s10 += x1 * w0; s11 += x1 * w1; s12 += x1 * w2; s13 += x1 * w3;
      }
      c0[j] = s00; c0[j + 1] = s01; c0[j + 2] = s02; c0[j + 3] = s03;
      c1[j] = s10; c1[j + 1] = s11; c1[j + 2] = s12; c1[j + 3] = s13;
    }
    for (; j < n; ++j) {
      const double* brow = bdata + j * k;
      double s0 = accumulate ? c0[j] : 0.0;
      double s1 = accumulate ? c1[j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        s0 += a0[p] * brow[p];
        s1 += a1[p] * brow[p];
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < m; ++i) {
    const double* arow = adata + i * k;
    double* crow = cdata + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = bdata + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s0 = accumulate ? crow[j] : 0.0, s1 = accumulate ? crow[j + 1] : 0.0;
      double s2 = accumulate ? crow[j + 2] : 0.0, s3 = accumulate ? crow[j + 3] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double x = arow[p];
        s0 += x * b0[p]; s1 += x * b1[p]; s2 += x * b2[p]; s3 += x * b3[p];
      }
      crow[j] = s0; crow[j + 1] = s1; crow[j + 2] = s2; crow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* brow = bdata + j * k;
      double acc = accumulate ? crow[j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

/// Cache-blocked gemm_transB, sized for wide (512-unit) layers. C = A * B^T
/// (+ C when `accumulate`). A (m x k), B (n x k), C (m x n).
///
/// At 512x512 a weight matrix is 2 MB — far past L2 — so the flat kernel
/// streams the whole of B from memory for every pair of A rows. This variant
/// tiles B's rows (jb output neurons at a time) and the shared k dimension
/// (kb inputs at a time) so one (jb x kb) panel of B — 128 KB at the default
/// tile — is reused across every row of A before moving on.
///
/// Bitwise identity with gemm_transB: the microkernel always accumulates into
/// C, so each c(i,j) is extended in place across k tiles, visited in
/// increasing-k order — exactly the flat kernel's single sequential sum.
inline void gemm_transB_blocked(const Matrix& a, const Matrix& b, Matrix& c,
                                bool accumulate = false, std::size_t jb = 64,
                                std::size_t kb = 256) {
  assert(a.cols() == b.cols() && "gemm_transB_blocked: inner dim mismatch");
  assert(c.rows() == a.rows() && c.cols() == b.rows() &&
         "gemm_transB_blocked: out dim mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const double* adata = a.data().data();
  const double* bdata = b.data().data();
  double* cdata = c.data().data();
  if (simd::use_avx2()) {
    // The AVX2 dot contract is never split across k tiles (that would change
    // the accumulation tree), so the blocked variant tiles only B's rows; kb
    // is accepted for interface compatibility and ignored.
    simd::gemm_transB_blocked_avx2(adata, bdata, cdata, m, k, n, accumulate, jb);
    return;
  }
  if (!accumulate) c.fill(0.0);

  for (std::size_t k0 = 0; k0 < k; k0 += kb) {
    const std::size_t k1 = std::min(k, k0 + kb);
    for (std::size_t j0 = 0; j0 < n; j0 += jb) {
      const std::size_t j1 = std::min(n, j0 + jb);
      // 2x4 register-blocked microkernel over the panel, accumulating into C.
      std::size_t i = 0;
      for (; i + 2 <= m; i += 2) {
        const double* a0 = adata + i * k;
        const double* a1 = a0 + k;
        double* c0 = cdata + i * n;
        double* c1 = c0 + n;
        std::size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const double* b0 = bdata + j * k;
          const double* b1 = b0 + k;
          const double* b2 = b1 + k;
          const double* b3 = b2 + k;
          double s00 = c0[j], s01 = c0[j + 1], s02 = c0[j + 2], s03 = c0[j + 3];
          double s10 = c1[j], s11 = c1[j + 1], s12 = c1[j + 2], s13 = c1[j + 3];
          for (std::size_t p = k0; p < k1; ++p) {
            const double x0 = a0[p], x1 = a1[p];
            const double w0 = b0[p], w1 = b1[p], w2 = b2[p], w3 = b3[p];
            s00 += x0 * w0; s01 += x0 * w1; s02 += x0 * w2; s03 += x0 * w3;
            s10 += x1 * w0; s11 += x1 * w1; s12 += x1 * w2; s13 += x1 * w3;
          }
          c0[j] = s00; c0[j + 1] = s01; c0[j + 2] = s02; c0[j + 3] = s03;
          c1[j] = s10; c1[j + 1] = s11; c1[j + 2] = s12; c1[j + 3] = s13;
        }
        for (; j < j1; ++j) {
          const double* brow = bdata + j * k;
          double s0 = c0[j], s1 = c1[j];
          for (std::size_t p = k0; p < k1; ++p) {
            s0 += a0[p] * brow[p];
            s1 += a1[p] * brow[p];
          }
          c0[j] = s0;
          c1[j] = s1;
        }
      }
      for (; i < m; ++i) {
        const double* arow = adata + i * k;
        double* crow = cdata + i * n;
        for (std::size_t j = j0; j < j1; ++j) {
          const double* brow = bdata + j * k;
          double acc = crow[j];
          for (std::size_t p = k0; p < k1; ++p) acc += arow[p] * brow[p];
          crow[j] = acc;
        }
      }
    }
  }
}

/// Every row of `m` += `row` (bias broadcast over a batch).
inline void add_row_broadcast(Matrix& m, const Vector& row) {
  assert(m.cols() == row.size() && "add_row_broadcast: dim mismatch");
  if (simd::use_avx2()) {
    simd::add_row_broadcast_avx2(m.data().data(), row.data(), m.rows(),
                                 m.cols());
    return;
  }
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double* r = &m.data()[i * m.cols()];
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] += row[j];
  }
}

/// out += column sums of `m` (batch reduction of bias gradients).
inline void add_col_sums(const Matrix& m, Vector& out) {
  assert(m.cols() == out.size() && "add_col_sums: dim mismatch");
  if (simd::use_avx2()) {
    simd::add_col_sums_avx2(m.data().data(), out.data(), m.rows(), m.cols());
    return;
  }
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = &m.data()[i * m.cols()];
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += r[j];
  }
}

inline double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: dim mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace libra
