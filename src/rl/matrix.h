// Dense row-major matrix and vector helpers sized for the small MLPs used by
// the RL congestion controllers. No external dependencies.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace libra {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// y = W x, written into a caller-owned buffer (resized to `rows`); lets
  /// inference loops reuse scratch space instead of allocating per layer.
  /// Shape checks are assert-based: this is the per-ACK hot path, and every
  /// caller's dimensions are fixed at network construction.
  void multiply_into(const Vector& x, Vector& y) const {
    assert(x.size() == cols_ && "Matrix::multiply: dim mismatch");
    assert(&x != &y && "Matrix::multiply: aliased in/out");
    y.resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      double acc = 0.0;
      const double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  }

  /// y = W x  (rows x cols) * (cols) -> (rows)
  Vector multiply(const Vector& x) const {
    Vector y;
    multiply_into(x, y);
    return y;
  }

  /// y = W^T x, into a caller-owned buffer (resized to `cols`).
  void multiply_transposed_into(const Vector& x, Vector& y) const {
    assert(x.size() == rows_ && "multiply_transposed: dim mismatch");
    assert(&x != &y && "multiply_transposed: aliased in/out");
    y.assign(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
    }
  }

  /// y = W^T x  (rows x cols)^T * (rows) -> (cols)
  Vector multiply_transposed(const Vector& x) const {
    Vector y;
    multiply_transposed_into(x, y);
    return y;
  }

  /// this += scale * (a outer b), a has `rows` entries, b has `cols` entries.
  void add_outer(const Vector& a, const Vector& b, double scale = 1.0) {
    assert(a.size() == rows_ && b.size() == cols_ && "add_outer: dim mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
      double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) row[c] += scale * a[r] * b[c];
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

inline void axpy(Vector& y, const Vector& x, double a) {
  if (y.size() != x.size()) throw std::invalid_argument("axpy: dim mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

inline double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: dim mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace libra
