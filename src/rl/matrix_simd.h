// AVX2+FMA microkernels backing the dispatch branches in rl/matrix.h,
// rl/mlp.cc, rl/normalizer.h and rl/adam.h. Raw-pointer interfaces so the
// header stays free of intrinsics; the implementations live in
// matrix_simd.cc, the only translation unit built with -mavx2 -mfma. None of
// these may be called unless simd::use_avx2() is true (the stub bodies on
// non-AVX2 builds abort).
//
// Accumulation-order contract (asserted by tests/simd_test.cc):
//  - dot_contract kernels (gemm_transB, gemm_transB_blocked, matvec, one
//    shared microkernel): per output element, two 4-lane vertical accumulator
//    chains step k by 8 and are reduced in a fixed tree
//    ((l0+l2)+(l1+l3) then +tail); the k%8 remainder is folded in scalar
//    index order with std::fma. No k-tiling of the reduction — the blocked
//    variant blocks only for cache locality — so flat, blocked, batched and
//    per-sample results are mutually bitwise identical.
//  - axpy-order kernels (gemm, gemm_transA, axpy, adam_span): identical
//    per-element sequential accumulation order as the scalar kernels; FMA
//    contraction is the only difference (ULP-level, single rounding).
//  - exact kernels (add_row_broadcast, add_col_sums, normalize_into): only
//    IEEE-exact ops in the same order — bitwise identical to scalar.
//  - tanh kernels: vectorized expm1-based tanh, a few ULP from std::tanh;
//    remainder lanes are computed inside a padded vector so an element's
//    result never depends on its position or the buffer length.
#pragma once

#include <cstddef>

namespace libra::simd {

// C (m x n) = A (m x k) * B^T (n x k), += C when `accumulate`.
void gemm_transB_avx2(const double* a, const double* b, double* c,
                      std::size_t m, std::size_t k, std::size_t n,
                      bool accumulate);

// Cache-blocked variant: identical arithmetic (the dot contract is never
// split across k tiles), blocked over B rows purely for locality.
void gemm_transB_blocked_avx2(const double* a, const double* b, double* c,
                              std::size_t m, std::size_t k, std::size_t n,
                              bool accumulate, std::size_t jb);

// y (rows) = W (rows x cols) * x (cols). Same dot contract as gemm_transB
// with m == 1, so per-sample inference matches batched rows bitwise.
void matvec_avx2(const double* w, const double* x, double* y,
                 std::size_t rows, std::size_t cols);

// C (m x n) = A (m x k) * B (k x n), += C when `accumulate`.
void gemm_avx2(const double* a, const double* b, double* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate);

// C (m x n) = A^T, A (k x m), * B (k x n), += C when `accumulate`.
void gemm_transA_avx2(const double* a, const double* b, double* c,
                      std::size_t k, std::size_t m, std::size_t n,
                      bool accumulate);

// y += a * x.
void axpy_avx2(double* y, const double* x, double a, std::size_t n);

// Every row of m (rows x cols) += row. Bitwise identical to scalar.
void add_row_broadcast_avx2(double* m, const double* row, std::size_t rows,
                            std::size_t cols);

// out (cols) += column sums of m (rows x cols). Bitwise identical to scalar.
void add_col_sums_avx2(const double* m, double* out, std::size_t rows,
                       std::size_t cols);

// x[i] = tanh(x[i]). Position-independent tail handling.
void tanh_inplace_avx2(double* x, std::size_t n);

// g[i] *= 1 - act[i]^2 (tanh backprop through stored activations).
void tanh_backprop_avx2(double* g, const double* act, std::size_t n);

// Vectorized RunningNormalizer::normalize_into body. Bitwise identical to the
// scalar loop: var = count > 1 ? m2/ (count-1) : 1; sd = sqrt(var);
// z = sd > 1e-9 ? (x - mean)/sd : 0; out = clamp(z, -clip, clip).
void normalize_into_avx2(const double* sample, const double* mean,
                         const double* m2, std::size_t count, double clip,
                         double* out, std::size_t n);

// Least-squares slope over n interleaved {t, y} sample pairs (the
// MiCollector / StatsWindow rtt-gradient scan): returns den > 1e-12 ?
// num/den : 0. Own accumulation contract: one 4-lane vertical chain per sum
// (lane pattern fixed by the pair deinterleave), fixed tree reduction,
// scalar tail in index order — deterministic run-to-run, ULP-level drift
// from the scalar two-pass loop.
double ls_slope_avx2(const double* pairs, std::size_t n);

// Vectorized AdamOptimizer::update_span body; same per-element op order as
// the scalar loop with FMA contraction on the moment updates.
void adam_span_avx2(double* param, const double* grad, double* m, double* v,
                    std::size_t n, double grad_scale, double beta1,
                    double beta2, double bc1, double bc2, double lr,
                    double eps);

}  // namespace libra::simd
