// AVX2+FMA kernel implementations. This is the only translation unit built
// with -mavx2 -mfma; everything else stays at the baseline ISA so the binary
// runs on any x86-64 (the dispatch in rl/simd.cc never routes here unless
// CPUID says the host can execute it).
//
// See matrix_simd.h for the accumulation-order contract each kernel obeys.
#include "rl/matrix_simd.h"

#include "rl/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace libra::simd {

bool compiled_with_avx2() { return true; }

namespace {

// --- The shared dot-product contract ---------------------------------------
//
// Every dot product (matvec, gemm_transB flat/blocked, any register blocking)
// is the same sequence of FP operations per output element: two 4-lane FMA
// chains over k in steps of 8, a fixed reduction tree, then the k%8 tail in
// scalar index order via std::fma. Register-blocked variants below interleave
// several such independent chains; interleaving never changes any single
// output's operation sequence, so all variants agree bitwise.

inline double reduce_tree(__m256d acc0, __m256d acc1) {
  const __m256d s = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {s0+s2, s1+s3}
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

inline double fma_tail(const double* a, const double* b, std::size_t from,
                       std::size_t k, double s) {
  for (std::size_t p = from; p < k; ++p) s = std::fma(a[p], b[p], s);
  return s;
}

inline double dot1(const double* a, const double* b, std::size_t k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + p + 4),
                           _mm256_loadu_pd(b + p + 4), acc1);
  }
  return fma_tail(a, b, p, k, reduce_tree(acc0, acc1));
}

// dot(a, b0) and dot(a, b1) with one pass over a.
inline void dot_1x2(const double* a, const double* b0, const double* b1,
                    std::size_t k, double& s0, double& s1) {
  __m256d p00 = _mm256_setzero_pd(), p01 = _mm256_setzero_pd();
  __m256d p10 = _mm256_setzero_pd(), p11 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256d a0 = _mm256_loadu_pd(a + p);
    const __m256d a1 = _mm256_loadu_pd(a + p + 4);
    p00 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + p), p00);
    p01 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b0 + p + 4), p01);
    p10 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b1 + p), p10);
    p11 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + p + 4), p11);
  }
  s0 = fma_tail(a, b0, p, k, reduce_tree(p00, p01));
  s1 = fma_tail(a, b1, p, k, reduce_tree(p10, p11));
}

// The 2x2 microkernel: dots of two a-rows against two b-rows, eight
// independent accumulator chains (the full ymm budget after loads).
inline void dot_2x2(const double* a0, const double* a1, const double* b0,
                    const double* b1, std::size_t k, double& s00, double& s01,
                    double& s10, double& s11) {
  __m256d q00 = _mm256_setzero_pd(), q01 = _mm256_setzero_pd();
  __m256d q02 = _mm256_setzero_pd(), q03 = _mm256_setzero_pd();
  __m256d q10 = _mm256_setzero_pd(), q11 = _mm256_setzero_pd();
  __m256d q12 = _mm256_setzero_pd(), q13 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256d va0 = _mm256_loadu_pd(a0 + p);
    const __m256d va1 = _mm256_loadu_pd(a0 + p + 4);
    const __m256d vb0 = _mm256_loadu_pd(a1 + p);
    const __m256d vb1 = _mm256_loadu_pd(a1 + p + 4);
    const __m256d w00 = _mm256_loadu_pd(b0 + p);
    const __m256d w01 = _mm256_loadu_pd(b0 + p + 4);
    const __m256d w10 = _mm256_loadu_pd(b1 + p);
    const __m256d w11 = _mm256_loadu_pd(b1 + p + 4);
    q00 = _mm256_fmadd_pd(va0, w00, q00);
    q01 = _mm256_fmadd_pd(va1, w01, q01);
    q02 = _mm256_fmadd_pd(va0, w10, q02);
    q03 = _mm256_fmadd_pd(va1, w11, q03);
    q10 = _mm256_fmadd_pd(vb0, w00, q10);
    q11 = _mm256_fmadd_pd(vb1, w01, q11);
    q12 = _mm256_fmadd_pd(vb0, w10, q12);
    q13 = _mm256_fmadd_pd(vb1, w11, q13);
  }
  s00 = fma_tail(a0, b0, p, k, reduce_tree(q00, q01));
  s01 = fma_tail(a0, b1, p, k, reduce_tree(q02, q03));
  s10 = fma_tail(a1, b0, p, k, reduce_tree(q10, q11));
  s11 = fma_tail(a1, b1, p, k, reduce_tree(q12, q13));
}

// gemm_transB over the B-row panel [j0, j1). The flat kernel is the full
// panel; the blocked kernel calls this per tile (locality only — the dot
// contract is never split).
void transB_panel(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n, bool accumulate,
                  std::size_t j0, std::size_t j1) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    double* c0 = c + i * n;
    double* c1 = c0 + n;
    std::size_t j = j0;
    for (; j + 2 <= j1; j += 2) {
      double s00, s01, s10, s11;
      dot_2x2(a0, a1, b + j * k, b + (j + 1) * k, k, s00, s01, s10, s11);
      c0[j] = accumulate ? c0[j] + s00 : s00;
      c0[j + 1] = accumulate ? c0[j + 1] + s01 : s01;
      c1[j] = accumulate ? c1[j] + s10 : s10;
      c1[j + 1] = accumulate ? c1[j + 1] + s11 : s11;
    }
    for (; j < j1; ++j) {
      double s0, s1;
      dot_1x2(b + j * k, a0, a1, k, s0, s1);  // mul commutes: dot(b,a)==dot(a,b)
      c0[j] = accumulate ? c0[j] + s0 : s0;
      c1[j] = accumulate ? c1[j] + s1 : s1;
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::size_t j = j0;
    for (; j + 2 <= j1; j += 2) {
      double s0, s1;
      dot_1x2(arow, b + j * k, b + (j + 1) * k, k, s0, s1);
      crow[j] = accumulate ? crow[j] + s0 : s0;
      crow[j + 1] = accumulate ? crow[j + 1] + s1 : s1;
    }
    for (; j < j1; ++j) {
      const double s = dot1(arow, b + j * k, k);
      crow[j] = accumulate ? crow[j] + s : s;
    }
  }
}

}  // namespace

void gemm_transB_avx2(const double* a, const double* b, double* c,
                      std::size_t m, std::size_t k, std::size_t n,
                      bool accumulate) {
  transB_panel(a, b, c, m, k, n, accumulate, 0, n);
}

void gemm_transB_blocked_avx2(const double* a, const double* b, double* c,
                              std::size_t m, std::size_t k, std::size_t n,
                              bool accumulate, std::size_t jb) {
  if (jb == 0) jb = n;
  for (std::size_t j0 = 0; j0 < n; j0 += jb) {
    const std::size_t j1 = j0 + jb < n ? j0 + jb : n;
    transB_panel(a, b, c, m, k, n, accumulate, j0, j1);
  }
}

void matvec_avx2(const double* w, const double* x, double* y, std::size_t rows,
                 std::size_t cols) {
  transB_panel(x, w, y, 1, cols, rows, /*accumulate=*/false, 0, rows);
}

void gemm_avx2(const double* a, const double* b, double* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate) {
  // C strips stay in registers across the whole k loop; B panels (k x strip)
  // are reused across every row of A. Per element the accumulation is the
  // scalar kernel's p-ascending order, with FMA contraction.
  std::size_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n + j0;
      __m256d c0, c1, c2, c3;
      if (accumulate) {
        c0 = _mm256_loadu_pd(crow);
        c1 = _mm256_loadu_pd(crow + 4);
        c2 = _mm256_loadu_pd(crow + 8);
        c3 = _mm256_loadu_pd(crow + 12);
      } else {
        c0 = c1 = c2 = c3 = _mm256_setzero_pd();
      }
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(arow[p]);
        const double* brow = b + p * n + j0;
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 4), c1);
        c2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 8), c2);
        c3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 12), c3);
      }
      _mm256_storeu_pd(crow, c0);
      _mm256_storeu_pd(crow + 4, c1);
      _mm256_storeu_pd(crow + 8, c2);
      _mm256_storeu_pd(crow + 12, c3);
    }
  }
  for (; j0 + 4 <= n; j0 += 4) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n + j0;
      __m256d c0 = accumulate ? _mm256_loadu_pd(crow) : _mm256_setzero_pd();
      for (std::size_t p = 0; p < k; ++p) {
        c0 = _mm256_fmadd_pd(_mm256_set1_pd(arow[p]),
                             _mm256_loadu_pd(b + p * n + j0), c0);
      }
      _mm256_storeu_pd(crow, c0);
    }
  }
  for (; j0 < n; ++j0) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double acc = accumulate ? c[i * n + j0] : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc = std::fma(arow[p], b[p * n + j0], acc);
      c[i * n + j0] = acc;
    }
  }
}

void gemm_transA_avx2(const double* a, const double* b, double* c,
                      std::size_t k, std::size_t m, std::size_t n,
                      bool accumulate) {
  // A (k x m) column i is the broadcast source: identical structure to
  // gemm_avx2 with a strided a access.
  std::size_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    for (std::size_t i = 0; i < m; ++i) {
      double* crow = c + i * n + j0;
      __m256d c0, c1, c2, c3;
      if (accumulate) {
        c0 = _mm256_loadu_pd(crow);
        c1 = _mm256_loadu_pd(crow + 4);
        c2 = _mm256_loadu_pd(crow + 8);
        c3 = _mm256_loadu_pd(crow + 12);
      } else {
        c0 = c1 = c2 = c3 = _mm256_setzero_pd();
      }
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(a[p * m + i]);
        const double* brow = b + p * n + j0;
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 4), c1);
        c2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 8), c2);
        c3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 12), c3);
      }
      _mm256_storeu_pd(crow, c0);
      _mm256_storeu_pd(crow + 4, c1);
      _mm256_storeu_pd(crow + 8, c2);
      _mm256_storeu_pd(crow + 12, c3);
    }
  }
  for (; j0 + 4 <= n; j0 += 4) {
    for (std::size_t i = 0; i < m; ++i) {
      double* crow = c + i * n + j0;
      __m256d c0 = accumulate ? _mm256_loadu_pd(crow) : _mm256_setzero_pd();
      for (std::size_t p = 0; p < k; ++p) {
        c0 = _mm256_fmadd_pd(_mm256_set1_pd(a[p * m + i]),
                             _mm256_loadu_pd(b + p * n + j0), c0);
      }
      _mm256_storeu_pd(crow, c0);
    }
  }
  for (; j0 < n; ++j0) {
    for (std::size_t i = 0; i < m; ++i) {
      double acc = accumulate ? c[i * n + j0] : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc = std::fma(a[p * m + i], b[p * n + j0], acc);
      c[i * n + j0] = acc;
    }
  }
}

void axpy_avx2(double* y, const double* x, double a, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4),
                                                _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

void add_row_broadcast_avx2(double* m, const double* row, std::size_t rows,
                            std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* r = m + i * cols;
    std::size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      _mm256_storeu_pd(
          r + j, _mm256_add_pd(_mm256_loadu_pd(r + j), _mm256_loadu_pd(row + j)));
    }
    for (; j < cols; ++j) r[j] += row[j];
  }
}

void add_col_sums_avx2(const double* m, double* out, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* r = m + i * cols;
    std::size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j),
                                              _mm256_loadu_pd(r + j)));
    }
    for (; j < cols; ++j) out[j] += r[j];
  }
}

namespace {

// Vector tanh via tanh(x) = -u / (u + 2), u = expm1(-2|x|), sign restored at
// the end. One formula for the whole range keeps the kernel branch-free:
// expm1 stays accurate near zero (no cancellation in -u/(u+2)), and |x| >= 22
// saturates to exactly +-1 (tanh(22) rounds to 1 in double). Accuracy is a
// few ULP against std::tanh — asserted by tests/simd_test.cc.
inline __m256d tanh4(__m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign = _mm256_and_pd(x, sign_mask);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);

  // t = -2|x| in (-44, 0]; expm1(t) by Cephes-style range reduction:
  // t = n*ln2 + r, |r| <= ln2/2, expm1(t) = 2^n * (1 + p(r)) - 1 with p the
  // degree-13 Taylor polynomial of e^r - 1 (truncation ~4e-18 at |r|=0.35).
  const __m256d t = _mm256_mul_pd(ax, _mm256_set1_pd(-2.0));
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(t, _mm256_set1_pd(1.44269504088896340736)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, _mm256_set1_pd(6.93147180369123816490e-01), t);
  r = _mm256_fnmadd_pd(n, _mm256_set1_pd(1.90821492927058770002e-10), r);

  __m256d q = _mm256_set1_pd(1.0 / 6227020800.0);  // 1/13!
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 479001600.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 39916800.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 3628800.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 362880.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 40320.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 5040.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 720.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 120.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 24.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 6.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(0.5));
  // p = r + r^2 * q, in one FMA so p -> r exactly as r -> 0.
  const __m256d p = _mm256_fmadd_pd(r, _mm256_mul_pd(r, q), r);

  // 2^n via exponent-field arithmetic (n is integral, -64 <= n <= 0), then
  // expm1 = 2^n * p + (2^n - 1): exact 2^n - 1 plus one FMA keeps the
  // reconstruction to ~1 ulp even when n < 0 eats a bit in cancellation.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256d two_n = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52));
  const __m256d em = _mm256_fmadd_pd(two_n, p, _mm256_sub_pd(two_n, one));

  // tanh(|x|) = -em / (em + 2), then saturate and restore sign. NaN inputs
  // ride the arithmetic through (blendv keeps the NaN lane: the >= compare
  // is false), infinities hit the saturation blend.
  const __m256d den = _mm256_add_pd(em, _mm256_set1_pd(2.0));
  __m256d res = _mm256_div_pd(_mm256_xor_pd(em, sign_mask), den);
  const __m256d sat = _mm256_cmp_pd(ax, _mm256_set1_pd(22.0), _CMP_GE_OQ);
  res = _mm256_blendv_pd(res, one, sat);
  // x = +-0 leaves a stray -0 in res (em = +0, xor flips it); clear the sign
  // before restoring the input's, so tanh(+-0) = +-0 exactly.
  res = _mm256_andnot_pd(sign_mask, res);
  return _mm256_or_pd(res, sign);
}

}  // namespace

void tanh_inplace_avx2(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, tanh4(_mm256_loadu_pd(x + i)));
  if (i < n) {
    // Pad the remainder into a full vector so each element's result is
    // independent of its position and of the buffer length (keeps batched
    // and per-sample activations bitwise identical at odd widths).
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = x[j];
    _mm256_store_pd(buf, tanh4(_mm256_load_pd(buf)));
    for (std::size_t j = i; j < n; ++j) x[j] = buf[j - i];
  }
}

void tanh_backprop_avx2(double* g, const double* act, std::size_t n) {
  // Deliberately mul/sub/mul (no FMA): bitwise identical to the scalar loop
  // g[j] *= 1.0 - act[j]*act[j].
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(act + i);
    const __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(a, a));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  for (; i < n; ++i) g[i] *= 1.0 - act[i] * act[i];
}

void normalize_into_avx2(const double* sample, const double* mean,
                         const double* m2, std::size_t count, double clip,
                         double* out, std::size_t n) {
  // Exact IEEE ops only (div, sqrt, sub, compares, min/max): bitwise
  // identical to the scalar loop in RunningNormalizer::normalize_into.
  const bool have_var = count > 1;
  const __m256d inv_df =
      _mm256_set1_pd(have_var ? static_cast<double>(count - 1) : 1.0);
  const __m256d lo = _mm256_set1_pd(-clip);
  const __m256d hi = _mm256_set1_pd(clip);
  const __m256d sd_floor = _mm256_set1_pd(1e-9);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d var = have_var
                            ? _mm256_div_pd(_mm256_loadu_pd(m2 + i), inv_df)
                            : one;
    const __m256d sd = _mm256_sqrt_pd(var);
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(sample + i), _mm256_loadu_pd(mean + i));
    const __m256d z_raw = _mm256_div_pd(diff, sd);
    const __m256d ok = _mm256_cmp_pd(sd, sd_floor, _CMP_GT_OQ);
    const __m256d z = _mm256_blendv_pd(zero, z_raw, ok);
    _mm256_storeu_pd(out + i, _mm256_min_pd(_mm256_max_pd(z, lo), hi));
  }
  for (; i < n; ++i) {
    const double var = have_var ? m2[i] / static_cast<double>(count - 1) : 1.0;
    const double sd = std::sqrt(var);
    const double z = sd > 1e-9 ? (sample[i] - mean[i]) / sd : 0.0;
    out[i] = std::clamp(z, -clip, clip);
  }
}

double ls_slope_avx2(const double* pairs, std::size_t n) {
  if (n < 2) return 0.0;
  const auto reduce4 = [](__m256d v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);  // {v0+v2, v1+v3}
    return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  };
  // Pass 1: means. Deinterleave 4 {t, y} pairs per step; the unpack puts
  // lanes in {0, 2, 1, 3} sample order, which is part of this kernel's fixed
  // accumulation contract.
  __m256d st = _mm256_setzero_pd();
  __m256d sy = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(pairs + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(pairs + 2 * i + 4);
    st = _mm256_add_pd(st, _mm256_unpacklo_pd(v0, v1));
    sy = _mm256_add_pd(sy, _mm256_unpackhi_pd(v0, v1));
  }
  double mt = reduce4(st), my = reduce4(sy);
  for (; i < n; ++i) {
    mt += pairs[2 * i];
    my += pairs[2 * i + 1];
  }
  mt /= static_cast<double>(n);
  my /= static_cast<double>(n);
  // Pass 2: centered cross- and self-products.
  const __m256d vmt = _mm256_set1_pd(mt);
  const __m256d vmy = _mm256_set1_pd(my);
  __m256d vnum = _mm256_setzero_pd();
  __m256d vden = _mm256_setzero_pd();
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(pairs + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(pairs + 2 * i + 4);
    const __m256d dt = _mm256_sub_pd(_mm256_unpacklo_pd(v0, v1), vmt);
    const __m256d dy = _mm256_sub_pd(_mm256_unpackhi_pd(v0, v1), vmy);
    vnum = _mm256_fmadd_pd(dt, dy, vnum);
    vden = _mm256_fmadd_pd(dt, dt, vden);
  }
  double num = reduce4(vnum), den = reduce4(vden);
  for (; i < n; ++i) {
    const double dt = pairs[2 * i] - mt;
    const double dy = pairs[2 * i + 1] - my;
    num = std::fma(dt, dy, num);
    den = std::fma(dt, dt, den);
  }
  return den > 1e-12 ? num / den : 0.0;
}

void adam_span_avx2(double* param, const double* grad, double* m, double* v,
                    std::size_t n, double grad_scale, double beta1,
                    double beta2, double bc1, double bc2, double lr,
                    double eps) {
  const __m256d vscale = _mm256_set1_pd(grad_scale);
  const __m256d vb1 = _mm256_set1_pd(beta1);
  const __m256d vb2 = _mm256_set1_pd(beta2);
  const __m256d vomb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d vomb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(eps);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = _mm256_mul_pd(_mm256_loadu_pd(grad + i), vscale);
    const __m256d mi =
        _mm256_fmadd_pd(vb1, _mm256_loadu_pd(m + i), _mm256_mul_pd(vomb1, g));
    const __m256d vi = _mm256_fmadd_pd(
        vb2, _mm256_loadu_pd(v + i), _mm256_mul_pd(_mm256_mul_pd(vomb2, g), g));
    _mm256_storeu_pd(m + i, mi);
    _mm256_storeu_pd(v + i, vi);
    const __m256d denom =
        _mm256_add_pd(_mm256_sqrt_pd(_mm256_div_pd(vi, vbc2)), veps);
    const __m256d step =
        _mm256_div_pd(_mm256_mul_pd(vlr, _mm256_div_pd(mi, vbc1)), denom);
    _mm256_storeu_pd(param + i, _mm256_sub_pd(_mm256_loadu_pd(param + i), step));
  }
  const double omb1 = 1.0 - beta1, omb2 = 1.0 - beta2;
  for (; i < n; ++i) {
    const double g = grad[i] * grad_scale;
    m[i] = std::fma(beta1, m[i], omb1 * g);
    v[i] = std::fma(beta2, v[i], omb2 * g * g);
    param[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
  }
}

}  // namespace libra::simd

#else  // !(__AVX2__ && __FMA__)

// Stub bodies for toolchains that can't target AVX2: compiled_with_avx2()
// pins dispatch to scalar, so none of these can be reached.
#include <cstdlib>

namespace libra::simd {

bool compiled_with_avx2() { return false; }

void gemm_transB_avx2(const double*, const double*, double*, std::size_t,
                      std::size_t, std::size_t, bool) {
  std::abort();
}
void gemm_transB_blocked_avx2(const double*, const double*, double*,
                              std::size_t, std::size_t, std::size_t, bool,
                              std::size_t) {
  std::abort();
}
void matvec_avx2(const double*, const double*, double*, std::size_t,
                 std::size_t) {
  std::abort();
}
void gemm_avx2(const double*, const double*, double*, std::size_t, std::size_t,
               std::size_t, bool) {
  std::abort();
}
void gemm_transA_avx2(const double*, const double*, double*, std::size_t,
                      std::size_t, std::size_t, bool) {
  std::abort();
}
void axpy_avx2(double*, const double*, double, std::size_t) { std::abort(); }
void add_row_broadcast_avx2(double*, const double*, std::size_t, std::size_t) {
  std::abort();
}
void add_col_sums_avx2(const double*, double*, std::size_t, std::size_t) {
  std::abort();
}
void tanh_inplace_avx2(double*, std::size_t) { std::abort(); }
void tanh_backprop_avx2(double*, const double*, std::size_t) { std::abort(); }
void normalize_into_avx2(const double*, const double*, const double*,
                         std::size_t, double, double*, std::size_t) {
  std::abort();
}
double ls_slope_avx2(const double*, std::size_t) { std::abort(); }
void adam_span_avx2(double*, const double*, double*, double*, std::size_t,
                    double, double, double, double, double, double, double) {
  std::abort();
}

}  // namespace libra::simd

#endif
