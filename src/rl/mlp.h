// Multi-layer perceptron with tanh hidden activations and a linear output,
// plus exact reverse-mode gradients — the function approximator behind the
// PPO actor and critic (the paper uses two hidden layers; width is a knob).
#pragma once

#include <iosfwd>
#include <vector>

#include "rl/matrix.h"
#include "util/rng.h"

namespace libra {

class Mlp {
 public:
  /// `sizes` = {input, hidden..., output}. Weights get Xavier-uniform init.
  Mlp(const std::vector<std::size_t>& sizes, Rng& rng);

  /// Forward pass caching activations for a subsequent backward().
  Vector forward(const Vector& input);

  /// Forward pass without touching the gradient cache (inference-only).
  Vector evaluate(const Vector& input) const;

  /// Fused inference into a caller-owned buffer: hidden-layer activations go
  /// through per-thread scratch space, so steady-state cost is zero
  /// allocations. Safe to call concurrently on a shared (read-only) model —
  /// the per-ACK path of every frozen learned CCA under the parallel engine.
  void evaluate_into(const Vector& input, Vector& out) const;

  /// evaluate(input)[0] without materializing the output vector (the actor
  /// and critic both have 1-wide outputs).
  double evaluate1(const Vector& input) const;

  /// Accumulates parameter gradients for the cached forward pass given
  /// dLoss/dOutput; returns dLoss/dInput. Call zero_gradients() between
  /// optimizer steps (gradients accumulate across calls, enabling batching).
  Vector backward(const Vector& grad_output);

  void zero_gradients();

  std::size_t input_size() const { return sizes_.front(); }
  std::size_t output_size() const { return sizes_.back(); }
  std::size_t parameter_count() const;

  /// Text-format parameter persistence (layer sizes must already match on
  /// load; gradients and caches are not serialized).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  struct Layer {
    Matrix weights;       // (out x in)
    Vector bias;          // (out)
    Matrix grad_weights;
    Vector grad_bias;
  };
  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
  // Forward cache: activations_[0] is the input; activations_[i+1] is the
  // post-activation output of layer i. Buffers are reused across calls.
  std::vector<Vector> activations_;
  // Backward scratch (training is single-threaded per model, so members are
  // fine here; inference scratch is thread-local instead).
  Vector grad_cur_, grad_next_;
};

}  // namespace libra
