// Multi-layer perceptron with tanh hidden activations and a linear output,
// plus exact reverse-mode gradients — the function approximator behind the
// PPO actor and critic (the paper uses two hidden layers; width is a knob).
//
// The training path is batched: forward_batch/backward_batch process a whole
// minibatch as one activations matrix per layer, writing into a reusable
// MlpWorkspace whose arenas are sized once from the layer dims. The per-sample
// forward()/backward() API is re-expressed on top of the batch path with a
// batch of one.
#pragma once

#include <iosfwd>
#include <vector>

#include "rl/matrix.h"
#include "util/rng.h"

namespace libra {

class Mlp;

/// Caller-owned activation + gradient arenas for the batched training path.
/// configure() allocates every matrix once at the maximum batch size;
/// set_batch() then reshapes within that capacity, so steady-state training
/// performs zero heap allocations.
struct MlpWorkspace {
  /// acts[0] is the input batch (batch x in); acts[i+1] the post-activation
  /// output of layer i (batch x width_i).
  std::vector<Matrix> acts;
  /// deltas[i] holds dLoss/dZ of layer i during backward (batch x width_i).
  std::vector<Matrix> deltas;
  /// dLoss/dInput (batch x in), filled by backward_batch on request.
  Matrix input_grad;

  void configure(const Mlp& net, std::size_t max_batch);
  /// Reshapes all arenas to `batch` rows; never allocates once configured
  /// with max_batch >= batch.
  void set_batch(std::size_t batch);

  Matrix& input() { return acts.front(); }
  const Matrix& output() const { return acts.back(); }
  /// Where the caller writes dLoss/dOutput before backward_batch.
  Matrix& output_grad() { return deltas.back(); }
};

class Mlp {
 public:
  /// `sizes` = {input, hidden..., output}. Weights get Xavier-uniform init.
  Mlp(const std::vector<std::size_t>& sizes, Rng& rng);

  /// Forward pass caching activations for a subsequent backward().
  Vector forward(const Vector& input);

  /// Forward pass without touching the gradient cache (inference-only).
  Vector evaluate(const Vector& input) const;

  /// Fused inference into a caller-owned buffer: hidden-layer activations go
  /// through per-thread scratch space, so steady-state cost is zero
  /// allocations. Safe to call concurrently on a shared (read-only) model —
  /// the per-ACK path of every frozen learned CCA under the parallel engine.
  void evaluate_into(const Vector& input, Vector& out) const;

  /// evaluate(input)[0] without materializing the output vector (the actor
  /// and critic both have 1-wide outputs).
  double evaluate1(const Vector& input) const;

  /// Accumulates parameter gradients for the cached forward pass given
  /// dLoss/dOutput; returns dLoss/dInput. Call zero_gradients() between
  /// optimizer steps (gradients accumulate across calls, enabling batching).
  Vector backward(const Vector& grad_output);

  /// Batched forward through `ws`: the caller fills ws.input() (batch x in)
  /// and reads ws.output() (batch x out). Allocation-free once `ws` is
  /// configured. Iteration order matches running the rows through the
  /// per-sample path one at a time, so results are bitwise identical.
  void forward_batch(MlpWorkspace& ws) const;

  /// Batched backward for the pass cached in `ws`: the caller writes
  /// dLoss/dOutput into ws.output_grad(); parameter gradients accumulate into
  /// the layers (same contract as backward()). When `want_input_grad` is set,
  /// dLoss/dInput lands in ws.input_grad.
  void backward_batch(MlpWorkspace& ws, bool want_input_grad = false);

  void zero_gradients();

  /// Copies weights, biases (and nothing else) from a same-shape network —
  /// the policy-snapshot step of parallel rollout collection.
  void copy_parameters_from(const Mlp& other);

  std::size_t input_size() const { return sizes_.front(); }
  std::size_t output_size() const { return sizes_.back(); }
  std::size_t parameter_count() const;
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Text-format parameter persistence (layer sizes must already match on
  /// load; gradients and caches are not serialized).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  struct Layer {
    Matrix weights;       // (out x in)
    Vector bias;          // (out)
    Matrix grad_weights;
    Vector grad_bias;
  };
  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
  // Batch-of-one workspace backing the per-sample forward()/backward() API.
  MlpWorkspace ws1_;
  Vector out1_, in_grad1_;  // per-sample return buffers (reused across calls)
  bool has_forward_ = false;
};

}  // namespace libra
