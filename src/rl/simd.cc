#include "rl/simd.h"

#include <cstdlib>
#include <cstring>

namespace libra::simd {

namespace detail {
std::atomic<int> g_active_isa{static_cast<int>(Isa::kScalar)};
}  // namespace detail

bool avx2_supported() {
  if (!compiled_with_avx2()) return false;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports performs the CPUID leaf-7 AVX2/FMA checks plus the
  // OSXSAVE/xgetbv XCR0 check (the OS must save ymm state) behind one call.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa force(Isa isa) {
  if (isa == Isa::kAvx2 && !avx2_supported()) isa = Isa::kScalar;
  detail::g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

Isa isa_from_env_value(const char* value) {
  if (value == nullptr) return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0 ||
      std::strcmp(value, "0") == 0) {
    return Isa::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
  }
  // "", "auto", "on", "1", or anything unrecognized: auto-detect.
  return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
}

Isa init_from_env() {
  return force(isa_from_env_value(std::getenv("LIBRA_SIMD")));
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

namespace {
// Static-init-time dispatch decision. Initialization order across TUs is
// unspecified but fixed for a given binary, so even a kernel call from
// another TU's static initializer (which would see the kScalar default)
// behaves identically run-to-run.
const Isa g_init = init_from_env();
}  // namespace

}  // namespace libra::simd
