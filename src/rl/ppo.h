// Proximal Policy Optimization (clipped surrogate, GAE-lambda) for a
// continuous 1-D action — the learning algorithm behind Libra's RL component
// (Alg. 2) and the Aurora/Orca baselines. Actor and critic are independent
// MLPs; the Gaussian policy's log-std is a standalone learned parameter.
//
// The update path is batched and allocation-free: minibatch state/advantage/
// old-logp matrices are assembled once per epoch slice into workspaces sized
// at construction, and the batched MLP kernels plus slab-fused Adam do the
// rest. Rollout collection can be decoupled from learning (collect_only +
// take_transitions/ingest), which is what lets the trainer fan episodes out
// across threads and reduce them back deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>

#include "rl/adam.h"
#include "rl/matrix.h"
#include "rl/mlp.h"
#include "util/rng.h"

namespace libra {

struct PpoConfig {
  std::size_t state_dim = 0;                 // required
  std::vector<std::size_t> hidden = {64, 64};  // paper uses {512,512}; width is a knob
  double gamma = 0.95;
  double gae_lambda = 0.95;
  double clip_ratio = 0.2;
  int epochs = 6;
  std::size_t minibatch = 64;
  std::size_t horizon = 512;  // transitions per policy update
  double actor_lr = 3e-4;
  double critic_lr = 1e-3;
  double entropy_coef = 1e-3;
  double init_log_std = -0.5;
  double min_log_std = -3.0;
  double max_log_std = 0.7;
  std::uint64_t seed = 7;
  /// Rollout-collection mode: act() records transitions but never triggers a
  /// policy update. Collector agents (one per parallel episode) run with this
  /// set; the master agent ingests their transitions in episode order.
  bool collect_only = false;
};

/// Training-dynamics snapshot of one policy update, averaged over every
/// minibatch the update processed. Derived from values the update computes
/// anyway, so observing costs nothing extra on the weight path.
struct PpoUpdateStats {
  int update = 0;              // 1-based update ordinal
  std::size_t transitions = 0; // rollout size this update consumed
  double policy_loss = 0;      // mean clipped-surrogate loss
  double value_loss = 0;       // mean 0.5*(V - return)^2
  double clip_fraction = 0;    // fraction of samples with |ratio-1| > clip
  double approx_kl = 0;        // mean(old_logp - new_logp)
  double entropy = 0;          // Gaussian policy entropy at end of update
};

/// One recorded (state, action, outcome) step of a rollout. Public so that
/// parallel rollout collection can move batches of these between collector
/// agents and the learning master.
struct PpoTransition {
  Vector state;
  double action = 0.0;
  double log_prob = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool done = false;
};

class PpoAgent {
 public:
  explicit PpoAgent(PpoConfig config);

  /// Samples an action for `state`, recording the transition context. May run
  /// a policy update first if the rollout buffer is full (bootstrapping from
  /// this state's value) — unless configured collect_only.
  double act(const Vector& state);

  /// Returns the policy mean without sampling or recording (inference mode).
  double act_greedy(const Vector& state) const;

  /// Samples from the policy without recording a transition: stochastic
  /// inference, the deployment mode of systems like Orca whose occasional
  /// unexpected decisions the paper analyzes.
  double act_sampled(const Vector& state);

  /// Sizes `ws` for batched greedy inference over up to `max_batch` states
  /// (the actor's shape is private to the agent, so the agent does the
  /// configure). One-time allocation; pair with act_greedy_batch.
  void configure_policy_workspace(MlpWorkspace& ws, std::size_t max_batch) const;

  /// Greedy policy means for a whole batch: the caller fills ws.input()
  /// (batch x state_dim, already normalized) and receives one mean per row in
  /// `out`. Bitwise identical to calling act_greedy on each row; on wide
  /// (512-unit) nets the batched path amortizes each weight-matrix traversal
  /// over the whole batch instead of streaming 2 MB per state.
  void act_greedy_batch(MlpWorkspace& ws, Vector& out) const;

  /// Completes the transition opened by the last act(). `done` marks an
  /// episode boundary (GAE does not bootstrap across it).
  void give_reward(double reward, bool done = false);

  /// Copies actor/critic parameters and log-std from a same-architecture
  /// agent (optimizer state, RNG and buffered rollouts are untouched). The
  /// policy-snapshot step when cloning collector agents.
  void copy_parameters_from(const PpoAgent& other);

  /// Drains the rollout buffer (dropping any half-open transition). When
  /// `mark_final_done` is set, the last transition is flagged as an episode
  /// boundary so GAE will not bootstrap across the splice point.
  std::vector<PpoTransition> take_transitions(bool mark_final_done = true);

  /// Appends collected transitions to the rollout buffer in order, running a
  /// policy update whenever the buffer reaches the horizon (bootstrapping
  /// from the incoming transition's recorded value). Ordered ingestion is
  /// what makes parallel rollout collection bitwise thread-count invariant.
  void ingest(std::vector<PpoTransition> batch);

  /// Forces a policy update on whatever the buffer holds (test/bench hook:
  /// lets callers time or allocation-check update() in isolation).
  void flush_update(double bootstrap_value);

  int update_count() const { return updates_; }
  double exploration_stddev() const;
  std::size_t buffered_transitions() const { return buffer_.size(); }

  /// Parameters + Adam state, in bytes — feeds the overhead benchmarks.
  std::int64_t memory_bytes() const;

  const PpoConfig& config() const { return config_; }

  /// Persists/restores actor, critic and log-std (optimizer state excluded).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  /// Fired after every policy update with that update's training statistics
  /// (the Trainer's telemetry hook). Pure observer: the update path computes
  /// and applies identical gradients whether or not it is set.
  std::function<void(const PpoUpdateStats&)> update_observer;

 private:
  void update(double bootstrap_value);
  double log_prob(double action, double mean) const;

  PpoConfig config_;
  Rng rng_;
  std::unique_ptr<Mlp> actor_;
  std::unique_ptr<Mlp> critic_;
  std::unique_ptr<AdamOptimizer> actor_opt_;
  std::unique_ptr<AdamOptimizer> critic_opt_;
  double log_std_;
  ScalarAdam log_std_opt_;

  std::vector<PpoTransition> buffer_;
  std::optional<PpoTransition> pending_;
  int updates_ = 0;

  // Preallocated update() workspaces: sized at construction from (horizon,
  // minibatch, state_dim, hidden), so update() allocates nothing per
  // minibatch. See the alloc-counting test.
  MlpWorkspace actor_ws_, critic_ws_;
  Vector advantages_, returns_;
  std::vector<std::size_t> order_;
  Vector mb_action_, mb_old_logp_, mb_adv_, mb_ret_;
};

}  // namespace libra
