// Per-feature running normalization (Welford mean/variance), used to map raw
// network statistics into a scale-free state vector — the "normalize these
// statistics ... to achieve better generalization" step of Sec. 4.2.
#pragma once

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "rl/matrix.h"

namespace libra {

class RunningNormalizer {
 public:
  explicit RunningNormalizer(std::size_t dim)
      : mean_(dim, 0.0), m2_(dim, 0.0) {
    if (dim == 0) throw std::invalid_argument("RunningNormalizer: dim must be > 0");
  }

  void update(const Vector& sample) {
    if (sample.size() != mean_.size())
      throw std::invalid_argument("RunningNormalizer: dim mismatch");
    ++n_;
    for (std::size_t i = 0; i < mean_.size(); ++i) {
      double delta = sample[i] - mean_[i];
      mean_[i] += delta / static_cast<double>(n_);
      m2_[i] += delta * (sample[i] - mean_[i]);
    }
  }

  /// (x - mean) / std, clipped to [-clip, clip] for stability.
  Vector normalize(const Vector& sample, double clip = 10.0) const {
    if (sample.size() != mean_.size())
      throw std::invalid_argument("RunningNormalizer: dim mismatch");
    Vector out(sample.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double var = n_ > 1 ? m2_[i] / static_cast<double>(n_ - 1) : 1.0;
      double sd = std::sqrt(var);
      double z = sd > 1e-9 ? (sample[i] - mean_[i]) / sd : 0.0;
      out[i] = std::clamp(z, -clip, clip);
    }
    return out;
  }

  std::size_t count() const { return n_; }
  std::size_t dim() const { return mean_.size(); }

  void save(std::ostream& out) const {
    out.precision(17);
    out << n_;
    for (double m : mean_) out << ' ' << m;
    for (double v : m2_) out << ' ' << v;
    out << '\n';
  }
  void load(std::istream& in) {
    in >> n_;
    for (double& m : mean_) in >> m;
    for (double& v : m2_) in >> v;
    if (!in) throw std::runtime_error("RunningNormalizer::load: truncated stream");
  }

 private:
  Vector mean_, m2_;
  std::size_t n_ = 0;
};

}  // namespace libra
