// Per-feature running normalization (Welford mean/variance), used to map raw
// network statistics into a scale-free state vector — the "normalize these
// statistics ... to achieve better generalization" step of Sec. 4.2.
#pragma once

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "rl/matrix.h"

namespace libra {

class RunningNormalizer {
 public:
  explicit RunningNormalizer(std::size_t dim)
      : mean_(dim, 0.0), m2_(dim, 0.0) {
    if (dim == 0) throw std::invalid_argument("RunningNormalizer: dim must be > 0");
  }

  void update(const Vector& sample) {
    if (sample.size() != mean_.size())
      throw std::invalid_argument("RunningNormalizer: dim mismatch");
    ++n_;
    for (std::size_t i = 0; i < mean_.size(); ++i) {
      double delta = sample[i] - mean_[i];
      mean_[i] += delta / static_cast<double>(n_);
      m2_[i] += delta * (sample[i] - mean_[i]);
    }
  }

  /// (x - mean) / std, clipped to [-clip, clip] for stability. In delta-
  /// collection mode the statistics frozen by begin_delta_collection() are
  /// used, so concurrent episodes normalize identically regardless of what
  /// they accumulate locally.
  Vector normalize(const Vector& sample, double clip = 10.0) const {
    Vector out(sample.size());
    normalize_into(sample, out.data(), clip);
    return out;
  }

  /// normalize() into a caller-owned buffer — the allocation-free form the
  /// batched inference path uses to fill workspace rows in place.
  void normalize_into(const Vector& sample, double* out,
                      double clip = 10.0) const {
    if (sample.size() != mean_.size())
      throw std::invalid_argument("RunningNormalizer: dim mismatch");
    const Vector& mean = delta_mode_ ? ref_mean_ : mean_;
    const Vector& m2 = delta_mode_ ? ref_m2_ : m2_;
    const std::size_t n = delta_mode_ ? ref_n_ : n_;
    if (simd::use_avx2()) {
      // Exact IEEE ops only — bitwise identical to the scalar loop below.
      simd::normalize_into_avx2(sample.data(), mean.data(), m2.data(), n, clip,
                                out, sample.size());
      return;
    }
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double var = n > 1 ? m2[i] / static_cast<double>(n - 1) : 1.0;
      double sd = std::sqrt(var);
      double z = sd > 1e-9 ? (sample[i] - mean[i]) / sd : 0.0;
      out[i] = std::clamp(z, -clip, clip);
    }
  }

  /// Enters rollout-collection mode: the current statistics become a frozen
  /// reference for normalize(), while update() starts accumulating into a
  /// fresh delta. take_delta() hands that delta back for ordered merging into
  /// the master normalizer (parallel rollout collection).
  void begin_delta_collection() {
    ref_mean_ = mean_;
    ref_m2_ = m2_;
    ref_n_ = n_;
    std::fill(mean_.begin(), mean_.end(), 0.0);
    std::fill(m2_.begin(), m2_.end(), 0.0);
    n_ = 0;
    delta_mode_ = true;
  }

  /// The statistics accumulated since begin_delta_collection(), as a
  /// standalone normalizer suitable for merge().
  RunningNormalizer take_delta() const {
    RunningNormalizer d(mean_.size());
    d.mean_ = mean_;
    d.m2_ = m2_;
    d.n_ = n_;
    return d;
  }

  /// Parallel Welford combine (Chan et al.): merges `other`'s accumulated
  /// statistics into this one. Deterministic: merging episode deltas in
  /// episode order yields the same state at any thread count.
  void merge(const RunningNormalizer& other) {
    if (other.dim() != dim())
      throw std::invalid_argument("RunningNormalizer::merge: dim mismatch");
    if (other.n_ == 0) return;
    if (n_ == 0) {
      mean_ = other.mean_;
      m2_ = other.m2_;
      n_ = other.n_;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    for (std::size_t i = 0; i < mean_.size(); ++i) {
      double delta = other.mean_[i] - mean_[i];
      mean_[i] += delta * nb / nab;
      m2_[i] += other.m2_[i] + delta * delta * na * nb / nab;
    }
    n_ += other.n_;
  }

  std::size_t count() const { return n_; }
  std::size_t dim() const { return mean_.size(); }

  /// Mean absolute per-feature mean — telemetry scalar summarizing where the
  /// input distribution sits (0 means centred features).
  double mean_abs() const {
    double acc = 0;
    for (double m : mean_) acc += std::abs(m);
    return acc / static_cast<double>(mean_.size());
  }

  /// Mean per-feature standard deviation — telemetry scalar for input scale.
  double mean_std() const {
    if (n_ < 2) return 0.0;
    double acc = 0;
    for (double v : m2_) acc += std::sqrt(v / static_cast<double>(n_ - 1));
    return acc / static_cast<double>(m2_.size());
  }

  void save(std::ostream& out) const {
    out.precision(17);
    out << n_;
    for (double m : mean_) out << ' ' << m;
    for (double v : m2_) out << ' ' << v;
    out << '\n';
  }
  void load(std::istream& in) {
    in >> n_;
    for (double& m : mean_) in >> m;
    for (double& v : m2_) in >> v;
    if (!in) throw std::runtime_error("RunningNormalizer::load: truncated stream");
  }

 private:
  Vector mean_, m2_;
  std::size_t n_ = 0;
  // Delta-collection mode (parallel rollout collection): frozen reference
  // stats for normalize() while mean_/m2_/n_ accumulate the episode's delta.
  bool delta_mode_ = false;
  Vector ref_mean_, ref_m2_;
  std::size_t ref_n_ = 0;
};

}  // namespace libra
