// Copa (Arun & Balakrishnan, NSDI 2018): targets rate = 1/(delta * dq) where
// dq is the standing queueing delay, moving cwnd toward the target with a
// velocity parameter that doubles while the direction persists.
#pragma once

#include "classic/loss_epoch.h"
#include "classic/rtt_guard.h"
#include "sim/congestion_control.h"
#include "util/windowed_filter.h"

namespace libra {

struct CopaParams {
  std::int64_t mss = kDefaultPacketBytes;
  double delta = 0.5;  // 1/delta packets of standing queue at equilibrium
  /// Window for the propagation-delay (min-RTT) estimate. Copa used to
  /// consume the sender's *lifetime* minimum, which a synchronized incast
  /// startup corrupts permanently: flows that sampled the path at different
  /// queue levels keep incompatible baselines forever, and the unlucky ones
  /// compute a huge standing queue, collapse to 2 MSS, and lock out (<1% of
  /// fair share; see the 100-flow regression in tests/fleet_test.cc). A
  /// windowed minimum forgets the startup storm: every flow's baseline
  /// re-converges to the same recent queue floor within one window, making
  /// dq comparable across the fleet again.
  SimDuration min_rtt_window = sec(2);
};

class Copa final : public CongestionControl {
 public:
  explicit Copa(CopaParams params = {})
      : params_(params), cwnd_(10 * params.mss),
        rtt_standing_(msec(100) /*placeholder; reset per srtt/2*/),
        min_rtt_filter_(params.min_rtt_window) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    // A zero standing RTT would make current_rate below infinite.
    if (!has_rtt_samples(ack)) return;
    // Standing RTT: min over the last srtt/2 — rides below jitter but tracks
    // the persistent queue.
    rtt_standing_.update(ack.rtt, ack.now);
    // Windowed propagation-delay estimate (not ack.min_rtt: see
    // CopaParams::min_rtt_window for why the lifetime minimum is unusable).
    min_rtt_filter_.update(ack.rtt, ack.now);

    double dq = to_seconds(rtt_standing_.best() - min_rtt_filter_.best());
    double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(params_.mss);
    double current_rate = cwnd_pkts / to_seconds(rtt_standing_.best());
    double target_rate = dq > 1e-6 ? 1.0 / (params_.delta * dq)
                                   : current_rate * 2.0;  // empty queue: grow

    bool increase = current_rate <= target_rate;
    update_velocity(increase, ack.now, ack.rtt);

    double step = velocity_ * static_cast<double>(params_.mss) /
                  (params_.delta * cwnd_pkts);
    if (increase) {
      cwnd_ += static_cast<std::int64_t>(step);
    } else {
      cwnd_ = std::max<std::int64_t>(
          cwnd_ - static_cast<std::int64_t>(step), 2 * params_.mss);
    }
  }

  void on_loss(const LossEvent& loss) override {
    // Copa is delay-driven, but a droptail storm destroys the delay signal:
    // with the queue pinned full, dq reads ~0 for every survivor and pure
    // delay control grows without bound while ~90% of packets drop (the
    // competitive-mode situation of the Copa paper, Sec. 2.4). React to loss
    // at most once per window — multiplicative decrease, like the paper's
    // mode-switched Copa — so the queue drains periodically; those drains are
    // also what lets the windowed min-RTT filter re-sample the true floor.
    if (epoch_.should_react(loss.seq)) {
      cwnd_ = std::max<std::int64_t>(cwnd_ / 2, 2 * params_.mss);
      velocity_ = 1.0;
    }
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "copa"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  void update_velocity(bool increase, SimTime now, SimDuration rtt) {
    if (increase != last_direction_) {
      velocity_ = 1.0;
      last_direction_ = increase;
      direction_since_ = now;
    } else if (now - direction_since_ > 3 * rtt) {
      // Direction persisted for 3 RTTs: accelerate.
      velocity_ = std::min(velocity_ * 2.0, 64.0);
      direction_since_ = now;
    }
  }

  CopaParams params_;
  std::int64_t cwnd_;
  WindowedMin<SimDuration> rtt_standing_;
  WindowedMin<SimDuration> min_rtt_filter_;
  double velocity_ = 1.0;
  bool last_direction_ = true;
  SimTime direction_since_ = 0;
  LossEpochTracker epoch_;
};

}  // namespace libra
