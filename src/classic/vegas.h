// TCP Vegas (Brakmo & Peterson, 1995): delay-based congestion avoidance that
// keeps between alpha and beta packets queued at the bottleneck.
#pragma once

#include "classic/loss_epoch.h"
#include "classic/rtt_guard.h"
#include "sim/congestion_control.h"

namespace libra {

struct VegasParams {
  std::int64_t mss = kDefaultPacketBytes;
  double alpha = 2.0;  // lower bound on queued packets
  double beta = 4.0;   // upper bound on queued packets
  double gamma = 1.0;  // slow-start exit threshold
};

class Vegas final : public CongestionControl {
 public:
  explicit Vegas(VegasParams params = {})
      : params_(params), cwnd_(10 * params.mss) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    if (!has_rtt_samples(ack)) return;
    // Adjust once per RTT: gate on time since the last adjustment.
    if (last_adjust_ != 0 && ack.now - last_adjust_ < ack.rtt) {
      if (in_slow_start_) cwnd_ += params_.mss;
      return;
    }
    last_adjust_ = ack.now;

    double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(params_.mss);
    double expected = cwnd_pkts / to_seconds(ack.min_rtt);
    double actual = cwnd_pkts / to_seconds(ack.rtt);
    double diff = (expected - actual) * to_seconds(ack.min_rtt);  // pkts queued

    if (in_slow_start_) {
      if (diff > params_.gamma) {
        in_slow_start_ = false;
        cwnd_ -= cwnd_ / 8;  // back off the overshoot
      } else {
        cwnd_ += params_.mss;
      }
      return;
    }

    if (diff < params_.alpha) {
      cwnd_ += params_.mss;
    } else if (diff > params_.beta) {
      cwnd_ = std::max<std::int64_t>(cwnd_ - params_.mss, 2 * params_.mss);
    }
  }

  void on_loss(const LossEvent& loss) override {
    if (!epoch_.should_react(loss.seq)) return;
    in_slow_start_ = false;
    cwnd_ = std::max<std::int64_t>(cwnd_ / 2, 2 * params_.mss);
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "vegas"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  VegasParams params_;
  std::int64_t cwnd_;
  bool in_slow_start_ = true;
  SimTime last_adjust_ = 0;
  LossEpochTracker epoch_;
};

}  // namespace libra
