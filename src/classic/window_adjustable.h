// Interface for window-based CCAs whose cwnd can be overwritten by a wrapping
// controller (Libra resynchronizes the classic candidate to the base rate at
// the start of each exploration stage; Orca applies DRL multipliers).
#pragma once

#include <cstdint>

namespace libra {

class WindowAdjustable {
 public:
  virtual ~WindowAdjustable() = default;
  virtual void set_cwnd_bytes(std::int64_t cwnd) = 0;
};

}  // namespace libra
