// CUBIC congestion control (RFC 8312): cubic window growth around the last
// congestion point, TCP-friendly region, fast convergence, beta = 0.7.
#pragma once

#include "classic/loss_epoch.h"
#include "classic/window_adjustable.h"
#include "sim/congestion_control.h"

namespace libra {

struct CubicParams {
  double c = 0.4;        // cubic scaling constant (window in MSS, time in s)
  double beta = 0.7;     // multiplicative-decrease factor
  bool fast_convergence = true;
  std::int64_t mss = kDefaultPacketBytes;
};

class Cubic final : public CongestionControl, public WindowAdjustable {
 public:
  explicit Cubic(CubicParams params = {});

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "cubic"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

  double w_max_packets() const { return w_max_; }

  /// Overwrites the congestion window and restarts the cubic epoch from it —
  /// the hook two-level schemes (Orca) use to apply DRL decisions on top of
  /// kernel CUBIC.
  void set_cwnd_bytes(std::int64_t cwnd) override;

 private:
  void reset_epoch();

  CubicParams params_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  LossEpochTracker epoch_;

  // Cubic epoch state (windows in packets, time in seconds).
  double w_max_ = 0.0;
  double k_ = 0.0;
  SimTime epoch_start_ = -1;
  double w_tcp_ = 0.0;         // TCP-friendly reference window
  double ack_count_ = 0.0;
};

}  // namespace libra
