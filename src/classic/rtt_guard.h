// Shared RTT-sample validity guard for the delay-based classic CCAs.
//
// The first ACKs of a flow can arrive before the sender has a minimum-RTT
// estimate (ack.min_rtt == 0), and synthetic/unit-test ACK streams may carry a
// zeroed rtt. Every delay-based algorithm divides by one of these values —
// Vegas/Compound by min_rtt, Copa by the standing RTT, Illinois by the delay
// spread — so an unset sample turns directly into a NaN/Inf rate or window.
// Each algorithm used to guard (or not) in its own way; they all route through
// this one predicate now.
#pragma once

#include "sim/congestion_control.h"

namespace libra {

/// True when the ACK carries usable RTT samples: both the latest RTT and the
/// sender's lifetime minimum are set (> 0). Delay-based control laws must
/// skip their delay math — falling back to their loss-based/neutral behaviour
/// — until this holds.
inline bool has_rtt_samples(const AckEvent& ack) {
  return ack.rtt > 0 && ack.min_rtt > 0;
}

}  // namespace libra
