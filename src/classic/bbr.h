// BBR v1 (Cardwell et al., 2017): model-based congestion control that paces
// at pacing_gain x max-bandwidth and caps inflight at cwnd_gain x BDP.
// Implements the full v1 state machine — STARTUP, DRAIN, PROBE_BW with the
// 8-phase gain cycle, and PROBE_RTT — with round counting, the 10-round
// bandwidth max-filter and the 10-second min-RTT filter.
#pragma once

#include "sim/congestion_control.h"
#include "util/windowed_filter.h"

namespace libra {

struct BbrParams {
  std::int64_t mss = kDefaultPacketBytes;
  double startup_gain = 2.885;   // 2/ln2
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  int bw_filter_rounds = 10;
  SimDuration min_rtt_window = sec(10);
  SimDuration probe_rtt_duration = msec(200);

  // Long-term ("lt") bandwidth estimation for token-bucket policer detection
  // (the kernel's bbr_lt_* machinery): sample delivered/lost over intervals
  // of 4-16 round trips; an interval with a loss fraction of at least
  // lt_loss_thresh whose rate agrees with the previous interval's within
  // lt_bw_ratio (or lt_bw_diff absolute) pins pacing to the average of the
  // two — the policed rate — for lt_bw_max_rtts rounds before re-probing.
  int lt_intvl_min_rtts = 4;
  double lt_loss_thresh = 0.2;     // 2/10 of an interval's packets lost
  double lt_bw_ratio = 0.125;      // consecutive samples agree within 1/8
  RateBps lt_bw_diff = kbps(4);    // ... or within 4 kbps absolute
  int lt_bw_max_rtts = 48;         // use lt_bw this long, then re-probe
};

class Bbr final : public CongestionControl {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit Bbr(BbrParams params = {});

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  RateBps pacing_rate() const override;
  std::int64_t cwnd_bytes() const override;
  std::string name() const override { return "bbr"; }

  Mode mode() const { return mode_; }
  RateBps bottleneck_bw() const { return max_bw_.valid() ? max_bw_.best() : 0; }
  SimDuration min_rtt() const { return min_rtt_; }
  int probe_bw_phase() const { return cycle_index_; }

  /// Long-term estimator state: when lt_use_bw() the model believes the path
  /// is policed and paces at lt_bw() with unit gain.
  bool lt_use_bw() const { return lt_use_bw_; }
  RateBps lt_bw() const { return lt_bw_; }

 private:
  /// Trace code 1: mode transition — new mode index and pacing gain.
  void record_mode(SimTime now) const {
    record_cca_event(now, 1, static_cast<double>(mode_), pacing_gain_);
  }
  /// Leaves PROBE_RTT once its dwell elapsed — shared by the ACK path and the
  /// tick path (ACK-silent outages), so their guards cannot drift apart.
  void maybe_exit_probe_rtt(SimTime now);
  void enter_probe_bw(SimTime now);
  void advance_cycle_phase(SimTime now, std::int64_t bytes_in_flight);
  void check_full_bandwidth();
  void update_min_rtt(SimTime now, SimDuration rtt);
  std::int64_t bdp_bytes(double gain) const;

  /// The bandwidth the model actually uses: lt_bw while pinned, else the
  /// windowed max filter.
  RateBps bw() const;
  void lt_bw_sampling(const AckEvent& ack, std::int64_t losses);
  void lt_bw_interval_done(SimTime now, RateBps bw_sample);
  void reset_lt_sampling();
  void reset_lt_interval(SimTime now);

  BbrParams params_;
  Mode mode_ = Mode::kStartup;

  // Bandwidth filter, windowed over rounds.
  WindowedMax<RateBps> max_bw_;
  std::uint64_t round_count_ = 0;
  std::uint64_t next_round_seq_ = 0;
  std::uint64_t last_sent_seq_ = 0;
  bool round_start_ = false;

  // Min-RTT filter and ProbeRTT scheduling.
  SimDuration min_rtt_ = 0;
  SimTime min_rtt_stamp_ = 0;
  SimTime probe_rtt_done_ = 0;

  // STARTUP full-bandwidth detection.
  RateBps full_bw_ = 0;
  int full_bw_rounds_ = 0;
  bool full_bw_reached_ = false;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  SimTime cycle_stamp_ = 0;

  double pacing_gain_ = 2.885;
  std::int64_t bytes_in_flight_ = 0;
  Mode mode_before_probe_rtt_ = Mode::kStartup;

  // Long-term bandwidth estimation (policer detection). Delivered/lost run
  // as cumulative counters; on_loss() banks losses into losses_since_ack_,
  // which the next on_ack() consumes as that ACK's loss annotation (the
  // rate_sample->losses analog).
  std::int64_t delivered_pkts_ = 0;
  std::int64_t delivered_bytes_acc_ = 0;
  std::int64_t lost_pkts_ = 0;
  std::int64_t losses_since_ack_ = 0;
  bool lt_is_sampling_ = false;
  bool lt_use_bw_ = false;
  int lt_rtt_cnt_ = 0;
  RateBps lt_bw_ = 0;
  SimTime lt_last_stamp_ = 0;
  std::int64_t lt_last_delivered_pkts_ = 0;
  std::int64_t lt_last_delivered_bytes_ = 0;
  std::int64_t lt_last_lost_ = 0;
};

}  // namespace libra
