// BBR v1 (Cardwell et al., 2017): model-based congestion control that paces
// at pacing_gain x max-bandwidth and caps inflight at cwnd_gain x BDP.
// Implements the full v1 state machine — STARTUP, DRAIN, PROBE_BW with the
// 8-phase gain cycle, and PROBE_RTT — with round counting, the 10-round
// bandwidth max-filter and the 10-second min-RTT filter.
#pragma once

#include "sim/congestion_control.h"
#include "util/windowed_filter.h"

namespace libra {

struct BbrParams {
  std::int64_t mss = kDefaultPacketBytes;
  double startup_gain = 2.885;   // 2/ln2
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  int bw_filter_rounds = 10;
  SimDuration min_rtt_window = sec(10);
  SimDuration probe_rtt_duration = msec(200);
};

class Bbr final : public CongestionControl {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit Bbr(BbrParams params = {});

  void on_packet_sent(const SendEvent& ev) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_tick(SimTime now) override;

  RateBps pacing_rate() const override;
  std::int64_t cwnd_bytes() const override;
  std::string name() const override { return "bbr"; }

  Mode mode() const { return mode_; }
  RateBps bottleneck_bw() const { return max_bw_.valid() ? max_bw_.best() : 0; }
  SimDuration min_rtt() const { return min_rtt_; }
  int probe_bw_phase() const { return cycle_index_; }

 private:
  /// Trace code 1: mode transition — new mode index and pacing gain.
  void record_mode(SimTime now) const {
    record_cca_event(now, 1, static_cast<double>(mode_), pacing_gain_);
  }
  /// Leaves PROBE_RTT once its dwell elapsed — shared by the ACK path and the
  /// tick path (ACK-silent outages), so their guards cannot drift apart.
  void maybe_exit_probe_rtt(SimTime now);
  void enter_probe_bw(SimTime now);
  void advance_cycle_phase(SimTime now, std::int64_t bytes_in_flight);
  void check_full_bandwidth();
  void update_min_rtt(SimTime now, SimDuration rtt);
  std::int64_t bdp_bytes(double gain) const;

  BbrParams params_;
  Mode mode_ = Mode::kStartup;

  // Bandwidth filter, windowed over rounds.
  WindowedMax<RateBps> max_bw_;
  std::uint64_t round_count_ = 0;
  std::uint64_t next_round_seq_ = 0;
  std::uint64_t last_sent_seq_ = 0;
  bool round_start_ = false;

  // Min-RTT filter and ProbeRTT scheduling.
  SimDuration min_rtt_ = 0;
  SimTime min_rtt_stamp_ = 0;
  SimTime probe_rtt_done_ = 0;

  // STARTUP full-bandwidth detection.
  RateBps full_bw_ = 0;
  int full_bw_rounds_ = 0;
  bool full_bw_reached_ = false;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  SimTime cycle_stamp_ = 0;

  double pacing_gain_ = 2.885;
  std::int64_t bytes_in_flight_ = 0;
  Mode mode_before_probe_rtt_ = Mode::kStartup;
};

}  // namespace libra
