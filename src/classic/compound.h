// Compound TCP (Tan et al., INFOCOM 2006) — the classic *combined* CCA the
// paper's related-work section contrasts Libra against: the congestion window
// is the sum of a loss-based component (Reno-style) and a delay-based
// component (Vegas-style dwnd) that grows aggressively while the queue is
// empty and retreats as queueing delay builds.
#pragma once

#include <algorithm>
#include <cmath>

#include "classic/loss_epoch.h"
#include "classic/rtt_guard.h"
#include "sim/congestion_control.h"

namespace libra {

struct CompoundParams {
  std::int64_t mss = kDefaultPacketBytes;
  double alpha = 0.125;  // dwnd growth: alpha * win^k
  double beta = 0.5;     // dwnd multiplicative decrease on deep queues
  double k = 0.75;
  double gamma = 30.0;   // queued-packet threshold for dwnd retreat
};

class CompoundTcp final : public CongestionControl {
 public:
  explicit CompoundTcp(CompoundParams params = {})
      : params_(params), cwnd_(10 * params.mss), dwnd_(0),
        ssthresh_(kInfiniteCwnd) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    // Loss-based component: standard Reno growth.
    if (cwnd_ < ssthresh_) {
      cwnd_ += params_.mss;
    } else {
      cwnd_ += params_.mss * params_.mss / std::max<std::int64_t>(cwnd_, params_.mss);
    }

    // Delay-based component, adjusted once per RTT. An ACK without usable RTT
    // samples must not consume the adjustment slot (it carries no signal).
    if (!has_rtt_samples(ack)) return;
    if (last_adjust_ != 0 && ack.now - last_adjust_ < ack.rtt) return;
    last_adjust_ = ack.now;

    double win_pkts = static_cast<double>(window()) / params_.mss;
    double expected = win_pkts / to_seconds(ack.min_rtt);
    double actual = win_pkts / to_seconds(ack.rtt);
    double diff = (expected - actual) * to_seconds(ack.min_rtt);  // queued pkts

    if (diff < params_.gamma) {
      // Queue small: grow the delay window polynomially (HSTCP-like).
      double inc = std::max(1.0, params_.alpha * std::pow(win_pkts, params_.k));
      dwnd_ += static_cast<std::int64_t>(inc * params_.mss);
    } else {
      // Standing queue: retreat so the compound window approaches cwnd.
      dwnd_ = std::max<std::int64_t>(
          0, dwnd_ - static_cast<std::int64_t>((diff - params_.gamma) *
                                               static_cast<double>(params_.mss)));
    }
  }

  void on_loss(const LossEvent& loss) override {
    if (!epoch_.should_react(loss.seq)) return;
    ssthresh_ = std::max<std::int64_t>(window() / 2, 2 * params_.mss);
    cwnd_ = ssthresh_;
    dwnd_ = static_cast<std::int64_t>(static_cast<double>(dwnd_) *
                                      (1.0 - params_.beta));
    if (loss.from_timeout) {
      cwnd_ = params_.mss;
      dwnd_ = 0;
    }
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return window(); }
  std::string name() const override { return "compound"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

  std::int64_t delay_window() const { return dwnd_; }

 private:
  std::int64_t window() const { return cwnd_ + dwnd_; }

  CompoundParams params_;
  std::int64_t cwnd_;
  std::int64_t dwnd_;
  std::int64_t ssthresh_;
  SimTime last_adjust_ = 0;
  LossEpochTracker epoch_;
};

}  // namespace libra
