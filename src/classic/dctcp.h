// DCTCP (Alizadeh et al., SIGCOMM 2010): datacenter TCP that reacts to the
// *fraction* of CE-marked packets per window instead of treating any mark as
// a full congestion event. The switch marks arriving packets once the
// instantaneous queue exceeds K (see LinkConfig::ecn_threshold_bytes); the
// sender maintains alpha, an EWMA of the per-window CE fraction with gain
// g = 1/16, and cuts cwnd *= 1 - alpha/2 at most once per window of data.
// Mild persistent marking therefore costs a few percent of window, while
// sustained heavy marking converges to the classic halving — which is what
// lets DCTCP hold datacenter queues near K at full throughput.
#pragma once

#include <algorithm>

#include "classic/loss_epoch.h"
#include "sim/congestion_control.h"

namespace libra {

struct DctcpParams {
  std::int64_t mss = kDefaultPacketBytes;
  /// EWMA gain for alpha (the paper and the kernel both use 1/16).
  double g = 1.0 / 16.0;
  /// Initial alpha. The kernel initializes to 1 so the very first CE mark —
  /// including one arriving in slow start — costs a full halving until real
  /// per-window fractions take over.
  double initial_alpha = 1.0;
};

class Dctcp final : public CongestionControl {
 public:
  explicit Dctcp(DctcpParams params = {})
      : params_(params),
        cwnd_(10 * params.mss),
        ssthresh_(kInfiniteCwnd),
        alpha_(params.initial_alpha) {}

  void on_packet_sent(const SendEvent& ev) override {
    last_sent_seq_ = ev.seq;
    loss_epoch_.on_sent(ev.seq);
    ce_epoch_.on_sent(ev.seq);
  }

  void on_ack(const AckEvent& ack) override {
    // Per-window CE accounting: one observation window is one round of the
    // flow's own data (seq-based round detection, as in BBR), matching the
    // paper's "once for every window of data" alpha update.
    ++window_acked_;
    if (ack.ecn_ce) ++window_ce_;
    if (ack.seq >= next_window_seq_) {
      const double frac = window_acked_ > 0
                              ? static_cast<double>(window_ce_) /
                                    static_cast<double>(window_acked_)
                              : 0.0;
      alpha_ += params_.g * (frac - alpha_);
      window_acked_ = 0;
      window_ce_ = 0;
      next_window_seq_ = last_sent_seq_ + 1;
    }

    // ECN reaction, at most once per window (the CE epoch tracker is the
    // same once-per-flight gate the loss path uses): cwnd *= 1 - alpha/2.
    // In slow start this is also the exit — ssthresh drops to the reduced
    // window, so growth continues additively from there.
    if (ack.ecn_ce && ce_epoch_.should_react(ack.seq)) {
      const auto reduced = static_cast<std::int64_t>(
          static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0));
      cwnd_ = std::max<std::int64_t>(reduced, 2 * params_.mss);
      ssthresh_ = cwnd_;
      return;
    }

    if (cwnd_ < ssthresh_) {
      cwnd_ += params_.mss;  // slow start: one MSS per ACK
    } else {
      cwnd_ += params_.mss * params_.mss / cwnd_;  // one MSS per RTT
    }
  }

  void on_loss(const LossEvent& loss) override {
    // Loss still means loss: DCTCP falls back to standard TCP behaviour
    // (the alpha machinery only softens ECN-signalled congestion).
    if (!loss_epoch_.should_react(loss.seq)) return;
    ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2 * params_.mss);
    cwnd_ = loss.from_timeout ? params_.mss : ssthresh_;
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "dctcp"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

  /// Current CE-fraction estimate (tests assert convergence under a fixed
  /// marking pattern).
  double alpha() const { return alpha_; }

 private:
  DctcpParams params_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  double alpha_;

  // Alpha observation window (one round of the flow's own data).
  std::uint64_t last_sent_seq_ = 0;
  std::uint64_t next_window_seq_ = 0;
  std::int64_t window_acked_ = 0;
  std::int64_t window_ce_ = 0;

  LossEpochTracker loss_epoch_;
  LossEpochTracker ce_epoch_;
};

}  // namespace libra
