// Once-per-congestion-epoch reaction tracking shared by the loss-based CCAs:
// a window reduction applies to the whole flight that was outstanding when
// congestion was detected, so further losses from that same flight must not
// trigger further reductions.
#pragma once

#include <cstdint>

namespace libra {

class LossEpochTracker {
 public:
  void on_sent(std::uint64_t seq) { highest_sent_ = seq; }

  /// True if the lost packet belongs to a new congestion epoch (i.e. it was
  /// sent after the last reduction); marks the epoch consumed when so.
  bool should_react(std::uint64_t lost_seq) {
    if (have_epoch_ && lost_seq <= epoch_end_seq_) return false;
    epoch_end_seq_ = highest_sent_;
    have_epoch_ = true;
    return true;
  }

  void reset() { have_epoch_ = false; epoch_end_seq_ = 0; }

 private:
  std::uint64_t highest_sent_ = 0;
  std::uint64_t epoch_end_seq_ = 0;
  bool have_epoch_ = false;
};

}  // namespace libra
