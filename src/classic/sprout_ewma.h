// Sprout-EWMA (the Pantheon variant of Sprout, Winstein et al. NSDI 2013):
// forecasts link capacity with an EWMA of the delivery rate and paces so the
// expected queueing delay stays under a fixed target. Rate-based.
#pragma once

#include <algorithm>

#include "classic/rtt_guard.h"
#include "sim/congestion_control.h"
#include "util/ewma.h"

namespace libra {

struct SproutParams {
  std::int64_t mss = kDefaultPacketBytes;
  SimDuration target_queueing_delay = msec(50);
  double ewma_gain = 0.2;
};

class SproutEwma final : public CongestionControl {
 public:
  explicit SproutEwma(SproutParams params = {})
      : params_(params), capacity_est_(params.ewma_gain) {}

  void on_ack(const AckEvent& ack) override {
    if (ack.delivery_rate > 0) capacity_est_.update(ack.delivery_rate);
    // Without usable RTT samples the queueing-delay term is meaningless
    // (rtt - min_rtt of a first ACK with unset min_rtt reads as a huge
    // excess); keep the previous control setting until samples are real.
    if (!has_rtt_samples(ack)) return;
    // Proportional controller on queueing delay: pace at the forecast
    // capacity scaled down as the queue approaches the delay target, with
    // only gentle headroom above the forecast when the queue is empty.
    SimDuration excess = ack.rtt - ack.min_rtt;
    double ratio = static_cast<double>(excess) /
                   static_cast<double>(params_.target_queueing_delay);
    control_ = std::clamp(1.0 + 0.25 * (1.0 - ratio), 0.5, 1.1);
  }

  void on_loss(const LossEvent&) override {
    // Loss means the forecast overshot badly; damp the controller briefly.
    control_ = std::min(control_, 0.6);
  }

  RateBps pacing_rate() const override {
    RateBps base = capacity_est_.value_or(mbps(1));
    return std::max(kbps(100), base * control_);
  }

  std::int64_t cwnd_bytes() const override { return kInfiniteCwnd; }
  std::string name() const override { return "sprout"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  SproutParams params_;
  Ewma capacity_est_;
  double control_ = 1.0;
};

}  // namespace libra
