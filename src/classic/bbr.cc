#include "classic/bbr.h"

#include <algorithm>
#include <cmath>

namespace libra {

namespace {
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kProbeBwPhases = 8;
}  // namespace

Bbr::Bbr(BbrParams params)
    // The bw filter window is counted in rounds; we feed round_count_ as the
    // "time" axis of the windowed filter.
    : params_(params), max_bw_(params.bw_filter_rounds) {}

void Bbr::on_packet_sent(const SendEvent& ev) {
  last_sent_seq_ = ev.seq;
  bytes_in_flight_ = ev.bytes_in_flight;
}

RateBps Bbr::bw() const {
  if (lt_use_bw_) return lt_bw_;
  return max_bw_.valid() ? max_bw_.best() : 0;
}

std::int64_t Bbr::bdp_bytes(double gain) const {
  const RateBps b = bw();
  if (b <= 0 || min_rtt_ <= 0) return 10 * params_.mss;
  double bdp = b / 8.0 * to_seconds(min_rtt_);
  return std::max<std::int64_t>(static_cast<std::int64_t>(gain * bdp),
                                4 * params_.mss);
}

RateBps Bbr::pacing_rate() const {
  const RateBps b = bw();
  if (b <= 0) {
    // Before the first bandwidth sample: pace the initial window over a
    // nominal 1 ms so STARTUP can begin aggressively but boundedly.
    return mbps(10);
  }
  // While the long-term model is in charge the gain is pinned to 1: probing
  // above a policer's rate only buys drops.
  return lt_use_bw_ ? b : pacing_gain_ * b;
}

std::int64_t Bbr::cwnd_bytes() const {
  if (mode_ == Mode::kProbeRtt) return 4 * params_.mss;
  return bdp_bytes(params_.cwnd_gain);
}

void Bbr::update_min_rtt(SimTime now, SimDuration rtt) {
  bool expired = min_rtt_ != 0 && now - min_rtt_stamp_ > params_.min_rtt_window;
  // Strictly lower samples refresh the filter (kernel semantics: an equal
  // sample must not keep postponing ProbeRTT forever).
  if (min_rtt_ == 0 || rtt < min_rtt_) {
    min_rtt_ = rtt;
    min_rtt_stamp_ = now;
    return;
  }
  if (!expired) return;
  // The estimate has gone stale without being beaten: enter ProbeRTT to
  // drain the pipe and revalidate, adopting the fresh sample meanwhile.
  min_rtt_ = rtt;
  min_rtt_stamp_ = now;
  if (mode_ != Mode::kProbeRtt) {
    mode_before_probe_rtt_ = mode_;
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    probe_rtt_done_ = now + params_.probe_rtt_duration;
    record_mode(now);
  }
}

void Bbr::check_full_bandwidth() {
  if (full_bw_reached_ || !round_start_ || !max_bw_.valid()) return;
  if (max_bw_.best() >= full_bw_ * 1.25) {
    full_bw_ = max_bw_.best();
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= 3) full_bw_reached_ = true;
}

void Bbr::enter_probe_bw(SimTime now) {
  mode_ = Mode::kProbeBw;
  cycle_index_ = 2;  // start in a cruise phase, as the kernel does
  cycle_stamp_ = now;
  pacing_gain_ = kProbeBwGains[cycle_index_];
  record_mode(now);
}

void Bbr::advance_cycle_phase(SimTime now, std::int64_t bytes_in_flight) {
  bool advance = now - cycle_stamp_ > min_rtt_;
  // Leave the 0.75 drain phase as soon as inflight has drained to the BDP.
  if (cycle_index_ == 1 && bytes_in_flight <= bdp_bytes(1.0)) advance = true;
  // Hold the 1.25 probe phase until it has lasted a full min_rtt.
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % kProbeBwPhases;
    cycle_stamp_ = now;
    pacing_gain_ = kProbeBwGains[cycle_index_];
  }
}

// --- long-term bandwidth estimation (policer detection) --------------------
//
// A token-bucket policer shows up as a repeating signature: intervals of
// steady delivery at the policed rate punctuated by bursts of loss whenever
// the bucket empties. The estimator samples (delivered, lost) over intervals
// of lt_intvl_min_rtts..4x that many round trips; an interval is only closed
// at a loss, must carry at least lt_loss_thresh loss fraction, and when two
// consecutive such intervals measure the same rate (within 1/8, or 4 kbps)
// the model pins pacing to their average for lt_bw_max_rtts rounds.

void Bbr::reset_lt_sampling() {
  lt_is_sampling_ = false;
  lt_use_bw_ = false;
  lt_bw_ = 0;
  lt_rtt_cnt_ = 0;
}

void Bbr::reset_lt_interval(SimTime now) {
  lt_last_stamp_ = now;
  lt_last_delivered_pkts_ = delivered_pkts_;
  lt_last_delivered_bytes_ = delivered_bytes_acc_;
  lt_last_lost_ = lost_pkts_;
  lt_rtt_cnt_ = 0;
}

void Bbr::lt_bw_interval_done(SimTime now, RateBps bw_sample) {
  if (lt_bw_ > 0) {
    const RateBps diff = std::abs(bw_sample - lt_bw_);
    if (diff <= params_.lt_bw_ratio * lt_bw_ || diff <= params_.lt_bw_diff) {
      // Two consecutive intervals agree: believe the path is policed at
      // their average and stop probing above it.
      lt_bw_ = (bw_sample + lt_bw_) / 2;
      lt_use_bw_ = true;
      pacing_gain_ = 1.0;
      lt_rtt_cnt_ = 0;
      /// Trace code 2: long-term model engaged — pinned rate.
      record_cca_event(now, 2, lt_bw_);
      return;
    }
  }
  lt_bw_ = bw_sample;
  reset_lt_interval(now);
}

void Bbr::lt_bw_sampling(const AckEvent& ack, std::int64_t losses) {
  if (lt_use_bw_) {
    // Using the long-term model: after lt_bw_max_rtts rounds of PROBE_BW,
    // forget it and re-probe (the policer may have lifted).
    if (mode_ == Mode::kProbeBw && round_start_ &&
        ++lt_rtt_cnt_ >= params_.lt_bw_max_rtts) {
      reset_lt_sampling();
      enter_probe_bw(ack.now);
    }
    return;
  }
  // Wait for the first loss: an unpoliced path never starts an interval.
  if (!lt_is_sampling_) {
    if (losses == 0) return;
    reset_lt_interval(ack.now);
    lt_is_sampling_ = true;
  }
  if (round_start_) ++lt_rtt_cnt_;
  if (lt_rtt_cnt_ < params_.lt_intvl_min_rtts) return;
  if (lt_rtt_cnt_ > 4 * params_.lt_intvl_min_rtts) {
    // Interval grew too long to be one bucket cycle: start over.
    reset_lt_sampling();
    return;
  }
  // Close the interval only at a loss, so it spans whole bucket cycles.
  if (losses == 0) return;
  const std::int64_t delivered = delivered_pkts_ - lt_last_delivered_pkts_;
  const std::int64_t lost = lost_pkts_ - lt_last_lost_;
  if (delivered <= 0) return;
  if (static_cast<double>(lost) <
      params_.lt_loss_thresh * static_cast<double>(delivered))
    return;
  const SimDuration t = ack.now - lt_last_stamp_;
  if (t <= 0) return;
  const RateBps bw_sample =
      static_cast<double>(delivered_bytes_acc_ - lt_last_delivered_bytes_) *
      8.0 / to_seconds(t);
  lt_bw_interval_done(ack.now, bw_sample);
}

void Bbr::on_ack(const AckEvent& ack) {
  bytes_in_flight_ = ack.bytes_in_flight;
  ++delivered_pkts_;
  delivered_bytes_acc_ += ack.acked_bytes;
  const std::int64_t losses = losses_since_ack_;
  losses_since_ack_ = 0;

  // Round accounting: a round trip ends when a packet sent after the previous
  // round's end is acknowledged.
  round_start_ = false;
  if (ack.seq >= next_round_seq_) {
    next_round_seq_ = last_sent_seq_ + 1;
    ++round_count_;
    round_start_ = true;
  }

  lt_bw_sampling(ack, losses);

  if (ack.delivery_rate > 0) {
    max_bw_.update(ack.delivery_rate, static_cast<SimTime>(round_count_));
  }
  update_min_rtt(ack.now, ack.rtt);

  switch (mode_) {
    case Mode::kStartup:
      check_full_bandwidth();
      if (full_bw_reached_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = params_.drain_gain;
        record_mode(ack.now);
      } else {
        pacing_gain_ = params_.startup_gain;
      }
      break;
    case Mode::kDrain:
      if (ack.bytes_in_flight <= bdp_bytes(1.0)) enter_probe_bw(ack.now);
      break;
    case Mode::kProbeBw:
      check_full_bandwidth();
      advance_cycle_phase(ack.now, ack.bytes_in_flight);
      break;
    case Mode::kProbeRtt:
      maybe_exit_probe_rtt(ack.now);
      break;
  }
}

void Bbr::maybe_exit_probe_rtt(SimTime now) {
  // One exit path for both the ACK-driven and the timer-driven (ACK-silent
  // outage) checks; the guards used to differ subtly between the two.
  if (mode_ != Mode::kProbeRtt || probe_rtt_done_ == 0 || now < probe_rtt_done_)
    return;
  min_rtt_stamp_ = now;  // revalidated
  probe_rtt_done_ = 0;
  if (mode_before_probe_rtt_ == Mode::kProbeBw || full_bw_reached_) {
    enter_probe_bw(now);
  } else {
    mode_ = Mode::kStartup;
    pacing_gain_ = params_.startup_gain;
    record_mode(now);
  }
}

void Bbr::on_loss(const LossEvent& loss) {
  ++lost_pkts_;
  ++losses_since_ack_;
  // BBR v1 does not treat individual losses as congestion; only a timeout
  // (persistent blackout) conservatively resets the model.
  if (loss.from_timeout) {
    full_bw_ = 0;
    full_bw_rounds_ = 0;
  }
}

void Bbr::on_tick(SimTime now) {
  // Exit a ProbeRTT that elapsed while no ACKs arrived (e.g. LTE outage).
  maybe_exit_probe_rtt(now);
}

}  // namespace libra
