#include "classic/cubic.h"

#include <algorithm>
#include <cmath>

namespace libra {

Cubic::Cubic(CubicParams params)
    : params_(params), cwnd_(10 * params.mss), ssthresh_(kInfiniteCwnd) {}

void Cubic::set_cwnd_bytes(std::int64_t cwnd) {
  // ssthresh is deliberately untouched: pre-loss, the algorithm must still be
  // able to slow-start from the injected window.
  cwnd_ = std::max<std::int64_t>(cwnd, 2 * params_.mss);
  reset_epoch();
}

void Cubic::reset_epoch() {
  epoch_start_ = -1;
  ack_count_ = 0.0;
}

void Cubic::on_ack(const AckEvent& ack) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += params_.mss;
    return;
  }

  const double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(params_.mss);
  if (epoch_start_ < 0) {
    epoch_start_ = ack.now;
    if (w_max_ <= cwnd_pkts) {
      // We are already past the previous saturation point; grow from here.
      k_ = 0.0;
      w_max_ = cwnd_pkts;
    } else {
      k_ = std::cbrt(w_max_ * (1.0 - params_.beta) / params_.c);
    }
    w_tcp_ = cwnd_pkts;
    ack_count_ = 0.0;
  }
  ack_count_ += 1.0;

  // Cubic target one RTT ahead of now (RFC 8312 s4.1).
  double t = to_seconds(ack.now - epoch_start_ + ack.rtt);
  double target = params_.c * std::pow(t - k_, 3.0) + w_max_;

  // TCP-friendly region: emulate Reno's growth rate with beta-adjusted AI.
  w_tcp_ += 3.0 * (1.0 - params_.beta) / (1.0 + params_.beta) / cwnd_pkts;
  target = std::max(target, w_tcp_);

  if (target > cwnd_pkts) {
    // Spread the increase over the ACKs of one window.
    double increase = (target - cwnd_pkts) / cwnd_pkts;
    cwnd_ += static_cast<std::int64_t>(increase * static_cast<double>(params_.mss));
  } else {
    // Very slow growth in the concave plateau.
    cwnd_ += static_cast<std::int64_t>(static_cast<double>(params_.mss) /
                                       (100.0 * cwnd_pkts));
  }
}

void Cubic::on_loss(const LossEvent& loss) {
  if (!epoch_.should_react(loss.seq)) return;

  const double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(params_.mss);
  if (params_.fast_convergence && cwnd_pkts < w_max_) {
    w_max_ = cwnd_pkts * (2.0 - params_.beta) / 2.0;
  } else {
    w_max_ = cwnd_pkts;
  }

  cwnd_ = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(cwnd_) * params_.beta),
      2 * params_.mss);
  ssthresh_ = cwnd_;
  if (loss.from_timeout) {
    cwnd_ = 2 * params_.mss;
  }
  reset_epoch();
  // Trace code 1: multiplicative decrease (epoch reset) — new cwnd and W_max.
  record_cca_event(loss.now, 1, static_cast<double>(cwnd_), w_max_);
}

}  // namespace libra
