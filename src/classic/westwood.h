// TCP Westwood+: NewReno-style growth, but on loss the window collapses to
// the measured bandwidth-delay product instead of half the window, which
// makes it resilient to non-congestive (stochastic) losses.
#pragma once

#include "classic/loss_epoch.h"
#include "sim/congestion_control.h"
#include "util/ewma.h"

namespace libra {

class Westwood final : public CongestionControl {
 public:
  explicit Westwood(std::int64_t mss = kDefaultPacketBytes)
      : mss_(mss), cwnd_(10 * mss), ssthresh_(kInfiniteCwnd), bw_est_(0.1) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    if (ack.min_rtt > 0) min_rtt_ = ack.min_rtt;
    if (ack.delivery_rate > 0) bw_est_.update(ack.delivery_rate);
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;
    } else {
      cwnd_ += mss_ * mss_ / cwnd_;
    }
  }

  void on_loss(const LossEvent& loss) override {
    if (!epoch_.should_react(loss.seq)) return;
    // ssthresh = BWE * RTTmin: the pipe size measured just before loss.
    std::int64_t bdp = static_cast<std::int64_t>(
        bw_est_.value() / 8.0 * to_seconds(min_rtt_));
    ssthresh_ = std::max<std::int64_t>(bdp, 2 * mss_);
    cwnd_ = loss.from_timeout ? mss_ : std::min(cwnd_, ssthresh_);
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "westwood"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  std::int64_t mss_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  Ewma bw_est_;
  SimDuration min_rtt_ = msec(50);
  LossEpochTracker epoch_;
};

}  // namespace libra
