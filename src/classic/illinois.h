// TCP Illinois: loss-based AIMD whose additive-increase alpha shrinks and
// multiplicative-decrease beta grows as measured queueing delay rises, giving
// concave-friendly behaviour on high-BDP wired paths (paper Sec. 7 lists it
// as a drop-in classic component for Libra).
#pragma once

#include <algorithm>

#include "classic/loss_epoch.h"
#include "classic/rtt_guard.h"
#include "sim/congestion_control.h"

namespace libra {

struct IllinoisParams {
  std::int64_t mss = kDefaultPacketBytes;
  double alpha_max = 10.0;
  double alpha_min = 0.3;
  double beta_min = 0.125;
  double beta_max = 0.5;
  double delay_threshold = 0.01;  // fraction of max delay below which alpha_max
};

class Illinois final : public CongestionControl {
 public:
  explicit Illinois(IllinoisParams params = {})
      : params_(params), cwnd_(10 * params.mss), ssthresh_(kInfiniteCwnd) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    if (has_rtt_samples(ack)) {
      if (ack.rtt > max_rtt_) max_rtt_ = ack.rtt;
      avg_rtt_ += (static_cast<double>(ack.rtt) - avg_rtt_) / 16.0;
    }

    if (cwnd_ < ssthresh_) {
      cwnd_ += params_.mss;
      return;
    }

    // No usable delay signal yet: plain Reno additive increase until the RTT
    // trackers have real samples to adapt alpha/beta from.
    if (!has_rtt_samples(ack) || avg_rtt_ <= 0) {
      cwnd_ += params_.mss * params_.mss / std::max<std::int64_t>(cwnd_, params_.mss);
      return;
    }

    double da = std::max(0.0, avg_rtt_ - static_cast<double>(ack.min_rtt));
    double dm = std::max(1.0, static_cast<double>(max_rtt_ - ack.min_rtt));
    double d_frac = da / dm;

    // alpha: alpha_max when the queue is (nearly) empty, hyperbolic decay to
    // alpha_min as queueing delay approaches its historical maximum.
    double alpha;
    if (d_frac <= params_.delay_threshold) {
      alpha = params_.alpha_max;
    } else {
      double k1 = (params_.delay_threshold * params_.alpha_min * params_.alpha_max) /
                  (params_.alpha_max - params_.alpha_min);
      alpha = std::clamp(k1 / (d_frac + k1 / params_.alpha_max - params_.delay_threshold),
                         params_.alpha_min, params_.alpha_max);
    }
    beta_ = std::clamp(params_.beta_min + d_frac * (params_.beta_max - params_.beta_min) / 0.8,
                       params_.beta_min, params_.beta_max);

    // Additive increase of `alpha` packets per RTT.
    cwnd_ += static_cast<std::int64_t>(alpha * static_cast<double>(params_.mss) *
                                       static_cast<double>(params_.mss) /
                                       static_cast<double>(cwnd_));
  }

  void on_loss(const LossEvent& loss) override {
    if (!epoch_.should_react(loss.seq)) return;
    cwnd_ = std::max<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(cwnd_) * (1.0 - beta_)),
        2 * params_.mss);
    ssthresh_ = cwnd_;
    if (loss.from_timeout) cwnd_ = 2 * params_.mss;
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "illinois"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  IllinoisParams params_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  double avg_rtt_ = 0.0;
  SimDuration max_rtt_ = 0;
  double beta_ = 0.5;
  LossEpochTracker epoch_;
};

}  // namespace libra
