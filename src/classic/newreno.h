// TCP NewReno (RFC 5681/6582 semantics at packet granularity): slow start,
// AIMD congestion avoidance, multiplicative decrease once per loss epoch.
#pragma once

#include "classic/loss_epoch.h"
#include "sim/congestion_control.h"

namespace libra {

class NewReno final : public CongestionControl {
 public:
  explicit NewReno(std::int64_t mss = kDefaultPacketBytes)
      : mss_(mss), cwnd_(10 * mss), ssthresh_(kInfiniteCwnd) {}

  void on_packet_sent(const SendEvent& ev) override { epoch_.on_sent(ev.seq); }

  void on_ack(const AckEvent& ack) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;  // slow start: one MSS per ACK
    } else {
      // Congestion avoidance: one MSS per window per RTT.
      cwnd_ += mss_ * mss_ / cwnd_;
    }
    (void)ack;
  }

  void on_loss(const LossEvent& loss) override {
    if (!epoch_.should_react(loss.seq)) return;
    ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2 * mss_);
    cwnd_ = loss.from_timeout ? mss_ : ssthresh_;
  }

  RateBps pacing_rate() const override { return 0; }
  std::int64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "newreno"; }
  // Pure ACK/loss clocking: nothing to do on the periodic timer, so the
  // fleet engine may skip this flow's tick scan entirely.
  bool wants_tick() const override { return false; }

 private:
  std::int64_t mss_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  LossEpochTracker epoch_;
};

}  // namespace libra
