// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Usage model: every run (one Network) owns a private, single-threaded
// registry that the simulator fills as (or after) the run executes. Batch
// drivers aggregate per-run registries into one summary registry with
// merge(), which is the only cross-thread entry point — run_many workers
// merge under the aggregate's mutex, so the aggregate is always consistent
// and the per-run hot path never takes a lock.
//
// Histograms use fixed bucket bounds chosen at construction (linear or
// exponential ladders, or explicit bounds), so merging is element-wise and
// percentile queries cost O(buckets) with linear interpolation inside the
// winning bucket.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace libra {

class Counter {
 public:
  void inc(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-value gauge that also tracks the min/max ever set.
class Gauge {
 public:
  void set(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    last_ = v;
    ++count_;
  }

  bool empty() const { return count_ == 0; }
  double last() const { return last_; }
  double min() const { return min_; }
  double max() const { return max_; }
  std::int64_t count() const { return count_; }

 private:
  double last_ = 0, min_ = 0, max_ = 0;
  std::int64_t count_ = 0;
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; a final +inf overflow bucket
  /// is implicit. A value x lands in the first bucket with x <= bound.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `buckets` equal-width buckets spanning [lo, hi] (plus overflow). The
  /// lower edge is remembered: values below `lo` still land in bucket 0 (so
  /// percentiles and merges are unchanged) but are counted as underflow.
  static Histogram linear(double lo, double hi, std::size_t buckets);
  /// Bounds first, first*growth, first*growth^2, ... (`buckets` of them).
  static Histogram exponential(double first, double growth, std::size_t buckets);

  void add(double x);
  void merge(const Histogram& other);  // bounds must match exactly

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Estimated p-th percentile (p in [0, 100]), interpolated linearly inside
  /// the containing bucket and clamped to the observed [min, max]. 0 when
  /// the histogram is empty.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts values in (bounds[i-1], bounds[i]]; the last entry is
  /// the overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// Declares `lo` the histogram's intended lower edge: add(x < lo) counts as
  /// underflow (the sample still lands in bucket 0). linear() sets this to
  /// its `lo`; explicit/exponential ladders default to -inf (no underflow).
  void set_lower_edge(double lo) { lower_edge_ = lo; }
  double lower_edge() const { return lower_edge_; }
  /// Samples below the declared lower edge / above the last bound. Reported
  /// explicitly in to_json so a mis-sized ladder is visible, not silent.
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return counts_.back(); }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 entries
  std::int64_t count_ = 0;
  std::int64_t underflow_ = 0;
  double lower_edge_;  // set in the constructor (-inf by default)
  double sum_ = 0;
  double min_ = 0, max_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Named metric accessors; created on first use. References stay valid for
  /// the registry's lifetime. Single-owner API: not for cross-thread use.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `prototype` supplies the bucket bounds when the histogram is new.
  Histogram& histogram(const std::string& name, const Histogram& prototype);

  /// Folds `other` (which must be quiescent) into this registry. Thread-safe
  /// on the destination: concurrent merges from run_many workers serialize on
  /// an internal mutex. Counters add, gauges combine min/max/count (last
  /// value comes from the later merge), histograms add bucket-wise.
  void merge(const MetricsRegistry& other);

  /// Snapshot as a JSON object (counters/gauges/histograms sub-objects).
  std::string to_json() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  std::mutex merge_mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace libra
