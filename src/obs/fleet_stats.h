// Streaming fleet-scale flow statistics: fixed sim-time windows of per-flow
// goodput/loss/RTT aggregates, accumulated inline on the simulation hot path
// and flushed into a preallocated FleetTimeline.
//
// Contract (shared with FlightRecorder / Telemetry / Profiler):
//
//   - every hot-path hook's first statement is `if (!enabled_) return;`, so a
//     disabled FleetHealth costs one predictable branch and nothing else;
//   - enabling is a pure reader: hooks only observe sender state, so a run
//     with health on is bitwise identical to the same run with health off;
//   - the steady state is allocation-free: prepare() sizes every accumulator
//     and every timeline row up front (flows x windows), asserted in
//     tests/alloc_test.cc.
//
// Determinism: each flow's hooks (ack/loss/send/tick) all execute on the
// flow's owning sender shard, and per-shard event order is bitwise identical
// between the serial and sharded fleet engines by construction. Window rolls
// are triggered by the first hook (or shard tick) at-or-past the window
// boundary, so every FlowWindowRow — and therefore the whole timeline — is
// byte-identical serial vs. sharded at any thread count. Flows never share
// accumulator slots, so concurrent shards touch disjoint state.
//
// RTT percentiles come from a fixed-width per-flow histogram (default 500 us
// buckets, 96 buckets = 48 ms span, last bucket absorbs overflow); the p95 is
// reported as the upper edge of the bucket holding the 95th sample — exact
// integer arithmetic, no floating-point accumulation order to worry about.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/types.h"

namespace libra {

struct FleetStatsConfig {
  /// Aggregation window; every flow's timeline shares one global window grid.
  SimDuration window = msec(100);
  /// RTT histogram bucket width (microseconds of SimDuration).
  SimDuration rtt_bucket = 500;
  /// Bucket count; the last bucket absorbs samples past the histogram span.
  int rtt_buckets = 96;
};

/// One flow x window cell of the timeline. Integer fields are exact sums in
/// per-shard event order; snapshots are taken when the window is flushed.
struct FlowWindowRow {
  std::int64_t acked_bytes = 0;
  std::int32_t sent = 0;            // packets transmitted in the window
  std::int32_t lost = 0;            // packets declared lost in the window
  std::int64_t rtt_sum_us = 0;
  std::int32_t rtt_samples = 0;
  std::int32_t rtt_min_us = 0;      // 0 when the window saw no ACKs
  std::int32_t rtt_p95_us = 0;      // histogram bucket upper edge; 0 when none
  std::int64_t cwnd_bytes = 0;      // snapshot at window close
  double pacing_rate_bps = 0;       // effective pacing rate at window close
};

/// Per-flow lifetime facts the detectors need alongside the windows.
struct FleetFlowMeta {
  SimTime start = 0;
  SimTime stop = kSimTimeMax;
  std::int64_t byte_budget = -1;    // negative = backlogged
  SimTime finished_time = -1;       // finite flows; -1 = did not finish
  std::int64_t min_rtt_us = 0;      // lifetime minimum RTT (0 = no ACKs)
};

/// Dense flow-major timeline: row(flow, w) covers sim time
/// [w*window, (w+1)*window); the last window additionally includes the run's
/// final instant. Filled by FleetHealth, consumed by analyze_health().
struct FleetTimeline {
  FleetStatsConfig config;
  SimDuration duration = 0;
  int n_windows = 0;
  std::vector<FleetFlowMeta> metas;  // per flow, id order
  std::vector<FlowWindowRow> rows;   // [flow * n_windows + w]

  int flows() const { return static_cast<int>(metas.size()); }
  const FlowWindowRow& row(int flow, int w) const {
    return rows[static_cast<std::size_t>(flow) *
                    static_cast<std::size_t>(n_windows) +
                static_cast<std::size_t>(w)];
  }
};

class FleetHealth {
 public:
  bool enabled() const { return enabled_; }

  void enable(const FleetStatsConfig& config) {
    if (config.window <= 0)
      throw std::invalid_argument("FleetHealth: window must be > 0");
    if (config.rtt_bucket <= 0 || config.rtt_buckets < 1)
      throw std::invalid_argument("FleetHealth: bad RTT histogram layout");
    config_ = config;
    enabled_ = true;
  }

  /// Sizes every accumulator and timeline row for `metas.size()` flows over
  /// `duration`. After this call the hooks and roll() never allocate.
  void prepare(SimDuration duration, std::vector<FleetFlowMeta> metas) {
    if (!enabled_) return;
    if (duration <= 0)
      throw std::invalid_argument("FleetHealth: duration must be > 0");
    const std::size_t flows = metas.size();
    timeline_.config = config_;
    timeline_.duration = duration;
    timeline_.n_windows =
        static_cast<int>((duration + config_.window - 1) / config_.window);
    timeline_.metas = std::move(metas);
    timeline_.rows.assign(
        flows * static_cast<std::size_t>(timeline_.n_windows), FlowWindowRow{});
    acc_acked_.assign(flows, 0);
    acc_sent_.assign(flows, 0);
    acc_lost_.assign(flows, 0);
    acc_rtt_sum_.assign(flows, 0);
    acc_rtt_n_.assign(flows, 0);
    acc_rtt_min_.assign(flows, std::numeric_limits<std::int32_t>::max());
    hist_.assign(flows * static_cast<std::size_t>(config_.rtt_buckets), 0);
    cur_win_.assign(flows, 0);
    cur_end_.assign(flows, timeline_.n_windows > 1 ? config_.window : kSimTimeMax);
  }

  // --- hot-path hooks (inline no-ops while disabled) -----------------------

  void on_ack(int flow, std::int64_t bytes, SimDuration rtt) {
    if (!enabled_) return;
    const auto i = static_cast<std::size_t>(flow);
    acc_acked_[i] += bytes;
    acc_rtt_sum_[i] += rtt;
    ++acc_rtt_n_[i];
    const auto rtt32 = static_cast<std::int32_t>(
        rtt < std::numeric_limits<std::int32_t>::max()
            ? rtt
            : std::numeric_limits<std::int32_t>::max());
    if (rtt32 < acc_rtt_min_[i]) acc_rtt_min_[i] = rtt32;
    std::int64_t b = rtt / config_.rtt_bucket;
    if (b >= config_.rtt_buckets) b = config_.rtt_buckets - 1;
    ++hist_[i * static_cast<std::size_t>(config_.rtt_buckets) +
            static_cast<std::size_t>(b)];
  }

  void on_send(int flow) {
    if (!enabled_) return;
    ++acc_sent_[static_cast<std::size_t>(flow)];
  }

  void on_loss(int flow) {
    if (!enabled_) return;
    ++acc_lost_[static_cast<std::size_t>(flow)];
  }

  /// True when `now` is past the flow's current window. Callers check this
  /// before every accumulate hook (one comparison) and only snapshot
  /// cwnd/pacing when it fires, so the common path stays branch + adds.
  bool needs_roll(int flow, SimTime now) const {
    return now >= cur_end_[static_cast<std::size_t>(flow)];
  }

  /// Flushes every window strictly before `now`'s window: the first flushed
  /// window receives the accumulators (all pending events belong to it by the
  /// needs_roll invariant), later ones stay empty. All flushed rows get the
  /// caller's cwnd/pacing snapshot.
  void roll(int flow, SimTime now, std::int64_t cwnd, double pacing_bps) {
    if (!enabled_) return;
    std::int64_t target = now / config_.window;
    const std::int64_t last = timeline_.n_windows - 1;
    if (target > last) target = last;
    flush_to(flow, static_cast<int>(target), cwnd, pacing_bps);
  }

  /// Final flush through the last window (inclusive); call once per flow
  /// after the run ends, then set_flow_outcome + finalize.
  void flush_all(int flow, std::int64_t cwnd, double pacing_bps) {
    if (!enabled_) return;
    flush_to(flow, timeline_.n_windows, cwnd, pacing_bps);
  }

  void set_flow_outcome(int flow, SimTime finished_time,
                        SimDuration lifetime_min_rtt) {
    if (!enabled_) return;
    FleetFlowMeta& m = timeline_.metas[static_cast<std::size_t>(flow)];
    m.finished_time = finished_time;
    m.min_rtt_us = lifetime_min_rtt;
  }

  const FleetTimeline& timeline() const { return timeline_; }

 private:
  void flush_to(int flow, int target, std::int64_t cwnd, double pacing_bps) {
    const auto i = static_cast<std::size_t>(flow);
    const auto nb = static_cast<std::size_t>(config_.rtt_buckets);
    while (cur_win_[i] < target) {
      FlowWindowRow& row =
          timeline_.rows[i * static_cast<std::size_t>(timeline_.n_windows) +
                         static_cast<std::size_t>(cur_win_[i])];
      row.acked_bytes = acc_acked_[i];
      row.sent = acc_sent_[i];
      row.lost = acc_lost_[i];
      row.rtt_sum_us = acc_rtt_sum_[i];
      row.rtt_samples = acc_rtt_n_[i];
      row.cwnd_bytes = cwnd;
      row.pacing_rate_bps = pacing_bps;
      if (acc_rtt_n_[i] > 0) {
        row.rtt_min_us = acc_rtt_min_[i];
        // 95th-percentile rank (1-based, ceil): the bucket whose cumulative
        // count reaches it; reported as the bucket's upper edge.
        const std::int64_t rank = (acc_rtt_n_[i] * 95 + 99) / 100;
        std::int64_t cum = 0;
        for (std::size_t b = 0; b < nb; ++b) {
          cum += hist_[i * nb + b];
          if (cum >= rank) {
            row.rtt_p95_us = static_cast<std::int32_t>(
                (static_cast<std::int64_t>(b) + 1) * config_.rtt_bucket);
            break;
          }
        }
        acc_rtt_sum_[i] = 0;
        acc_rtt_n_[i] = 0;
        acc_rtt_min_[i] = std::numeric_limits<std::int32_t>::max();
        for (std::size_t b = 0; b < nb; ++b) hist_[i * nb + b] = 0;
      }
      acc_acked_[i] = 0;
      acc_sent_[i] = 0;
      acc_lost_[i] = 0;
      ++cur_win_[i];
    }
    cur_end_[i] = cur_win_[i] >= timeline_.n_windows - 1
                      ? kSimTimeMax
                      : static_cast<SimTime>(cur_win_[i] + 1) * config_.window;
  }

  bool enabled_ = false;
  FleetStatsConfig config_;
  FleetTimeline timeline_;

  // Per-flow current-window accumulators (SoA). A flow's slots are touched
  // only from its owning shard, so sharded execution races on nothing.
  std::vector<std::int64_t> acc_acked_;
  std::vector<std::int32_t> acc_sent_;
  std::vector<std::int32_t> acc_lost_;
  std::vector<std::int64_t> acc_rtt_sum_;
  std::vector<std::int32_t> acc_rtt_n_;
  std::vector<std::int32_t> acc_rtt_min_;
  std::vector<std::uint32_t> hist_;  // [flow * rtt_buckets + bucket]
  std::vector<std::int32_t> cur_win_;
  std::vector<SimTime> cur_end_;
};

}  // namespace libra
