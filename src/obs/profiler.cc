#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace libra {

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();  // leaky: outlives thread-local dtors
  return *p;
}

ThreadProfile& Profiler::thread_profile() {
  static thread_local ThreadProfile tls;
  return tls;
}

ThreadProfile::ThreadProfile() {
  nodes_.reserve(64);
  nodes_.push_back(Node{});
  Profiler::instance().register_thread(this);
}

ThreadProfile::~ThreadProfile() { Profiler::instance().unregister_thread(this); }

void Profiler::register_thread(ThreadProfile* tp) {
  std::lock_guard<std::mutex> lock(mu_);
  threads_.push_back(tp);
}

void Profiler::unregister_thread(ThreadProfile* tp) {
  std::lock_guard<std::mutex> lock(mu_);
  threads_.erase(std::remove(threads_.begin(), threads_.end(), tp),
                 threads_.end());
  // Keep the dying thread's spans until the next reset(): a short-lived
  // worker must show up in the merged report even after it joined.
  if (tp->nodes_.size() > 1) retired_.push_back(std::move(tp->nodes_));
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadProfile* tp : threads_) tp->clear();
  retired_.clear();
}

std::size_t Profiler::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = retired_.size();
  for (const ThreadProfile* tp : threads_) {
    if (tp->nodes_.size() > 1) ++n;
  }
  return n;
}

namespace {

ProfileStats& child_named(ProfileStats& parent, const char* name) {
  // Keep children sorted by name so merge output is independent of thread
  // registration order and node discovery order.
  auto it = std::lower_bound(
      parent.children.begin(), parent.children.end(), name,
      [](const ProfileStats& s, const char* n) { return s.name < n; });
  if (it != parent.children.end() && it->name == name) return *it;
  ProfileStats fresh;
  fresh.name = name;
  return *parent.children.insert(it, std::move(fresh));
}

void merge_node(const std::vector<ThreadProfile::Node>& nodes,
                std::uint32_t idx, ProfileStats& into) {
  const ThreadProfile::Node& n = nodes[idx];
  if (into.count == 0) {
    into.min_ns = n.min_ns;
  } else if (n.count > 0) {
    into.min_ns = std::min(into.min_ns, n.min_ns);
  }
  into.max_ns = std::max(into.max_ns, n.max_ns);
  into.count += n.count;
  into.total_ns += n.total_ns;
  into.child_ns += n.child_ns;
  for (std::uint32_t c : n.children) {
    merge_node(nodes, c, child_named(into, nodes[c].name));
  }
}

void write_json_node(const ProfileStats& s, JsonWriter& w) {
  w.begin_object();
  w.key("name").value(s.name);
  w.key("count").value(s.count);
  w.key("total_ns").value(s.total_ns);
  w.key("self_ns").value(s.self_ns());
  w.key("min_ns").value(s.min_ns);
  w.key("max_ns").value(s.max_ns);
  if (!s.children.empty()) {
    w.key("children").begin_array();
    for (const ProfileStats& c : s.children) write_json_node(c, w);
    w.end_array();
  }
  w.end_object();
}

void write_text_node(const ProfileStats& s, std::uint64_t parent_total_ns,
                     int depth, std::string& out) {
  const double total_ms = static_cast<double>(s.total_ns) / 1e6;
  const double self_ms = static_cast<double>(s.self_ns()) / 1e6;
  const double pct = parent_total_ns > 0
                         ? 100.0 * static_cast<double>(s.total_ns) /
                               static_cast<double>(parent_total_ns)
                         : 100.0;
  char head[64];
  std::snprintf(head, sizeof(head), "%10.3f %5.1f%% %10.3f %12llu  ", total_ms,
                pct, self_ms, static_cast<unsigned long long>(s.count));
  out += head;
  out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += s.name;
  out += '\n';
  // Widest subtree first: the flame-style reading order.
  std::vector<const ProfileStats*> kids;
  kids.reserve(s.children.size());
  for (const ProfileStats& c : s.children) kids.push_back(&c);
  std::stable_sort(kids.begin(), kids.end(),
                   [](const ProfileStats* a, const ProfileStats* b) {
                     return a->total_ns > b->total_ns;
                   });
  for (const ProfileStats* c : kids) write_text_node(*c, s.total_ns, depth + 1, out);
}

}  // namespace

ProfileStats Profiler::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileStats root;
  root.name = "total";
  for (const ThreadProfile* tp : threads_) {
    const ThreadProfile::Node& r = tp->nodes_[0];
    for (std::uint32_t c : r.children) {
      merge_node(tp->nodes_, c, child_named(root, tp->nodes_[c].name));
    }
  }
  for (const std::vector<ThreadProfile::Node>& nodes : retired_) {
    for (std::uint32_t c : nodes[0].children) {
      merge_node(nodes, c, child_named(root, nodes[c].name));
    }
  }
  // The synthetic root is never timed: derive its totals from the top-level
  // spans so percent-of-total reads correctly in reports.
  for (const ProfileStats& c : root.children) {
    root.total_ns += c.total_ns;
    root.count += c.count;
  }
  return root;
}

std::string Profiler::to_json() const {
  ProfileStats root = merged();
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("threads").value(static_cast<std::uint64_t>(thread_count()));
  w.key("tree");
  write_json_node(root, w);
  w.end_object();
  return out;
}

std::string Profiler::text_report() const {
  ProfileStats root = merged();
  std::string out;
  out += "  total ms     %    self ms        count  span\n";
  out += "---------- ------ ---------- ------------  ----------------\n";
  if (root.children.empty()) {
    out += "(no spans recorded; is the profiler enabled?)\n";
    return out;
  }
  write_text_node(root, root.total_ns, 0, out);
  return out;
}

}  // namespace libra
