#include "obs/health.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "obs/json.h"

namespace libra {
namespace {

/// Sim-time span of window `w` (the last window may be partial).
SimDuration window_length(const FleetTimeline& tl, int w) {
  const SimTime begin = static_cast<SimTime>(w) * tl.config.window;
  return std::min<SimDuration>(tl.config.window, tl.duration - begin);
}

SimTime flow_end(const FleetFlowMeta& m, SimDuration duration) {
  SimTime end = m.stop < duration ? m.stop : duration;
  if (m.finished_time >= 0 && m.finished_time < end) end = m.finished_time;
  return end;
}

/// Lifetime overlaps the window at all (aggregate "active" column).
bool overlaps_window(const FleetFlowMeta& m, const FleetTimeline& tl, int w) {
  const SimTime begin = static_cast<SimTime>(w) * tl.config.window;
  const SimTime end = begin + window_length(tl, w);
  return m.start < end && flow_end(m, tl.duration) > begin;
}

/// Alive for the whole window (what the per-flow run detectors require, so a
/// flow that starts or drains mid-window cannot trip them on a partial view).
bool covers_window(const FleetFlowMeta& m, const FleetTimeline& tl, int w) {
  const SimTime begin = static_cast<SimTime>(w) * tl.config.window;
  const SimTime end = begin + window_length(tl, w);
  return m.start <= begin && flow_end(m, tl.duration) >= end;
}

std::string format_detail(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return std::string(buf);
}

/// Longest run of consecutive windows satisfying `cond` starting at or after
/// `from`. Windows where `eligible` is false break the run without counting.
template <typename Eligible, typename Cond>
struct RunScan {
  int best_start = -1, best_len = 0;
  void scan(int from, int n, const Eligible& eligible, const Cond& cond) {
    int start = -1, len = 0;
    for (int w = from; w < n; ++w) {
      if (eligible(w) && cond(w)) {
        if (len == 0) start = w;
        ++len;
        if (len > best_len) {
          best_len = len;
          best_start = start;
        }
      } else {
        len = 0;
      }
    }
  }
};

template <typename Eligible, typename Cond>
RunScan<Eligible, Cond> longest_run(int from, int n, const Eligible& eligible,
                                    const Cond& cond) {
  RunScan<Eligible, Cond> r;
  r.scan(from, n, eligible, cond);
  return r;
}

}  // namespace

const char* incident_kind_name(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kMinRttCorruption: return "min_rtt_corruption";
    case IncidentKind::kStarvation: return "starvation";
    case IncidentKind::kFairnessCollapse: return "fairness_collapse";
    case IncidentKind::kRttBlowup: return "rtt_blowup";
    case IncidentKind::kRetxStorm: return "retx_storm";
  }
  return "unknown";
}

bool HealthReport::has(IncidentKind kind) const { return count(kind) > 0; }

int HealthReport::count(IncidentKind kind) const {
  int n = 0;
  for (const Incident& inc : incidents)
    if (inc.kind == kind) ++n;
  return n;
}

HealthReport analyze_health(const FleetTimeline& tl, const HealthConfig& cfg) {
  HealthReport out;
  out.window = tl.config.window;
  out.n_windows = tl.n_windows;
  out.flows = tl.flows();
  out.duration_s = to_seconds(tl.duration);

  const int flows = tl.flows();
  const int nw = tl.n_windows;

  // Fleet path floor + per-flow baselines.
  std::int64_t floor_us = std::numeric_limits<std::int64_t>::max();
  out.flow_min_rtt_ms.reserve(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    const std::int64_t us = tl.metas[static_cast<std::size_t>(f)].min_rtt_us;
    out.flow_min_rtt_ms.push_back(static_cast<double>(us) / 1000.0);
    if (us > 0 && us < floor_us) floor_us = us;
  }
  if (floor_us == std::numeric_limits<std::int64_t>::max()) floor_us = 0;
  out.path_floor_rtt_ms = static_cast<double>(floor_us) / 1000.0;

  // Per-window fleet aggregates, fixed flow order.
  out.fleet.assign(static_cast<std::size_t>(nw), FleetWindowAgg{});
  for (int w = 0; w < nw; ++w) {
    FleetWindowAgg& agg = out.fleet[static_cast<std::size_t>(w)];
    double sum_x = 0, sum_x2 = 0;
    for (int f = 0; f < flows; ++f) {
      const FlowWindowRow& row = tl.row(f, w);
      agg.acked_bytes += row.acked_bytes;
      agg.sent += row.sent;
      agg.lost += row.lost;
      agg.rtt_sum_us += row.rtt_sum_us;
      agg.rtt_samples += row.rtt_samples;
      if (row.rtt_p95_us > agg.max_p95_us) agg.max_p95_us = row.rtt_p95_us;
      if (overlaps_window(tl.metas[static_cast<std::size_t>(f)], tl, w)) {
        ++agg.active;
        if (row.acked_bytes > 0) ++agg.progressing;
        const double x = static_cast<double>(row.acked_bytes);
        sum_x += x;
        sum_x2 += x * x;
      }
    }
    // Jain over active flows, zeros included; vacuously fair when nothing
    // moved (total stall is starvation's business, not fairness's).
    agg.jain = sum_x2 > 0 ? (sum_x * sum_x) /
                                (static_cast<double>(agg.active) * sum_x2)
                          : 1.0;
  }

  const int from = std::min(cfg.warmup_windows, nw);

  // Post-warmup goodput and alive-window tallies for the lockout gate: a
  // flow's fair share is the fleet's post-warmup bytes prorated over alive
  // windows (exact integers in fixed flow order).
  std::vector<std::int64_t> post_acked(static_cast<std::size_t>(flows), 0);
  std::vector<std::int64_t> alive_windows(static_cast<std::size_t>(flows), 0);
  std::int64_t fleet_post_acked = 0, fleet_alive_windows = 0;
  for (int f = 0; f < flows; ++f) {
    const FleetFlowMeta& m = tl.metas[static_cast<std::size_t>(f)];
    for (int w = from; w < nw; ++w) {
      if (!covers_window(m, tl, w)) continue;
      post_acked[static_cast<std::size_t>(f)] += tl.row(f, w).acked_bytes;
      ++alive_windows[static_cast<std::size_t>(f)];
    }
    fleet_post_acked += post_acked[static_cast<std::size_t>(f)];
    fleet_alive_windows += alive_windows[static_cast<std::size_t>(f)];
  }

  // --- min_rtt_corruption (lifetime, per flow) ----------------------------
  if (floor_us > 0 && fleet_alive_windows > 0) {
    const std::int64_t thresh_us = std::max<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(floor_us) *
                                  cfg.min_rtt_ratio),
        floor_us + cfg.min_rtt_margin);
    for (int f = 0; f < flows; ++f) {
      const FleetFlowMeta& m = tl.metas[static_cast<std::size_t>(f)];
      if (m.min_rtt_us <= thresh_us) continue;
      std::int64_t samples = 0;
      int first_window = 0;
      for (int w = 0; w < nw; ++w) {
        const std::int32_t n = tl.row(f, w).rtt_samples;
        if (samples == 0 && n > 0) first_window = w;
        samples += n;
      }
      if (samples < cfg.min_rtt_min_samples) continue;
      // Lockout gate: corrupted baseline only counts when the flow's goodput
      // collapsed with it.
      const auto i = static_cast<std::size_t>(f);
      const double fair_share =
          static_cast<double>(fleet_post_acked) *
          static_cast<double>(alive_windows[i]) /
          static_cast<double>(fleet_alive_windows);
      if (alive_windows[i] == 0 ||
          static_cast<double>(post_acked[i]) >=
              cfg.min_rtt_lockout_share * fair_share)
        continue;
      Incident inc;
      inc.kind = IncidentKind::kMinRttCorruption;
      inc.flow = f;
      inc.window = first_window;
      inc.span = nw - first_window;
      inc.value = static_cast<double>(m.min_rtt_us) / 1000.0;
      inc.threshold = static_cast<double>(thresh_us) / 1000.0;
      inc.baseline = static_cast<double>(floor_us) / 1000.0;
      inc.severity = static_cast<double>(m.min_rtt_us) /
                     static_cast<double>(thresh_us);
      inc.detail = format_detail(
          "lifetime min RTT %.2f ms never reached the fleet path floor "
          "%.2f ms and goodput collapsed: the delay baseline absorbed "
          "standing queue and locked the flow out",
          inc.value, inc.baseline);
      out.incidents.push_back(std::move(inc));
    }
  }

  // --- starvation (per flow) ----------------------------------------------
  for (int f = 0; f < flows; ++f) {
    const FleetFlowMeta& m = tl.metas[static_cast<std::size_t>(f)];
    auto eligible = [&](int w) { return covers_window(m, tl, w); };
    auto cond = [&](int w) {
      return tl.row(f, w).acked_bytes == 0 &&
             out.fleet[static_cast<std::size_t>(w)].acked_bytes > 0;
    };
    const auto run = longest_run(from, nw, eligible, cond);
    if (run.best_len < cfg.starvation_windows) continue;
    Incident inc;
    inc.kind = IncidentKind::kStarvation;
    inc.flow = f;
    inc.window = run.best_start;
    inc.span = run.best_len;
    inc.value = run.best_len;
    inc.threshold = cfg.starvation_windows;
    inc.severity = static_cast<double>(run.best_len) /
                   static_cast<double>(cfg.starvation_windows);
    inc.detail = format_detail(
        "zero goodput for %.0f consecutive windows while the fleet moved "
        "(threshold %.0f)",
        inc.value, inc.threshold);
    out.incidents.push_back(std::move(inc));
  }

  // --- fairness_collapse (fleet-level) ------------------------------------
  {
    auto eligible = [&](int w) {
      const FleetWindowAgg& agg = out.fleet[static_cast<std::size_t>(w)];
      return agg.active >= cfg.fairness_min_flows && agg.acked_bytes > 0;
    };
    auto cond = [&](int w) {
      return out.fleet[static_cast<std::size_t>(w)].jain < cfg.fairness_floor;
    };
    const auto run = longest_run(from, nw, eligible, cond);
    if (run.best_len >= cfg.fairness_windows) {
      double min_jain = 1.0;
      for (int w = run.best_start; w < run.best_start + run.best_len; ++w)
        min_jain = std::min(min_jain, out.fleet[static_cast<std::size_t>(w)].jain);
      Incident inc;
      inc.kind = IncidentKind::kFairnessCollapse;
      inc.window = run.best_start;
      inc.span = run.best_len;
      inc.value = min_jain;
      inc.threshold = cfg.fairness_floor;
      inc.severity = min_jain > 0 ? cfg.fairness_floor / min_jain
                                  : cfg.fairness_floor * 1e3;
      inc.detail = format_detail(
          "Jain index fell to %.3f (floor %.3f) across the active fan-in",
          inc.value, inc.threshold);
      out.incidents.push_back(std::move(inc));
    }
  }

  // --- rtt_blowup (per flow) ----------------------------------------------
  if (floor_us > 0) {
    const double blowup_us =
        static_cast<double>(floor_us) * cfg.rtt_blowup_ratio;
    for (int f = 0; f < flows; ++f) {
      const FleetFlowMeta& m = tl.metas[static_cast<std::size_t>(f)];
      auto eligible = [&](int w) {
        return covers_window(m, tl, w) &&
               tl.row(f, w).rtt_samples >= cfg.rtt_blowup_min_samples;
      };
      auto cond = [&](int w) {
        return static_cast<double>(tl.row(f, w).rtt_p95_us) > blowup_us;
      };
      const auto run = longest_run(from, nw, eligible, cond);
      if (run.best_len < cfg.rtt_blowup_windows) continue;
      double worst_us = 0;
      for (int w = run.best_start; w < run.best_start + run.best_len; ++w)
        worst_us = std::max(worst_us,
                            static_cast<double>(tl.row(f, w).rtt_p95_us));
      Incident inc;
      inc.kind = IncidentKind::kRttBlowup;
      inc.flow = f;
      inc.window = run.best_start;
      inc.span = run.best_len;
      inc.value = worst_us / 1000.0;
      inc.threshold = blowup_us / 1000.0;
      inc.baseline = static_cast<double>(floor_us) / 1000.0;
      inc.severity = worst_us / blowup_us;
      inc.detail = format_detail(
          "p95 RTT peaked at %.2f ms, over %.2f ms (ratio x path floor)",
          inc.value, inc.threshold);
      out.incidents.push_back(std::move(inc));
    }
  }

  // --- retx_storm (per flow) ----------------------------------------------
  for (int f = 0; f < flows; ++f) {
    const FleetFlowMeta& m = tl.metas[static_cast<std::size_t>(f)];
    auto eligible = [&](int w) {
      return covers_window(m, tl, w) &&
             tl.row(f, w).sent >= cfg.retx_storm_min_sent;
    };
    auto cond = [&](int w) {
      const FlowWindowRow& row = tl.row(f, w);
      return static_cast<double>(row.lost) >
             cfg.retx_storm_loss_rate * static_cast<double>(row.sent);
    };
    const auto run = longest_run(from, nw, eligible, cond);
    if (run.best_len < cfg.retx_storm_windows) continue;
    double worst = 0;
    for (int w = run.best_start; w < run.best_start + run.best_len; ++w) {
      const FlowWindowRow& row = tl.row(f, w);
      worst = std::max(worst, static_cast<double>(row.lost) /
                                  static_cast<double>(row.sent));
    }
    Incident inc;
    inc.kind = IncidentKind::kRetxStorm;
    inc.flow = f;
    inc.window = run.best_start;
    inc.span = run.best_len;
    inc.value = worst;
    inc.threshold = cfg.retx_storm_loss_rate;
    inc.severity = worst / cfg.retx_storm_loss_rate;
    inc.detail = format_detail(
        "windowed loss fraction hit %.3f (ceiling %.3f)", inc.value,
        inc.threshold);
    out.incidents.push_back(std::move(inc));
  }

  // Severity-descending; full deterministic tie-break so the report is
  // byte-stable regardless of detector emission order.
  std::sort(out.incidents.begin(), out.incidents.end(),
            [](const Incident& a, const Incident& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.flow != b.flow) return a.flow < b.flow;
              return a.window < b.window;
            });
  return out;
}

void write_health_json(JsonWriter& w, const HealthReport& r) {
  w.begin_object();
  w.key("window_us").value(static_cast<std::int64_t>(r.window));
  w.key("windows").value(r.n_windows);
  w.key("flows").value(r.flows);
  w.key("duration_s").value(r.duration_s);
  w.key("path_floor_rtt_ms").value(r.path_floor_rtt_ms);
  w.key("fleet");
  w.begin_array();
  for (int i = 0; i < r.n_windows; ++i) {
    const FleetWindowAgg& agg = r.fleet[static_cast<std::size_t>(i)];
    const double t0 = to_seconds(static_cast<SimTime>(i) * r.window);
    const double len =
        std::min(to_seconds(r.window), r.duration_s - t0);
    w.begin_object();
    w.key("t_s").value(t0);
    w.key("goodput_bps")
        .value(len > 0 ? static_cast<double>(agg.acked_bytes) * 8.0 / len : 0.0);
    w.key("jain").value(agg.jain);
    w.key("avg_rtt_ms")
        .value(agg.rtt_samples > 0
                   ? static_cast<double>(agg.rtt_sum_us) /
                         (1000.0 * static_cast<double>(agg.rtt_samples))
                   : 0.0);
    w.key("max_p95_rtt_ms")
        .value(static_cast<double>(agg.max_p95_us) / 1000.0);
    w.key("sent").value(agg.sent);
    w.key("lost").value(agg.lost);
    w.key("active").value(agg.active);
    w.key("progressing").value(agg.progressing);
    w.end_object();
  }
  w.end_array();
  w.key("flow_min_rtt_ms");
  w.begin_array();
  for (double v : r.flow_min_rtt_ms) w.value(v);
  w.end_array();
  w.key("incidents");
  w.begin_array();
  for (const Incident& inc : r.incidents) {
    w.begin_object();
    w.key("kind").value(incident_kind_name(inc.kind));
    w.key("flow").value(inc.flow);
    w.key("window").value(inc.window);
    w.key("span").value(inc.span);
    w.key("severity").value(inc.severity);
    w.key("value").value(inc.value);
    w.key("threshold").value(inc.threshold);
    w.key("baseline").value(inc.baseline);
    w.key("detail").value(inc.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string health_report_json(const HealthReport& r) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("health");
  write_health_json(w, r);
  w.end_object();
  return out;
}

}  // namespace libra
