// Sampling-based per-run telemetry: bounded-memory columnar time series.
//
// Where the FlightRecorder logs every event (unusable at fleet scale — a
// 1000-flow run emits hundreds of millions of events), Telemetry snapshots
// per-flow sender state and per-queue state at a fixed *sim-time* interval
// into a columnar store with streaming M4-style decimation: every column
// keeps min/max/first/last (plus a sample count) per time bucket, and when
// the bucket count would exceed `max_buckets` adjacent buckets merge pairwise
// and the bucket width doubles. Memory therefore stays
// O(series x columns x max_buckets) no matter how long the run is, and the
// decimated series still bounds the true envelope of the signal (M4 is the
// standard lossless-for-rendering reduction for line plots).
//
// Contract, shared with every obs feature:
//   - disabled is free: push hooks start with `if (!enabled_) return;`, the
//     owning network schedules no sampling events, and tests/alloc_test.cc
//     asserts the disabled path performs zero allocations;
//   - sampling is driven by sim time, so the stored series are a pure
//     function of the run (byte-identical serial vs parallel), and sampler
//     callbacks only *read* simulator state, so enabling telemetry does not
//     perturb results (tests/telemetry_test.cc asserts bitwise-identical
//     RunSummary with telemetry on vs off);
//   - exports: a compact binary columnar dump (schema below) and a JSONL
//     form consumed by tools/report_html and offline analysis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace libra {

struct TelemetryConfig {
  /// Fixed sim-time sampling period. 1 ms gives ~60k samples over a 60 s run,
  /// decimated to max_buckets on the fly.
  SimDuration sample_interval = msec(1);
  /// Bucket budget per series; when exceeded, adjacent buckets merge pairwise
  /// (bucket width doubles), so a series never holds more than this.
  std::size_t max_buckets = 512;
  /// Cap on exact stage-transition annotations kept (Libra pushes one per
  /// stage change); overflow is counted, not stored.
  std::size_t max_stage_events = 8192;
};

/// One M4 bucket: the envelope of every sample that landed in it.
struct TelemetryBucket {
  double first = 0, last = 0, min = 0, max = 0;
  std::uint32_t count = 0;

  void add(double v) {
    if (count == 0) {
      first = last = min = max = v;
    } else {
      last = v;
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
  }

  /// Folds `later` (a bucket strictly after this one in time) into this one.
  void absorb(const TelemetryBucket& later) {
    if (later.count == 0) return;
    if (count == 0) {
      *this = later;
      return;
    }
    last = later.last;
    if (later.min < min) min = later.min;
    if (later.max > max) max = later.max;
    count += later.count;
  }
};

/// A group of columns sharing one bucket clock (all columns of a flow, or of
/// a queue, advance together — one sample supplies one value per column).
///
/// Hot-path layout: the envelope of the *current* bucket accumulates in a
/// small fixed staging row (a few cache lines per series, hot for every
/// sampled series at once) and is folded into the cold bucket storage only
/// when the bucket index advances — once per samples_per_bucket() samples.
/// At a 1 ms interval on a 100-flow run this is the difference between
/// touching 7 cache lines spread over ~14 MB per sample and touching ~30 KB
/// total, which is what keeps the enabled sampler in the single-digit-ns
/// range per sample.
class TelemetrySeries {
 public:
  /// Staging is fixed-size; a series holds at most this many columns.
  static constexpr std::size_t kMaxColumns = 8;

  TelemetrySeries(std::size_t columns, std::size_t max_buckets);

  /// Appends one sample: `values[c]` for each column c. Steady-state
  /// allocation-free: columns are reserved to max_buckets at construction and
  /// compaction shrinks in place.
  void add(const double* values, std::size_t n) {
    if (n != cols_.size())
      throw_column_mismatch();
    const std::size_t idx = static_cast<std::size_t>(samples_ >> shift_);
    if (idx != stage_idx_) advance_to(idx);
    if (stage_count_ == 0) {
      for (std::size_t c = 0; c < n; ++c)
        stage_first_[c] = stage_last_[c] = stage_min_[c] = stage_max_[c] =
            values[c];
    } else {
      for (std::size_t c = 0; c < n; ++c) {
        const double v = values[c];
        stage_last_[c] = v;
        // Branchless (minsd/maxsd) — sampled signals flip direction often
        // enough that predicted branches would be the slower choice here.
        stage_min_[c] = v < stage_min_[c] ? v : stage_min_[c];
        stage_max_[c] = v > stage_max_[c] ? v : stage_max_[c];
      }
    }
    ++stage_count_;
    ++samples_;
  }

  std::size_t columns() const { return cols_.size(); }
  std::size_t buckets() const {
    flush();
    return cols_.empty() ? 0 : cols_[0].size();
  }
  std::uint64_t samples() const { return samples_; }
  /// Samples folded into each bucket (doubles on every compaction).
  std::uint64_t samples_per_bucket() const {
    return std::uint64_t{1} << shift_;
  }
  const std::vector<TelemetryBucket>& column(std::size_t c) const {
    flush();
    return cols_[c];
  }

 private:
  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  /// Folds the staged envelope into the bucket storage. Const because every
  /// inspect/export path must see staged samples; the staging row and the
  /// bucket vectors are mutable for exactly this.
  void flush() const;
  /// Slow path of add(): flush, compact if the clock ran past max_buckets,
  /// re-stage the new current bucket.
  void advance_to(std::size_t idx);
  void compact();
  [[noreturn]] static void throw_column_mismatch();

  std::size_t max_buckets_;
  std::uint64_t samples_ = 0;
  /// log2(samples per bucket); bucket index is samples_ >> shift_.
  unsigned shift_ = 0;
  mutable std::size_t stage_idx_ = kNoBucket;
  mutable std::uint32_t stage_count_ = 0;
  mutable double stage_first_[kMaxColumns];
  mutable double stage_last_[kMaxColumns];
  mutable double stage_min_[kMaxColumns];
  mutable double stage_max_[kMaxColumns];
  mutable std::vector<std::vector<TelemetryBucket>> cols_;
};

/// Per-flow sampled state; the Sender fills the sender-owned fields
/// (Sender::fill_telemetry) and the network adds flow-level counters.
struct TelemetryFlowSample {
  double cwnd_bytes = 0;
  double pacing_rate_bps = 0;  // effective (pacer) rate, not just the CCA's
  double srtt_ms = 0;
  double inflight_bytes = 0;
  double acked_bytes = 0;      // cumulative; per-bucket deltas give throughput
  double lost_packets = 0;     // cumulative
  double stage = -1;           // Libra control-cycle stage; -1 for other CCAs
};

/// Per-queue sampled state (the bottleneck's droptail or CoDel queue).
struct TelemetryQueueSample {
  double depth_bytes = 0;
  double depth_packets = 0;
  double sojourn_ms = 0;  // head-packet sojourn (CoDel) or drain-time estimate
  double drops = 0;       // cumulative
};

/// Exact stage-transition annotation pushed by the Libra core (the sampled
/// `stage` column quantizes transition times to the bucket width; reports
/// want the precise instants).
struct TelemetryStageEvent {
  SimTime t = 0;
  std::int32_t flow = -1;
  std::int32_t stage = 0;
};

class Telemetry {
 public:
  static constexpr std::size_t kFlowColumns = 7;
  static constexpr std::size_t kQueueColumns = 4;
  /// Column names, in sample-struct field order (JSONL/binary schema).
  static const char* const kFlowColumnNames[kFlowColumns];
  static const char* const kQueueColumnNames[kQueueColumns];

  /// Starts collecting. Must be called before the owning network first runs
  /// (the network schedules its sampling event at run start).
  void enable(const TelemetryConfig& config = {});
  bool enabled() const { return enabled_; }
  const TelemetryConfig& config() const { return config_; }

  // --- push hooks (inline no-ops while disabled) ---------------------------

  /// Exact stage-transition annotation (Libra). Bounded: beyond
  /// max_stage_events the event is counted as dropped, not stored.
  void stage_event(SimTime t, int flow, int stage) {
    if (!enabled_) return;
    push_stage(t, flow, stage);
  }

  // --- sampling entry points (called by the owning network's sampler) ------
  // Inline so the tick loop's struct fills and the staging stores fuse; the
  // slow path (creating a series the first time a flow/queue is seen) stays
  // out of line.

  void sample_flow(int flow, const TelemetryFlowSample& s) {
    if (!enabled_ || flow < 0) return;
    const double values[kFlowColumns] = {
        s.cwnd_bytes,     s.pacing_rate_bps, s.srtt_ms, s.inflight_bytes,
        s.acked_bytes,    s.lost_packets,    s.stage};
    series_for(flows_, flow, kFlowColumns).add(values, kFlowColumns);
    ++samples_;
  }

  void sample_queue(int queue, const TelemetryQueueSample& s) {
    if (!enabled_ || queue < 0) return;
    const double values[kQueueColumns] = {s.depth_bytes, s.depth_packets,
                                          s.sojourn_ms, s.drops};
    series_for(queues_, queue, kQueueColumns).add(values, kQueueColumns);
    ++samples_;
  }

  // --- inspect -------------------------------------------------------------

  int flow_count() const { return static_cast<int>(flows_.size()); }
  int queue_count() const { return static_cast<int>(queues_.size()); }
  /// nullptr when the flow/queue has not been sampled.
  const TelemetrySeries* flow_series(int flow) const;
  const TelemetrySeries* queue_series(int queue) const;
  const std::vector<TelemetryStageEvent>& stage_events() const {
    return stage_events_;
  }
  std::uint64_t stage_events_dropped() const { return stage_events_dropped_; }
  std::uint64_t samples() const { return samples_; }
  /// Current bucket width in sim time (sample_interval x samples_per_bucket).
  SimDuration bucket_width() const;

  // --- export --------------------------------------------------------------

  /// JSONL: one header line, one line per (series, column) with first/last/
  /// min/max/count arrays, then one line per stage event. Schema documented
  /// in EXPERIMENTS.md ("Telemetry").
  void write_jsonl(std::ostream& out) const;

  /// Compact binary columnar dump ("LTLM0001"): fixed-width header, then per
  /// series per column the first[]/last[]/min[]/max[] arrays as doubles and
  /// count[] as uint32, then the stage events. Native endianness.
  void write_binary(std::ostream& out) const;

 private:
  void push_stage(SimTime t, int flow, int stage);
  TelemetrySeries& series_for(std::vector<TelemetrySeries>& group, int index,
                              std::size_t columns) {
    auto idx = static_cast<std::size_t>(index);
    if (idx < group.size()) return group[idx];
    return grow_series(group, index, columns);
  }
  TelemetrySeries& grow_series(std::vector<TelemetrySeries>& group, int index,
                               std::size_t columns);

  bool enabled_ = false;
  TelemetryConfig config_;
  std::uint64_t samples_ = 0;
  std::vector<TelemetrySeries> flows_;
  std::vector<TelemetrySeries> queues_;
  std::vector<TelemetryStageEvent> stage_events_;
  std::uint64_t stage_events_dropped_ = 0;
};

/// Harness-facing switches, threaded through ObsOptions/RunRequest so every
/// run in a run_many batch can dump its own columnar series.
struct TelemetryOptions {
  bool enabled = false;
  TelemetryConfig config;
  /// When non-empty, the run's columnar store is dumped here after the run.
  std::string binary_path;  // compact binary ("LTLM0001")
  std::string jsonl_path;   // JSONL export (tools/report_html input)
};

}  // namespace libra
