// Minimal JSON reader — the inverse of json.h's writer, for the few places
// the toolchain must consume its own output (bench_baseline comparing a
// committed BENCH_*.json, json_check validating a document in check.sh).
//
// Full JSON grammar, recursive descent, no dependencies. Not a streaming
// parser and not tuned for big documents; baseline files are a few KB.
// Numbers are doubles (like the writer, which emits shortest-round-trip
// doubles), object keys keep insertion order.
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace libra {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  /// Convenience accessors with defaults (telemetry-style tolerant reads).
  double number_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  const std::string& string_or(const std::string& fallback) const {
    return type == Type::kString ? string : fallback;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported —
          // the writer never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one JSON document. Throws std::runtime_error (with byte offset) on
/// malformed input, including trailing garbage.
inline JsonValue json_parse(std::string_view text) {
  return detail::JsonParser(text).parse();
}

}  // namespace libra
