// Line-oriented output sinks shared by the flight recorder, the metrics
// registry and the logger.
//
// A sink turns "emit this line" into exactly one synchronized stream write,
// so concurrent writers (run_many workers flushing traces, the logger firing
// from several threads) never interleave partial lines. Every concrete sink
// formats the full line — payload plus newline — into a private buffer and
// issues a single write() under its mutex.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace libra {

class LineSink {
 public:
  virtual ~LineSink() = default;

  /// Writes `line` plus a trailing newline as one atomic operation.
  virtual void write_line(std::string_view line) = 0;

  virtual void flush() {}
};

/// Sink over an ostream. Borrows the stream by default; open_file() returns a
/// sink that owns the underlying ofstream.
class StreamLineSink final : public LineSink {
 public:
  explicit StreamLineSink(std::ostream& out) : out_(&out) {}

  static std::unique_ptr<StreamLineSink> open_file(const std::string& path) {
    auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
    if (!*file) throw std::runtime_error("StreamLineSink: cannot open " + path);
    auto sink = std::unique_ptr<StreamLineSink>(new StreamLineSink());
    sink->owned_ = std::move(file);
    sink->out_ = sink->owned_.get();
    return sink;
  }

  void write_line(std::string_view line) override {
    std::lock_guard<std::mutex> lock(mu_);
    buf_.assign(line);
    buf_.push_back('\n');
    out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void flush() override {
    std::lock_guard<std::mutex> lock(mu_);
    out_->flush();
  }

 private:
  StreamLineSink() = default;

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  std::mutex mu_;
  std::string buf_;  // reused so a line is one write and zero steady-state allocs
};

/// Process-wide stderr sink (the logger's default target).
inline const std::shared_ptr<LineSink>& stderr_sink() {
  static const std::shared_ptr<LineSink> sink =
      std::make_shared<StreamLineSink>(std::cerr);
  return sink;
}

}  // namespace libra
