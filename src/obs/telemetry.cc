#include "obs/telemetry.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"

namespace libra {

const char* const Telemetry::kFlowColumnNames[Telemetry::kFlowColumns] = {
    "cwnd_bytes", "pacing_rate_bps", "srtt_ms",      "inflight_bytes",
    "acked_bytes", "lost_packets",   "stage",
};

const char* const Telemetry::kQueueColumnNames[Telemetry::kQueueColumns] = {
    "depth_bytes", "depth_packets", "sojourn_ms", "drops"};

TelemetrySeries::TelemetrySeries(std::size_t columns, std::size_t max_buckets)
    : max_buckets_(max_buckets), cols_(columns) {
  if (columns == 0 || columns > kMaxColumns || max_buckets < 2)
    throw std::invalid_argument(
        "TelemetrySeries: need 1..kMaxColumns columns, >=2 buckets");
  for (auto& col : cols_) col.reserve(max_buckets_);
}

void TelemetrySeries::throw_column_mismatch() {
  throw std::invalid_argument("TelemetrySeries: column count mismatch");
}

void TelemetrySeries::flush() const {
  if (stage_count_ == 0 || stage_idx_ == kNoBucket) return;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    auto& col = cols_[c];
    if (stage_idx_ == col.size())
      col.emplace_back();  // within reserved capacity: no allocation
    TelemetryBucket& b = col[stage_idx_];
    if (b.count == 0) {
      b.first = stage_first_[c];
      b.min = stage_min_[c];
      b.max = stage_max_[c];
    } else {
      if (stage_min_[c] < b.min) b.min = stage_min_[c];
      if (stage_max_[c] > b.max) b.max = stage_max_[c];
    }
    b.last = stage_last_[c];
    b.count += stage_count_;
  }
  stage_count_ = 0;
}

void TelemetrySeries::advance_to(std::size_t idx) {
  flush();
  if (idx >= max_buckets_) {
    // The clock only ever runs one bucket past the budget, so a single
    // pairwise merge (which halves the index) always brings it back in range.
    compact();
    idx = static_cast<std::size_t>(samples_ >> shift_);
  }
  stage_idx_ = idx;
}

void TelemetrySeries::compact() {
  // Pairwise merge in place: bucket i absorbs bucket i+1; the bucket width
  // (samples_per_bucket) doubles. An odd trailing bucket survives alone.
  // Callers flush staging first, so the merge sees every sample.
  for (auto& col : cols_) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < col.size(); i += 2) {
      TelemetryBucket merged = col[i];
      if (i + 1 < col.size()) merged.absorb(col[i + 1]);
      col[out++] = merged;
    }
    col.resize(out);
  }
  ++shift_;
}

void Telemetry::enable(const TelemetryConfig& config) {
  if (config.sample_interval <= 0)
    throw std::invalid_argument("Telemetry: sample_interval must be positive");
  if (config.max_buckets < 2)
    throw std::invalid_argument("Telemetry: max_buckets must be >= 2");
  config_ = config;
  stage_events_.reserve(config_.max_stage_events);
  enabled_ = true;
}

TelemetrySeries& Telemetry::grow_series(std::vector<TelemetrySeries>& group,
                                        int index, std::size_t columns) {
  auto idx = static_cast<std::size_t>(index);
  while (group.size() <= idx)
    group.emplace_back(columns, config_.max_buckets);
  return group[idx];
}

void Telemetry::push_stage(SimTime t, int flow, int stage) {
  if (stage_events_.size() >= config_.max_stage_events) {
    ++stage_events_dropped_;
    return;
  }
  stage_events_.push_back(
      {t, static_cast<std::int32_t>(flow), static_cast<std::int32_t>(stage)});
}

const TelemetrySeries* Telemetry::flow_series(int flow) const {
  auto idx = static_cast<std::size_t>(flow);
  return flow >= 0 && idx < flows_.size() ? &flows_[idx] : nullptr;
}

const TelemetrySeries* Telemetry::queue_series(int queue) const {
  auto idx = static_cast<std::size_t>(queue);
  return queue >= 0 && idx < queues_.size() ? &queues_[idx] : nullptr;
}

SimDuration Telemetry::bucket_width() const {
  std::uint64_t spb = 1;
  for (const auto& s : flows_) spb = std::max(spb, s.samples_per_bucket());
  for (const auto& s : queues_) spb = std::max(spb, s.samples_per_bucket());
  return config_.sample_interval * static_cast<SimDuration>(spb);
}

namespace {

void append_series_line(const char* kind, int index, const char* col_name,
                        const std::vector<TelemetryBucket>& col,
                        SimDuration bucket_us, std::string& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("series").value(kind);
  w.key("id").value(index);
  w.key("col").value(col_name);
  w.key("bucket_us").value(static_cast<std::int64_t>(bucket_us));
  w.key("n").value(static_cast<std::int64_t>(col.size()));
  w.key("first").begin_array();
  for (const auto& b : col) w.value(b.first);
  w.end_array();
  w.key("last").begin_array();
  for (const auto& b : col) w.value(b.last);
  w.end_array();
  w.key("min").begin_array();
  for (const auto& b : col) w.value(b.min);
  w.end_array();
  w.key("max").begin_array();
  for (const auto& b : col) w.value(b.max);
  w.end_array();
  w.key("count").begin_array();
  for (const auto& b : col) w.value(static_cast<std::int64_t>(b.count));
  w.end_array();
  w.end_object();
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_series_binary(std::ostream& out, const TelemetrySeries& s) {
  write_pod(out, static_cast<std::uint32_t>(s.samples_per_bucket()));
  write_pod(out, static_cast<std::uint32_t>(s.buckets()));
  for (std::size_t c = 0; c < s.columns(); ++c) {
    const auto& col = s.column(c);
    for (const auto& b : col) write_pod(out, b.first);
    for (const auto& b : col) write_pod(out, b.last);
    for (const auto& b : col) write_pod(out, b.min);
    for (const auto& b : col) write_pod(out, b.max);
    for (const auto& b : col) write_pod(out, b.count);
  }
}

}  // namespace

void Telemetry::write_jsonl(std::ostream& out) const {
  std::string line;
  {
    JsonWriter w(line);
    w.begin_object();
    w.key("telemetry").value("v1");
    w.key("interval_us").value(static_cast<std::int64_t>(config_.sample_interval));
    w.key("flows").value(static_cast<std::int64_t>(flows_.size()));
    w.key("queues").value(static_cast<std::int64_t>(queues_.size()));
    w.key("max_buckets").value(static_cast<std::int64_t>(config_.max_buckets));
    w.key("stage_events").value(static_cast<std::int64_t>(stage_events_.size()));
    w.key("stage_events_dropped")
        .value(static_cast<std::int64_t>(stage_events_dropped_));
    w.end_object();
  }
  out << line << "\n";
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    SimDuration bucket_us =
        config_.sample_interval *
        static_cast<SimDuration>(flows_[f].samples_per_bucket());
    for (std::size_t c = 0; c < kFlowColumns; ++c) {
      line.clear();
      append_series_line("flow", static_cast<int>(f), kFlowColumnNames[c],
                         flows_[f].column(c), bucket_us, line);
      out << line << "\n";
    }
  }
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    SimDuration bucket_us =
        config_.sample_interval *
        static_cast<SimDuration>(queues_[q].samples_per_bucket());
    for (std::size_t c = 0; c < kQueueColumns; ++c) {
      line.clear();
      append_series_line("queue", static_cast<int>(q), kQueueColumnNames[c],
                         queues_[q].column(c), bucket_us, line);
      out << line << "\n";
    }
  }
  for (const TelemetryStageEvent& ev : stage_events_) {
    line.clear();
    JsonWriter w(line);
    w.begin_object();
    w.key("ev").value("stage");
    w.key("t_us").value(static_cast<std::int64_t>(ev.t));
    w.key("flow").value(static_cast<std::int64_t>(ev.flow));
    w.key("stage").value(static_cast<std::int64_t>(ev.stage));
    w.end_object();
    out << line << "\n";
  }
}

void Telemetry::write_binary(std::ostream& out) const {
  out.write("LTLM0001", 8);
  write_pod(out, static_cast<std::int64_t>(config_.sample_interval));
  write_pod(out, static_cast<std::uint32_t>(flows_.size()));
  write_pod(out, static_cast<std::uint32_t>(queues_.size()));
  write_pod(out, static_cast<std::uint32_t>(kFlowColumns));
  write_pod(out, static_cast<std::uint32_t>(kQueueColumns));
  for (const auto& s : flows_) write_series_binary(out, s);
  for (const auto& s : queues_) write_series_binary(out, s);
  write_pod(out, static_cast<std::uint32_t>(stage_events_.size()));
  for (const TelemetryStageEvent& ev : stage_events_) {
    write_pod(out, static_cast<std::int64_t>(ev.t));
    write_pod(out, ev.flow);
    write_pod(out, ev.stage);
  }
}

}  // namespace libra
