#include "obs/recorder.h"

#include <stdexcept>

#include "obs/json.h"

namespace libra {

namespace {

const char* drop_reason_name(double reason) {
  switch (static_cast<int>(reason)) {
    case static_cast<int>(DropReason::kOverflow): return "overflow";
    case static_cast<int>(DropReason::kWire): return "wire";
    case static_cast<int>(DropReason::kCodel): return "codel";
    case static_cast<int>(DropReason::kPolicer): return "policer";
    default: return "unknown";
  }
}

const char* stage_name(double stage) {
  switch (static_cast<int>(stage)) {
    case 0: return "exploration";
    case 1: return "eval_first";
    case 2: return "eval_second";
    case 3: return "exploitation";
    default: return "unknown";
  }
}

const char* winner_name(std::uint64_t packed) {
  switch (packed & 3u) {
    case 0: return "prev";
    case 1: return "classic";
    case 2: return "rl";
    default: return "unknown";
  }
}

}  // namespace

void FlightRecorder::enable(std::size_t ring_capacity) {
  if (ring_capacity == 0) throw std::invalid_argument("FlightRecorder: zero capacity");
  if (ring_.size() != ring_capacity) {
    ring_.assign(ring_capacity, TraceEvent{});
    head_ = 0;
    size_ = 0;
  }
  enabled_ = true;
}

void FlightRecorder::set_sink(std::shared_ptr<LineSink> sink, TraceFormat format) {
  sink_ = std::move(sink);
  format_ = format;
  csv_header_written_ = false;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void FlightRecorder::flush() {
  if (!sink_) return;
  if (format_ == TraceFormat::kCsv && !csv_header_written_) {
    sink_->write_line(csv_header());
    csv_header_written_ = true;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& ev = ring_[(head_ + i) % ring_.size()];
    line_.clear();
    if (format_ == TraceFormat::kJsonl) {
      append_jsonl(ev, line_);
    } else {
      append_csv(ev, line_);
    }
    sink_->write_line(line_);
  }
  head_ = 0;
  size_ = 0;
  sink_->flush();
}

void FlightRecorder::write_jsonl(std::ostream& out) const {
  std::string line;
  for (std::size_t i = 0; i < size_; ++i) {
    line.clear();
    append_jsonl(ring_[(head_ + i) % ring_.size()], line);
    line.push_back('\n');
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

void FlightRecorder::write_csv(std::ostream& out) const {
  out << csv_header() << "\n";
  std::string line;
  for (std::size_t i = 0; i < size_; ++i) {
    line.clear();
    append_csv(ring_[(head_ + i) % ring_.size()], line);
    line.push_back('\n');
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

const char* FlightRecorder::kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEnqueue: return "enq";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kSend: return "send";
    case TraceKind::kAck: return "ack";
    case TraceKind::kLoss: return "loss";
    case TraceKind::kRate: return "rate";
    case TraceKind::kStage: return "stage";
    case TraceKind::kCycle: return "cycle";
    case TraceKind::kCca: return "cca";
    case TraceKind::kRun: return "run";
    case TraceKind::kEcn: return "ecn";
    case TraceKind::kPolicer: return "policer";
  }
  return "unknown";
}

const char* FlightRecorder::csv_header() { return "t,ev,flow,seq,a,b,c,d,e,f"; }

void FlightRecorder::append_jsonl(const TraceEvent& ev, std::string& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("t").value(to_seconds(ev.t));
  w.key("ev").value(kind_name(ev.kind));
  if (ev.flow >= 0) w.key("flow").value(static_cast<std::int64_t>(ev.flow));
  switch (ev.kind) {
    case TraceKind::kEnqueue:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("qbytes").value(ev.b);
      w.key("qpkts").value(ev.c);
      break;
    case TraceKind::kDrop:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("qbytes").value(ev.b);
      w.key("reason").value(drop_reason_name(ev.c));
      break;
    case TraceKind::kDeliver:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("qbytes").value(ev.b);
      break;
    case TraceKind::kSend:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("inflight").value(ev.b);
      break;
    case TraceKind::kAck:
      w.key("seq").value(ev.seq);
      w.key("rtt_ms").value(ev.a);
      w.key("bytes").value(ev.b);
      w.key("rate_bps").value(ev.c);
      w.key("inflight").value(ev.d);
      break;
    case TraceKind::kLoss:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("timeout").value(ev.b != 0);
      break;
    case TraceKind::kRate:
      w.key("rate_bps").value(ev.a);
      w.key("cwnd").value(ev.b);
      break;
    case TraceKind::kStage:
      w.key("stage").value(stage_name(ev.a));
      break;
    case TraceKind::kCycle:
      w.key("winner").value(winner_name(ev.seq));
      w.key("valid").value((ev.seq & 4u) != 0);
      w.key("x_prev").value(ev.a);
      w.key("x_cl").value(ev.b);
      w.key("x_rl").value(ev.c);
      w.key("u_prev").value(ev.d);
      w.key("u_cl").value(ev.e);
      w.key("u_rl").value(ev.f);
      break;
    case TraceKind::kCca:
      w.key("code").value(ev.seq);
      w.key("v0").value(ev.a);
      w.key("v1").value(ev.b);
      break;
    case TraceKind::kRun:
      w.key("wall_s").value(ev.a);
      w.key("sim_s").value(ev.b);
      w.key("speedup").value(ev.c);
      break;
    case TraceKind::kEcn:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("qbytes").value(ev.b);
      break;
    case TraceKind::kPolicer:
      w.key("seq").value(ev.seq);
      w.key("bytes").value(ev.a);
      w.key("tokens").value(ev.b);
      w.key("marked").value(ev.c != 0);
      break;
  }
  w.end_object();
}

void FlightRecorder::append_csv(const TraceEvent& ev, std::string& out) {
  json_append_number(to_seconds(ev.t), out);
  out += ',';
  out += kind_name(ev.kind);
  out += ',';
  json_append_number(static_cast<std::int64_t>(ev.flow), out);
  out += ',';
  json_append_number(ev.seq, out);
  for (double v : {ev.a, ev.b, ev.c, ev.d, ev.e, ev.f}) {
    out += ',';
    json_append_number(v, out);
  }
}

}  // namespace libra
