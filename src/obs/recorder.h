// Flight recorder: a per-run, sim-time-stamped event trace.
//
// Every run (one Network) owns one recorder. Simulator components call the
// inline record methods from their hot paths; each method's first statement
// is `if (!enabled_) return;`, so a disabled recorder costs one predictable
// branch and nothing else — no event construction, no allocation. enable()
// preallocates a fixed-capacity ring of POD TraceEvent records:
//
//   - with a sink attached, a full ring flushes (streaming JSONL/CSV), so
//     arbitrarily long runs trace completely to disk;
//   - without a sink the ring keeps the most recent events (black-box mode)
//     and counts what it overwrote.
//
// Events are recorded in simulation order within a run, so two runs with the
// same seed produce byte-identical traces regardless of thread placement.
// The schema (one JSON object per line) is documented in EXPERIMENTS.md and
// consumed by tools/trace_summarize.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "util/types.h"

namespace libra {

enum class TraceKind : std::uint8_t {
  kEnqueue = 0,   // packet admitted to the bottleneck queue
  kDrop,          // packet dropped (see DropReason in `c`)
  kDeliver,       // packet finished serialization and left the bottleneck
  kSend,          // sender transmitted a packet
  kAck,           // ACK processed by the sender
  kLoss,          // packet declared lost by the sender
  kRate,          // effective pacing rate / cwnd changed
  kStage,         // Libra control-cycle stage transition
  kCycle,         // Libra per-cycle result (utilities + winner)
  kCca,           // CCA-internal event (code is algorithm-specific)
  kRun,           // end-of-run metadata (wall/sim time, speed ratio)
  kEcn,           // packet CE-marked by a queue instead of dropped
  kPolicer,       // token-bucket policer action (drop or mark)
};

enum class DropReason : int { kOverflow = 0, kWire = 1, kCodel = 2, kPolicer = 3 };

/// Fixed-size POD trace record. `a`..`f` are kind-specific payload slots;
/// the JSONL serializer maps them to named fields (see recorder.cc).
struct TraceEvent {
  SimTime t = 0;
  std::int32_t flow = -1;  // -1: link-level event
  TraceKind kind = TraceKind::kEnqueue;
  std::uint64_t seq = 0;
  double a = 0, b = 0, c = 0, d = 0, e = 0, f = 0;
};

enum class TraceFormat { kJsonl, kCsv };

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  // ~4.5 MB of events

  /// Preallocates the ring and starts recording. Safe to call again (keeps
  /// already-buffered events when the capacity is unchanged).
  void enable(std::size_t ring_capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Streaming target: when set, a full ring flushes to the sink instead of
  /// overwriting its oldest events. CSV sinks get a header row first.
  void set_sink(std::shared_ptr<LineSink> sink, TraceFormat format = TraceFormat::kJsonl);

  // --- record points (inline no-ops while disabled) ------------------------

  void enqueue(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
               std::int64_t queue_bytes, std::size_t queue_pkts) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kEnqueue, seq, static_cast<double>(bytes),
          static_cast<double>(queue_bytes), static_cast<double>(queue_pkts)});
  }

  void drop(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
            std::int64_t queue_bytes, DropReason reason) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kDrop, seq, static_cast<double>(bytes),
          static_cast<double>(queue_bytes), static_cast<double>(reason)});
  }

  void deliver(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
               std::int64_t queue_bytes) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kDeliver, seq, static_cast<double>(bytes),
          static_cast<double>(queue_bytes)});
  }

  void send(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
            std::int64_t bytes_in_flight) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kSend, seq, static_cast<double>(bytes),
          static_cast<double>(bytes_in_flight)});
  }

  void ack(SimTime t, int flow, std::uint64_t seq, SimDuration rtt,
           std::int64_t bytes, RateBps delivery_rate, std::int64_t bytes_in_flight) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kAck, seq, to_msec(rtt), static_cast<double>(bytes),
          delivery_rate, static_cast<double>(bytes_in_flight)});
  }

  void loss(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
            bool from_timeout) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kLoss, seq, static_cast<double>(bytes),
          from_timeout ? 1.0 : 0.0});
  }

  void rate_change(SimTime t, int flow, RateBps pacing_rate, std::int64_t cwnd) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kRate, 0, pacing_rate, static_cast<double>(cwnd)});
  }

  void stage_transition(SimTime t, int flow, int stage) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kStage, 0, static_cast<double>(stage)});
  }

  void cycle_result(SimTime t, int flow, int winner, bool valid, RateBps x_prev,
                    RateBps x_cl, RateBps x_rl, double u_prev, double u_cl,
                    double u_rl) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kCycle,
          static_cast<std::uint64_t>(winner) | (valid ? 4u : 0u), x_prev, x_cl,
          x_rl, u_prev, u_cl, u_rl});
  }

  void cca_event(SimTime t, int flow, int code, double v0 = 0, double v1 = 0) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kCca, static_cast<std::uint64_t>(code), v0, v1});
  }

  /// A queue CE-marked this packet instead of dropping it (droptail
  /// threshold marking or CoDel in mark mode).
  void ecn_mark(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
                std::int64_t queue_bytes) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kEcn, seq, static_cast<double>(bytes),
          static_cast<double>(queue_bytes)});
  }

  /// Token-bucket policer decision on a non-conforming packet. `marked` is
  /// true when the policer CE-marked instead of dropping; `tokens` is the
  /// bucket level (bytes) at decision time, before any consumption.
  void policer(SimTime t, int flow, std::uint64_t seq, std::int64_t bytes,
               double tokens, bool marked) {
    if (!enabled_) return;
    push({t, flow, TraceKind::kPolicer, seq, static_cast<double>(bytes), tokens,
          marked ? 1.0 : 0.0});
  }

  /// End-of-run metadata line: wall-clock seconds spent simulating vs
  /// simulated seconds covered. Emitted only when ObsOptions::trace_meta is
  /// set — the default trace stays a pure function of the seed, so the
  /// byte-identical-trace determinism guarantee is unaffected.
  void run_meta(SimTime t, double wall_s, double sim_s) {
    if (!enabled_) return;
    push({t, -1, TraceKind::kRun, 0, wall_s, sim_s,
          wall_s > 0 ? sim_s / wall_s : 0.0});
  }

  // --- drain / inspect -----------------------------------------------------

  /// Total events accepted (including ones already flushed or overwritten).
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap-around (only possible with no sink attached).
  std::uint64_t overwritten() const { return overwritten_; }
  std::size_t buffered() const { return size_; }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Writes buffered events to the sink and clears the buffer. No-op without
  /// a sink.
  void flush();

  /// Serializes buffered events (does not clear the buffer).
  void write_jsonl(std::ostream& out) const;
  void write_csv(std::ostream& out) const;

  static void append_jsonl(const TraceEvent& ev, std::string& out);
  static void append_csv(const TraceEvent& ev, std::string& out);
  static const char* kind_name(TraceKind kind);
  static const char* csv_header();

 private:
  void push(const TraceEvent& ev) {
    if (size_ == ring_.size()) {
      if (sink_) {
        flush();
      } else {
        ring_[head_] = ev;
        head_ = (head_ + 1) % ring_.size();
        ++overwritten_;
        ++recorded_;
        return;
      }
    }
    ring_[(head_ + size_) % ring_.size()] = ev;
    ++size_;
    ++recorded_;
  }

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool enabled_ = false;
  bool csv_header_written_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::shared_ptr<LineSink> sink_;
  TraceFormat format_ = TraceFormat::kJsonl;
  std::string line_;  // flush scratch, reused across events
};

}  // namespace libra
