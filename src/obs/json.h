// Minimal JSON writer used for structured run output (RunSummary, bench
// tables, metrics snapshots) and the flight recorder's JSONL traces.
//
// Doubles are formatted with std::to_chars (shortest round-trip form), so
// serialized output is bit-deterministic for deterministic inputs and cheap
// enough to sit on the trace-flush path.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace libra {

inline void json_escape(std::string_view s, std::string& out) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xF];
          out += hex[ch & 0xF];
        } else {
          out += ch;
        }
    }
  }
}

inline void json_append_number(double v, std::string& out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

inline void json_append_number(std::int64_t v, std::string& out) {
  char buf[24];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

inline void json_append_number(std::uint64_t v, std::string& out) {
  char buf[24];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Streaming writer with automatic comma placement. Appends to a caller-owned
/// string; nesting is tracked so value()/key() insert separators correctly.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(&out) {}

  JsonWriter& begin_object() { open('{'); return *this; }
  JsonWriter& end_object() { close('}'); return *this; }
  JsonWriter& begin_array() { open('['); return *this; }
  JsonWriter& end_array() { close(']'); return *this; }

  JsonWriter& key(std::string_view k) {
    comma();
    *out_ += '"';
    json_escape(k, *out_);
    *out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(double v) { sep(); json_append_number(v, *out_); return *this; }
  JsonWriter& value(std::int64_t v) { sep(); json_append_number(v, *out_); return *this; }
  JsonWriter& value(std::uint64_t v) { sep(); json_append_number(v, *out_); return *this; }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) { sep(); *out_ += v ? "true" : "false"; return *this; }
  JsonWriter& value(std::string_view v) {
    sep();
    *out_ += '"';
    json_escape(v, *out_);
    *out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

 private:
  void open(char ch) {
    sep();
    *out_ += ch;
    needs_comma_.push_back(false);
  }

  void close(char ch) {
    *out_ += ch;
    if (!needs_comma_.empty()) needs_comma_.pop_back();
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  // Separator before a value: nothing after a key, comma between array items.
  void sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    comma();
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  void comma() {
    if (!needs_comma_.empty() && needs_comma_.back()) *out_ += ',';
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  std::string* out_;
  std::vector<bool> needs_comma_;
  bool pending_value_ = false;
};

}  // namespace libra
