// In-process hierarchical profiler: where does wall-clock time go inside a
// run?
//
// Usage: drop `PROF_SCOPE("name")` at the top of a function (or any block).
// While the profiler is disabled — the default — a span costs one relaxed
// atomic load and a predicted branch, nothing else: no clock read, no
// allocation, no thread-local access (same discipline as FlightRecorder's
// `if (!enabled_) return;` hot path; the alloc-counting test asserts zero
// allocations per disabled span). enable() turns every span into a timed
// node of a per-thread call tree:
//
//   - nodes are keyed by (parent, name) — the same PROF_SCOPE reached through
//     different callers shows up as distinct tree paths, like a flame graph;
//   - each node aggregates count, total/min/max ns and child time (self time
//     is total - child), MetricsRegistry-style;
//   - trees are thread-local, so recording a span never takes a lock; the
//     cross-thread merge happens once, at report time, by folding every
//     thread's tree path-by-path into one (Profiler::merged()).
//
// Reports: to_json() for machines (nested under "profile" in bench JSON
// documents), text_report() for humans — an indented flame-style listing with
// percent-of-parent, self time and call counts.
//
// Quiescence contract: merged()/to_json()/text_report()/reset() read or clear
// every thread's tree; call them only while no profiled spans are running
// (e.g. after run_many/parallel_for returned — future/pool completion gives
// the necessary happens-before). Span names must outlive the profiler; string
// literals are the intended currency.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace libra {

/// One aggregated call-tree node of the merged, cross-thread profile.
struct ProfileStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t child_ns = 0;  // time inside child spans; self = total - child
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<ProfileStats> children;  // name-sorted: merge order is deterministic

  std::uint64_t self_ns() const {
    return total_ns >= child_ns ? total_ns - child_ns : 0;
  }
};

/// Per-thread call tree. Internal to the profiler; spans touch it only
/// through ProfScope. Node 0 is the thread's root (never timed itself).
class ThreadProfile {
 public:
  ThreadProfile();
  ~ThreadProfile();

  ThreadProfile(const ThreadProfile&) = delete;
  ThreadProfile& operator=(const ThreadProfile&) = delete;

  std::uint32_t enter(const char* name) {
    const std::uint32_t parent = current_;
    // Linear scan over the parent's children: fanout is small (a handful of
    // distinct callees per site) and names are literals, so the pointer
    // compare almost always decides.
    for (std::uint32_t c : nodes_[parent].children) {
      const Node& child = nodes_[c];
      if (child.name == name || std::strcmp(child.name, name) == 0) {
        current_ = c;
        return c;
      }
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    Node fresh;
    fresh.name = name;
    fresh.parent = parent;
    nodes_.push_back(std::move(fresh));
    nodes_[parent].children.push_back(idx);
    current_ = idx;
    return idx;
  }

  void exit(std::uint32_t node, std::uint64_t elapsed_ns) {
    if (node >= nodes_.size()) return;  // tree was reset() under a live span
    Node& n = nodes_[node];
    ++n.count;
    n.total_ns += elapsed_ns;
    if (n.count == 1 || elapsed_ns < n.min_ns) n.min_ns = elapsed_ns;
    if (elapsed_ns > n.max_ns) n.max_ns = elapsed_ns;
    nodes_[n.parent].child_ns += elapsed_ns;
    current_ = n.parent;
  }

  struct Node {
    const char* name = "";
    std::uint32_t parent = 0;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::vector<std::uint32_t> children;
  };

  /// Read-side access for the profiler's report-time merge.
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  friend class Profiler;

  void clear() {
    nodes_.clear();
    nodes_.push_back(Node{});
    current_ = 0;
  }

  std::vector<Node> nodes_;
  std::uint32_t current_ = 0;
};

class Profiler {
 public:
  /// Process-wide instance (leaky singleton: safe to use from thread-local
  /// destructors at any shutdown order).
  static Profiler& instance();

  /// Global on/off switch read by every span. Relaxed: a span racing the flip
  /// is recorded on one side or the other, both fine.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Clears every registered thread tree. Quiescence contract applies.
  void reset();

  /// Folds all thread trees into one aggregated tree (path-by-path; children
  /// name-sorted). The root's totals are the sum of every top-level span.
  ProfileStats merged() const;

  /// Merged tree as one JSON object: {"threads":N,"tree":{...}} where each
  /// node is {"name","count","total_ns","self_ns","min_ns","max_ns",
  /// "children":[...]}.
  std::string to_json() const;

  /// Indented flame-style listing, widest subtree first:
  ///   total ms      %   self ms        count  span
  std::string text_report() const;

  /// Threads that have recorded at least one span since the last reset.
  std::size_t thread_count() const;

  /// The calling thread's tree (created and registered on first use).
  static ThreadProfile& thread_profile();

 private:
  friend class ThreadProfile;

  void register_thread(ThreadProfile* tp);
  void unregister_thread(ThreadProfile* tp);

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<ThreadProfile*> threads_;
  /// Trees of exited threads (retained at thread death so a short-lived
  /// worker's spans survive until the next reset()).
  std::vector<std::vector<ThreadProfile::Node>> retired_;
};

/// RAII span. Constructed disabled it stores a null profile pointer and the
/// destructor is a single predicted branch.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (!Profiler::enabled()) {
      tp_ = nullptr;
      return;
    }
    tp_ = &Profiler::thread_profile();
    node_ = tp_->enter(name);
    start_ = std::chrono::steady_clock::now();
  }

  ~ProfScope() {
    if (!tp_) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    tp_->exit(node_, static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             elapsed)
                             .count()));
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ThreadProfile* tp_;
  std::uint32_t node_ = 0;
  std::chrono::steady_clock::time_point start_;
};

#define LIBRA_PROF_CONCAT2(a, b) a##b
#define LIBRA_PROF_CONCAT(a, b) LIBRA_PROF_CONCAT2(a, b)
/// Times the enclosing block as a span named `name` (a string literal).
#define PROF_SCOPE(name) \
  ::libra::ProfScope LIBRA_PROF_CONCAT(prof_scope_, __COUNTER__) { name }

}  // namespace libra
