// Online fleet anomaly detection over a FleetTimeline.
//
// analyze_health() scans the windowed per-flow aggregates (obs/fleet_stats.h)
// in fixed flow/window order and emits severity-ranked Incidents for the
// pathological regimes a fleet run can fall into:
//
//   - min_rtt_corruption: a flow's lifetime minimum RTT sits far above the
//     fleet's path floor — its delay baseline absorbed standing queue. This
//     is exactly the documented Copa 100-flow synchronized-incast collapse:
//     late arrivals fold the never-draining queue into min_rtt, their queue
//     estimate dq = rtt_standing - min_rtt reads near zero, and the target
//     rate 1/(delta*dq) locks them out. See tests/fleet_test.cc.
//   - starvation: an active flow moves zero bytes for N consecutive windows
//     while the rest of the fleet makes progress.
//   - fairness_collapse: the per-window Jain index over active flows stays
//     under a floor for M consecutive windows.
//   - rtt_blowup: a flow's windowed p95 RTT exceeds a multiple of the path
//     floor for K consecutive windows (bufferbloat / RTO spiral).
//   - retx_storm: windowed loss fraction lost/sent above a ceiling with
//     meaningful volume, sustained over consecutive windows.
//
// Every input is an exact integer function of the simulated run and every
// detector uses integer or exact-double arithmetic in a fixed scan order, so
// the report — including incident ordering — is byte-stable across engine
// modes and thread counts. Reports serialize through JsonWriter (single-line,
// shortest-round-trip doubles); check.sh byte-diffs serial vs. sharded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/fleet_stats.h"

namespace libra {

class JsonWriter;

enum class IncidentKind {
  kMinRttCorruption = 0,
  kStarvation,
  kFairnessCollapse,
  kRttBlowup,
  kRetxStorm,
};

const char* incident_kind_name(IncidentKind kind);

/// One detected anomaly. `severity` is the detector's "how far past the
/// threshold" ratio (>= 1), so incidents rank comparably across kinds.
struct Incident {
  IncidentKind kind = IncidentKind::kMinRttCorruption;
  int flow = -1;      // -1: fleet-level incident
  int window = 0;     // first window of the offending run
  int span = 1;       // consecutive windows covered
  double severity = 1.0;
  double value = 0;      // the measurement that tripped the detector
  double threshold = 0;  // the limit it tripped
  double baseline = 0;   // the reference it was compared against
  std::string detail;
};

struct HealthConfig {
  FleetStatsConfig stats;

  /// Windows ignored by the windowed detectors (startup transient: slow
  /// start, staggered arrivals). Lifetime detectors (min_rtt_corruption)
  /// always see the whole run.
  int warmup_windows = 10;

  /// min_rtt_corruption: flow baseline > max(floor * ratio, floor + margin),
  /// with at least `min_samples` lifetime RTT samples so one stray flow
  /// cannot fire on noise — AND the flow locked out: post-warmup goodput
  /// under `lockout_share` of its fair share. In a deep never-draining
  /// buffer every late flow of every CCA inherits a polluted baseline; the
  /// incident is a controller held captive by it (Copa's dq = rtt_standing -
  /// min_rtt reads zero, so the 1/(delta*dq) target starves the flow), not
  /// the pollution itself. Loss-based CCAs with the same baseline keep their
  /// fair share; BBR's victims keep a trickle well above this gate.
  double min_rtt_ratio = 1.8;
  SimDuration min_rtt_margin = msec(3);
  std::int64_t min_rtt_min_samples = 50;
  double min_rtt_lockout_share = 0.05;

  /// starvation: zero acked bytes for N consecutive windows while the fleet
  /// as a whole acked something in each of them.
  int starvation_windows = 10;

  /// fairness_collapse: per-window Jain over active flows below the floor
  /// for M consecutive windows; needs a real fan-in to be meaningful.
  double fairness_floor = 0.35;
  int fairness_windows = 5;
  int fairness_min_flows = 4;

  /// rtt_blowup: windowed p95 RTT > ratio * path floor for K consecutive
  /// windows with at least `rtt_blowup_min_samples` ACKs each.
  double rtt_blowup_ratio = 8.0;
  int rtt_blowup_windows = 3;
  std::int32_t rtt_blowup_min_samples = 8;

  /// retx_storm: lost/sent > rate with sent >= min_sent, sustained.
  double retx_storm_loss_rate = 0.3;
  std::int64_t retx_storm_min_sent = 40;
  int retx_storm_windows = 2;
};

/// Fleet-wide per-window aggregate (fixed flow-order reduction of the rows).
struct FleetWindowAgg {
  std::int64_t acked_bytes = 0;
  std::int64_t sent = 0;
  std::int64_t lost = 0;
  std::int64_t rtt_sum_us = 0;
  std::int64_t rtt_samples = 0;
  std::int32_t max_p95_us = 0;  // worst flow p95 in the window
  int active = 0;               // flows whose lifetime overlaps the window
  int progressing = 0;          // active flows with acked_bytes > 0
  double jain = 0;              // over active flows (zeros included)
};

struct HealthReport {
  SimDuration window = 0;
  int n_windows = 0;
  int flows = 0;
  double duration_s = 0;
  /// Fleet path floor: minimum lifetime min-RTT across flows (ms); 0 when no
  /// flow ever saw an ACK.
  double path_floor_rtt_ms = 0;
  std::vector<FleetWindowAgg> fleet;     // per window
  std::vector<double> flow_min_rtt_ms;   // per flow lifetime baseline
  std::vector<Incident> incidents;       // severity-descending

  bool has(IncidentKind kind) const;
  int count(IncidentKind kind) const;
};

/// Scans the timeline and returns the full report. Pure function of the
/// timeline + config: byte-stable across engine modes and thread counts.
HealthReport analyze_health(const FleetTimeline& timeline,
                            const HealthConfig& config = {});

/// Serializes the report as the value of a "health" key: callers do
/// w.key("health"); write_health_json(w, report);
void write_health_json(JsonWriter& w, const HealthReport& report);

/// Standalone single-line document: {"health":{...}}.
std::string health_report_json(const HealthReport& report);

}  // namespace libra
