#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/json.h"

namespace libra {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      lower_edge_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
}

Histogram Histogram::linear(double lo, double hi, std::size_t buckets) {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("Histogram::linear: bad range");
  std::vector<double> bounds;
  bounds.reserve(buckets);
  double width = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 1; i <= buckets; ++i)
    bounds.push_back(lo + width * static_cast<double>(i));
  Histogram h{std::move(bounds)};
  h.set_lower_edge(lo);
  return h;
}

Histogram Histogram::exponential(double first, double growth, std::size_t buckets) {
  if (buckets == 0 || first <= 0 || growth <= 1.0)
    throw std::invalid_argument("Histogram::exponential: bad ladder");
  std::vector<double> bounds;
  bounds.reserve(buckets);
  double b = first;
  for (std::size_t i = 0; i < buckets; ++i) {
    bounds.push_back(b);
    b *= growth;
  }
  return Histogram(std::move(bounds));
}

void Histogram::add(double x) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (x < lower_edge_) ++underflow_;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  sum_ += other.sum_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(count_);
  if (target <= 0) return min_;

  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::int64_t c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Bucket i spans (lower, upper]; clamp to the observed range so sparse
      // edge buckets do not overstate the spread.
      double lower = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
      double upper = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
      if (upper < lower) upper = lower;
      double frac = (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + frac * (upper - lower);
    }
    cum += c;
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Histogram& prototype) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, prototype).first;
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  std::lock_guard<std::mutex> lock(merge_mu_);
  for (const auto& [name, c] : other.counters_) counters_[name].inc(c.value());
  for (const auto& [name, g] : other.gauges_) {
    if (g.empty()) continue;
    Gauge& mine = gauges_[name];
    // Re-set min/max/last so the combined gauge covers both ranges.
    mine.set(g.min());
    mine.set(g.max());
    mine.set(g.last());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      Histogram fresh{h.bounds()};
      fresh.set_lower_edge(h.lower_edge());
      it = histograms_.emplace(name, std::move(fresh)).first;
    }
    it->second.merge(h);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).begin_object();
    w.key("last").value(g.last());
    w.key("min").value(g.min());
    w.key("max").value(g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("mean").value(h.mean());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("p50").value(h.percentile(50));
    w.key("p90").value(h.percentile(90));
    w.key("p99").value(h.percentile(99));
    // Explicit ladder-fit diagnostics: samples past the last bound and (when
    // a lower edge was declared) below the first bucket's intended floor.
    w.key("overflow").value(h.overflow());
    w.key("underflow").value(h.underflow());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return out;
}

}  // namespace libra
