// In-process profiler: call-tree aggregation math, cross-thread merge
// determinism, and the serial-vs-parallel invariant (the same experiment
// batch records the same span counts per name regardless of thread count).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "classic/cubic.h"
#include "harness/parallel.h"
#include "harness/scenario.h"
#include "obs/profiler.h"
#include "util/thread_pool.h"

namespace libra {
namespace {

// Tests share the process-wide profiler; serialize and always restore the
// disabled default so other suites never observe a profiling run.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().disable();
    Profiler::instance().reset();
    Profiler::instance().enable();
  }
  void TearDown() override {
    Profiler::instance().disable();
    Profiler::instance().reset();
  }
};

const ProfileStats* find_child(const ProfileStats& node, const std::string& name) {
  for (const ProfileStats& c : node.children)
    if (c.name == name) return &c;
  return nullptr;
}

// Flattened per-name totals; tree paths aside, these are what serial and
// parallel execution of the same work must agree on.
void accumulate_by_name(const ProfileStats& node,
                        std::map<std::string, std::uint64_t>& counts) {
  if (!node.name.empty()) counts[node.name] += node.count;
  for (const ProfileStats& c : node.children) accumulate_by_name(c, counts);
}

void spin_spans(int outer_iters, int inner_iters) {
  for (int i = 0; i < outer_iters; ++i) {
    PROF_SCOPE("outer");
    for (int j = 0; j < inner_iters; ++j) {
      PROF_SCOPE("inner");
    }
  }
}

TEST_F(ProfilerTest, TreeAggregationCountsAndTimes) {
  spin_spans(/*outer_iters=*/5, /*inner_iters=*/3);

  ProfileStats root = Profiler::instance().merged();
  const ProfileStats* outer = find_child(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 5u);

  const ProfileStats* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 15u);
  EXPECT_TRUE(inner->children.empty());

  // Time algebra: a parent's child_ns is the sum of its children's totals,
  // self = total - child, min <= max, and a span's time nests inside its
  // parent's.
  EXPECT_EQ(outer->child_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns(), outer->total_ns - outer->child_ns);
  EXPECT_LE(inner->min_ns, inner->max_ns);
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_GE(inner->total_ns, inner->min_ns * inner->count);
  EXPECT_LE(inner->total_ns, inner->max_ns * inner->count);

  // The same name reached through different parents is a distinct path.
  {
    PROF_SCOPE("other_parent");
    PROF_SCOPE("inner");
  }
  root = Profiler::instance().merged();
  const ProfileStats* other = find_child(root, "other_parent");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(find_child(*other, "inner"), nullptr);
  EXPECT_EQ(find_child(*other, "inner")->count, 1u);
  EXPECT_EQ(find_child(*find_child(root, "outer"), "inner")->count, 15u);
}

TEST_F(ProfilerTest, ResetUnderLiveSpanIsSafe) {
  PROF_SCOPE("live");
  Profiler::instance().reset();  // exit() must tolerate the vanished node
}

TEST_F(ProfilerTest, CrossThreadMergeIsDeterministic) {
  // Three threads record the same span names with different counts; the merge
  // must fold them path-by-path with name-sorted children, independent of
  // registration or completion order.
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] { spin_spans(t + 1, 2); });
  }
  for (std::thread& th : threads) th.join();
  spin_spans(1, 2);  // and the main thread participates too

  ProfileStats root = Profiler::instance().merged();
  EXPECT_GE(Profiler::instance().thread_count(), 4u);

  const ProfileStats* outer = find_child(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u + 2u + 3u + 1u);
  const ProfileStats* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, outer->count * 2);

  // Children are name-sorted at every level, so two merges agree exactly.
  ProfileStats again = Profiler::instance().merged();
  std::map<std::string, std::uint64_t> a, b;
  accumulate_by_name(root, a);
  accumulate_by_name(again, b);
  EXPECT_EQ(a, b);
  ASSERT_GE(root.children.size(), 1u);
  for (std::size_t i = 1; i < root.children.size(); ++i)
    EXPECT_LT(root.children[i - 1].name, root.children[i].name);
}

TEST_F(ProfilerTest, SerialAndParallelRunsRecordIdenticalSpanCounts) {
  // The instrumented simulator processes the same events for the same seeds
  // at any thread count, so per-name span totals must match between a serial
  // loop and run_many on a pool — the profiling analogue of the engine's
  // bitwise-determinism guarantee.
  Scenario s = wired_scenario(24);
  s.duration = sec(2);
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };
  std::vector<RunRequest> reqs;
  for (int r = 0; r < 3; ++r)
    reqs.push_back(RunRequest::single(s, factory, 7000 + static_cast<std::uint64_t>(r)));

  std::map<std::string, std::uint64_t> serial_counts;
  for (const RunRequest& req : reqs)
    run_single(req.scenario, factory, req.seed, req.warmup);
  accumulate_by_name(Profiler::instance().merged(), serial_counts);

  Profiler::instance().reset();
  ThreadPool pool(2);
  std::map<std::string, std::uint64_t> parallel_counts;
  run_many(reqs, pool);
  accumulate_by_name(Profiler::instance().merged(), parallel_counts);

  ASSERT_GT(serial_counts.at("sim.event"), 0u);
  EXPECT_EQ(serial_counts, parallel_counts);
}

TEST_F(ProfilerTest, ReportsContainRecordedSpans) {
  spin_spans(2, 1);
  std::string json = Profiler::instance().to_json();
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":"), std::string::npos);
  std::string text = Profiler::instance().text_report();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("count"), std::string::npos);
}

TEST_F(ProfilerTest, DisabledSpansRecordNothing) {
  Profiler::instance().disable();
  spin_spans(4, 4);
  Profiler::instance().enable();
  ProfileStats root = Profiler::instance().merged();
  EXPECT_EQ(find_child(root, "outer"), nullptr);
}

}  // namespace
}  // namespace libra
