// Thread pool unit tests and the parallel experiment engine's determinism
// guarantee: run_many() must be bitwise-identical to serial execution.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "classic/cubic.h"
#include "core/factory.h"
#include "harness/parallel.h"
#include "harness/scenario.h"
#include "harness/trainer.h"
#include "harness/zoo.h"
#include "learned/libra_rl.h"
#include "util/thread_pool.h"

namespace libra {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitForwardsArguments) {
  ThreadPool pool(2);
  auto fut = pool.submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(0, 16,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::logic_error("task 7");
                                   completed.fetch_add(1);
                                 }),
               std::logic_error);
  EXPECT_EQ(completed.load(), 15);  // the batch still drains
}

TEST(ThreadPool, ManyTasksOnFewThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (long i = 1; i <= 200; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 200L * 201 / 2);
}

// --- parallel_for_chunked ---------------------------------------------------

TEST(ParallelForChunked, CoversRangeExactlyOnceWithUnevenChunks) {
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 5, kEnd = 108;  // 103 indices, chunk 8
  std::vector<std::atomic<int>> hits(kEnd);
  parallel_for_chunked(pool, kBegin, kEnd, 8,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0) << i;
  for (std::size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunked, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for_chunked(pool, 5, 5, 4,
                       [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForChunked, RejectsZeroChunk) {
  ThreadPool pool(1);
  EXPECT_THROW(
      parallel_for_chunked(pool, 0, 4, 0, [](std::size_t) {}),
      std::invalid_argument);
}

TEST(ParallelForChunked, DrainsRangeAndRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for_chunked(pool, 0, 32, 4, [&](std::size_t i) {
      if (i == 9) throw std::runtime_error("high");
      if (i == 3) throw std::logic_error("low");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "low");  // index 3 beats index 9
  }
  EXPECT_EQ(completed.load(), 30);  // every other index still ran
}

TEST(ParallelForChunked, NestedOnSamePoolDoesNotDeadlock) {
  // The caller drains chunks itself, so even a 1-thread pool whose only
  // worker is *inside* the outer loop makes progress on the inner one.
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  parallel_for_chunked(pool, 0, 4, 1, [&](std::size_t) {
    parallel_for_chunked(pool, 0, 4, 1,
                         [&](std::size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 16);
}

// --- run_many determinism ---------------------------------------------------

std::vector<RunRequest> classic_sweep() {
  Scenario s = wired_scenario(24);
  s.duration = sec(8);
  s.stochastic_loss = 0.02;  // exercises the per-run RNG path
  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    reqs.push_back(RunRequest::single(
        s, [] { return std::make_unique<Cubic>(); }, seed));
  }
  return reqs;
}

void expect_bitwise_equal(const RunSummary& a, const RunSummary& b) {
  // Exact comparison on purpose: the guarantee is bitwise determinism, not
  // approximate agreement.
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.total_throughput_bps, b.total_throughput_bps);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].throughput_bps, b.flows[i].throughput_bps);
    EXPECT_EQ(a.flows[i].avg_rtt_ms, b.flows[i].avg_rtt_ms);
    EXPECT_EQ(a.flows[i].loss_rate, b.flows[i].loss_rate);
  }
}

TEST(RunMany, InspectHookSeesTheCompletedNetwork) {
  // The escape hatch for experiments that need more than a RunSummary (e.g.
  // fig15's convergence time series): inspect fires once per request, on the
  // finished Network, and what it reads matches the serial run exactly.
  std::vector<RunRequest> reqs = classic_sweep();
  std::vector<double> inspected(reqs.size(), -1);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    double* slot = &inspected[i];
    reqs[i].inspect = [slot](const Network& net) {
      *slot = net.flow(0).acked_bytes_series().sum_in(0, kSimTimeMax);
    };
  }

  ThreadPool pool(4);
  run_many(reqs, pool);

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SCOPED_TRACE(i);
    auto net = run_scenario(reqs[i].scenario, reqs[i].flows, reqs[i].seed);
    EXPECT_EQ(inspected[i],
              net->flow(0).acked_bytes_series().sum_in(0, kSimTimeMax));
  }
}

TEST(RunMany, BitwiseIdenticalToSerialForClassicCca) {
  std::vector<RunRequest> reqs = classic_sweep();

  std::vector<RunSummary> serial;
  for (const RunRequest& r : reqs) {
    auto net = run_scenario(r.scenario, r.flows, r.seed);
    serial.push_back(summarize(*net, r.warmup, r.scenario.duration));
  }

  ThreadPool pool(4);
  std::vector<RunSummary> parallel = run_many(reqs, pool);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bitwise_equal(parallel[i], serial[i]);
  }
}

TEST(RunMany, BitwiseIdenticalToSerialForLearnedCca) {
  // Frozen (inference-mode) C-Libra sharing one brain across all runs: the
  // brain is read-only during inference and policy sampling uses the
  // instance's private RNG, so concurrent runs must match serial ones.
  RlCcaConfig cfg = libra_rl_config();
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 3, {8, 8}),
                                         feature_frame_size(cfg.features));
  CcaFactory factory = [brain] { return make_c_libra(brain, /*training=*/false); };

  Scenario s = wired_scenario(24);
  s.duration = sec(8);
  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 7; seed < 12; ++seed) {
    reqs.push_back(RunRequest::single(s, factory, seed));
  }

  std::vector<RunSummary> serial;
  for (const RunRequest& r : reqs) {
    auto net = run_scenario(r.scenario, r.flows, r.seed);
    serial.push_back(summarize(*net, r.warmup, r.scenario.duration));
  }

  ThreadPool pool(4);
  std::vector<RunSummary> parallel = run_many(reqs, pool);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bitwise_equal(parallel[i], serial[i]);
  }
}

TEST(RunMany, ResultsComeBackInSubmissionOrder) {
  // Three distinguishable scenarios (different capacities) in one batch.
  std::vector<RunRequest> reqs;
  for (double rate : {6.0, 24.0, 96.0}) {
    Scenario s = wired_scenario(rate);
    s.duration = sec(6);
    reqs.push_back(RunRequest::single(
        s, [] { return std::make_unique<Cubic>(); }, 1));
  }
  ThreadPool pool(3);
  std::vector<RunSummary> out = run_many(reqs, pool);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_LT(out[0].total_throughput_bps, out[1].total_throughput_bps);
  EXPECT_LT(out[1].total_throughput_bps, out[2].total_throughput_bps);
}

TEST(RunMany, RejectsFlowlessRequest) {
  RunRequest empty;
  empty.scenario = wired_scenario(24);
  ThreadPool pool(1);
  EXPECT_THROW(run_many({empty}, pool), std::invalid_argument);
}

TEST(AverageRunsParallel, MatchesSerialAveraging) {
  Scenario s = wired_scenario(24);
  s.duration = sec(6);
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };

  double util = 0, delay = 0;
  constexpr int kRuns = 4;
  for (int r = 0; r < kRuns; ++r) {
    RunSummary sum = run_single(s, factory, 1000 + static_cast<std::uint64_t>(r));
    util += sum.link_utilization;
    delay += sum.avg_delay_ms;
  }

  ThreadPool pool(4);
  AveragedSummary avg = average_runs_parallel(s, factory, kRuns, sec(2), pool);
  EXPECT_EQ(avg.link_utilization, util / kRuns);
  EXPECT_EQ(avg.avg_delay_ms, delay / kRuns);
}

// --- RunManyOptions: progress, cancellation, metrics ------------------------

std::vector<RunRequest> short_batch(std::size_t n) {
  Scenario s = wired_scenario(24);
  s.duration = sec(3);
  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    reqs.push_back(RunRequest::single(
        s, [] { return std::make_unique<Cubic>(); }, 100 + seed));
  }
  return reqs;
}

TEST(RunMany, ProgressCallbackCountsEveryRunMonotonically) {
  std::vector<RunRequest> reqs = short_batch(6);
  std::vector<std::size_t> seen;  // guarded by the engine's progress mutex
  RunManyOptions opts;
  opts.on_progress = [&](const RunProgress& p) {
    EXPECT_EQ(p.total, reqs.size());
    seen.push_back(p.done);
  };
  ThreadPool pool(4);
  std::vector<RunSummary> out = run_many(reqs, pool, opts);
  EXPECT_EQ(out.size(), reqs.size());
  ASSERT_EQ(seen.size(), reqs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(RunMany, ProgressReportsFlowSecondsClampedToScenarioDuration) {
  // Three requests with different simulated workloads: a plain 3 s single
  // flow (3 flow-s), a two-flow run where one flow stops early (3 + 1.5
  // flow-s), and a flow whose stop time exceeds the scenario (clamped to
  // 3 flow-s). The progress stream must account for every one exactly and
  // finish at the precomputed batch total.
  Scenario s = wired_scenario(24);
  s.duration = sec(3);
  auto cubic = [] { return std::make_unique<Cubic>(); };

  std::vector<RunRequest> reqs;
  reqs.push_back(RunRequest::single(s, cubic, 100));
  RunRequest two;
  two.scenario = s;
  two.seed = 101;
  two.flows.push_back(FlowSpec{cubic});
  two.flows.push_back(FlowSpec{cubic, sec(1), msec(2500)});
  reqs.push_back(two);
  RunRequest over;
  over.scenario = s;
  over.seed = 102;
  over.flows.push_back(FlowSpec{cubic, 0, sec(60)});  // clamped to duration
  reqs.push_back(over);

  EXPECT_DOUBLE_EQ(request_flow_seconds(reqs[0]), 3.0);
  EXPECT_DOUBLE_EQ(request_flow_seconds(reqs[1]), 4.5);
  EXPECT_DOUBLE_EQ(request_flow_seconds(reqs[2]), 3.0);

  double last_completed = 0;
  double reported_total = -1;
  std::size_t calls = 0;
  RunManyOptions opts;
  opts.on_progress = [&](const RunProgress& p) {
    ++calls;
    EXPECT_GT(p.completed_flow_seconds, last_completed);
    EXPECT_LE(p.completed_flow_seconds, p.total_flow_seconds + 1e-9);
    last_completed = p.completed_flow_seconds;
    reported_total = p.total_flow_seconds;
  };
  ThreadPool pool(2);
  run_many(reqs, pool, opts);
  EXPECT_EQ(calls, reqs.size());
  EXPECT_DOUBLE_EQ(reported_total, 10.5);
  EXPECT_DOUBLE_EQ(last_completed, 10.5);
}

TEST(RunMany, PreCancelledBatchSkipsEveryRun) {
  std::vector<RunRequest> reqs = short_batch(4);
  std::atomic<bool> cancel{true};
  std::size_t progress_calls = 0;
  RunManyOptions opts;
  opts.cancel = &cancel;
  opts.on_progress = [&](const RunProgress&) { ++progress_calls; };
  ThreadPool pool(2);
  std::vector<RunSummary> out = run_many(reqs, pool, opts);
  ASSERT_EQ(out.size(), reqs.size());
  for (const RunSummary& s : out) {
    EXPECT_TRUE(s.flows.empty());  // skipped slots keep the default summary
  }
  EXPECT_EQ(progress_calls, 0u);
}

TEST(RunMany, CancelMidBatchStopsLaunchingNewRuns) {
  std::vector<RunRequest> reqs = short_batch(8);
  std::atomic<bool> cancel{false};
  RunManyOptions opts;
  opts.cancel = &cancel;
  opts.on_progress = [&](const RunProgress& p) {
    if (p.done >= 2) cancel.store(true);
  };
  ThreadPool pool(1);  // serial drain => deterministic cut-off
  std::vector<RunSummary> out = run_many(reqs, pool, opts);
  std::size_t completed = 0;
  for (const RunSummary& s : out) completed += s.flows.empty() ? 0 : 1;
  EXPECT_GE(completed, 2u);
  EXPECT_LT(completed, reqs.size());
}

TEST(RunMany, MetricsAggregateAcrossWorkers) {
  std::vector<RunRequest> reqs = short_batch(5);
  // Identical seeds => identical per-run event counts, so the merged total
  // must be an exact multiple of the batch size.
  for (RunRequest& r : reqs) r.seed = 100;
  MetricsRegistry metrics;
  RunManyOptions opts;
  opts.metrics = &metrics;
  ThreadPool pool(4);
  std::vector<RunSummary> out = run_many(reqs, pool, opts);
  EXPECT_EQ(out.size(), reqs.size());

  // Every run contributes exactly once to the batch-level aggregates.
  EXPECT_EQ(metrics.counter("runs").value(),
            static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(metrics.histogram("run_wall_ms", Histogram::exponential(1.0, 2.0, 20))
                .count(),
            static_cast<std::int64_t>(reqs.size()));
  // Per-run simulator metrics merged in: 5 runs of the same scenario process
  // the same number of events each, so the sum is a positive multiple of 5.
  std::int64_t events = metrics.counter("sim.events_processed").value();
  EXPECT_GT(events, 0);
  EXPECT_EQ(events % static_cast<std::int64_t>(reqs.size()), 0);
}

// --- Trainer::train_parallel ------------------------------------------------

TEST(TrainParallel, WeightsBitwiseInvariantAcrossThreadCounts) {
  // Round-based collection promises thread-count invariance: every stochastic
  // draw happens serially on the main thread and the reduction is ordered, so
  // the trained brain must serialize identically at any pool width.
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 50;
  ranges.episode_length = sec(3);

  BrainBoundFactory factory = [](const std::shared_ptr<RlBrain>& b) {
    return make_libra_rl(b, /*training=*/true);
  };
  auto run = [&](std::size_t threads) {
    RlCcaConfig cfg = libra_rl_config();
    auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 5, {8, 8}),
                                           feature_frame_size(cfg.features));
    Trainer trainer(ranges, 77);
    ThreadPool pool(threads);
    auto curve =
        trainer.train_parallel(factory, brain, /*episodes=*/4, pool,
                               /*round_size=*/3);
    EXPECT_EQ(curve.size(), 4u);
    std::ostringstream out;
    brain->agent.save(out);
    brain->normalizer.save(out);
    return out.str();
  };

  const std::string one_thread = run(1);
  EXPECT_EQ(run(2), one_thread);
  EXPECT_EQ(run(4), one_thread);
}

// --- CcaZoo::train_all ------------------------------------------------------

TEST(CcaZoo, TrainAllProducesEveryBrainFamily) {
  ZooConfig cfg;
  cfg.brain_dir = "";  // no cache: force actual (tiny) training
  cfg.train_episodes = 1;
  cfg.hidden_width = 8;
  CcaZoo zoo(cfg);

  ThreadPool pool(4);
  zoo.train_all(pool);

  for (const std::string& family : CcaZoo::brain_families()) {
    auto brain = zoo.brain(family);  // cached now: must not retrain
    ASSERT_NE(brain, nullptr) << family;
    EXPECT_GT(brain->agent.config().state_dim, 0u) << family;
  }
}

TEST(CcaZoo, ParallelTrainingMatchesSerialTraining) {
  ZooConfig cfg;
  cfg.brain_dir = "";
  cfg.train_episodes = 1;
  cfg.hidden_width = 8;

  CcaZoo serial_zoo(cfg);
  for (const std::string& family : CcaZoo::brain_families()) {
    serial_zoo.brain(family);
  }

  CcaZoo parallel_zoo(cfg);
  ThreadPool pool(4);
  parallel_zoo.train_all(pool);

  // Same seeds, independent trainers => identical learned parameters.
  for (const std::string& family : CcaZoo::brain_families()) {
    std::ostringstream a, b;
    serial_zoo.brain(family)->agent.save(a);
    parallel_zoo.brain(family)->agent.save(b);
    EXPECT_EQ(a.str(), b.str()) << family;
  }
}

}  // namespace
}  // namespace libra
