// Parameterized robustness sweeps: every CCA must make progress (no deadlock,
// no runaway queue) across a grid of buffer depths, loss rates and RTTs, and
// Libra must stay live across its whole parameter envelope.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

namespace libra {
namespace {

std::shared_ptr<RlBrain> tiny_brain() {
  RlCcaConfig cfg = libra_rl_config();
  static auto brain = std::make_shared<RlBrain>(
      make_ppo_config(cfg, 3, {8, 8}), feature_frame_size(cfg.features));
  return brain;
}

// --- Liveness grid over network conditions, per CCA -------------------------
struct GridPoint {
  std::string cca;
  std::int64_t buffer;
  double loss;
  SimDuration rtt;
};

class CcaLiveness : public ::testing::TestWithParam<GridPoint> {};

TEST_P(CcaLiveness, MakesProgressWithoutPathology) {
  const GridPoint& g = GetParam();
  ZooConfig zc;
  zc.brain_dir = "";
  zc.train_episodes = 1;
  CcaZoo zoo(zc);

  Scenario s = wired_scenario(24, g.rtt, g.buffer);
  s.stochastic_loss = g.loss;
  s.duration = sec(15);
  RunSummary sum = run_single(s, zoo.factory(g.cca), 7);

  // Liveness: the flow moves data...
  EXPECT_GT(sum.total_throughput_bps, kbps(50)) << g.cca;
  // ...and never wedges the queue beyond the physical bound.
  EXPECT_LT(sum.avg_delay_ms,
            to_msec(g.rtt) + static_cast<double>(g.buffer) * 8 / mbps(24) * 1e3 + 50)
      << g.cca;
}

std::vector<GridPoint> liveness_grid() {
  std::vector<GridPoint> grid;
  for (const char* cca : {"cubic", "bbr", "vegas", "copa", "compound",
                          "vivace", "sprout", "remy", "indigo"}) {
    grid.push_back({cca, 20'000, 0.0, msec(20)});    // shallow buffer
    grid.push_back({cca, 500'000, 0.0, msec(100)});  // deep buffer, long RTT
    grid.push_back({cca, 150'000, 0.05, msec(30)});  // lossy
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, CcaLiveness, ::testing::ValuesIn(liveness_grid()),
                         [](const auto& info) {
                           const GridPoint& g = info.param;
                           return g.cca + std::string("_b") +
                                  std::to_string(g.buffer / 1000) + "k_l" +
                                  std::to_string(static_cast<int>(g.loss * 100)) +
                                  "_r" + std::to_string(g.rtt / 1000);
                         });

// --- Libra parameter envelope ------------------------------------------------
struct LibraPoint {
  double exploration_rtts;
  double ei_rtts;
  double exploitation_rtts;
  double threshold;
};

class LibraEnvelope : public ::testing::TestWithParam<LibraPoint> {};

TEST_P(LibraEnvelope, StaysLiveAndBounded) {
  const LibraPoint& p = GetParam();
  LibraParams params = c_libra_params();
  params.exploration_rtts = p.exploration_rtts;
  params.ei_rtts = p.ei_rtts;
  params.exploitation_rtts = p.exploitation_rtts;
  params.switch_threshold = p.threshold;

  Scenario s = wired_scenario(24);
  s.duration = sec(15);
  auto brain = tiny_brain();
  RunSummary sum = run_single(
      s, [&] { return make_c_libra(brain, false, params); }, 5);
  EXPECT_GT(sum.link_utilization, 0.4);
  EXPECT_LT(sum.flows[0].loss_rate, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, LibraEnvelope,
    ::testing::Values(LibraPoint{1, 0.5, 1, 0.3}, LibraPoint{1, 1, 1, 0.3},
                      LibraPoint{2, 0.5, 2, 0.3}, LibraPoint{3, 0.5, 3, 0.3},
                      LibraPoint{1, 0.5, 1, 0.1}, LibraPoint{1, 0.5, 1, 0.4},
                      LibraPoint{0.5, 0.25, 0.5, 0.3}));

// --- Utility-preference monotonicity ----------------------------------------
class PreferenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PreferenceSweep, HigherAlphaNeverHurtsUtilityOfHigherRates) {
  // For any fixed network outcome pair (low rate clean vs high rate queued),
  // raising alpha must weakly favor the higher-rate outcome, raising beta the
  // lower-delay one — the algebra behind the Fig. 11 knob.
  int level = GetParam();
  UtilityParams th = throughput_oriented(level);
  UtilityParams la = latency_oriented(level);
  UtilityParams base;

  double low_u_base = utility(base, 45, 0.0, 0.0);
  double high_u_base = utility(base, 50, 0.05, 0.03);
  double low_u_th = utility(th, 45, 0.0, 0.0);
  double high_u_th = utility(th, 50, 0.05, 0.03);
  double low_u_la = utility(la, 45, 0.0, 0.0);
  double high_u_la = utility(la, 50, 0.05, 0.03);

  // Th scales the throughput term: the high-rate option gains more.
  EXPECT_GT(high_u_th - high_u_base, low_u_th - low_u_base);
  // La scales the gradient penalty: the high-rate (queued) option loses more.
  EXPECT_LT(high_u_la - high_u_base, low_u_la - low_u_base);
}

INSTANTIATE_TEST_SUITE_P(Levels, PreferenceSweep, ::testing::Values(1, 2));

}  // namespace
}  // namespace libra
