// Parameterized robustness sweeps: every CCA must make progress (no deadlock,
// no runaway queue) across a grid of buffer depths, loss rates and RTTs, and
// Libra must stay live across its whole parameter envelope.
//
// Both grids execute as one RunRequest batch through run_many (fanned across
// the pool, built once in SetUpTestSuite), while each grid point remains its
// own registered test asserting against its slot of the shared results.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/zoo.h"

namespace libra {
namespace {

std::shared_ptr<RlBrain> tiny_brain() {
  RlCcaConfig cfg = libra_rl_config();
  static auto brain = std::make_shared<RlBrain>(
      make_ppo_config(cfg, 3, {8, 8}), feature_frame_size(cfg.features));
  return brain;
}

// --- Liveness grid over network conditions, per CCA -------------------------
struct GridPoint {
  std::string cca;
  std::int64_t buffer;
  double loss;
  SimDuration rtt;
};

const std::vector<GridPoint>& liveness_grid() {
  static const std::vector<GridPoint> grid = [] {
    std::vector<GridPoint> g;
    for (const char* cca : {"cubic", "bbr", "vegas", "copa", "compound",
                            "vivace", "sprout", "remy", "indigo"}) {
      g.push_back({cca, 20'000, 0.0, msec(20)});    // shallow buffer
      g.push_back({cca, 500'000, 0.0, msec(100)});  // deep buffer, long RTT
      g.push_back({cca, 150'000, 0.05, msec(30)});  // lossy
    }
    return g;
  }();
  return grid;
}

Scenario liveness_scenario(const GridPoint& g) {
  Scenario s = wired_scenario(24, g.rtt, g.buffer);
  s.stochastic_loss = g.loss;
  s.duration = sec(15);
  return s;
}

class CcaLiveness : public ::testing::TestWithParam<std::size_t> {
 protected:
  // One batch for the whole grid, fanned out through run_many.
  static void SetUpTestSuite() {
    if (!sums_.empty()) return;
    ZooConfig zc;
    zc.brain_dir = "";
    zc.train_episodes = 1;
    CcaZoo zoo(zc);
    std::vector<RunRequest> batch;
    for (const GridPoint& g : liveness_grid()) {
      batch.push_back(
          RunRequest::single(liveness_scenario(g), zoo.factory(g.cca), 7));
    }
    sums_ = run_many(batch);
  }

  static std::vector<RunSummary> sums_;
};

std::vector<RunSummary> CcaLiveness::sums_;

TEST_P(CcaLiveness, MakesProgressWithoutPathology) {
  const GridPoint& g = liveness_grid()[GetParam()];
  SCOPED_TRACE(g.cca + " buffer=" + std::to_string(g.buffer) +
               " loss=" + std::to_string(g.loss) +
               " rtt_ms=" + std::to_string(g.rtt / 1000));
  ASSERT_LT(GetParam(), sums_.size());
  const RunSummary& sum = sums_[GetParam()];
  // Liveness: the flow moves data...
  EXPECT_GT(sum.total_throughput_bps, kbps(50));
  // ...and never wedges the queue beyond the physical bound.
  EXPECT_LT(sum.avg_delay_ms,
            to_msec(g.rtt) +
                static_cast<double>(g.buffer) * 8 / mbps(24) * 1e3 + 50);
}

std::string liveness_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const GridPoint& g = liveness_grid()[info.param];
  const char* cond = g.loss > 0 ? "lossy" : (g.buffer < 100'000 ? "shallow" : "deep");
  return g.cca + "_" + cond;
}

INSTANTIATE_TEST_SUITE_P(Grid, CcaLiveness,
                         ::testing::Range<std::size_t>(0, 27),
                         liveness_name);

// --- Libra parameter envelope ------------------------------------------------
struct LibraPoint {
  double exploration_rtts;
  double ei_rtts;
  double exploitation_rtts;
  double threshold;
};

const std::vector<LibraPoint>& libra_points() {
  static const std::vector<LibraPoint> points = {
      {1, 0.5, 1, 0.3},   {1, 1, 1, 0.3},     {2, 0.5, 2, 0.3},
      {3, 0.5, 3, 0.3},   {1, 0.5, 1, 0.1},   {1, 0.5, 1, 0.4},
      {0.5, 0.25, 0.5, 0.3}};
  return points;
}

class LibraEnvelope : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    if (!sums_.empty()) return;
    auto brain = tiny_brain();
    std::vector<RunRequest> batch;
    for (const LibraPoint& p : libra_points()) {
      LibraParams params = c_libra_params();
      params.exploration_rtts = p.exploration_rtts;
      params.ei_rtts = p.ei_rtts;
      params.exploitation_rtts = p.exploitation_rtts;
      params.switch_threshold = p.threshold;

      Scenario s = wired_scenario(24);
      s.duration = sec(15);
      batch.push_back(RunRequest::single(
          std::move(s),
          [brain, params] { return make_c_libra(brain, false, params); }, 5));
    }
    sums_ = run_many(batch);
  }

  static std::vector<RunSummary> sums_;
};

std::vector<RunSummary> LibraEnvelope::sums_;

TEST_P(LibraEnvelope, StaysLiveAndBounded) {
  const LibraPoint& p = libra_points()[GetParam()];
  SCOPED_TRACE("exploration=" + std::to_string(p.exploration_rtts) +
               " ei=" + std::to_string(p.ei_rtts) +
               " exploitation=" + std::to_string(p.exploitation_rtts) +
               " th=" + std::to_string(p.threshold));
  ASSERT_LT(GetParam(), sums_.size());
  EXPECT_GT(sums_[GetParam()].link_utilization, 0.4);
  EXPECT_LT(sums_[GetParam()].flows[0].loss_rate, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Envelope, LibraEnvelope,
                         ::testing::Range<std::size_t>(0, 7));

// --- Utility-preference monotonicity ----------------------------------------
class PreferenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PreferenceSweep, HigherAlphaNeverHurtsUtilityOfHigherRates) {
  // For any fixed network outcome pair (low rate clean vs high rate queued),
  // raising alpha must weakly favor the higher-rate outcome, raising beta the
  // lower-delay one — the algebra behind the Fig. 11 knob.
  int level = GetParam();
  UtilityParams th = throughput_oriented(level);
  UtilityParams la = latency_oriented(level);
  UtilityParams base;

  double low_u_base = utility(base, 45, 0.0, 0.0);
  double high_u_base = utility(base, 50, 0.05, 0.03);
  double low_u_th = utility(th, 45, 0.0, 0.0);
  double high_u_th = utility(th, 50, 0.05, 0.03);
  double low_u_la = utility(la, 45, 0.0, 0.0);
  double high_u_la = utility(la, 50, 0.05, 0.03);

  // Th scales the throughput term: the high-rate option gains more.
  EXPECT_GT(high_u_th - high_u_base, low_u_th - low_u_base);
  // La scales the gradient penalty: the high-rate (queued) option loses more.
  EXPECT_LT(high_u_la - high_u_base, low_u_la - low_u_base);
}

INSTANTIATE_TEST_SUITE_P(Levels, PreferenceSweep, ::testing::Values(1, 2));

}  // namespace
}  // namespace libra
