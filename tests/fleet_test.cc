// Fleet engine tests: flow planning determinism, heavy-tail churn sanity,
// the serial/sharded bitwise-identity guarantee (classic and learned CCAs),
// finite-flow completion, many-flow fairness smoke checks, and the streaming
// health layer (detector regressions on real runs + byte-identical reports
// across engine modes).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "classic/dctcp.h"
#include "classic/newreno.h"
#include "classic/vegas.h"
#include "core/factory.h"
#include "harness/fleet_scenario.h"
#include "harness/zoo.h"
#include "learned/libra_rl.h"
#include "obs/health.h"
#include "sim/fleet.h"

namespace libra {
namespace {

bool plans_equal(const std::vector<FleetFlowPlan>& a,
                 const std::vector<FleetFlowPlan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != b[i].start || a[i].stop != b[i].stop ||
        a[i].byte_budget != b[i].byte_budget ||
        a[i].enter_hop != b[i].enter_hop || a[i].exit_hop != b[i].exit_hop)
      return false;
  }
  return true;
}

TEST(FleetPlan, StaticPlanDrawsNothingFromTheSeed) {
  // Churn off => zero RNG draws, so the plan cannot depend on the seed and
  // adding the planner to a run cannot perturb any other seeded component.
  FleetSpec spec = incast_fleet(20);
  ASSERT_FALSE(spec.churn.enabled);
  EXPECT_TRUE(plans_equal(plan_fleet_flows(spec, 1), plan_fleet_flows(spec, 999)));
}

TEST(FleetPlan, StaticLayoutIsArithmetic) {
  FleetSpec spec = incast_fleet(5, 960.0, msec(10));
  auto plans = plan_fleet_flows(spec, 7);
  ASSERT_EQ(plans.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].start, i * msec(10));
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].enter_hop, 0);
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].byte_budget, -1);
  }
}

TEST(FleetPlan, ParkingLotSpansChainAndCrossTraffic) {
  FleetSpec spec = parking_lot_fleet(/*hops=*/3, /*cross_per_hop=*/2,
                                     /*long_flows=*/2);
  auto plans = plan_fleet_flows(spec, 1);
  ASSERT_EQ(plans.size(), 8u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].enter_hop, 0);
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].exit_hop, 2);
  }
  for (int i = 0; i < 6; ++i) {
    const auto& p = plans[static_cast<std::size_t>(2 + i)];
    EXPECT_EQ(p.enter_hop, i % 3);
    EXPECT_EQ(p.exit_hop, p.enter_hop);  // span = 1
  }
}

TEST(FleetPlan, ChurnIsDeterministicPerSeedAndVariesAcrossSeeds) {
  FleetSpec spec = incast_fleet(4);
  spec.churn.enabled = true;
  spec.churn.arrivals_per_sec = 50.0;
  spec.duration = sec(5);
  auto a = plan_fleet_flows(spec, 11);
  auto b = plan_fleet_flows(spec, 11);
  auto c = plan_fleet_flows(spec, 12);
  EXPECT_TRUE(plans_equal(a, b));
  EXPECT_FALSE(plans_equal(a, c));
  EXPECT_GT(a.size(), 4u) << "expected churn arrivals within 5 s at 50/s";
}

TEST(FleetPlan, ChurnSizesAreHeavyTailedWithinBounds) {
  FleetSpec spec = incast_fleet(0);
  spec.churn.enabled = true;
  spec.churn.arrivals_per_sec = 200.0;
  spec.churn.min_bytes = 10 * 1000;
  spec.churn.max_bytes = 5 * 1000 * 1000;
  spec.churn.pareto_alpha = 1.2;
  spec.duration = sec(10);
  auto plans = plan_fleet_flows(spec, 3);
  ASSERT_GT(plans.size(), 500u);
  std::int64_t over_4x = 0;
  for (const auto& p : plans) {
    ASSERT_GE(p.byte_budget, spec.churn.min_bytes);
    ASSERT_LE(p.byte_budget, spec.churn.max_bytes);
    ASSERT_GE(p.start, spec.churn.start);
    ASSERT_LT(p.start, spec.duration);
    if (p.byte_budget >= 4 * spec.churn.min_bytes) ++over_4x;
  }
  // Bounded Pareto with alpha=1.2: P(X >= 4*min) ~ 4^-1.2 ~ 19%. A light
  // tail (exponential-ish) would put nearly nothing out there.
  const double frac =
      static_cast<double>(over_4x) / static_cast<double>(plans.size());
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.40);
}

FleetSpec identity_spec() {
  // Multi-hop parking lot with cross traffic and churn: exercises every
  // cross-shard edge (sender->hop, hop->hop, hop->sender ACK) plus finite
  // flows arriving mid-run.
  FleetSpec spec = parking_lot_fleet(/*hops=*/3, /*cross_per_hop=*/3,
                                     /*long_flows=*/2, /*rate_mbps=*/48.0);
  spec.duration = sec(3);
  spec.warmup = sec(1);
  spec.churn.enabled = true;
  spec.churn.arrivals_per_sec = 10.0;
  spec.churn.min_bytes = 30 * 1000;
  spec.churn.max_bytes = 2 * 1000 * 1000;
  return spec;
}

std::unique_ptr<CongestionControl> mixed_classic(int flow) {
  switch (flow % 3) {
    case 0: return std::make_unique<Cubic>();
    case 1: return std::make_unique<NewReno>();
    default: return std::make_unique<Vegas>();
  }
}

TEST(FleetIdentity, ShardedMatchesSerialBitwiseForClassics) {
  const FleetSpec spec = identity_spec();
  FleetRunOptions serial;
  serial.mode = FleetMode::kSerial;
  const FleetSummary base = run_fleet(spec, mixed_classic, 42, serial);
  EXPECT_GT(base.total_throughput_bps, 0.0);
  for (std::size_t threads : {1u, 2u, 4u}) {
    FleetRunOptions sharded;
    sharded.mode = FleetMode::kSharded;
    sharded.threads = threads;
    const FleetSummary got = run_fleet(spec, mixed_classic, 42, sharded);
    EXPECT_TRUE(deterministically_equal(base, got))
        << "sharded run diverged at threads=" << threads;
  }
}

TEST(FleetIdentity, ShardedMatchesSerialWithSenderShards) {
  FleetSpec spec = identity_spec();
  spec.churn.enabled = false;
  spec.sender_shards = 2;
  FleetRunOptions serial;
  const FleetSummary base = run_fleet(spec, mixed_classic, 7, serial);
  FleetRunOptions sharded;
  sharded.mode = FleetMode::kSharded;
  sharded.threads = 4;
  const FleetSummary got = run_fleet(spec, mixed_classic, 7, sharded);
  EXPECT_TRUE(deterministically_equal(base, got));
}

TEST(FleetIdentity, ShardedMatchesSerialForLearnedCca) {
  // Frozen shared brain, greedy inference: the brain is read-only, so many
  // sharded flows may consult it concurrently; decisions must still be
  // bitwise identical to the serial engine.
  RlCcaConfig cfg = libra_rl_config();
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 3, {8, 8}),
                                         feature_frame_size(cfg.features));
  auto make_flow = [&](int flow) -> std::unique_ptr<CongestionControl> {
    if (flow % 2 == 0) return std::make_unique<Cubic>();
    RlCcaConfig c = cfg;
    c.training = false;
    c.stochastic_inference = false;
    return std::make_unique<RlCca>(c, brain);
  };
  FleetSpec spec = parking_lot_fleet(/*hops=*/2, /*cross_per_hop=*/2,
                                     /*long_flows=*/2, /*rate_mbps=*/24.0);
  spec.duration = sec(3);
  spec.warmup = sec(1);
  FleetRunOptions serial;
  const FleetSummary base = run_fleet(spec, make_flow, 5, serial);
  EXPECT_GT(base.total_throughput_bps, 0.0);
  FleetRunOptions sharded;
  sharded.mode = FleetMode::kSharded;
  sharded.threads = 3;
  const FleetSummary got = run_fleet(spec, make_flow, 5, sharded);
  EXPECT_TRUE(deterministically_equal(base, got));
}

TEST(FleetIdentity, BatchedPolicyEvalMatchesFleetFlowStates) {
  // The batched inference path the fleet's learned flows would fan through
  // must agree bitwise with per-state greedy evaluation on states drawn from
  // an actual fleet run.
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = false;
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 9, {8, 8}),
                                         feature_frame_size(cfg.features));
  const std::size_t dim = brain->agent.config().state_dim;
  const std::size_t frame = brain->normalizer.dim();
  // States seeded from fleet summaries so they are plausible magnitudes.
  FleetSpec spec = incast_fleet(8, 96.0);
  spec.duration = sec(2);
  spec.warmup = sec(1);
  const FleetSummary s =
      run_fleet(spec, [] { return std::make_unique<Cubic>(); }, 2);
  std::vector<Vector> states;
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    Vector v(dim, 0.0);
    for (std::size_t j = 0; j < dim; ++j) {
      v[j] = s.flows[i].throughput_bps / mbps(96) +
             0.01 * static_cast<double>(i + j);
    }
    states.push_back(std::move(v));
  }
  BatchedPolicyEval eval(brain, /*max_batch=*/3);
  Vector batched;
  eval.evaluate(states, batched);
  ASSERT_EQ(batched.size(), states.size());
  Vector scratch(frame);
  for (std::size_t i = 0; i < states.size(); ++i) {
    Vector normalized(dim);
    for (std::size_t off = 0; off < dim; off += frame) {
      std::copy(states[i].begin() + static_cast<std::ptrdiff_t>(off),
                states[i].begin() + static_cast<std::ptrdiff_t>(off + frame),
                scratch.begin());
      brain->normalizer.normalize_into(scratch,
                                       normalized.data() + off);
    }
    EXPECT_EQ(brain->agent.act_greedy(normalized), batched[i]) << "state " << i;
  }
}

TEST(FleetEngine, FiniteFlowsFinishAndReportCompletion) {
  FleetSpec spec = incast_fleet(0, 96.0);
  spec.duration = sec(5);
  spec.warmup = 0;
  std::vector<FleetFlowPlan> ignored = plan_fleet_flows(spec, 1);
  FleetNetwork net(fleet_links(spec), fleet_options(spec, 1, {}));
  FleetFlowDef def;
  def.cca = std::make_unique<Cubic>();
  def.byte_budget = 500 * 1000;  // ~5 ms at 96 Mbps; finishes long before 5 s
  net.add_flow(std::move(def));
  net.run();
  const FleetSummary s = net.summarize();
  ASSERT_EQ(s.flows.size(), 1u);
  EXPECT_TRUE(net.sender(0).finished());
  EXPECT_GT(s.flows[0].completion_s, 0.0);
  EXPECT_LT(s.flows[0].completion_s, 5.0);
  EXPECT_GE(net.sender(0).delivered_bytes() +
                net.sender(0).packets_lost() * net.sender(0).config().packet_bytes,
            500 * 1000);
  // Finished flows leave the tick scan: the SoA row must be inactive.
  EXPECT_FALSE(net.flow(0).active);
}

TEST(FleetEngine, RejectsCrossShardDelayBelowLookahead) {
  FleetSpec spec = parking_lot_fleet(2, 1);
  spec.hop_delay = 0;  // cross-shard edge with zero delay: no valid lookahead
  EXPECT_THROW(run_fleet(
                   spec, [] { return std::make_unique<Cubic>(); }, 1),
               std::invalid_argument);
}

TEST(FleetEngine, TelemetryRequiresSerialMode) {
  FleetSpec spec = incast_fleet(2);
  FleetOptions opts = fleet_options(spec, 1, {});
  opts.mode = FleetMode::kSharded;
  FleetNetwork net(fleet_links(spec), opts);
  EXPECT_THROW(net.enable_telemetry(TelemetryConfig{}), std::logic_error);
}

TEST(FleetFairness, HundredFlowIncastIsFairForEveryClassic) {
  // 100 synchronized long flows through one bottleneck: every classic CCA
  // must keep the fan-in roughly fair (Jain over window throughputs) and
  // every flow must make progress.
  struct Expectation {
    const char* name;
    double min_jain;
    int min_moved;
  };
  // Copa is covered by FleetHealthRegression.MinRttCorruptionFiresOnCopaOnly
  // instead: its 100-flow incast collapse is a documented pathology, and the
  // health detector pins down its signature (corrupted min_rtt baseline +
  // lockout) far more precisely than a loose fairness floor ever did.
  const Expectation kExpect[] = {
      {"cubic", 0.7, 100},   {"newreno", 0.7, 100}, {"vegas", 0.7, 100},
      {"westwood", 0.7, 100}, {"illinois", 0.7, 100}, {"compound", 0.7, 100},
      {"sprout", 0.6, 100},
  };
  CcaZoo zoo;  // classic factories only; no brains are trained here
  for (const Expectation& e : kExpect) {
    FleetSpec spec = incast_fleet(100, /*rate_mbps=*/480.0, msec(1));
    // ~1 BDP of shared buffer; the default 150 KB is ~6% of BDP here and
    // starves a tail of the fan-in under droptail.
    spec.buffer_bytes = 900 * 1000;
    spec.duration = sec(6);
    spec.warmup = sec(2);
    const FleetSummary s = run_fleet(spec, zoo.factory(e.name), 17);
    EXPECT_GT(s.jain_fairness, e.min_jain) << e.name;
    int moved = 0;
    for (const auto& f : s.flows)
      if (f.throughput_bps > 0) ++moved;
    EXPECT_GE(moved, e.min_moved) << e.name << ": flows starved of all bytes";
    EXPECT_GT(s.hop_utilization[0], 0.5) << e.name;
  }
}

TEST(FleetHealthRegression, MinRttCorruptionFiresOnSyntheticIncastCollapse) {
  // The documented (pre-fix) Copa 100-flow synchronized-incast collapse: the
  // startup storm never let the ~1 BDP droptail queue drain, late arrivals
  // folded the standing queue into their lifetime min_rtt, their queue
  // estimate dq = rtt_standing - min_rtt read near zero, and the 1/(delta*dq)
  // target rate locked them out. Copa no longer reproduces this organically
  // (its min-RTT baseline is windowed and it backs off under loss — see the
  // fair-share regression below), so the detector is driven from a synthetic
  // timeline replaying the recorded signature: 29 winners at the 1 ms path
  // floor, 71 flows whose baseline absorbed the full 29 ms standing queue
  // and whose goodput collapsed to ~0. The detector's threshold/lockout
  // gates themselves stay covered by health_test.cc.
  constexpr int kFlows = 100, kWindows = 60, kWinners = 29;
  FleetTimeline tl;
  tl.config = FleetStatsConfig{};  // 100 ms windows
  tl.duration = static_cast<SimDuration>(kWindows) * tl.config.window;
  tl.n_windows = kWindows;
  tl.metas.assign(kFlows, FleetFlowMeta{});
  tl.rows.assign(static_cast<std::size_t>(kFlows * kWindows), FlowWindowRow{});
  for (int f = 0; f < kFlows; ++f) {
    const bool winner = f < kWinners;
    tl.metas[static_cast<std::size_t>(f)].min_rtt_us = winner ? 1'000 : 29'000;
    for (int w = 0; w < kWindows; ++w) {
      FlowWindowRow& row =
          tl.rows[static_cast<std::size_t>(f * kWindows + w)];
      // Winners split the link; losers trickle ~0.1% of a fair share.
      row.acked_bytes = winner ? 200'000 : 60;
      row.sent = winner ? 150 : 3;
      row.lost = winner ? 10 : 2;
      row.rtt_samples = winner ? 100 : 1;
      row.rtt_sum_us = row.rtt_samples * 29'000;
      row.rtt_min_us = winner ? 1'000 : 29'000;
      row.rtt_p95_us = 29'000;
    }
  }
  const HealthReport r = analyze_health(tl);
  EXPECT_EQ(r.count(IncidentKind::kMinRttCorruption), kFlows - kWinners)
      << "every locked-out flow with a corrupted baseline is an incident";
  for (const Incident& inc : r.incidents) {
    if (inc.kind != IncidentKind::kMinRttCorruption) continue;
    EXPECT_GE(inc.flow, kWinners) << "winners at the path floor must not fire";
  }
}

TEST(FleetHealthRegression, CopaHoldsFairShareOnTheIncastThatLockedItOut) {
  // Regression for the fix itself: the exact 100-flow synchronized incast
  // (480 Mbps, ~1 BDP shared droptail, seed 17) that used to lock 71 Copa
  // flows out at <1% of fair share. With the windowed min-RTT baseline and
  // the once-per-window loss backoff, every flow must now hold at least half
  // its fair share, and the min_rtt_corruption detector must stay silent for
  // Copa — as it always did for a loss-based (CUBIC) and a model-based (BBR)
  // CCA in the same deep buffer.
  CcaZoo zoo;
  for (const char* name : {"copa", "cubic", "bbr"}) {
    FleetSpec spec = incast_fleet(100, /*rate_mbps=*/480.0, msec(1));
    spec.buffer_bytes = 900 * 1000;  // ~1 BDP shared droptail
    spec.duration = sec(6);
    spec.warmup = sec(2);
    FleetRunOptions run;
    run.health = true;
    FleetObsResult obs;
    const FleetSummary s = run_fleet(spec, zoo.factory(name), 17, run, &obs);
    EXPECT_EQ(obs.health.count(IncidentKind::kMinRttCorruption), 0)
        << name << ": corrupted-baseline lockout on a CCA that keeps its share";
    if (std::string(name) != "copa") continue;
    const double fair = s.total_throughput_bps / 100.0;
    double worst = s.flows[0].throughput_bps;
    for (const auto& f : s.flows) worst = std::min(worst, f.throughput_bps);
    EXPECT_GE(worst, 0.5 * fair)
        << "a Copa flow fell below half its fair share (pre-fix: <1%)";
  }
}

TEST(FleetDatacenter, DctcpHoldsQueueBelowDroptailAtEqualGoodput) {
  // The DCTCP promise (Alizadeh et al., SIGCOMM 2010): with a shallow marking
  // threshold the switch queue stays near K while goodput matches what a
  // loss-driven CCA extracts from the same deep-buffered incast.
  const std::int64_t kBuffer = 2 * 1000 * 1000;  // deep: droptail fills it
  auto run = [kBuffer](std::int64_t ecn_bytes, auto make_cca,
                       std::int64_t* max_queue) {
    FleetSpec spec = incast_fleet(100, /*rate_mbps=*/960.0, msec(1));
    spec.duration = sec(2);
    spec.warmup = msec(500);
    spec.buffer_bytes = kBuffer;
    spec.ecn_threshold_bytes = ecn_bytes;
    std::vector<FleetFlowPlan> plans = plan_fleet_flows(spec, 11);
    FleetNetwork net(fleet_links(spec), fleet_options(spec, 11, {}));
    for (const FleetFlowPlan& p : plans) {
      FleetFlowDef def;
      def.cca = make_cca();
      def.start = p.start;
      def.enter_hop = p.enter_hop;
      def.exit_hop = p.exit_hop;
      net.add_flow(std::move(def));
    }
    net.run();
    *max_queue = net.hop(0).max_queue_bytes();
    return net.summarize();
  };
  std::int64_t dctcp_queue = 0;
  std::int64_t droptail_queue = 0;
  const FleetSummary dctcp =
      run(45 * 1000, [] { return std::make_unique<Dctcp>(); }, &dctcp_queue);
  const FleetSummary droptail =
      run(0, [] { return std::make_unique<Cubic>(); }, &droptail_queue);
  // Equal goodput: the marks must not cost throughput.
  EXPECT_GE(dctcp.total_throughput_bps, 0.9 * droptail.total_throughput_bps);
  // ... while the post-warmup queueing delay stays well below what CUBIC
  // builds (measured: ~14 ms vs ~29 ms on 10 ms of propagation). The lifetime
  // high-water mark only gets a strict bound: the synchronized slow-start
  // storm overshoots before the first CE echoes arrive, so the transient —
  // not the standing queue — dominates it for both CCAs, and CUBIC's is
  // pinned at the full buffer.
  EXPECT_LT(dctcp.avg_delay_ms, 0.6 * droptail.avg_delay_ms);
  EXPECT_LT(dctcp_queue, droptail_queue);
  EXPECT_GT(droptail_queue, kBuffer * 9 / 10)
      << "baseline did not fill the buffer; the comparison is vacuous";
}

TEST(FleetIdentity, ShardedMatchesSerialForDctcpEcnIncast) {
  // The CE mark is decided at the hop's owning shard and rides the delivered
  // packet back through the ACK edge: a new cross-shard signal path that must
  // not perturb bitwise identity.
  FleetSpec spec = incast_fleet(24, /*rate_mbps=*/240.0, msec(1));
  spec.duration = sec(2);
  spec.warmup = msec(500);
  spec.ecn_threshold_bytes = 45 * 1000;
  auto dctcp = [](int) -> std::unique_ptr<CongestionControl> {
    return std::make_unique<Dctcp>();
  };
  FleetRunOptions serial;
  const FleetSummary base = run_fleet(spec, dctcp, 42, serial);
  EXPECT_GT(base.total_throughput_bps, 0.0);
  for (std::size_t threads : {1u, 2u, 4u}) {
    FleetRunOptions sharded;
    sharded.mode = FleetMode::kSharded;
    sharded.threads = threads;
    const FleetSummary got = run_fleet(spec, dctcp, 42, sharded);
    EXPECT_TRUE(deterministically_equal(base, got))
        << "DCTCP/ECN incast diverged at threads=" << threads;
  }
}

TEST(FleetIdentity, ShardedMatchesSerialForPolicedParkingLot) {
  // Token-bucket state lives on the hop's owning shard; the active window
  // opening and closing mid-run must tick identically in both engines.
  FleetSpec spec = identity_spec();
  spec.policer_rate_mbps = 12.0;
  spec.policer_burst_bytes = 30 * 1000;
  spec.policer_start = msec(500);
  spec.policer_stop = sec(2);
  auto mixed = [](int flow) -> std::unique_ptr<CongestionControl> {
    if (flow % 2 == 0) return std::make_unique<Bbr>();
    return std::make_unique<Cubic>();
  };
  FleetRunOptions serial;
  const FleetSummary base = run_fleet(spec, mixed, 42, serial);
  EXPECT_GT(base.total_throughput_bps, 0.0);
  for (std::size_t threads : {1u, 2u, 4u}) {
    FleetRunOptions sharded;
    sharded.mode = FleetMode::kSharded;
    sharded.threads = threads;
    const FleetSummary got = run_fleet(spec, mixed, 42, sharded);
    EXPECT_TRUE(deterministically_equal(base, got))
        << "policed parking lot diverged at threads=" << threads;
  }
}

TEST(FleetIdentity, ShardedMatchesSerialForMarkingPolicer) {
  // Marking (not dropping) policer: CE set at ingress instead of a drop, with
  // ECN-capable senders throughout.
  FleetSpec spec = identity_spec();
  spec.policer_rate_mbps = 12.0;
  spec.policer_marks = true;
  auto mixed = [](int flow) -> std::unique_ptr<CongestionControl> {
    if (flow % 2 == 0) return std::make_unique<Dctcp>();
    return std::make_unique<Cubic>();
  };
  FleetRunOptions serial;
  const FleetSummary base = run_fleet(spec, mixed, 42, serial);
  EXPECT_GT(base.total_throughput_bps, 0.0);
  for (std::size_t threads : {1u, 2u, 4u}) {
    FleetRunOptions sharded;
    sharded.mode = FleetMode::kSharded;
    sharded.threads = threads;
    const FleetSummary got = run_fleet(spec, mixed, 42, sharded);
    EXPECT_TRUE(deterministically_equal(base, got))
        << "marking policer diverged at threads=" << threads;
  }
}

TEST(FleetHealthIdentity, ReportIsByteIdenticalSerialVsShardedForClassics) {
  const FleetSpec spec = identity_spec();
  FleetRunOptions serial;
  serial.health = true;
  FleetObsResult base;
  run_fleet(spec, mixed_classic, 42, serial, &base);
  ASSERT_FALSE(base.health.fleet.empty());
  const std::string base_json = health_report_json(base.health);
  for (std::size_t threads : {1u, 2u, 4u}) {
    FleetRunOptions sharded;
    sharded.mode = FleetMode::kSharded;
    sharded.threads = threads;
    sharded.health = true;
    FleetObsResult got;
    run_fleet(spec, mixed_classic, 42, sharded, &got);
    EXPECT_EQ(health_report_json(got.health), base_json)
        << "health report diverged at threads=" << threads;
    EXPECT_EQ(got.shard_events, base.shard_events)
        << "per-shard event attribution diverged at threads=" << threads;
  }
}

TEST(FleetHealthIdentity, ReportIsByteIdenticalSerialVsShardedForLearnedCca) {
  RlCcaConfig cfg = libra_rl_config();
  auto brain = std::make_shared<RlBrain>(make_ppo_config(cfg, 3, {8, 8}),
                                         feature_frame_size(cfg.features));
  auto make_flow = [&](int flow) -> std::unique_ptr<CongestionControl> {
    if (flow % 2 == 0) return std::make_unique<Cubic>();
    RlCcaConfig c = cfg;
    c.training = false;
    c.stochastic_inference = false;
    return std::make_unique<RlCca>(c, brain);
  };
  FleetSpec spec = parking_lot_fleet(/*hops=*/2, /*cross_per_hop=*/2,
                                     /*long_flows=*/2, /*rate_mbps=*/24.0);
  spec.duration = sec(3);
  spec.warmup = sec(1);
  FleetRunOptions serial;
  serial.health = true;
  FleetObsResult base;
  run_fleet(spec, make_flow, 5, serial, &base);
  FleetRunOptions sharded;
  sharded.mode = FleetMode::kSharded;
  sharded.threads = 3;
  sharded.health = true;
  FleetObsResult got;
  run_fleet(spec, make_flow, 5, sharded, &got);
  EXPECT_EQ(health_report_json(got.health), health_report_json(base.health));
}

TEST(FleetEngine, BlackBoxRecorderOverwritesPastTheCap) {
  FleetSpec spec = incast_fleet(8, 96.0);
  spec.duration = sec(2);
  FleetRunOptions run;
  run.record_capacity = 1024;
  FleetObsResult obs;
  run_fleet(
      spec, [] { return std::make_unique<Cubic>(); }, 3, run, &obs);
  // Bounded memory: the ring holds at most the cap, older events were
  // overwritten, and the totals reconcile exactly.
  EXPECT_LE(obs.trace_buffered, 1024u);
  EXPECT_GT(obs.trace_overwritten, 0u);
  EXPECT_EQ(obs.trace_recorded, obs.trace_buffered + obs.trace_overwritten);
}

TEST(FleetEngine, RecordingRequiresSerialMode) {
  FleetSpec spec = incast_fleet(2);
  FleetOptions opts = fleet_options(spec, 1, {});
  opts.mode = FleetMode::kSharded;
  FleetNetwork net(fleet_links(spec), opts);
  EXPECT_THROW(net.enable_recording(1024), std::logic_error);
}

}  // namespace
}  // namespace libra
