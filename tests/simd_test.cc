// Scalar-vs-AVX2 kernel equivalence, the determinism contract from rl/simd.h,
// and the LIBRA_SIMD dispatch overrides.
//
// Structure mirrors the contract classes in rl/matrix_simd.h:
//  - dot-contract and axpy-order kernels match scalar within a ULP-style
//    bound scaled by the magnitude sum of the contracted terms (FMA's single
//    rounding and the lane-tree reduction are the only differences);
//  - exact kernels (row broadcast, column sums, normalize_into, tanh
//    backprop) match scalar bitwise;
//  - the AVX2 path is bitwise stable run-to-run, flat == blocked at odd tile
//    sizes, and batched == per-sample at odd widths;
//  - vectorized tanh tracks std::tanh to ~1e-15 and handles ±0/±inf/NaN and
//    saturation, with position-independent remainder lanes.
//
// Every AVX2-dependent case GTEST_SKIPs on hosts without AVX2+FMA, so the
// suite stays green on any x86-64 or non-x86 runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "rl/adam.h"
#include "rl/matrix.h"
#include "rl/matrix_simd.h"
#include "rl/mlp.h"
#include "rl/normalizer.h"
#include "rl/simd.h"
#include "util/rng.h"

namespace libra {
namespace {

/// Forces an ISA for the scope and restores the previous decision on exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) : prev_(simd::active()) { simd::force(isa); }
  ~ScopedIsa() { simd::force(prev_); }

 private:
  simd::Isa prev_;
};

bool have_avx2() { return simd::avx2_supported(); }

void fill_uniform(Vector& v, Rng& rng, double lo = -1.0, double hi = 1.0) {
  for (double& x : v) x = rng.uniform(lo, hi);
}

void fill_uniform(Matrix& m, Rng& rng, double lo = -1.0, double hi = 1.0) {
  fill_uniform(m.data(), rng, lo, hi);
}

/// Error budget for a reordered/contracted sum: a few epsilons of the
/// magnitude sum of the contracted terms (the classic forward-error bound for
/// two different summation orders), plus an absolute floor for results near 0.
double contraction_tolerance(double magnitude_sum) {
  return 32.0 * std::numeric_limits<double>::epsilon() * magnitude_sum + 1e-300;
}

/// Scalar gemm_transB reference with a per-element magnitude sum, used to
/// bound the AVX2 kernel's reordered accumulation.
void reference_transB(const Matrix& a, const Matrix& b, Matrix& c,
                      Matrix& mags, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? c(i, j) : 0.0;
      double mag = std::abs(acc);
      for (std::size_t p = 0; p < k; ++p) {
        acc += a(i, p) * b(j, p);
        mag += std::abs(a(i, p) * b(j, p));
      }
      c(i, j) = acc;
      mags(i, j) = mag;
    }
  }
}

// --- Dispatch ---------------------------------------------------------------

TEST(SimdDispatch, EnvValueMapping) {
  const simd::Isa best = have_avx2() ? simd::Isa::kAvx2 : simd::Isa::kScalar;
  EXPECT_EQ(simd::isa_from_env_value(nullptr), best);
  EXPECT_EQ(simd::isa_from_env_value(""), best);
  EXPECT_EQ(simd::isa_from_env_value("auto"), best);
  EXPECT_EQ(simd::isa_from_env_value("on"), best);
  EXPECT_EQ(simd::isa_from_env_value("1"), best);
  EXPECT_EQ(simd::isa_from_env_value("off"), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_from_env_value("scalar"), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_from_env_value("0"), simd::Isa::kScalar);
  // "avx2" is a request, capped by what the host supports.
  EXPECT_EQ(simd::isa_from_env_value("avx2"), best);
}

TEST(SimdDispatch, EnvOverrideReinstallsDecision) {
  const simd::Isa before = simd::active();
  ASSERT_EQ(setenv("LIBRA_SIMD", "off", 1), 0);
  EXPECT_EQ(simd::init_from_env(), simd::Isa::kScalar);
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  EXPECT_FALSE(simd::use_avx2());
  ASSERT_EQ(unsetenv("LIBRA_SIMD"), 0);
  const simd::Isa redetected = simd::init_from_env();
  EXPECT_EQ(redetected, have_avx2() ? simd::Isa::kAvx2 : simd::Isa::kScalar);
  simd::force(before);
}

TEST(SimdDispatch, ForceCapsAtHostSupport) {
  const simd::Isa before = simd::active();
  const simd::Isa got = simd::force(simd::Isa::kAvx2);
  EXPECT_EQ(got, have_avx2() ? simd::Isa::kAvx2 : simd::Isa::kScalar);
  EXPECT_EQ(simd::force(simd::Isa::kScalar), simd::Isa::kScalar);
  simd::force(before);
}

TEST(SimdDispatch, IsaNames) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
}

// --- Dot-contract kernels ---------------------------------------------------

TEST(SimdKernels, GemmTransBMatchesScalarWithinUlps) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(101);
  // Shapes straddle every remainder case: k % 8 in 0..7, odd n/m edges.
  const std::size_t ms[] = {1, 2, 3, 5};
  const std::size_t ks[] = {1, 3, 7, 8, 9, 16, 23, 64};
  const std::size_t ns[] = {1, 2, 3, 4, 5, 17};
  for (std::size_t m : ms)
    for (std::size_t k : ks)
      for (std::size_t n : ns)
        for (bool accumulate : {false, true}) {
          Matrix a(m, k), b(n, k), c0(m, n), c1(m, n), ref(m, n), mags(m, n);
          fill_uniform(a, rng);
          fill_uniform(b, rng);
          fill_uniform(c0, rng);
          c1.data() = c0.data();
          ref.data() = c0.data();
          reference_transB(a, b, ref, mags, accumulate);
          {
            ScopedIsa scalar(simd::Isa::kScalar);
            gemm_transB(a, b, c0, accumulate);
          }
          {
            ScopedIsa avx2(simd::Isa::kAvx2);
            gemm_transB(a, b, c1, accumulate);
          }
          for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j) {
              const double tol = contraction_tolerance(mags(i, j));
              EXPECT_NEAR(c0(i, j), ref(i, j), tol)
                  << "scalar vs naive at (" << i << "," << j << ") m=" << m
                  << " k=" << k << " n=" << n;
              EXPECT_NEAR(c1(i, j), ref(i, j), tol)
                  << "avx2 vs naive at (" << i << "," << j << ") m=" << m
                  << " k=" << k << " n=" << n;
            }
        }
}

TEST(SimdKernels, MatvecMatchesBatchedRowBitwise) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  ScopedIsa avx2(simd::Isa::kAvx2);
  Rng rng(7);
  for (std::size_t rows : {1u, 3u, 17u})
    for (std::size_t cols : {1u, 5u, 8u, 13u, 64u}) {
      Matrix w(rows, cols);
      fill_uniform(w, rng);
      Vector x(cols);
      fill_uniform(x, rng);
      // Per-sample inference (matvec) against the same row pushed through the
      // batched gemm_transB path: the shared dot contract makes them equal.
      Vector y;
      w.multiply_into(x, y);
      Matrix xb(1, cols), yb(1, rows);
      xb.data() = x;
      gemm_transB(xb, w, yb, false);
      for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(y[r], yb(0, r));
    }
}

TEST(SimdKernels, BlockedMatchesFlatBitwiseAtOddTiles) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  ScopedIsa avx2(simd::Isa::kAvx2);
  Rng rng(13);
  Matrix a(5, 37), b(29, 37), flat(5, 29), blocked(5, 29);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  fill_uniform(flat, rng);
  blocked.data() = flat.data();
  gemm_transB(a, b, flat, true);
  // Odd jb/kb tiles; kb is ignored on the AVX2 path by contract.
  gemm_transB_blocked(a, b, blocked, true, /*jb=*/5, /*kb=*/3);
  EXPECT_EQ(flat.data(), blocked.data());
}

TEST(SimdKernels, Avx2PathIsBitwiseStableRunToRun) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  ScopedIsa avx2(simd::Isa::kAvx2);
  Rng rng(29);
  Matrix a(4, 19), b(11, 19), c1(4, 11), c2(4, 11);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  gemm_transB(a, b, c1, false);
  gemm_transB(a, b, c2, false);
  EXPECT_EQ(c1.data(), c2.data());
  Vector x(19), y1, y2;
  fill_uniform(x, rng);
  Matrix w(7, 19);
  fill_uniform(w, rng);
  w.multiply_into(x, y1);
  w.multiply_into(x, y2);
  EXPECT_EQ(y1, y2);
}

// --- Axpy-order kernels -----------------------------------------------------

TEST(SimdKernels, GemmMatchesScalarWithinUlps) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(211);
  for (std::size_t m : {1u, 2u, 5u})
    for (std::size_t k : {1u, 3u, 9u, 32u})
      for (std::size_t n : {1u, 3u, 4u, 7u, 19u})
        for (bool accumulate : {false, true}) {
          Matrix a(m, k), b(k, n), c0(m, n), c1(m, n);
          fill_uniform(a, rng);
          fill_uniform(b, rng);
          fill_uniform(c0, rng);
          c1.data() = c0.data();
          // Magnitude bound per output: sum over p of |a(i,p) * b(p,j)|.
          Matrix mags(m, n);
          for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j) {
              double mag = accumulate ? std::abs(c0(i, j)) : 0.0;
              for (std::size_t p = 0; p < k; ++p)
                mag += std::abs(a(i, p) * b(p, j));
              mags(i, j) = mag;
            }
          {
            ScopedIsa scalar(simd::Isa::kScalar);
            gemm(a, b, c0, accumulate);
          }
          {
            ScopedIsa avx2(simd::Isa::kAvx2);
            gemm(a, b, c1, accumulate);
          }
          for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j)
              EXPECT_NEAR(c0(i, j), c1(i, j), contraction_tolerance(mags(i, j)))
                  << "(" << i << "," << j << ") m=" << m << " k=" << k
                  << " n=" << n << " acc=" << accumulate;
        }
}

TEST(SimdKernels, GemmTransAMatchesScalarWithinUlps) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(223);
  for (std::size_t k : {1u, 2u, 9u, 17u})
    for (std::size_t m : {1u, 3u, 8u})
      for (std::size_t n : {1u, 5u, 12u}) {
        Matrix a(k, m), b(k, n), c0(m, n), c1(m, n);
        fill_uniform(a, rng);
        fill_uniform(b, rng);
        {
          ScopedIsa scalar(simd::Isa::kScalar);
          gemm_transA(a, b, c0, false);
        }
        {
          ScopedIsa avx2(simd::Isa::kAvx2);
          gemm_transA(a, b, c1, false);
        }
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            double mag = 0;
            for (std::size_t p = 0; p < k; ++p)
              mag += std::abs(a(p, i) * b(p, j));
            EXPECT_NEAR(c0(i, j), c1(i, j), contraction_tolerance(mag))
                << "(" << i << "," << j << ") k=" << k << " m=" << m
                << " n=" << n;
          }
      }
}

TEST(SimdKernels, AxpyMatchesScalarWithinUlps) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(31);
  for (std::size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 100u}) {
    Vector x(n), y0(n), y1(n);
    fill_uniform(x, rng);
    fill_uniform(y0, rng);
    y1 = y0;
    const double a = rng.uniform(-2.0, 2.0);
    {
      ScopedIsa scalar(simd::Isa::kScalar);
      axpy(y0, x, a);
    }
    {
      ScopedIsa avx2(simd::Isa::kAvx2);
      axpy(y1, x, a);
    }
    // One FMA contraction per element: at most one rounding of difference.
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(y0[i], y1[i],
                  contraction_tolerance(std::abs(y0[i]) + std::abs(a * x[i])))
          << "i=" << i << " n=" << n;
  }
}

TEST(SimdKernels, AdamSpanMatchesScalarWithinUlps) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(41);
  for (std::size_t n : {1u, 2u, 5u, 8u, 13u, 67u}) {
    // Two identical nets stepped once each on the same gradients, one per ISA.
    Rng init(5);
    Mlp net0({n, 3}, init);
    Rng init2(5);
    Mlp net1({n, 3}, init2);
    for (Mlp::Layer& l : net0.layers()) {
      fill_uniform(l.grad_weights, rng);
      fill_uniform(l.grad_bias, rng);
    }
    for (std::size_t li = 0; li < net0.layers().size(); ++li) {
      net1.layers()[li].grad_weights.data() =
          net0.layers()[li].grad_weights.data();
      net1.layers()[li].grad_bias = net0.layers()[li].grad_bias;
    }
    AdamOptimizer opt0(net0), opt1(net1);
    {
      ScopedIsa scalar(simd::Isa::kScalar);
      opt0.step(0.5);
    }
    {
      ScopedIsa avx2(simd::Isa::kAvx2);
      opt1.step(0.5);
    }
    for (std::size_t li = 0; li < net0.layers().size(); ++li) {
      const Vector& w0 = net0.layers()[li].weights.data();
      const Vector& w1 = net1.layers()[li].weights.data();
      for (std::size_t i = 0; i < w0.size(); ++i)
        EXPECT_NEAR(w0[i], w1[i], 1e-12) << "layer " << li << " w[" << i << "]";
    }
  }
}

// --- Exact kernels ----------------------------------------------------------

TEST(SimdKernels, RowBroadcastAndColSumsBitwiseIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(53);
  for (std::size_t rows : {1u, 2u, 7u})
    for (std::size_t cols : {1u, 3u, 4u, 5u, 8u, 11u}) {
      Matrix m0(rows, cols), m1(rows, cols);
      Vector row(cols), sums0(cols), sums1(cols);
      fill_uniform(m0, rng);
      m1.data() = m0.data();
      fill_uniform(row, rng);
      fill_uniform(sums0, rng);
      sums1 = sums0;
      {
        ScopedIsa scalar(simd::Isa::kScalar);
        add_row_broadcast(m0, row);
        add_col_sums(m0, sums0);
      }
      {
        ScopedIsa avx2(simd::Isa::kAvx2);
        add_row_broadcast(m1, row);
        add_col_sums(m1, sums1);
      }
      EXPECT_EQ(m0.data(), m1.data()) << rows << "x" << cols;
      EXPECT_EQ(sums0, sums1) << rows << "x" << cols;
    }
}

TEST(SimdKernels, NormalizeIntoBitwiseIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(61);
  for (std::size_t dim : {1u, 3u, 4u, 5u, 9u, 16u})
    for (int updates : {0, 1, 5}) {
      RunningNormalizer norm(dim);
      Vector sample(dim);
      for (int u = 0; u < updates; ++u) {
        fill_uniform(sample, rng, -3.0, 3.0);
        norm.update(sample);
      }
      fill_uniform(sample, rng, -50.0, 50.0);  // exercise the clip
      Vector out0(dim), out1(dim);
      {
        ScopedIsa scalar(simd::Isa::kScalar);
        norm.normalize_into(sample, out0.data(), 10.0);
      }
      {
        ScopedIsa avx2(simd::Isa::kAvx2);
        norm.normalize_into(sample, out1.data(), 10.0);
      }
      EXPECT_EQ(out0, out1) << "dim=" << dim << " updates=" << updates;
    }
}

TEST(SimdKernels, TanhBackpropBitwiseIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(71);
  for (std::size_t n : {1u, 3u, 4u, 5u, 8u, 13u}) {
    Vector g0(n), act(n);
    fill_uniform(g0, rng);
    fill_uniform(act, rng, -0.99, 0.99);
    Vector g1 = g0;
    for (std::size_t j = 0; j < n; ++j) g0[j] *= 1.0 - act[j] * act[j];
    simd::tanh_backprop_avx2(g1.data(), act.data(), n);
    EXPECT_EQ(g0, g1) << "n=" << n;
  }
}

// --- Vector tanh ------------------------------------------------------------

TEST(SimdKernels, TanhTracksStdTanh) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  std::vector<double> xs;
  for (double x = -30.0; x <= 30.0; x += 0.0137) xs.push_back(x);
  std::vector<double> got = xs;
  simd::tanh_inplace_avx2(got.data(), got.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(got[i], std::tanh(xs[i]), 1e-14) << "x=" << xs[i];
}

TEST(SimdKernels, TanhSpecialValues) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs = {0.0, -0.0, inf, -inf, nan, 22.0, -22.0, 700.0, -700.0};
  std::vector<double> got = xs;
  simd::tanh_inplace_avx2(got.data(), got.size());
  EXPECT_EQ(got[0], 0.0);
  EXPECT_FALSE(std::signbit(got[0]));
  EXPECT_EQ(got[1], 0.0);
  EXPECT_TRUE(std::signbit(got[1]));
  EXPECT_EQ(got[2], 1.0);
  EXPECT_EQ(got[3], -1.0);
  EXPECT_TRUE(std::isnan(got[4]));
  EXPECT_EQ(got[5], 1.0);   // saturation: |x| >= 22 is exactly ±1
  EXPECT_EQ(got[6], -1.0);
  EXPECT_EQ(got[7], 1.0);
  EXPECT_EQ(got[8], -1.0);
}

TEST(SimdKernels, TanhRemainderLanesArePositionIndependent) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  // The same value must produce the same bits whether it lands in a full
  // vector or in the padded tail, at any offset.
  const double probe = 0.73125;
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u, 9u}) {
    for (std::size_t pos = 0; pos < n; ++pos) {
      std::vector<double> buf(n, 0.1);
      buf[pos] = probe;
      simd::tanh_inplace_avx2(buf.data(), n);
      std::vector<double> full(8, probe);
      simd::tanh_inplace_avx2(full.data(), 8);
      EXPECT_EQ(buf[pos], full[0]) << "n=" << n << " pos=" << pos;
    }
  }
}

// --- Batched vs per-sample --------------------------------------------------

TEST(SimdKernels, ForwardBatchMatchesPerSampleAtOddWidths) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  ScopedIsa avx2(simd::Isa::kAvx2);
  Rng init(3);
  Mlp net({9, 13, 11, 1}, init);  // odd widths: every tail path in play
  constexpr std::size_t kBatch = 5;
  MlpWorkspace ws;
  ws.configure(net, kBatch);
  ws.set_batch(kBatch);
  Rng rng(17);
  fill_uniform(ws.input(), rng);
  net.forward_batch(ws);
  Vector x(9), y;
  for (std::size_t r = 0; r < kBatch; ++r) {
    for (std::size_t c = 0; c < 9; ++c) x[c] = ws.input()(r, c);
    net.evaluate_into(x, y);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_EQ(ws.output()(r, 0), y[0]) << "row " << r;
  }
}

// --- Least-squares slope ----------------------------------------------------

TEST(SimdKernels, LsSlopeMatchesScalarReference) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Rng rng(83);
  for (std::size_t n : {2u, 3u, 4u, 5u, 8u, 9u, 100u}) {
    std::vector<double> pairs(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      pairs[2 * i] = 0.01 * static_cast<double>(i) + rng.uniform(0.0, 0.001);
      pairs[2 * i + 1] = rng.uniform(0.02, 0.08);
    }
    double mt = 0, mr = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mt += pairs[2 * i];
      mr += pairs[2 * i + 1];
    }
    mt /= static_cast<double>(n);
    mr /= static_cast<double>(n);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i) {
      num += (pairs[2 * i] - mt) * (pairs[2 * i + 1] - mr);
      den += (pairs[2 * i] - mt) * (pairs[2 * i] - mt);
    }
    const double ref = den > 1e-12 ? num / den : 0.0;
    const double got = simd::ls_slope_avx2(pairs.data(), n);
    if (ref == 0.0) {
      EXPECT_EQ(got, 0.0) << "n=" << n;
    } else {
      EXPECT_NEAR(got, ref, 1e-6 * std::abs(ref) + 1e-12) << "n=" << n;
    }
    // Run-to-run stability of the vector path.
    EXPECT_EQ(got, simd::ls_slope_avx2(pairs.data(), n)) << "n=" << n;
  }
}

TEST(SimdKernels, LsSlopeDegenerateSpreadReturnsZero) {
  if (!have_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  // All timestamps identical: den underflows the 1e-12 guard.
  std::vector<double> pairs = {1.0, 0.5, 1.0, 0.7, 1.0, 0.6};
  EXPECT_EQ(simd::ls_slope_avx2(pairs.data(), 3), 0.0);
}

}  // namespace
}  // namespace libra
