// Tests for the CoDel AQM queue and the Compound TCP combined baseline.
#include <gtest/gtest.h>

#include "classic/compound.h"
#include "classic/cubic.h"
#include "sim/codel_network.h"
#include "sim/network.h"

namespace libra {
namespace {

constexpr std::int64_t kMss = kDefaultPacketBytes;

CodelConfig codel_link(RateBps rate = mbps(24)) {
  CodelConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(rate);
  cfg.buffer_bytes = 1'000'000;
  cfg.propagation_delay = msec(15);
  return cfg;
}

TEST(Codel, DeliversBelowTarget) {
  // A paced trickle well under capacity never builds a standing queue; CoDel
  // must not drop anything.
  EventQueue q;
  CodelQueue link(q, codel_link(mbps(24)));
  int delivered = 0, dropped = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  link.set_drop([&](const Packet&) { ++dropped; });
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    q.run_until(msec(10) * i);
    link.send(p);
  }
  q.run_until(sec(5));
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(dropped, 0);
  EXPECT_EQ(link.codel_drops(), 0);
}

TEST(Codel, DropsWhenSojournPersistsAboveTarget) {
  // Saturate a slow queue: the standing sojourn exceeds the 5 ms target and
  // CoDel must start shedding.
  EventQueue q;
  CodelQueue link(q, codel_link(mbps(2)));
  int dropped = 0;
  link.set_drop([&](const Packet&) { ++dropped; });
  link.set_deliver([](const Packet&) {});
  for (int i = 0; i < 400; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    q.run_until(msec(2) * i);  // 6 Mbps offered into a 2 Mbps queue
    link.send(p);
  }
  q.run_until(sec(10));
  EXPECT_GT(link.codel_drops(), 0);
}

TEST(Codel, KeepsCubicDelayLow) {
  // The Sec. 2 claim: CUBIC + CoDel achieves low queueing delay (at the cost
  // of in-network support). Compare against droptail with a deep buffer.
  CodelNetwork codel(codel_link(mbps(24)));
  codel.add_flow(std::make_unique<Cubic>());
  codel.run_until(sec(15));
  double codel_delay = codel.flow(0).mean_rtt_in(sec(5), sec(15));

  LinkConfig deep;
  deep.capacity = std::make_shared<ConstantTrace>(mbps(24));
  deep.buffer_bytes = 1'000'000;
  deep.propagation_delay = msec(15);
  Network droptail(std::move(deep));
  droptail.add_flow(std::make_unique<Cubic>());
  droptail.run_until(sec(15));
  double droptail_delay = droptail.flow(0).mean_rtt_in(sec(5), sec(15));

  EXPECT_LT(codel_delay, droptail_delay * 0.5);
  EXPECT_LT(codel_delay, 60.0);
}

TEST(Codel, SustainsThroughputWhileDropping) {
  CodelNetwork net(codel_link(mbps(24)));
  net.add_flow(std::make_unique<Cubic>());
  net.run_until(sec(15));
  EXPECT_GT(net.flow(0).throughput_in(sec(5), sec(15)), mbps(15));
}

AckEvent ack_at(SimTime now, std::uint64_t seq, SimDuration rtt = msec(50),
                SimDuration min_rtt = msec(50)) {
  return AckEvent{now, seq, now - rtt, rtt, kMss, 0, mbps(10), min_rtt};
}

TEST(Compound, DelayWindowGrowsOnEmptyQueue) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i)
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  EXPECT_GT(cc.delay_window(), 0);
}

TEST(Compound, DelayWindowRetreatsUnderQueueing) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i)
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  std::int64_t grown = cc.delay_window();
  ASSERT_GT(grown, 0);
  // Deep standing queue: diff >> gamma.
  SimTime t = sec(10);
  for (int i = 0; i < 60; ++i) {
    cc.on_ack(ack_at(t, 100 + static_cast<std::uint64_t>(i), msec(200), msec(50)));
    t += msec(210);
  }
  EXPECT_LT(cc.delay_window(), grown);
}

TEST(Compound, LossHalvesCompoundWindow) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i) {
    cc.on_packet_sent({msec(60) * i, static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  }
  std::int64_t before = cc.cwnd_bytes();
  cc.on_loss({sec(10), 30, sec(9), kMss, 0, false});
  EXPECT_LT(cc.cwnd_bytes(), before);
  EXPECT_GE(cc.cwnd_bytes(), before / 4);
}

TEST(Compound, FillsFriendlyLink) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<CompoundTcp>());
  net.run_until(sec(20));
  EXPECT_GT(net.link_utilization(sec(5), sec(20)), 0.85);
}

}  // namespace
}  // namespace libra
