// Tests for the CoDel AQM queue and the Compound TCP combined baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "classic/compound.h"
#include "classic/cubic.h"
#include "sim/codel_network.h"
#include "sim/network.h"

namespace libra {
namespace {

constexpr std::int64_t kMss = kDefaultPacketBytes;

CodelConfig codel_link(RateBps rate = mbps(24)) {
  CodelConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(rate);
  cfg.buffer_bytes = 1'000'000;
  cfg.propagation_delay = msec(15);
  return cfg;
}

TEST(Codel, DeliversBelowTarget) {
  // A paced trickle well under capacity never builds a standing queue; CoDel
  // must not drop anything.
  EventQueue q;
  CodelQueue link(q, codel_link(mbps(24)));
  int delivered = 0, dropped = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  link.set_drop([&](const Packet&) { ++dropped; });
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    q.run_until(msec(10) * i);
    link.send(p);
  }
  q.run_until(sec(5));
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(dropped, 0);
  EXPECT_EQ(link.codel_drops(), 0);
}

TEST(Codel, DropsWhenSojournPersistsAboveTarget) {
  // Saturate a slow queue: the standing sojourn exceeds the 5 ms target and
  // CoDel must start shedding.
  EventQueue q;
  CodelQueue link(q, codel_link(mbps(2)));
  int dropped = 0;
  link.set_drop([&](const Packet&) { ++dropped; });
  link.set_deliver([](const Packet&) {});
  for (int i = 0; i < 400; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    q.run_until(msec(2) * i);  // 6 Mbps offered into a 2 Mbps queue
    link.send(p);
  }
  q.run_until(sec(10));
  EXPECT_GT(link.codel_drops(), 0);
}

TEST(Codel, MarkModeKeepsTheDropStateScheduleIdentical) {
  // RFC 8289 §4.1: with ECN, a control-law firing CE-marks the head instead
  // of dropping it, but the dropping-state machine (count escalation,
  // drop_next_ cadence, re-entry memory) must be untouched. Drive two queues
  // — one per mode — with the same deterministic arrival pattern and compare
  // the exact firing instants while both stay deeply backlogged. 750 packets
  // at 6 Mbps into 2 Mbps keeps the escalated cadence (interval/sqrt(count))
  // well above the 6 ms serialization slot, so a firing always resolves at
  // the same dequeue instant in both modes.
  constexpr int kPackets = 750;
  constexpr SimTime kLoadEnd = msec(2) * kPackets;
  auto cfg = [] {
    CodelConfig c = codel_link(mbps(2));
    c.buffer_bytes = 2'000'000;  // never overflow: all drops are CoDel's
    return c;
  };

  EventQueue qd;
  CodelQueue drop_mode(qd, cfg());
  std::vector<SimTime> drop_times;
  drop_mode.set_deliver([](const Packet&) {});
  drop_mode.set_drop([&](const Packet&) { drop_times.push_back(qd.now()); });

  EventQueue qm;
  CodelConfig mark_cfg = cfg();
  mark_cfg.ecn_mark = true;
  CodelQueue mark_mode(qm, mark_cfg);
  std::vector<SimTime> mark_times;
  // A marked delivery left the queue exactly propagation_delay earlier.
  mark_mode.set_deliver([&](const Packet& p) {
    if (p.ce_marked) mark_times.push_back(qm.now() - mark_cfg.propagation_delay);
  });
  mark_mode.set_drop([](const Packet&) { FAIL() << "ECT packet dropped in mark mode"; });

  for (int i = 0; i < kPackets; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    p.ecn_capable = true;
    qd.run_until(msec(2) * i);
    drop_mode.send(p);
    qm.run_until(msec(2) * i);
    mark_mode.send(p);
  }
  qd.run_until(sec(10));
  qm.run_until(sec(10));

  ASSERT_GT(drop_times.size(), 10u);
  EXPECT_EQ(mark_mode.codel_drops(), 0);
  EXPECT_EQ(static_cast<std::size_t>(mark_mode.codel_marks()),
            mark_times.size());
  // Compare the schedules over the loaded phase, where both queues are
  // backlogged identically. (Past it the drop-mode queue, thinned by its own
  // drops, drains earlier and the trajectories legitimately diverge.)
  auto clip = [](std::vector<SimTime> v, SimTime end) {
    v.erase(std::find_if(v.begin(), v.end(),
                         [end](SimTime t) { return t >= end; }),
            v.end());
    return v;
  };
  const std::vector<SimTime> drops = clip(drop_times, kLoadEnd);
  const std::vector<SimTime> marks = clip(mark_times, kLoadEnd);
  ASSERT_GT(drops.size(), 10u);
  EXPECT_EQ(drops, marks)
      << "mark mode changed the control-law firing schedule";
}

TEST(Codel, NonEctPacketsStillDropInMarkMode) {
  // §4.1 marks only ECT traffic: a non-ECT packet hitting a firing drops
  // exactly as in drop mode.
  EventQueue q;
  CodelConfig cfg = codel_link(mbps(2));
  cfg.ecn_mark = true;
  CodelQueue link(q, cfg);
  int dropped = 0;
  link.set_deliver([](const Packet&) {});
  link.set_drop([&](const Packet&) { ++dropped; });
  for (int i = 0; i < 400; ++i) {
    Packet p;
    p.seq = static_cast<std::uint64_t>(i);
    // ecn_capable left false
    q.run_until(msec(2) * i);
    link.send(p);
  }
  q.run_until(sec(10));
  EXPECT_GT(link.codel_drops(), 0);
  EXPECT_EQ(link.codel_marks(), 0);
  EXPECT_EQ(dropped, link.codel_drops());
}

TEST(Codel, ReentryAfterLongGapRestartsCount) {
  // RFC 8289 §4.2: control-law memory across dropping episodes expires after
  // 16 x interval of not dropping. An episode that starts long after the
  // previous one must restart from count == 1, not reuse the stale count.
  EventQueue q;
  CodelQueue link(q, codel_link(mbps(2)));
  link.set_deliver([](const Packet&) {});
  link.set_drop([](const Packet&) {});
  std::uint64_t seq = 0;
  // 6 Mbps into a 2 Mbps queue for 3 s: the drop cadence escalates.
  for (int i = 0; i < 1500; ++i) {
    Packet p;
    p.seq = seq++;
    q.run_until(msec(2) * i);
    link.send(p);
  }
  q.run_until(sec(10));  // drain completely
  ASSERT_GT(link.codel_drop_count(), 1);
  ASSERT_FALSE(link.codel_dropping());

  // Idle far past 16 x interval (1.6 s), then saturate again and stop at the
  // instant dropping re-engages.
  const SimTime resume = sec(12);
  bool reentered = false;
  for (int i = 0; i < 1500 && !reentered; ++i) {
    Packet p;
    p.seq = seq++;
    q.run_until(resume + msec(2) * i);
    link.send(p);
    reentered = link.codel_dropping();
  }
  ASSERT_TRUE(reentered);
  EXPECT_EQ(link.codel_drop_count(), 1);
}

TEST(Codel, QuickReentryResumesFasterCadence) {
  // RFC 8289 §4.2: a dropping episode that begins shortly after the previous
  // one ended resumes from the drop rate the previous episode added
  // (count - lastcount), so persistent overload escalates across brief
  // below-target dips instead of probing up from scratch every time.
  EventQueue q;
  CodelConfig cfg = codel_link(mbps(2));
  cfg.buffer_bytes = 30'000;  // small backlog => the queue can drain quickly
  CodelQueue link(q, std::move(cfg));
  link.set_deliver([](const Packet&) {});
  link.set_drop([](const Packet&) {});
  std::uint64_t seq = 0;
  for (int i = 0; i < 1500; ++i) {
    Packet p;
    p.seq = seq++;
    q.run_until(msec(2) * i);
    link.send(p);
  }
  ASSERT_TRUE(link.codel_dropping());
  // Track the count while the episode winds down (the queue drains in
  // ~120 ms once the load stops).
  std::int64_t at_exit = link.codel_drop_count();
  SimTime t = sec(3);
  while (link.codel_dropping() && t < sec(4)) {
    at_exit = link.codel_drop_count();
    t += msec(5);
    q.run_until(t);
  }
  ASSERT_FALSE(link.codel_dropping());
  ASSERT_GT(at_exit, 2);

  // Saturate again immediately: re-entry lands well inside the 16-interval
  // window, so the episode resumes with count > 1 (bounded by the previous
  // episode's contribution).
  bool reentered = false;
  for (int i = 0; i < 1500 && !reentered; ++i) {
    Packet p;
    p.seq = seq++;
    q.run_until(t + msec(2) * i);
    link.send(p);
    reentered = link.codel_dropping();
  }
  ASSERT_TRUE(reentered);
  EXPECT_GT(link.codel_drop_count(), 1);
  EXPECT_LE(link.codel_drop_count(), at_exit);
}

TEST(Compound, ZeroRttAckDoesNotConsumeAdjustmentSlot) {
  // Regression for the shared RTT guard: an ACK without RTT samples must not
  // stamp the once-per-RTT delay-adjustment slot. With the bug, the real ACK
  // right behind it was skipped and the delay window stayed frozen.
  CompoundTcp cc;
  AckEvent degenerate{msec(1), 0, msec(1), /*rtt=*/0, kMss, 0, mbps(10),
                      /*min_rtt=*/0};
  cc.on_ack(degenerate);
  EXPECT_EQ(cc.delay_window(), 0);
  AckEvent real{msec(2), 1, msec(2) - msec(50), msec(50), kMss, 0, mbps(10),
                msec(50)};
  cc.on_ack(real);
  EXPECT_GT(cc.delay_window(), 0);
}

TEST(Codel, KeepsCubicDelayLow) {
  // The Sec. 2 claim: CUBIC + CoDel achieves low queueing delay (at the cost
  // of in-network support). Compare against droptail with a deep buffer.
  CodelNetwork codel(codel_link(mbps(24)));
  codel.add_flow(std::make_unique<Cubic>());
  codel.run_until(sec(15));
  double codel_delay = codel.flow(0).mean_rtt_in(sec(5), sec(15));

  LinkConfig deep;
  deep.capacity = std::make_shared<ConstantTrace>(mbps(24));
  deep.buffer_bytes = 1'000'000;
  deep.propagation_delay = msec(15);
  Network droptail(std::move(deep));
  droptail.add_flow(std::make_unique<Cubic>());
  droptail.run_until(sec(15));
  double droptail_delay = droptail.flow(0).mean_rtt_in(sec(5), sec(15));

  EXPECT_LT(codel_delay, droptail_delay * 0.5);
  EXPECT_LT(codel_delay, 60.0);
}

TEST(Codel, SustainsThroughputWhileDropping) {
  CodelNetwork net(codel_link(mbps(24)));
  net.add_flow(std::make_unique<Cubic>());
  net.run_until(sec(15));
  EXPECT_GT(net.flow(0).throughput_in(sec(5), sec(15)), mbps(15));
}

AckEvent ack_at(SimTime now, std::uint64_t seq, SimDuration rtt = msec(50),
                SimDuration min_rtt = msec(50)) {
  return AckEvent{now, seq, now - rtt, rtt, kMss, 0, mbps(10), min_rtt};
}

TEST(Compound, DelayWindowGrowsOnEmptyQueue) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i)
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  EXPECT_GT(cc.delay_window(), 0);
}

TEST(Compound, DelayWindowRetreatsUnderQueueing) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i)
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  std::int64_t grown = cc.delay_window();
  ASSERT_GT(grown, 0);
  // Deep standing queue: diff >> gamma.
  SimTime t = sec(10);
  for (int i = 0; i < 60; ++i) {
    cc.on_ack(ack_at(t, 100 + static_cast<std::uint64_t>(i), msec(200), msec(50)));
    t += msec(210);
  }
  EXPECT_LT(cc.delay_window(), grown);
}

TEST(Compound, LossHalvesCompoundWindow) {
  CompoundTcp cc;
  for (int i = 0; i < 60; ++i) {
    cc.on_packet_sent({msec(60) * i, static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(60) * i, static_cast<std::uint64_t>(i)));
  }
  std::int64_t before = cc.cwnd_bytes();
  cc.on_loss({sec(10), 30, sec(9), kMss, 0, false});
  EXPECT_LT(cc.cwnd_bytes(), before);
  EXPECT_GE(cc.cwnd_bytes(), before / 4);
}

TEST(Compound, FillsFriendlyLink) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<CompoundTcp>());
  net.run_until(sec(20));
  EXPECT_GT(net.link_utilization(sec(5), sec(20)), 0.85);
}

}  // namespace
}  // namespace libra
