// Telemetry pipeline tests: M4 bucket math and streaming compaction, the
// zero-perturbation guarantee (results bitwise identical with telemetry on vs
// off), serial-vs-parallel byte-identical columnar dumps, export round-trips,
// and the Libra stage-event integration.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "classic/cubic.h"
#include "core/factory.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "learned/libra_rl.h"
#include "obs/json_parse.h"
#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace libra {
namespace {

// --- bucket math ------------------------------------------------------------

TEST(TelemetryBucket, TracksEnvelopeAndEndpoints) {
  TelemetryBucket b;
  for (double v : {3.0, 1.0, 4.0, 1.5}) b.add(v);
  EXPECT_EQ(b.first, 3.0);
  EXPECT_EQ(b.last, 1.5);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.max, 4.0);
  EXPECT_EQ(b.count, 4u);
}

TEST(TelemetryBucket, AbsorbMergesAsIfSamplesWereConcatenated) {
  TelemetryBucket a, b;
  for (double v : {2.0, 5.0}) a.add(v);
  for (double v : {1.0, 3.0}) b.add(v);
  a.absorb(b);
  EXPECT_EQ(a.first, 2.0);  // earlier bucket's first
  EXPECT_EQ(a.last, 3.0);   // later bucket's last
  EXPECT_EQ(a.min, 1.0);
  EXPECT_EQ(a.max, 5.0);
  EXPECT_EQ(a.count, 4u);

  TelemetryBucket empty;
  empty.absorb(a);  // absorbing into an empty bucket copies
  EXPECT_EQ(empty.count, 4u);
  EXPECT_EQ(empty.first, 2.0);
  a.absorb(TelemetryBucket{});  // absorbing an empty bucket is a no-op
  EXPECT_EQ(a.count, 4u);
}

TEST(TelemetrySeries, StaysWithinBucketBudgetAndKeepsEverySample) {
  constexpr std::size_t kMax = 16;
  TelemetrySeries s(1, kMax);
  for (int i = 0; i < 1000; ++i) {
    double v = static_cast<double>(i);
    s.add(&v, 1);
    ASSERT_LE(s.buckets(), kMax);
  }
  EXPECT_EQ(s.samples(), 1000u);
  // spb is a power of two (doubles on every compaction).
  std::uint64_t spb = s.samples_per_bucket();
  EXPECT_EQ(spb & (spb - 1), 0u);
  EXPECT_GE(spb * kMax, 1000u);
  // No sample lost: bucket counts add up.
  std::uint64_t total = 0;
  for (const TelemetryBucket& b : s.column(0)) total += b.count;
  EXPECT_EQ(total, 1000u);
}

TEST(TelemetrySeries, CompactionPreservesTheEnvelope) {
  TelemetrySeries s(1, 8);
  // Sawtooth with one extreme spike: the M4 envelope must survive any number
  // of pairwise merges.
  for (int i = 0; i < 512; ++i) {
    double v = (i == 137) ? 1e9 : ((i % 10) - 5.0);
    s.add(&v, 1);
  }
  double global_min = 1e300, global_max = -1e300;
  for (const TelemetryBucket& b : s.column(0)) {
    global_min = std::min(global_min, b.min);
    global_max = std::max(global_max, b.max);
  }
  EXPECT_EQ(global_max, 1e9);
  EXPECT_EQ(global_min, -5.0);
  // First/last of the whole series survive as the edge buckets' endpoints.
  EXPECT_EQ(s.column(0).front().first, -5.0);  // i=0 -> 0%10-5
  EXPECT_EQ(s.column(0).back().last, (511 % 10) - 5.0);
}

TEST(TelemetrySeries, ColumnsShareOneBucketClock) {
  TelemetrySeries s(2, 4);
  for (int i = 0; i < 100; ++i) {
    double v[2] = {static_cast<double>(i), static_cast<double>(-i)};
    s.add(v, 2);
  }
  ASSERT_EQ(s.columns(), 2u);
  ASSERT_EQ(s.column(0).size(), s.column(1).size());
  for (std::size_t b = 0; b < s.column(0).size(); ++b)
    EXPECT_EQ(s.column(0)[b].count, s.column(1)[b].count);
}

TEST(Telemetry, StageEventsAreCappedNotUnbounded) {
  Telemetry t;
  TelemetryConfig cfg;
  cfg.max_stage_events = 4;
  t.enable(cfg);
  for (int i = 0; i < 10; ++i) t.stage_event(msec(i), 0, i % 4);
  EXPECT_EQ(t.stage_events().size(), 4u);
  EXPECT_EQ(t.stage_events_dropped(), 6u);
}

TEST(Telemetry, DisabledHooksAreNoOps) {
  Telemetry t;
  t.stage_event(msec(1), 0, 1);
  TelemetryFlowSample fs;
  t.sample_flow(0, fs);
  TelemetryQueueSample qs;
  t.sample_queue(0, qs);
  EXPECT_EQ(t.flow_count(), 0);
  EXPECT_EQ(t.queue_count(), 0);
  EXPECT_EQ(t.samples(), 0u);
  EXPECT_TRUE(t.stage_events().empty());
}

// --- zero perturbation ------------------------------------------------------

TEST(TelemetryRun, SummaryIsBitwiseIdenticalWithTelemetryOnVsOff) {
  Scenario s = wired_scenario(24);
  s.duration = sec(6);
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };

  ObsOptions off;
  auto net_off = run_scenario(s, {{factory}, {factory}}, 7, off);
  RunSummary sum_off = summarize(*net_off, sec(1), s.duration);

  ObsOptions on;
  on.telemetry.enabled = true;
  on.telemetry.config.sample_interval = msec(1);
  auto net_on = run_scenario(s, {{factory}, {factory}}, 7, on);
  RunSummary sum_on = summarize(*net_on, sec(1), s.duration);

  EXPECT_GT(net_on->telemetry().samples(), 0u);
  // The sampler only reads state, so every simulated quantity must match to
  // the bit (wall time is host noise, excluded by comparing fields).
  EXPECT_EQ(std::memcmp(&sum_off.link_utilization, &sum_on.link_utilization,
                        sizeof(double)), 0);
  EXPECT_EQ(sum_off.total_throughput_bps, sum_on.total_throughput_bps);
  EXPECT_EQ(sum_off.avg_delay_ms, sum_on.avg_delay_ms);
  ASSERT_EQ(sum_off.flows.size(), sum_on.flows.size());
  for (std::size_t i = 0; i < sum_off.flows.size(); ++i) {
    EXPECT_EQ(sum_off.flows[i].throughput_bps, sum_on.flows[i].throughput_bps);
    EXPECT_EQ(sum_off.flows[i].avg_rtt_ms, sum_on.flows[i].avg_rtt_ms);
    EXPECT_EQ(sum_off.flows[i].loss_rate, sum_on.flows[i].loss_rate);
  }
  // Same number of *simulation* events: telemetry adds its own timer events,
  // so totals differ — but the flows' packet counts must not.
  EXPECT_EQ(net_off->flow(0).sender().packets_sent(),
            net_on->flow(0).sender().packets_sent());
  EXPECT_EQ(net_off->flow(1).sender().packets_lost(),
            net_on->flow(1).sender().packets_lost());
}

// --- determinism: serial vs parallel dumps ----------------------------------

std::vector<std::string> collect_dumps(const std::vector<RunRequest>& base,
                                       ThreadPool& pool) {
  // Each request writes its columnar dump into its own slot via the inspect
  // hook (worker-thread safe: slots are disjoint).
  std::vector<std::string> dumps(base.size());
  std::vector<RunRequest> reqs = base;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].inspect = [&dumps, i](const Network& net) {
      std::ostringstream os;
      net.telemetry().write_jsonl(os);
      dumps[i] = os.str();
    };
  }
  run_many(reqs, pool);
  return dumps;
}

TEST(TelemetryRun, ColumnarDumpsAreByteIdenticalSerialVsParallel) {
  Scenario s = wired_scenario(12);
  s.duration = sec(4);
  CcaFactory factory = [] { return std::make_unique<Cubic>(); };

  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RunRequest r;
    r.scenario = s;
    // Stagger durations so requests are genuinely distinct: a wired cubic
    // run is deterministic irrespective of seed, so seed alone would make
    // all four dumps identical and the inequality sanity check vacuous.
    r.scenario.duration = s.duration + sec(static_cast<int>(seed));
    r.flows = {{factory}, {factory}};
    r.seed = seed;
    r.obs.telemetry.enabled = true;
    r.obs.telemetry.config.sample_interval = msec(2);
    reqs.push_back(std::move(r));
  }

  ThreadPool serial(1), parallel(4);
  std::vector<std::string> a = collect_dumps(reqs, serial);
  std::vector<std::string> b = collect_dumps(reqs, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].empty());
    EXPECT_EQ(a[i], b[i]) << "request " << i;
  }
  // Different durations must produce different series (sanity check that the
  // comparison above is not trivially passing on empty output).
  EXPECT_NE(a[0], a[1]);
}

// --- exports ----------------------------------------------------------------

TEST(TelemetryExport, JsonlRoundTripsThroughTheJsonParser) {
  Scenario s = wired_scenario(12);
  s.duration = sec(3);
  ObsOptions obs;
  obs.telemetry.enabled = true;
  obs.telemetry.config.sample_interval = msec(1);
  auto net = run_scenario(
      s, {{[] { return std::make_unique<Cubic>(); }}}, 3, obs);

  std::ostringstream os;
  net->telemetry().write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  int series_lines = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    JsonValue v = json_parse(line);  // throws on malformed output
    ASSERT_TRUE(v.is_object());
    if (v.find("telemetry")) {
      saw_header = true;
      EXPECT_EQ(v.find("interval_us")->number, 1000.0);
      continue;
    }
    if (const JsonValue* col = v.find("col")) {
      ++series_lines;
      const JsonValue* n = v.find("n");
      ASSERT_NE(n, nullptr);
      auto buckets = static_cast<std::size_t>(n->number);
      for (const char* key : {"first", "last", "min", "max", "count"}) {
        const JsonValue* arr = v.find(key);
        ASSERT_NE(arr, nullptr) << key;
        EXPECT_EQ(arr->array.size(), buckets) << col->string;
      }
    }
  }
  EXPECT_TRUE(saw_header);
  // 1 flow x 7 columns + 1 queue x 4 columns.
  EXPECT_EQ(series_lines, 11);
}

TEST(TelemetryExport, BinaryDumpHasMagicAndDeclaredShape) {
  Scenario s = wired_scenario(12);
  s.duration = sec(2);
  ObsOptions obs;
  obs.telemetry.enabled = true;
  obs.telemetry.config.sample_interval = msec(5);
  auto net = run_scenario(
      s, {{[] { return std::make_unique<Cubic>(); }}}, 3, obs);

  std::ostringstream os(std::ios::binary);
  net->telemetry().write_binary(os);
  std::string blob = os.str();
  ASSERT_GE(blob.size(), 8u + 8u + 4u * 4u);
  EXPECT_EQ(blob.substr(0, 8), "LTLM0001");
  std::int64_t interval = 0;
  std::memcpy(&interval, blob.data() + 8, sizeof(interval));
  EXPECT_EQ(interval, msec(5));
  std::uint32_t flows = 0, queues = 0, fcols = 0, qcols = 0;
  std::memcpy(&flows, blob.data() + 16, 4);
  std::memcpy(&queues, blob.data() + 20, 4);
  std::memcpy(&fcols, blob.data() + 24, 4);
  std::memcpy(&qcols, blob.data() + 28, 4);
  EXPECT_EQ(flows, 1u);
  EXPECT_EQ(queues, 1u);
  EXPECT_EQ(fcols, Telemetry::kFlowColumns);
  EXPECT_EQ(qcols, Telemetry::kQueueColumns);
}

// --- Libra integration ------------------------------------------------------

TEST(TelemetryLibra, StageTransitionsLandAsExactEvents) {
  Scenario s = wired_scenario(24);
  s.duration = sec(5);
  auto brain = make_libra_rl_brain(11);
  ObsOptions obs;
  obs.telemetry.enabled = true;
  obs.telemetry.config.sample_interval = msec(1);
  auto net = run_scenario(
      s, {{[brain] { return make_c_libra(brain, /*training=*/false); }}}, 11,
      obs);

  const Telemetry& t = net->telemetry();
  ASSERT_FALSE(t.stage_events().empty());
  SimTime prev = -1;
  for (const TelemetryStageEvent& ev : t.stage_events()) {
    EXPECT_EQ(ev.flow, 0);
    EXPECT_GE(ev.stage, 0);
    EXPECT_LE(ev.stage, 3);
    EXPECT_GE(ev.t, prev);  // chronological
    prev = ev.t;
  }
  // A full control cycle visits exploration and exploitation at least once.
  bool saw_exploration = false, saw_exploitation = false;
  for (const TelemetryStageEvent& ev : t.stage_events()) {
    saw_exploration |= ev.stage == 0;
    saw_exploitation |= ev.stage == 3;
  }
  EXPECT_TRUE(saw_exploration);
  EXPECT_TRUE(saw_exploitation);

  // The sampled per-flow stage column carries the same signal (values in
  // [0, 3], not the non-Libra sentinel -1).
  const TelemetrySeries* series = t.flow_series(0);
  ASSERT_NE(series, nullptr);
  const auto& stage_col = series->column(6);  // "stage"
  ASSERT_FALSE(stage_col.empty());
  EXPECT_GE(stage_col.back().min, 0.0);
  EXPECT_LE(stage_col.back().max, 3.0);
}

}  // namespace
}  // namespace libra
