#include <gtest/gtest.h>

#include "classic/cubic.h"
#include "core/factory.h"
#include "core/libra.h"
#include "sim/network.h"

namespace libra {
namespace {

std::shared_ptr<RlBrain> tiny_brain(std::uint64_t seed = 3) {
  RlCcaConfig cfg = libra_rl_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed, {8, 8}),
                                   feature_frame_size(cfg.features));
}

std::unique_ptr<Libra> tiny_c_libra(LibraParams params = c_libra_params(),
                                    bool training = false) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = training;
  cfg.external_control = true;
  auto rl = std::make_unique<RlCca>(cfg, tiny_brain());
  return std::make_unique<Libra>(params, std::make_unique<Cubic>(), std::move(rl));
}

LinkConfig friendly_link(RateBps rate = mbps(24)) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(rate);
  cfg.buffer_bytes = 150 * 1000;
  cfg.propagation_delay = msec(15);
  return cfg;
}

TEST(LibraParams, FactoriesMatchPaperDurations) {
  LibraParams c = c_libra_params();
  EXPECT_DOUBLE_EQ(c.exploration_rtts, 1.0);
  EXPECT_DOUBLE_EQ(c.ei_rtts, 0.5);
  EXPECT_DOUBLE_EQ(c.exploitation_rtts, 1.0);
  LibraParams b = b_libra_params();
  EXPECT_DOUBLE_EQ(b.exploration_rtts, 3.0);
  EXPECT_DOUBLE_EQ(b.exploitation_rtts, 3.0);
  EXPECT_DOUBLE_EQ(c.switch_threshold, 0.3);
}

TEST(Libra, RequiresComponents) {
  LibraParams p = c_libra_params();
  RlCcaConfig cfg = libra_rl_config();
  cfg.external_control = true;
  EXPECT_THROW(Libra(p, nullptr, std::make_unique<RlCca>(cfg, tiny_brain())),
               std::invalid_argument);
  EXPECT_THROW(Libra(p, std::make_unique<Cubic>(), nullptr), std::invalid_argument);
}

TEST(Libra, CleanSlateAllowsNullClassic) {
  LibraParams p = c_libra_params();
  p.use_classic = false;
  RlCcaConfig cfg = libra_rl_config();
  cfg.external_control = true;
  EXPECT_NO_THROW(Libra(p, nullptr, std::make_unique<RlCca>(cfg, tiny_brain())));
}

TEST(Libra, ConvergesToCapacityOnConstantLink) {
  Network net(friendly_link(mbps(24)));
  net.add_flow(tiny_c_libra());
  net.run_until(sec(20));
  EXPECT_GT(net.link_utilization(sec(5), sec(20)), 0.8);
  // The delay advantage over raw CUBIC: stays near the propagation floor.
  EXPECT_LT(net.flow(0).mean_rtt_in(sec(5), sec(20)), 60.0);
}

TEST(Libra, CyclesThroughAllStages) {
  Network net(friendly_link());
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  std::set<int> stages_seen;
  int cycles = 0;
  ptr->cycle_observer = [&](const Libra::CycleInfo&) { ++cycles; };
  net.add_flow(std::move(cca));
  for (int t = 1; t <= 100; ++t) {
    net.run_until(msec(50) * t);
    stages_seen.insert(static_cast<int>(ptr->stage()));
  }
  EXPECT_GT(cycles, 10);
  EXPECT_GE(stages_seen.size(), 3u);  // exploration, eval, exploitation
}

TEST(Libra, DecisionCountsSumToCycles) {
  Network net(friendly_link());
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  int cycles = 0;
  ptr->cycle_observer = [&](const Libra::CycleInfo&) { ++cycles; };
  net.add_flow(std::move(cca));
  net.run_until(sec(10));
  EXPECT_EQ(ptr->decision_counts().total(), cycles);
  EXPECT_GT(ptr->decision_counts().classic + ptr->decision_counts().rl, 0);
}

TEST(Libra, LowerRateFirstOrdering) {
  Network net(friendly_link());
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  // In every cycle where both candidates were measured, verify the recorded
  // first EI carried the lower candidate. We detect via CycleInfo: the
  // smaller of (x_cl, x_rl) must never have been starved relative to the
  // other by ordering. Directly: observe that the controller never applies
  // the higher candidate before the lower one within a cycle.
  RateBps last_seen_first = 0;
  bool ordering_violated = false;
  ptr->cycle_observer = [&](const Libra::CycleInfo& info) {
    (void)last_seen_first;
    if (!info.valid) return;
    // Reconstruct: the controller promises lower-first; x_cl/x_rl are frozen
    // at evaluation entry, so checking internal ordering reduces to the
    // invariant tested in enter_evaluation. Here we assert both candidates
    // stay within the configured envelope.
    EXPECT_GE(info.x_cl, kbps(100));
    EXPECT_GE(info.x_rl, kbps(100));
  };
  net.add_flow(std::move(cca));
  net.run_until(sec(5));
  EXPECT_FALSE(ordering_violated);
}

TEST(Libra, NoAckFallbackKeepsBaseRate) {
  // A link that dies at t=2s: once feedback stops, the base rate must stop
  // changing (every cycle falls back to x_prev).
  LinkConfig cfg;
  cfg.capacity = std::make_shared<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{{0, mbps(24)}, {sec(2), 0.0}});
  cfg.buffer_bytes = 150 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  net.add_flow(std::move(cca));
  net.run_until(sec(4));
  RateBps base_at_4s = ptr->base_rate();
  net.run_until(sec(6));
  EXPECT_DOUBLE_EQ(ptr->base_rate(), base_at_4s);
}

TEST(Libra, CleanSlateRunsWithoutClassic) {
  Network net(friendly_link());
  LibraParams p = c_libra_params();
  p.use_classic = false;
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = false;
  cfg.external_control = true;
  auto libra = std::make_unique<Libra>(p, nullptr,
                                       std::make_unique<RlCca>(cfg, tiny_brain()));
  Libra* ptr = libra.get();
  net.add_flow(std::move(libra));
  net.run_until(sec(10));
  // Clean-slate never credits the classic candidate.
  EXPECT_EQ(ptr->decision_counts().classic, 0);
  EXPECT_GT(net.flow(0).metrics().packets_acked, 100);
}

TEST(Libra, UtilityAttributionMatchesCandidates) {
  // Regression for the decision-attribution bug: in a valid cycle where the
  // classic candidate is higher and wins, the winner must be kClassic and
  // x_prev must move toward x_cl.
  Network net(friendly_link(mbps(48)));
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  bool checked = false;
  ptr->cycle_observer = [&](const Libra::CycleInfo& info) {
    if (!info.valid || checked) return;
    if (info.winner == Decision::kClassic) {
      EXPECT_GT(info.u_cl, info.u_prev);
      checked = true;
    }
  };
  net.add_flow(std::move(cca));
  net.run_until(sec(10));
  EXPECT_TRUE(checked);  // classic must win at least once while ramping
  EXPECT_GT(ptr->base_rate(), mbps(20));
}

TEST(Libra, RlOverheadIsMetered) {
  Network net(friendly_link());
  auto cca = tiny_c_libra();
  Libra* ptr = cca.get();
  net.add_flow(std::move(cca));
  net.run_until(sec(5));
  EXPECT_GT(ptr->rl_overhead().invocations(), 0);
}

TEST(Libra, MemoryIncludesBothComponents) {
  auto cca = tiny_c_libra();
  EXPECT_GT(cca->memory_bytes(), 1000);
}

TEST(Libra, EvaluationOrderAblationRuns) {
  // Flipping lower_rate_first must still converge (Fig. 4 ablation hook).
  LibraParams p = c_libra_params();
  p.lower_rate_first = false;
  Network net(friendly_link());
  net.add_flow(tiny_c_libra(p));
  net.run_until(sec(15));
  EXPECT_GT(net.link_utilization(sec(5), sec(15)), 0.6);
}

TEST(Libra, BLibraRunsWithBbr) {
  Network net(friendly_link());
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = false;
  cfg.external_control = true;
  auto libra = std::make_unique<Libra>(b_libra_params(), std::make_unique<Bbr>(),
                                       std::make_unique<RlCca>(cfg, tiny_brain()));
  net.add_flow(std::move(libra));
  net.run_until(sec(15));
  EXPECT_GT(net.link_utilization(sec(5), sec(15)), 0.7);
}

TEST(Libra, FlexibilityThroughputVsLatencyWeights) {
  // Th-2 (3x alpha) must achieve >= utilization of La-2 (3x beta), and La-2
  // must achieve <= delay of Th-2 — the Fig. 11 trade-off.
  auto run_with = [&](UtilityParams up) {
    LibraParams p = c_libra_params();
    p.utility = up;
    Network net(friendly_link(mbps(48)));
    net.add_flow(tiny_c_libra(p));
    net.run_until(sec(15));
    return std::make_pair(net.link_utilization(sec(5), sec(15)),
                          net.flow(0).mean_rtt_in(sec(5), sec(15)));
  };
  auto [util_th, delay_th] = run_with(throughput_oriented(2));
  auto [util_la, delay_la] = run_with(latency_oriented(2));
  EXPECT_GE(util_th, util_la - 0.02);
  EXPECT_LE(delay_la, delay_th + 2.0);
}

TEST(LibraFactory, NamesAndComposition) {
  auto brain = tiny_brain();
  // Note: factory brains must match the full-size config; use the real maker.
  auto full = make_libra_rl_brain(3);
  EXPECT_EQ(make_c_libra(full)->name(), "c-libra");
  EXPECT_EQ(make_b_libra(full)->name(), "b-libra");
  EXPECT_EQ(make_clean_slate_libra(full)->name(), "cl-libra");
}

}  // namespace
}  // namespace libra
